"""The sharded conservative-parallel kernel (repro.common.psim).

The contract under test, in order of importance:

1. **Byte-identity** — in the default ``sequenced`` mode, every machine
   result (metrics, counters, accounting) is byte-for-byte the serial
   calendar kernel's, across shard counts and with fault plans active.
2. **Conservative synchronization** — window/thread modes drain only
   below the inbound channel horizons, null clock updates break the
   two-shard waiting ring, and zero-lookahead links are rejected.
3. **Selection and validation** — ``shards`` resolves and validates
   through ``resolve_kernel``/``resolve_shards`` exactly like the PR 4
   kernel switch, env var included.
"""

import json

import pytest

from repro.common.errors import SimulationError
from repro.common.psim import ShardedSimulator
from repro.common.simulator import (
    CalendarSimulator,
    Simulator,
    resolve_kernel,
    resolve_shards,
)
from repro.common.topology import MachineTopology, TopologyLink, TopologyUnit
from repro.machines import registry


def result_bytes(name, config, workload=None):
    result = registry.run_spec({
        "machine": name,
        "config": config,
        "workload": workload or {},
    })
    return json.dumps(result.as_dict(), sort_keys=True)


FAULT_PLAN = {"seed": 11, "mem_slow_rate": 0.4, "mem_slow_cycles": 32.0,
              "net_delay_rate": 0.3, "net_delay_cycles": 8.0}


class TestByteIdentity:
    """Serial vs parallel SimResults, byte for byte."""

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_ttda_matches_serial(self, shards):
        serial = result_bytes("ttda", {"n_pes": 8})
        parallel = result_bytes("ttda", {"n_pes": 8, "shards": shards})
        # The config echoes differ (shards is echoed when set) — compare
        # everything else.
        serial_d = json.loads(serial)
        parallel_d = json.loads(parallel)
        parallel_d["config"].pop("shards")
        assert serial_d == parallel_d

    def test_ttda_env_route_is_fully_identical(self, monkeypatch):
        serial = result_bytes("ttda", {"n_pes": 8})
        monkeypatch.setenv("REPRO_SIM_KERNEL", "parallel")
        monkeypatch.setenv("REPRO_SIM_SHARDS", "4")
        parallel = result_bytes("ttda", {"n_pes": 8})
        assert serial == parallel

    def test_ttda_with_fault_plan(self, monkeypatch):
        config = {"n_pes": 4, "faults": FAULT_PLAN}
        serial = result_bytes("ttda", config)
        monkeypatch.setenv("REPRO_SIM_KERNEL", "parallel")
        monkeypatch.setenv("REPRO_SIM_SHARDS", "4")
        parallel = result_bytes("ttda", config)
        assert serial == parallel

    @pytest.mark.parametrize("name,config", [
        ("cmstar", {"n_clusters": 2, "cluster_size": 2}),
        ("ultracomputer", {"stages": 3}),
    ])
    def test_contracting_machines_match_serial(self, name, config,
                                               monkeypatch):
        """Machines whose topology contracts to one shard still accept
        the parallel kernel and produce identical bytes."""
        serial = result_bytes(name, config)
        monkeypatch.setenv("REPRO_SIM_KERNEL", "parallel")
        monkeypatch.setenv("REPRO_SIM_SHARDS", "2")
        parallel = result_bytes(name, config)
        assert serial == parallel

    @pytest.mark.parametrize("name,config", [
        ("cmstar", {"n_clusters": 2, "cluster_size": 2,
                    "faults": FAULT_PLAN}),
        # net_delay faults reorder packets inside omega combining, which
        # the network rejects on any kernel — use memory faults only.
        ("ultracomputer", {"stages": 3,
                           "faults": {"seed": 11, "mem_slow_rate": 0.4,
                                      "mem_slow_cycles": 32.0}}),
    ])
    def test_contracting_machines_with_faults(self, name, config,
                                              monkeypatch):
        serial = result_bytes(name, config)
        monkeypatch.setenv("REPRO_SIM_KERNEL", "parallel")
        monkeypatch.setenv("REPRO_SIM_SHARDS", "2")
        parallel = result_bytes(name, config)
        assert serial == parallel

    def test_determinism_across_shard_counts(self):
        """shards=1/2/4 agree with each other run to run."""
        runs = [result_bytes("ttda", {"n_pes": 8, "shards": s})
                for s in (1, 2, 4)]
        stripped = []
        for blob in runs:
            payload = json.loads(blob)
            payload["config"].pop("shards")
            stripped.append(json.dumps(payload, sort_keys=True))
        assert stripped[0] == stripped[1] == stripped[2]
        again = json.loads(result_bytes("ttda", {"n_pes": 8, "shards": 4}))
        again["config"].pop("shards")
        assert json.dumps(again, sort_keys=True) == stripped[2]


class TestKernelSelection:
    def test_shards_validation(self):
        for bad in (0, -1, 1.5, "3", True, False):
            with pytest.raises(SimulationError):
                resolve_shards(bad)
        assert resolve_shards(None) == 1
        assert resolve_shards(4) == 4

    def test_env_shards(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_SHARDS", "3")
        assert resolve_shards() == 3
        monkeypatch.setenv("REPRO_SIM_SHARDS", "zero")
        with pytest.raises(SimulationError):
            resolve_shards()
        monkeypatch.setenv("REPRO_SIM_SHARDS", "0")
        with pytest.raises(SimulationError):
            resolve_shards()

    def test_shards_implies_parallel_kernel(self):
        assert resolve_kernel(shards=2) is ShardedSimulator
        assert resolve_kernel(shards=1) is CalendarSimulator

    def test_serial_kernel_with_shards_is_rejected(self):
        with pytest.raises(SimulationError, match="serial"):
            resolve_kernel("calendar", shards=2)
        with pytest.raises(SimulationError, match="serial"):
            Simulator(kernel="legacy", shards=4)

    def test_factory_builds_sharded(self):
        sim = Simulator(shards=4)
        assert isinstance(sim, ShardedSimulator)
        assert sim.shards == 4

    def test_constructor_validates_shards_and_mode(self):
        with pytest.raises(SimulationError):
            ShardedSimulator(shards=0)
        with pytest.raises(SimulationError):
            ShardedSimulator(shards=2.0)
        with pytest.raises(SimulationError):
            ShardedSimulator(shards=2, mode="optimistic")


def two_shard_ring(mode, hops=25, lookahead=2.0):
    """A waiting cycle: each shard only ever has work the other sends."""
    sim = ShardedSimulator(shards=2, mode=mode)
    left, right = object(), object()
    sim.configure_shards(
        [(left, 0), (right, 1)],
        {(0, 1): lookahead, (1, 0): lookahead},
    )
    hits = []

    def bounce(owner, other, hop):
        hits.append((sim.now, hop))
        if hop < hops:
            sim.post_to(other, lookahead, bounce, other, owner, hop + 1)

    sim.post_to(left, 0, bounce, left, right, 0)
    sim.run()
    return sim, hits


class TestConservativeProtocol:
    @pytest.mark.parametrize("mode", ["window", "thread"])
    def test_null_messages_break_the_ring(self, mode):
        """Without null clock updates the two-shard ring deadlocks —
        each shard's horizon starts at the channel lookahead and only
        promises advance it."""
        sim, hits = two_shard_ring(mode)
        assert [hop for (_, hop) in hits] == list(range(26))
        assert [t for (t, _) in hits] == [2.0 * hop for hop in range(26)]
        stats = sim.kernel_stats()
        assert stats["channel_messages"] == 25
        assert stats["null_updates"] > 0
        assert stats["rounds"] >= 25

    @pytest.mark.parametrize("mode", ["window", "thread"])
    def test_window_matches_thread_and_repeats(self, mode):
        first = two_shard_ring(mode)[1]
        second = two_shard_ring(mode)[1]
        assert first == second
        assert first == two_shard_ring("window")[1]

    def test_zero_lookahead_rejected(self):
        sim = ShardedSimulator(shards=2)
        with pytest.raises(SimulationError, match="lookahead"):
            sim.configure_shards([], {(0, 1): 0.0})
        with pytest.raises(SimulationError, match="lookahead"):
            sim.configure_shards([], [(1, 0, -1.0)])

    def test_cross_shard_post_needs_a_channel(self):
        sim = ShardedSimulator(shards=2, mode="window")
        a, b = object(), object()
        sim.configure_shards([(a, 0), (b, 1)], {(0, 1): 1.0})

        def fire():
            sim.post_to(a, 1.0, lambda: None)  # 1 -> 0: undeclared

        sim.post_to(b, 0, fire)
        with pytest.raises(SimulationError, match="no channel"):
            sim.run()

    def test_cross_shard_post_below_lookahead_rejected(self):
        sim = ShardedSimulator(shards=2, mode="window")
        a, b = object(), object()
        sim.configure_shards([(a, 0), (b, 1)],
                             {(0, 1): 4.0, (1, 0): 4.0})

        def fire():
            sim.post_to(b, 1.0, lambda: None)  # delay < lookahead: a lie

        sim.post_to(a, 0, fire)
        with pytest.raises(SimulationError, match="below the declared"):
            sim.run()

    def test_shard_index_validation(self):
        sim = ShardedSimulator(shards=2)
        with pytest.raises(SimulationError, match="out of range"):
            sim.configure_shards([(object(), 5)], {})
        with pytest.raises(SimulationError, match="out of range"):
            sim.configure_shards([], {(0, 7): 1.0})


class TestSingleShardParity:
    """ShardedSimulator(shards=1, sequenced) is the calendar kernel."""

    @staticmethod
    def drive(sim):
        log = []

        def tick(i):
            log.append((sim.now, "tick", i))
            if i < 40:
                sim.post(1.5 if i % 3 else 0.0, tick, i + 1)
                event = sim.schedule(4.0, tock, i)
                if i % 2 == 0:
                    event.cancel()

        def tock(i):
            log.append((sim.now, "tock", i))

        sim.post(0, tick, 0)
        sim.run()
        return log, sim.now, sim.events_fired

    def test_trace_parity(self):
        assert self.drive(CalendarSimulator()) == \
            self.drive(ShardedSimulator(shards=1))

    def test_budget_error_parity(self):
        def exhaust(sim):
            def tick():
                sim.post(1.0, tick)
            sim.post(0, tick)
            with pytest.raises(SimulationError) as err:
                sim.run(max_events=25)
            return str(err.value), sim.now, sim.events_fired

        assert exhaust(CalendarSimulator()) == \
            exhaust(ShardedSimulator(shards=2))

    def test_until_and_quiescence_hooks(self):
        def drive(sim):
            fired = []
            sim.post(3.0, fired.append, "a")
            refills = []

            def refill():
                if not refills:
                    refills.append(True)
                    sim.post(2.0, fired.append, "b")

            sim.add_quiescence_hook(refill)
            stop = sim.run(until=10.0)
            return fired, stop, sim.now

        assert drive(CalendarSimulator()) == drive(ShardedSimulator())

    def test_step_unsupported(self):
        with pytest.raises(SimulationError, match="single-step"):
            ShardedSimulator(shards=2).step()


class TestTopology:
    def ring(self, lookaheads):
        units = [TopologyUnit(name=f"u{i}") for i in range(len(lookaheads))]
        links = [
            TopologyLink(src=f"u{i}",
                         dst=f"u{(i + 1) % len(lookaheads)}",
                         lookahead=la)
            for i, la in enumerate(lookaheads)
        ]
        return MachineTopology(units, links)

    def test_contraction_of_zero_lookahead(self):
        topo = self.ring([1.0, 0.0, 1.0, 0.0])
        assert topo.max_shards == 2
        assignment = topo.partition(2)
        # The zero edges u1->u2 and u3->u0 glue those pairs together.
        assert assignment[1] == assignment[2]
        assert assignment[3] == assignment[0]
        assert assignment[0] != assignment[1]

    def test_all_zero_contracts_to_one(self):
        topo = self.ring([0.0, 0.0, 0.0])
        assert topo.max_shards == 1
        assert topo.partition(4) == [0, 0, 0]
        assert topo.shard_links(topo.partition(4)) == {}

    def test_partition_is_deterministic_and_balanced(self):
        topo = self.ring([1.0] * 8)
        assignment = topo.partition(4)
        assert assignment == topo.partition(4)
        counts = [assignment.count(s) for s in range(4)]
        assert counts == [2, 2, 2, 2]
        links = topo.shard_links(assignment)
        assert all(la == 1.0 for la in links.values())

    def test_duplicate_and_unknown_units_rejected(self):
        with pytest.raises(SimulationError, match="duplicate"):
            MachineTopology([TopologyUnit(name="a"),
                             TopologyUnit(name="a")], [])
        with pytest.raises(SimulationError, match="unknown unit"):
            MachineTopology([TopologyUnit(name="a")],
                            [TopologyLink(src="a", dst="b", lookahead=1.0)])


class TestRegistryDescribe:
    def test_ttda_describe(self):
        payload = registry.describe("ttda", n_pes=4)
        assert payload["max_shards"] == 4
        assert len(payload["topology"]["units"]) == 4
        assert all(link["lookahead"] == 4.0
                   for link in payload["topology"]["links"])
        assert json.dumps(payload, sort_keys=True)  # JSON-clean

    def test_contracting_machines_report_one_shard(self):
        assert registry.describe("cmstar")["max_shards"] == 1
        assert registry.describe("ultracomputer")["max_shards"] == 1

    def test_machines_without_topology_report_cleanly(self):
        for name in ("hep", "cmmp", "vliw", "connection_machine"):
            payload = registry.describe(name)
            assert payload["topology"] is None
            assert payload["max_shards"] == 1
