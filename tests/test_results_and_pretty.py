"""Remaining small surfaces: result metrics, pretty-printer details,
harness table writing, C.mmp builder."""

import os

import pytest

from repro.dataflow import MachineConfig, MachineResult, TaggedTokenMachine
from repro.graph import format_block
from repro.machines import registry
from repro.vonneumann import programs
from repro.workloads.handbuilt import build_sum_loop


class TestMachineResult:
    def test_mips_per_pe(self):
        result = MachineResult(value=1, time=100.0, drain_time=120.0,
                               instructions=400,
                               alu_utilizations=[0.5, 0.5])
        assert result.mips_per_pe == pytest.approx(2.0)

    def test_empty_utilizations(self):
        result = MachineResult(value=1, time=10.0, drain_time=10.0,
                               instructions=5)
        assert result.mean_alu_utilization == 0.0
        assert result.mips_per_pe == 0.0

    def test_real_run_populates_everything(self):
        machine = TaggedTokenMachine(build_sum_loop(), MachineConfig(n_pes=2))
        result = machine.run(5)
        assert result.value == 15
        assert result.instructions > 0
        assert len(result.alu_utilizations) == 2
        assert result.mips_per_pe > 0


class TestPrettyDetails:
    def test_block_listing_shows_params_and_exits(self):
        program = build_sum_loop()
        loop_text = format_block(program.block("sum$loop"))
        assert "param[0]" in loop_text
        assert "exit[0] -> parent" in loop_text
        main_text = format_block(program.block("sum"))
        assert "param[0]" in main_text
        assert "=> sum$loop" in main_text  # L operators name their target


class TestHarness:
    def test_write_table_creates_file(self, tmp_path, monkeypatch):
        import sys
        sys.path.insert(0, "benchmarks")
        import harness
        from repro.analysis import Table

        monkeypatch.setattr(harness, "RESULTS_DIR", str(tmp_path))
        table = Table("T", ["a"])
        table.add_row(1)
        path = harness.write_table(table, "unit_test_table")
        assert os.path.exists(path)
        with open(path) as fh:
            assert "T\n" in fh.read()


class TestCmmpBuilder:
    def test_crossbar_machine_runs(self):
        machine = registry.create("cmmp", n_procs=4).build()
        machine.load_spmd(programs.shared_counter_faa(1, 3))
        machine.run()
        assert machine.peek(1) == 12
        from repro.network import CrossbarNetwork

        assert isinstance(machine.memory.network, CrossbarNetwork)
        assert machine.memory.network.n_ports == 8  # procs + modules
