"""Robustness: the front end must reject garbage with CompileError,
never crash with anything else."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common import CompileError, ReproError
from repro.lang import compile_source, parse, tokenize


def _attempt(source):
    """Compile ``source``; it must either succeed or raise CompileError
    (or another library error for semantically-broken-but-parsable
    programs) — never an uncontrolled exception."""
    try:
        compile_source(source)
    except ReproError:
        pass


class TestFuzz:
    @given(st.text(max_size=120))
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_text_never_crashes(self, text):
        _attempt(text)

    @given(st.text(
        alphabet="definwhileforitrunpxyz()[]<>=+-*/%;,. \n0123456789",
        max_size=120,
    ))
    @settings(max_examples=300, deadline=None)
    def test_near_miss_programs_never_crash(self, text):
        _attempt(text)

    @given(st.text(alphabet=" ()[];,<-", max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_punctuation_soup_never_crashes_tokenizer(self, text):
        try:
            tokens = tokenize(text)
        except CompileError:
            return
        assert tokens[-1].kind == "eof"

    def test_truncated_real_program_fails_cleanly(self):
        """Every prefix of a real program either compiles (a prefix may
        end exactly at a complete definition) or raises a library error —
        never an uncontrolled crash."""
        from repro.workloads import TRAPEZOID

        for cut in range(0, len(TRAPEZOID), 7):
            _attempt(TRAPEZOID[:cut])

    def test_empty_program_rejected(self):
        with pytest.raises(CompileError, match="empty"):
            compile_source("   \n  // nothing here\n")

    @given(st.integers(0, 400))
    @settings(max_examples=60, deadline=None)
    def test_random_truncation_of_real_source(self, cut):
        from repro.workloads import MATMUL

        source = MATMUL[: min(cut, len(MATMUL))]
        try:
            compile_source(source)
        except ReproError:
            pass

    def test_deeply_nested_parens_parse(self):
        source = "def f(x) = " + "(" * 60 + "x" + ")" * 60 + ";"
        program = compile_source(source)
        from repro.dataflow import run_program

        assert run_program(program, 5) == 5
