"""Unit tests for the graph IR: builder, instructions, validation."""

import pytest

from repro.common import GraphError
from repro.graph import (
    BlockBuilder,
    CodeBlock,
    Destination,
    Instruction,
    Opcode,
    ProgramBuilder,
    arity_of,
    format_program,
    is_pure,
    validate_program,
)
from repro.workloads.handbuilt import (
    build_array_pipeline,
    build_factorial,
    build_sum_loop,
)


class TestInstruction:
    def test_nt_counts_tokens_not_immediates(self):
        plain = Instruction(Opcode.ADD)
        assert plain.nt == 2
        with_imm = Instruction(Opcode.ADD, constant=1, constant_port=1)
        assert with_imm.nt == 1

    def test_call_nt_includes_dynamic_callee(self):
        static = Instruction(Opcode.CALL, target_block="f", arg_count=2)
        assert static.nt == 2
        dynamic = Instruction(Opcode.CALL, arg_count=2)
        assert dynamic.nt == 3  # callee on port 0 plus two args

    def test_input_ports_skip_immediate(self):
        inst = Instruction(Opcode.I_STORE, constant=0, constant_port=1)
        assert inst.input_ports() == (0, 2)

    def test_constant_requires_port(self):
        with pytest.raises(GraphError):
            Instruction(Opcode.ADD, constant=1)

    def test_false_dests_only_on_switch(self):
        with pytest.raises(GraphError):
            Instruction(Opcode.ADD, dests_false=(Destination(0),))

    def test_arity_of_call_is_an_error(self):
        with pytest.raises(GraphError):
            arity_of(Opcode.CALL)

    def test_is_pure(self):
        assert is_pure(Opcode.ADD)
        assert not is_pure(Opcode.SWITCH)
        assert not is_pure(Opcode.I_FETCH)


class TestBuilder:
    def test_statement_numbers_are_sequential(self):
        b = BlockBuilder("f")
        assert b.emit(Opcode.ADD) == 0
        assert b.emit(Opcode.SUB) == 1
        assert b.emit(Opcode.RETURN) == 2

    def test_duplicate_return_rejected(self):
        b = BlockBuilder("f")
        b.emit(Opcode.RETURN)
        with pytest.raises(GraphError, match="more than one RETURN"):
            b.emit(Opcode.RETURN)

    def test_false_wire_from_non_switch_rejected(self):
        b = BlockBuilder("f")
        add = b.emit(Opcode.ADD)
        other = b.emit(Opcode.SINK)
        with pytest.raises(GraphError):
            b.wire(add, other, 0, side="false")

    def test_loop_block_requires_parent(self):
        with pytest.raises(GraphError):
            CodeBlock("l", kind=CodeBlock.LOOP)

    def test_duplicate_block_name_rejected(self):
        pb = ProgramBuilder()
        pb.procedure("f")
        with pytest.raises(GraphError):
            pb.procedure("f")


class TestValidation:
    def test_handbuilt_programs_validate(self):
        # build_* call validate internally; reaching here means they pass.
        for program in (build_factorial(), build_sum_loop(), build_array_pipeline()):
            validate_program(program)

    def test_starved_port_detected(self):
        pb = ProgramBuilder()
        b = pb.procedure("f")
        add = b.emit(Opcode.ADD)  # port 1 never fed
        ret = b.emit(Opcode.RETURN)
        b.wire(add, ret, 0)
        b.param((add, 0))
        with pytest.raises(GraphError, match="no incoming arc"):
            pb.build()

    def test_arc_to_missing_statement_detected(self):
        pb = ProgramBuilder()
        b = pb.procedure("f")
        add = b.emit(Opcode.ADD, constant=1, constant_port=1)
        b.wire(add, 17, 0)
        b.param((add, 0))
        b.emit(Opcode.RETURN)
        with pytest.raises(GraphError, match="nonexistent statement"):
            pb.build()

    def test_arc_into_immediate_port_detected(self):
        pb = ProgramBuilder()
        b = pb.procedure("f")
        src = b.emit(Opcode.IDENT)
        add = b.emit(Opcode.ADD, constant=1, constant_port=1)
        ret = b.emit(Opcode.RETURN)
        b.wire(src, add, 1)  # port 1 is the immediate
        b.wire(add, ret, 0)
        b.param((src, 0))
        with pytest.raises(GraphError, match="immediate"):
            pb.build()

    def test_procedure_without_return_rejected(self):
        pb = ProgramBuilder()
        b = pb.procedure("f")
        s = b.emit(Opcode.SINK)
        b.param((s, 0))
        with pytest.raises(GraphError, match="no RETURN"):
            pb.build()

    def test_call_arity_mismatch_rejected(self):
        pb = ProgramBuilder()
        callee = pb.procedure("g")
        g_add = callee.emit(Opcode.ADD, constant=1, constant_port=1)
        g_ret = callee.emit(Opcode.RETURN)
        callee.wire(g_add, g_ret, 0)
        callee.param((g_add, 0))

        caller = pb.procedure("f")
        call = caller.emit(Opcode.CALL, target_block="g", arg_count=2)
        f_ret = caller.emit(Opcode.RETURN)
        caller.wire(call, f_ret, 0)
        caller.param((call, 0))
        caller.param((call, 1))
        with pytest.raises(GraphError, match="takes 1"):
            pb.build()

    def test_one_loop_site_cannot_bind_two_loops(self):
        pb = ProgramBuilder()
        main = pb.procedure("f")
        l1 = main.emit(Opcode.L, target_block="loop_a", site=7, param_index=0)
        l2 = main.emit(Opcode.L, target_block="loop_b", site=7, param_index=0)
        ret = main.emit(Opcode.RETURN)
        main.param((l1, 0), (l2, 0))

        for loop_name in ("loop_a", "loop_b"):
            loop = pb.loop(loop_name, parent_block="f")
            ident = loop.emit(Opcode.IDENT)
            exit_ = loop.emit(Opcode.L_INV, param_index=0)
            loop.wire(ident, exit_, 0)
            loop.param((ident, 0))
            loop.exit((ret, 0))

        with pytest.raises(GraphError, match="already bound"):
            pb.build()

    def test_l_with_static_dests_rejected(self):
        pb = ProgramBuilder()
        main = pb.procedure("f")
        l1 = main.emit(Opcode.L, target_block="loop_a", site=1, param_index=0)
        ret = main.emit(Opcode.RETURN)
        main.wire(l1, ret, 0)
        main.param((l1, 0))
        loop = pb.loop("loop_a", parent_block="f")
        ident = loop.emit(Opcode.IDENT)
        exit_ = loop.emit(Opcode.L_INV, param_index=0)
        loop.wire(ident, exit_, 0)
        loop.param((ident, 0))
        loop.exit((ret, 0))
        with pytest.raises(GraphError, match="static destinations"):
            pb.build()


class TestPretty:
    def test_format_program_mentions_loop_operators(self):
        text = format_program(build_sum_loop())
        for glyph in ("L", "D", "D⁻¹", "L⁻¹", "SWITCH"):
            assert glyph in text

    def test_format_program_lists_blocks(self):
        text = format_program(build_sum_loop())
        assert "procedure sum" in text
        assert "loop sum$loop (in sum)" in text
