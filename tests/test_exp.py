"""The sweep engine: grids, caching, timeouts, determinism, cell parsing."""

import json
import time

import pytest

from repro.exp import (
    Experiment,
    ResultCache,
    code_fingerprint,
    grid,
    invalidate_fingerprints,
    parse_cell,
    payload_to_table,
    records_payload,
    run_experiment,
    table_to_payload,
)
from repro.exp.cache import config_key
from repro.machines import registry


# ---------------------------------------------------------------------------
# Worker functions must be module-level (picklable) for the engine.
# ---------------------------------------------------------------------------

def square(config):
    return config["x"] * config["x"]


def fail_on_three(config):
    if config["x"] == 3:
        raise ValueError("three is right out")
    return config["x"]


def slow_run(config):
    time.sleep(config.get("sleep", 5.0))
    return "done"


def run_model_spec(config):
    model = registry.create(config["machine"], **config.get("config", {}))
    return model.run(**config.get("workload", {})).as_dict()


def raise_interrupt(config):
    raise KeyboardInterrupt


def raise_memory_error(config):
    raise MemoryError("simulated allocation failure")


class TestGrid:
    def test_cartesian_product_in_declaration_order(self):
        configs = grid(a=[1, 2], b=["x", "y"])
        assert configs == [
            {"a": 1, "b": "x"}, {"a": 1, "b": "y"},
            {"a": 2, "b": "x"}, {"a": 2, "b": "y"},
        ]

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            Experiment(name="e", run=square, grid=[])


class TestEngineInline:
    def test_run_inline_preserves_order(self):
        experiment = Experiment(name="sq", run=square, grid=grid(x=[1, 2, 3]))
        assert experiment.run_inline() == [1, 4, 9]

    def test_jobs_zero_runs_without_workers(self):
        experiment = Experiment(name="sq", run=square, grid=grid(x=[2, 4]))
        records = run_experiment(experiment, jobs=0)
        assert [r.value for r in records] == [4, 16]
        assert all(r.ok for r in records)


class TestEngineWorkers:
    def test_results_ordered_by_grid_index(self):
        experiment = Experiment(name="sq", run=square,
                                grid=grid(x=list(range(8))))
        records = run_experiment(experiment, jobs=4)
        assert [r.index for r in records] == list(range(8))
        assert [r.value for r in records] == [x * x for x in range(8)]

    def test_failure_rows_are_structured(self):
        experiment = Experiment(name="f", run=fail_on_three,
                                grid=grid(x=[1, 3]))
        records = run_experiment(experiment, jobs=2)
        ok, bad = records
        assert ok.ok and ok.value == 1
        assert not bad.ok
        assert bad.status == "error"
        assert "three is right out" in bad.error
        assert bad.attempts == 2  # one retry before giving up

    def test_timeout_then_retry_then_failure_row(self):
        experiment = Experiment(name="slow", run=slow_run,
                                grid=[{"sleep": 30.0}])
        start = time.monotonic()
        records = run_experiment(experiment, jobs=1, timeout=0.3)
        elapsed = time.monotonic() - start
        (record,) = records
        assert record.status == "timeout"
        assert record.attempts == 2
        assert not record.ok
        assert elapsed < 10  # terminated, not waited out

    def test_keyboard_interrupt_is_fatal_not_swallowed(self):
        """An operator interrupt inside a worker must surface as a
        never-retried ``fatal`` row with its traceback — not vanish
        into the generic retried ``error`` path."""
        experiment = Experiment(name="intr", run=raise_interrupt,
                                grid=grid(x=[1]))
        (record,) = run_experiment(experiment, jobs=1, retries=3)
        assert record.status == "fatal"
        assert not record.ok
        assert record.attempts == 1  # fatal is never retried
        assert "KeyboardInterrupt" in record.error

    def test_memory_error_is_fatal_not_swallowed(self):
        experiment = Experiment(name="oom", run=raise_memory_error,
                                grid=grid(x=[1]))
        (record,) = run_experiment(experiment, jobs=1, retries=3)
        assert record.status == "fatal"
        assert record.attempts == 1
        assert "simulated allocation failure" in record.error

    def test_fatal_row_payload_is_structured(self):
        experiment = Experiment(name="oom", run=raise_memory_error,
                                grid=grid(x=[1]))
        records = run_experiment(experiment, jobs=1)
        (payload,) = records_payload(records)
        assert payload["status"] == "fatal"
        assert "MemoryError" in payload["error"]

    def test_jobs_1_and_jobs_4_byte_identical(self):
        experiment = Experiment(name="sq", run=square,
                                grid=grid(x=list(range(6))))
        serial = json.dumps(records_payload(run_experiment(experiment,
                                                           jobs=1)),
                            sort_keys=True)
        fanned = json.dumps(records_payload(run_experiment(experiment,
                                                           jobs=4)),
                            sort_keys=True)
        assert serial == fanned

    def test_models_run_through_engine(self):
        experiment = Experiment(
            name="models",
            run=run_model_spec,
            grid=[{"machine": "ultracomputer",
                   "config": {"stages": 3, "combining": True}},
                  {"machine": "cmmp", "config": {"n_procs": 4}}],
        )
        records = run_experiment(experiment, jobs=2)
        assert all(r.ok for r in records)
        assert records[0].value["metrics"]["final_value"] == 8
        assert records[1].value["metrics"]["crosspoints"] == 16


class TestCache:
    def _experiment(self):
        return Experiment(name="sq", run=square, grid=grid(x=[1, 2, 3]))

    def test_second_run_is_served_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        experiment = self._experiment()
        first = run_experiment(experiment, jobs=0, cache=cache)
        assert all(not r.cached for r in first)
        assert cache.misses == 3
        second = run_experiment(experiment, jobs=0, cache=cache)
        assert all(r.cached for r in second)
        assert cache.hits == 3
        assert [r.value for r in second] == [1, 4, 9]

    def test_config_change_invalidates_exactly_that_point(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_experiment(self._experiment(), jobs=0, cache=cache)
        grown = Experiment(name="sq", run=square, grid=grid(x=[1, 2, 4]))
        records = run_experiment(grown, jobs=0, cache=cache)
        assert [r.cached for r in records] == [True, True, False]

    def test_code_version_changes_key(self, tmp_path):
        key_a = config_key("e", {"x": 1}, "aaaa")
        key_b = config_key("e", {"x": 1}, "bbbb")
        assert key_a != key_b

    def test_key_is_insensitive_to_dict_order(self):
        assert config_key("e", {"a": 1, "b": 2}, "v") == (
            config_key("e", {"b": 2, "a": 1}, "v"))

    def test_failures_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        experiment = Experiment(name="f", run=fail_on_three,
                                grid=grid(x=[3]))
        run_experiment(experiment, jobs=1, cache=cache)
        records = run_experiment(experiment, jobs=1, cache=cache)
        assert not records[0].cached  # errors re-run every time

    def test_code_fingerprint_tracks_content(self, tmp_path):
        module = tmp_path / "mod.py"
        module.write_text("A = 1\n")
        before = code_fingerprint(str(tmp_path))
        invalidate_fingerprints()
        module.write_text("A = 2\n")
        after = code_fingerprint(str(tmp_path))
        assert before != after

    def test_fingerprint_memo_is_stale_without_invalidation(self, tmp_path):
        # The lru_cache memoizes per process-lifetime: an on-disk edit is
        # invisible until invalidate_fingerprints() drops the memo.
        module = tmp_path / "mod.py"
        module.write_text("A = 1\n")
        before = code_fingerprint(str(tmp_path))
        module.write_text("A = 2\n")
        assert code_fingerprint(str(tmp_path)) == before  # stale memo
        invalidate_fingerprints()
        assert code_fingerprint(str(tmp_path)) != before


class TestRegistryRoundTrip:
    @pytest.mark.parametrize("name", ["cmmp", "cmstar", "connection_machine",
                                      "hep", "ttda", "ultracomputer", "vliw"])
    def test_every_model_runs_and_serializes(self, name):
        model = registry.create(name)
        assert model.name == name
        result = model.run()
        assert result.machine == name
        # The SimResult round-trips through JSON (cache/IPC requirement).
        payload = json.loads(json.dumps(result.as_dict()))
        assert payload["machine"] == name
        assert payload["metrics"] == pytest.approx(result.metrics)


class TestParseCell:
    @pytest.mark.parametrize("cell,expected", [
        ("3", 3),
        ("3.25", 3.25),
        ("1e3", 1000.0),
        ("inf", float("inf")),
        ("3.2x", 3.2),
        ("1e3x", 1000.0),
        ("infx", float("inf")),
    ])
    def test_numeric_cells(self, cell, expected):
        assert parse_cell(cell) == expected

    def test_nan_and_dash(self):
        assert parse_cell("nan") != parse_cell("nan")  # NaN
        assert parse_cell("-") != parse_cell("-")  # Table renders NaN as "-"

    @pytest.mark.parametrize("cell", ["yes", "matmul", "1_0", "x", "0x10",
                                      "", "3 4"])
    def test_non_numeric_cells_stay_strings(self, cell):
        assert parse_cell(cell) == cell.strip()

    def test_table_payload_round_trip(self):
        from repro.analysis import Table
        table = Table("T", ["a", "b"], notes=["n"])
        table.add_row(1, float("nan"))
        table.add_row(float("inf"), "label")
        payload = table_to_payload(table)
        assert payload["data"][0]["a"] == 1
        rebuilt = payload_to_table(payload)
        assert rebuilt.rows == table.rows
        assert rebuilt.columns == table.columns
        assert rebuilt.notes == table.notes


class TestTaskQueue:
    def test_fifo_and_front(self):
        from repro.exp import TaskQueue

        queue = TaskQueue()
        queue.push("a")
        queue.push("b")
        queue.push("urgent", front=True)
        assert [queue.pop(), queue.pop(), queue.pop()] == ["urgent", "a", "b"]
        assert queue.pop() is None
        assert not queue

    def test_delayed_items_mature(self):
        from repro.exp import TaskQueue

        queue = TaskQueue()
        queue.push("later", not_before=100.0)
        queue.push("now")
        assert len(queue) == 2
        assert queue.pop(now=50.0) == "now"
        assert queue.pop(now=50.0) is None      # not mature yet
        assert queue.next_ready(50.0) == 50.0   # how long to sleep
        assert queue.pop(now=100.0) == "later"
        assert queue.next_ready(100.0) is None

    def test_bool_counts_delayed(self):
        from repro.exp import TaskQueue

        queue = TaskQueue()
        queue.push("x", not_before=10.0)
        assert queue and len(queue) == 1


class TestTimeoutPhase:
    def test_timeout_row_carries_phase(self):
        experiment = Experiment(name="slow", run=slow_run,
                                grid=[{"sleep": 30.0}])
        (record,) = run_experiment(experiment, jobs=1, timeout=0.5)
        assert record.status == "timeout"
        assert record.timeout_phase in ("startup", "run")
        assert record.payload()["timeout_phase"] == record.timeout_phase

    def test_ok_rows_omit_phase_key(self):
        experiment = Experiment(name="sq", run=square, grid=grid(x=[2]))
        (record,) = run_experiment(experiment, jobs=1)
        assert record.timeout_phase is None
        assert "timeout_phase" not in record.payload()


class TestCacheDirResolution:
    def test_explicit_beats_env_beats_bench_dir(self, monkeypatch, tmp_path):
        from repro.exp import resolve_cache_dir

        monkeypatch.setenv("REPRO_EXP_CACHE", str(tmp_path / "env"))
        assert resolve_cache_dir(str(tmp_path / "arg")) == \
            str(tmp_path / "arg")
        assert resolve_cache_dir(None) == str(tmp_path / "env")
        monkeypatch.delenv("REPRO_EXP_CACHE")
        assert resolve_cache_dir(None, str(tmp_path)) == \
            str(tmp_path / ".expcache")
        with pytest.raises(ValueError, match="cache"):
            resolve_cache_dir(None, None)

    def test_env_var_redirects_engine_cache(self, monkeypatch, tmp_path):
        from repro.exp import resolve_cache_dir

        monkeypatch.setenv("REPRO_EXP_CACHE", str(tmp_path / "redirect"))
        cache = ResultCache(resolve_cache_dir(None))
        experiment = Experiment(name="sq", run=square, grid=grid(x=[5]))
        first = run_experiment(experiment, jobs=0, cache=cache)
        second = run_experiment(experiment, jobs=0, cache=cache)
        assert not first[0].cached and second[0].cached
        assert (tmp_path / "redirect").is_dir()
