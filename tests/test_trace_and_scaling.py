"""Tests for the trace facility and the prepackaged studies."""

import pytest

from repro.analysis import latency_study, scaling_study
from repro.dataflow import MachineConfig, TaggedTokenMachine, TraceLog
from repro.workloads import compile_workload
from repro.workloads.handbuilt import build_factorial, build_sum_loop


class TestTraceLog:
    def test_ring_buffer_bounds(self):
        log = TraceLog(limit=5)
        for i in range(8):
            log.record(i, 0, "exec", f"e{i}")
        assert len(log) == 5
        assert log.dropped == 3
        assert log.recorded == 8
        assert log.events[0][3] == "e3"

    def test_format_and_by_kind(self):
        log = TraceLog()
        log.record(1.5, 2, "park", "tokenA")
        log.record(2.0, 1, "exec", "inst")
        text = log.format()
        assert "pe2 park" in text and "pe1 exec" in text
        assert len(log.by_kind("exec")) == 1


class TestMachineTracing:
    def test_disabled_by_default(self):
        machine = TaggedTokenMachine(build_sum_loop(), MachineConfig(n_pes=2))
        machine.run(4)
        assert machine.trace is None

    def test_trace_records_execution(self):
        machine = TaggedTokenMachine(
            build_sum_loop(), MachineConfig(n_pes=2, trace=True)
        )
        result = machine.run(4)
        assert machine.trace is not None
        execs = machine.trace.by_kind("exec")
        assert len(execs) == result.instructions
        assert machine.trace.by_kind("result") != []
        assert machine.trace.by_kind("match") != []
        # The formatted tail mentions recognizable opcodes.
        assert "switch" in machine.trace.format(last=500)

    def test_tracing_does_not_change_results(self):
        plain = TaggedTokenMachine(build_factorial(), MachineConfig(n_pes=2))
        traced = TaggedTokenMachine(
            build_factorial(), MachineConfig(n_pes=2, trace=True)
        )
        a, b = plain.run(6), traced.run(6)
        assert a.value == b.value == 720
        assert a.time == b.time


class TestStudies:
    def test_scaling_study_speedup_column(self):
        program, _, _ = compile_workload("matmul")
        table = scaling_study(program, (4,), [1, 4])
        speedups = [float(x) for x in table.column("speedup")]
        assert speedups[0] == 1.0
        assert speedups[1] > 1.5
        efficiencies = [float(x) for x in table.column("efficiency")]
        assert efficiencies[0] == 1.0
        assert 0 < efficiencies[1] <= 1.0

    def test_scaling_study_context_mapping(self):
        program, _, _ = compile_workload("pipeline")
        table = scaling_study(program, (8,), [2], mapping="context")
        assert "mapping = context" in str(table)

    def test_latency_study_slowdown_grows(self):
        program, _, _ = compile_workload("fib")
        table = latency_study(program, (8,), [1, 30], n_pes=4)
        slowdowns = [float(x) for x in table.column("slowdown")]
        assert slowdowns[0] == 1.0
        assert slowdowns[1] > 1.0
