"""Property-based tests (hypothesis) on the core invariants.

These are the laws the architecture's correctness argument rests on:
the I-structure discipline, the tag algebra, FETCH-AND-ADD
serializability, hypercube routing, MSI coherence, and the equivalence of
the two execution engines on arbitrary programs.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.common import IStructureError, Simulator
from repro.dataflow import (
    HashMapping,
    Interpreter,
    MachineConfig,
    TaggedTokenMachine,
    Tag,
    stable_tag_key,
)
from repro.istructure import DEFERRED, IStructureModule
from repro.lang import compile_source
from repro.network import CombiningOmegaNetwork, FetchAddRequest, HypercubeNetwork
from repro.vonneumann import CacheConfig, CacheState, MemRequest, Op, SnoopyBusSystem


# ---------------------------------------------------------------------------
# I-structure discipline
# ---------------------------------------------------------------------------

@st.composite
def cell_histories(draw):
    """A per-cell schedule: some reads, one write at a random position."""
    n_reads = draw(st.integers(min_value=0, max_value=6))
    write_pos = draw(st.integers(min_value=0, max_value=n_reads))
    value = draw(st.integers(min_value=-1000, max_value=1000))
    return n_reads, write_pos, value


class TestIStructureProperties:
    @given(st.lists(cell_histories(), min_size=1, max_size=8))
    def test_every_reader_answered_exactly_once(self, histories):
        module = IStructureModule()
        answered = {}
        for cell, (n_reads, write_pos, value) in enumerate(histories):
            issued = []
            for r in range(n_reads + 1):
                if r == write_pos:
                    for reply in module.write(("c", cell), value):
                        answered.setdefault(reply, []).append(value)
                if r < n_reads:
                    reply_id = (cell, r)
                    issued.append(reply_id)
                    result = module.read(("c", cell), reply_id)
                    if result is not DEFERRED:
                        answered.setdefault(reply_id, []).append(result)
            for reply_id in issued:
                assert answered.get(reply_id) == [value]
        assert module.pending_reads() == 0

    @given(cell_histories(), st.integers(-5, 5))
    def test_second_write_always_rejected(self, history, second_value):
        module = IStructureModule()
        _, _, value = history
        module.write(("x", 0), value)
        with pytest.raises(IStructureError):
            module.write(("x", 0), second_value)


# ---------------------------------------------------------------------------
# Tag algebra
# ---------------------------------------------------------------------------

tags = st.builds(
    Tag,
    context=st.none(),
    code_block=st.sampled_from(["f", "g", "loop$1"]),
    statement=st.integers(0, 50),
    iteration=st.integers(1, 100),
)


class TestTagAlgebra:
    @given(tags, st.integers(0, 50), st.integers(0, 30))
    def test_enter_then_exit_restores_caller_coordinates(self, tag, site, stmt):
        inner = tag.enter(site, "callee", stmt)
        invocation = inner.context
        assert invocation.context is tag.context
        assert invocation.code_block == tag.code_block
        assert invocation.statement == site
        assert invocation.iteration == tag.iteration

    @given(tags, st.integers(0, 50))
    def test_d_then_dinv_normalizes(self, tag, stmt):
        advanced = tag.next_iteration(stmt)
        assert advanced.iteration == tag.iteration + 1
        assert advanced.reset_iteration(stmt).iteration == 1

    @given(tags, st.integers(0, 50), st.integers(0, 30))
    def test_depth_increases_by_one_per_enter(self, tag, site, stmt):
        assert tag.enter(site, "callee", stmt).depth == tag.depth + 1

    @given(tags)
    def test_stable_key_is_deterministic_and_32bit(self, tag):
        key = stable_tag_key(tag)
        assert key == stable_tag_key(tag)
        assert 0 <= key <= 0xFFFFFFFF

    @given(tags, st.integers(1, 64))
    def test_mapping_always_in_range(self, tag, n_pes):
        assert 0 <= HashMapping(n_pes).pe_of(tag) < n_pes


# ---------------------------------------------------------------------------
# FETCH-AND-ADD serializability
# ---------------------------------------------------------------------------

class TestFetchAndAddProperties:
    @given(
        st.integers(1, 4),
        st.data(),
        st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_hotspot_is_serializable(self, stages, data, combining):
        sim = Simulator()
        net = CombiningOmegaNetwork(sim, stages, combining=combining)
        n = net.n_ports
        values = [
            data.draw(st.integers(1, 9), label=f"v{i}") for i in range(n)
        ]
        memory = {}

        def handler(record, payload):
            old = memory.get(payload.address, 0)
            memory[payload.address] = old + payload.value
            net.reply(record, old)

        observations = []
        for port in range(n):
            net.attach_memory(port, handler)
            net.attach_processor(
                port, lambda payload, old: observations.append(
                    (old, payload.value)
                )
            )
        for src in range(n):
            net.request(src, FetchAddRequest(address=0, value=values[src]))
        sim.run()

        # Sum preserved.
        assert memory[0] == sum(values)
        assert len(observations) == n
        # Serializable: sorted old-values form a chain 0 -> sum.
        observations.sort()
        running = 0
        for old, value in observations:
            assert old == running
            running += value
        assert running == sum(values)


# ---------------------------------------------------------------------------
# Hypercube routing
# ---------------------------------------------------------------------------

class TestHypercubeProperties:
    @given(
        st.integers(1, 5),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_delivery_with_minimal_hops(self, dimensions, data):
        sim = Simulator()
        net = HypercubeNetwork(sim, dimensions)
        n = net.n_ports
        received = []
        for port in range(n):
            net.attach(port, received.append)
        pairs = data.draw(
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                min_size=1, max_size=10,
            ),
            label="pairs",
        )
        for src, dst in pairs:
            net.send(src, dst, (src, dst))
        sim.run()
        assert len(received) == len(pairs)
        by_payload = {}
        for packet in received:
            by_payload.setdefault(packet.payload, []).append(packet)
        for (src, dst), packets in by_payload.items():
            for packet in packets:
                assert packet.hops == HypercubeNetwork.minimum_hops(src, dst)
        # No duplication: one delivery per send.
        assert sum(len(v) for v in by_payload.values()) == len(pairs)

    @given(st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1))
    def test_hamming_distance_metric(self, a, b):
        d = HypercubeNetwork.minimum_hops(a, b)
        assert d == HypercubeNetwork.minimum_hops(b, a)
        assert (d == 0) == (a == b)
        assert d == bin(a ^ b).count("1")


# ---------------------------------------------------------------------------
# MSI coherence
# ---------------------------------------------------------------------------

access_ops = st.tuples(
    st.integers(0, 2),  # processor
    st.sampled_from([Op.LOAD, Op.STORE]),
    st.integers(0, 7),  # address (small, to force sharing)
    st.integers(0, 99),  # store value
)


class TestCoherenceProperties:
    @given(st.lists(access_ops, min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_censier_feautrier_and_single_writer(self, accesses):
        sim = Simulator()
        system = SnoopyBusSystem(sim, 3, cache_config=CacheConfig(n_sets=2,
                                                                  assoc=1,
                                                                  line_words=2))
        latest = {}
        results = []
        for proc, op, address, value in accesses:
            request = MemRequest(op=op, address=address,
                                 value=value, proc=proc)
            system.access(proc, request,
                          lambda response, a=address, o=op: results.append(
                              (o, a, response)))
            sim.run()  # serialize: each access completes before the next
            if op is Op.STORE:
                latest[address] = value
            else:
                expected = latest.get(address, 0)
                assert results[-1] == (Op.LOAD, address, expected)
            # Single-writer invariant: at most one MODIFIED copy per line.
            for line_address in {a // 2 for _, _, a, _ in accesses}:
                owners = [
                    c for c in system.caches
                    if c.peek_state(line_address * 2) is CacheState.MODIFIED
                ]
                assert len(owners) <= 1


# ---------------------------------------------------------------------------
# Engine equivalence on generated programs
# ---------------------------------------------------------------------------

_RELATIONS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}
_ARITH = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
}


@st.composite
def arith_exprs(draw, depth=0, vars_=("x", "y")):
    """Random Id expressions paired with a reference evaluator.

    Returns ``(source, fn)`` where ``fn(env)`` computes the expression's
    value in Python from a variable environment — so the oracle is built
    structurally alongside the source, never re-parsed.
    """
    if depth >= 3 or draw(st.booleans()):
        if draw(st.booleans()):
            value = draw(st.integers(-9, 9))
            # Write negatives as (0 - v): the grammar has no literal sign.
            src = str(value) if value >= 0 else f"(0 - {-value})"
            return src, (lambda env, v=value: v)
        name = draw(st.sampled_from(vars_))
        return name, (lambda env, n=name: env[n])
    kind = draw(st.sampled_from(["bin", "if", "minmax", "let"]))
    if kind == "bin":
        op = draw(st.sampled_from(sorted(_ARITH)))
        left_src, left_fn = draw(arith_exprs(depth=depth + 1, vars_=vars_))
        right_src, right_fn = draw(arith_exprs(depth=depth + 1, vars_=vars_))
        fn = _ARITH[op]
        return (
            f"({left_src} {op} {right_src})",
            lambda env: fn(left_fn(env), right_fn(env)),
        )
    if kind == "minmax":
        name = draw(st.sampled_from(["min", "max"]))
        left_src, left_fn = draw(arith_exprs(depth=depth + 1, vars_=vars_))
        right_src, right_fn = draw(arith_exprs(depth=depth + 1, vars_=vars_))
        fn = min if name == "min" else max
        return (
            f"{name}({left_src}, {right_src})",
            lambda env: fn(left_fn(env), right_fn(env)),
        )
    if kind == "if":
        relation = draw(st.sampled_from(sorted(_RELATIONS)))
        a_src, a_fn = draw(arith_exprs(depth=depth + 1, vars_=vars_))
        b_src, b_fn = draw(arith_exprs(depth=depth + 1, vars_=vars_))
        t_src, t_fn = draw(arith_exprs(depth=depth + 1, vars_=vars_))
        e_src, e_fn = draw(arith_exprs(depth=depth + 1, vars_=vars_))
        rel_fn = _RELATIONS[relation]
        return (
            f"(if {a_src} {relation} {b_src} then {t_src} else {e_src})",
            lambda env: t_fn(env) if rel_fn(a_fn(env), b_fn(env)) else e_fn(env),
        )
    fresh = f"z{depth}"
    bound_src, bound_fn = draw(arith_exprs(depth=depth + 1, vars_=vars_))
    body_src, body_fn = draw(
        arith_exprs(depth=depth + 1, vars_=vars_ + (fresh,))
    )
    return (
        f"(let {fresh} = {bound_src} in {body_src})",
        lambda env: body_fn({**env, fresh: bound_fn(env)}),
    )


@st.composite
def loop_exprs(draw):
    """Random for-loops with a reference evaluator.

    ``(initial s <- INIT for i from LO to HI do new s <- BODY return s)``
    where BODY may reference x, y, s and i — covering the L/D/D⁻¹/L⁻¹
    schema, invariants and conditionals inside loop bodies.
    """
    init_src, init_fn = draw(arith_exprs(depth=2))
    body_src, body_fn = draw(
        arith_exprs(depth=1, vars_=("x", "y", "s", "i"))
    )
    lo = draw(st.integers(0, 3))
    hi = draw(st.integers(-1, 6))
    src = (
        f"(initial s <- {init_src} for i from {lo} to {hi} do "
        f"new s <- {body_src} return s)"
    )

    def fn(env):
        s = init_fn(env)
        for i in range(lo, hi + 1):
            s = body_fn({**env, "s": s, "i": i})
        return s

    return src, fn


class TestEngineEquivalence:
    @given(arith_exprs(), st.integers(-20, 20), st.integers(-20, 20))
    @settings(max_examples=40, deadline=None)
    def test_interpreter_machine_and_python_agree(self, expr, x, y):
        source_fragment, oracle = expr
        source = f"def main(x, y) = {source_fragment};"
        program = compile_source(source, entry="main")
        expected = oracle({"x": x, "y": y})
        assert Interpreter(program).run(x, y) == expected
        machine = TaggedTokenMachine(program, MachineConfig(n_pes=3))
        assert machine.run(x, y).value == expected

    @given(arith_exprs(), st.integers(-10, 10), st.integers(-10, 10))
    @settings(max_examples=15, deadline=None)
    def test_determinism_across_pe_counts(self, expr, x, y):
        source = f"def main(x, y) = {expr[0]};"
        program = compile_source(source, entry="main")
        values = {
            TaggedTokenMachine(program, MachineConfig(n_pes=n)).run(x, y).value
            for n in (1, 2, 5)
        }
        assert len(values) == 1

    @given(loop_exprs(), st.integers(-8, 8), st.integers(-8, 8))
    @settings(max_examples=30, deadline=None)
    def test_random_loops_agree_everywhere(self, expr, x, y):
        source_fragment, oracle = expr
        program = compile_source(f"def main(x, y) = {source_fragment};",
                                 entry="main")
        expected = oracle({"x": x, "y": y})
        assert Interpreter(program).run(x, y) == expected
        machine = TaggedTokenMachine(program, MachineConfig(n_pes=2))
        assert machine.run(x, y).value == expected
        from repro.graph import optimize_program

        optimized = optimize_program(program)
        assert Interpreter(optimized).run(x, y) == expected
