"""The observability subsystem: bus, sinks, registry, determinism,
instrumentation coverage, and the disabled-tracing overhead bound."""

import io
import json
import time

import pytest

from repro.common.simulator import Simulator
from repro.common.stats import Counter, Histogram, TimeWeighted
from repro.dataflow import MachineConfig, TaggedTokenMachine
from repro.dataflow.trace import TraceLog
from repro.lang import compile_source
from repro.network import (
    CombiningOmegaNetwork,
    CrossbarNetwork,
    FetchAddRequest,
    IdealNetwork,
)
from repro.obs import (
    ChromeTraceSink,
    JsonlSink,
    MetricsRegistry,
    RingSink,
    TraceBus,
    TraceEvent,
    validate_chrome_trace,
)
from repro.vonneumann import VNMachine

LOOP = """
def sumsq(n) =
  (initial s <- 0
   for i from 1 to n do
     new s <- s + i * i
   return s);
"""

FIB = """
def fib(n) =
  (if n < 2 then n
   else fib(n - 1) + fib(n - 2));
"""

SPMD_ASM = """
        MOVI r2, 100
        ADD  r3, r2, r1
        LOAD r4, r3, 0
        ADDI r4, r4, 1
        STORE r4, r3, 0
        HALT
"""


# ----------------------------------------------------------------------
# TraceBus and sinks
# ----------------------------------------------------------------------

def test_bus_disabled_emits_nothing():
    bus = TraceBus()
    assert not bus.enabled
    assert bus.emit(0.0, 0, "exec", "x") is None


def test_bus_fans_out_to_all_sinks():
    bus = TraceBus()
    a, b = bus.add_sink(RingSink()), bus.add_sink(RingSink())
    assert bus.enabled
    event = bus.emit(1.0, 2, "exec", "add", op="add")
    assert isinstance(event, TraceEvent)
    assert len(a) == len(b) == 1
    assert a.events[0].fields == {"op": "add"}
    bus.remove_sink(a)
    bus.emit(2.0, 2, "exec", "mul")
    assert len(a) == 1 and len(b) == 2


def test_event_legacy_tuple_and_json_shape():
    event = TraceEvent(3.0, 1, "match", "t<0,2>", fields={"waiting": 4})
    assert event.as_tuple() == (3.0, 1, "match", "t<0,2>")
    assert event.to_json_dict() == {
        "t": 3.0, "src": 1, "kind": "match", "detail": "t<0,2>", "waiting": 4,
    }


def test_ring_sink_bounded_drops_oldest():
    sink = RingSink(limit=3)
    for i in range(5):
        sink.handle(TraceEvent(float(i), 0, "exec", f"e{i}"))
    assert sink.recorded == 5
    assert sink.dropped == 2
    assert [e.detail for e in sink.events] == ["e2", "e3", "e4"]


def test_ring_sink_limit_zero_counts_exact_drops():
    sink = RingSink(limit=0)
    for i in range(7):
        sink.handle(TraceEvent(float(i), 0, "exec", f"e{i}"))
    assert sink.recorded == 7
    assert sink.dropped == 7  # exact, not saturated
    assert sink.events == []


def test_ring_sink_unbounded_never_drops():
    sink = RingSink(limit=None)
    for i in range(250):
        sink.handle(TraceEvent(float(i), 0, "exec", f"e{i}"))
    assert sink.recorded == 250 and sink.dropped == 0


def test_jsonl_sink_writes_sorted_keys():
    buffer = io.StringIO()
    sink = JsonlSink(buffer)
    sink.handle(TraceEvent(1.0, "net", "net_inject", "0->1",
                           fields={"size": 1}))
    sink.close()
    lines = buffer.getvalue().splitlines()
    assert sink.written == 1
    record = json.loads(lines[0])
    assert record == {"t": 1.0, "src": "net", "kind": "net_inject",
                      "detail": "0->1", "size": 1}
    assert list(record) == sorted(record)  # deterministic key order


# ----------------------------------------------------------------------
# TraceLog shim (back-compat)
# ----------------------------------------------------------------------

def test_tracelog_format_header_counts():
    log = TraceLog(limit=100)
    for i in range(5):
        log.record(float(i), i % 2, "exec", f"e{i}")
    text = log.format(last=3)
    assert "trace: 5 event(s) recorded, showing last 3" in text
    assert "pe0" in text and "pe1" in text


def test_tracelog_exact_dropped_when_disabled():
    log = TraceLog(limit=0)
    for i in range(9):
        log.record(float(i), 0, "exec", f"e{i}")
    assert log.recorded == 9 and log.dropped == 9
    assert log.events == []


def test_tracelog_attaches_to_bus():
    bus = TraceBus()
    log = TraceLog(bus=bus)
    bus.emit(1.0, 3, "park", "waiting")
    assert log.events == [(1.0, 3, "park", "waiting")]
    assert len(log.by_kind("park")) == 1


# ----------------------------------------------------------------------
# Chrome trace sink
# ----------------------------------------------------------------------

def _machine_with_chrome(source=LOOP, args=(6,), n_pes=4):
    bus = TraceBus()
    chrome = bus.add_sink(ChromeTraceSink())
    program = compile_source(source)
    machine = TaggedTokenMachine(
        program, MachineConfig(n_pes=n_pes, trace_bus=bus))
    result = machine.run(*args)
    return chrome, result


def test_chrome_trace_is_valid_and_has_pe_tracks():
    chrome, result = _machine_with_chrome()
    payload = chrome.to_json(meta={"source": "<test>"})
    data_events = validate_chrome_trace(payload)
    assert len(data_events) > 0
    track_names = {
        e["args"]["name"] for e in payload["traceEvents"]
        if e.get("ph") == "M" and e.get("name") == "thread_name"
    }
    assert {"pe0", "pe1", "pe2", "pe3"} <= track_names
    exec_slices = [e for e in data_events if e["ph"] == "X"]
    assert exec_slices, "ALU executions should become duration slices"
    assert all(e["dur"] > 0 for e in exec_slices)


def test_chrome_trace_validator_rejects_malformed():
    with pytest.raises(ValueError):
        validate_chrome_trace({"no": "traceEvents"})
    with pytest.raises(ValueError):
        validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "name": "a", "pid": 1}]})


def test_chrome_trace_write_roundtrip(tmp_path):
    chrome, _ = _machine_with_chrome(args=(4,))
    out = tmp_path / "run.trace.json"
    chrome.write(str(out), meta={"engine": "machine"})
    payload = json.loads(out.read_text())
    assert payload["otherData"]["engine"] == "machine"
    assert validate_chrome_trace(payload)


# ----------------------------------------------------------------------
# MetricsRegistry
# ----------------------------------------------------------------------

def test_registry_renders_each_instrument_type():
    registry = MetricsRegistry()
    counter = Counter()
    counter.add("ops", 3)
    registry.register("pe0", counter)
    hist = Histogram()
    hist.observe(2.0)
    hist.observe(4.0)
    registry.register("net.latency", hist)
    tw = TimeWeighted()
    tw.update(0.0, 1.0)
    tw.update(4.0, 3.0)
    registry.register("queue", tw)
    registry.register("time", lambda: 12.5)
    snap = registry.snapshot(now=4.0)
    assert snap["pe0.ops"] == 3
    assert snap["net.latency.count"] == 2
    assert snap["net.latency.mean"] == 3.0
    assert snap["queue.current"] == 3.0
    assert snap["time"] == 12.5
    assert list(snap) == sorted(snap)


def test_registry_rejects_duplicate_names():
    registry = MetricsRegistry()
    registry.register("x", lambda: 1)
    with pytest.raises(ValueError):
        registry.register("x", lambda: 2)


def test_machine_registry_has_hierarchical_names():
    program = compile_source(LOOP)
    machine = TaggedTokenMachine(program, MachineConfig(n_pes=2))
    machine.run(5)
    snap = machine.metrics_snapshot()
    executed = sum(value for key, value in snap.items()
                   if key.startswith("pe") and key.endswith(".instructions"))
    assert executed > 0
    assert "pe0.alu.busy" in snap
    assert "pe0.alu.utilization" in snap
    assert "pe1.wm.served" in snap
    assert "net.latency.mean" in snap
    assert snap["sim.events_fired"] > 0


def test_vn_registry_has_hierarchical_names():
    machine = VNMachine(n_procs=2, memory="dancehall", latency=4.0)
    machine.load_spmd(SPMD_ASM)
    machine.run()
    snap = machine.metrics_snapshot()
    assert snap["proc0.instructions"] == 6
    assert snap["proc1.instructions"] == 6
    assert 0.0 < snap["proc0.utilization"] <= 1.0
    assert "net.latency.mean" in snap


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------

def _jsonl_of_run(source, args, engine="machine"):
    buffer = io.StringIO()
    bus = TraceBus()
    bus.add_sink(JsonlSink(buffer))
    if engine == "machine":
        program = compile_source(source)
        machine = TaggedTokenMachine(
            program, MachineConfig(n_pes=4, trace_bus=bus))
        machine.run(*args)
    else:
        from repro.vonneumann import run_sequential
        run_sequential(source, args, trace_bus=bus)
    return buffer.getvalue()


def test_identical_runs_give_byte_identical_jsonl():
    first = _jsonl_of_run(FIB, (7,))
    second = _jsonl_of_run(FIB, (7,))
    assert first == second
    assert first.count("\n") > 100


def test_identical_vn_runs_give_byte_identical_jsonl():
    first = _jsonl_of_run(LOOP, (8,), engine="vn")
    second = _jsonl_of_run(LOOP, (8,), engine="vn")
    assert first == second
    assert '"kind": "vn_exec"' in first


def test_metrics_snapshot_stable_across_identical_runs():
    def snapshot():
        program = compile_source(FIB)
        machine = TaggedTokenMachine(program, MachineConfig(n_pes=4))
        machine.run(6)
        return machine.metrics_snapshot()

    assert snapshot() == snapshot()


def test_tracing_does_not_change_results():
    program = compile_source(FIB)
    plain = TaggedTokenMachine(program, MachineConfig(n_pes=4)).run(8)
    bus = TraceBus()
    bus.add_sink(RingSink())
    traced = TaggedTokenMachine(
        program, MachineConfig(n_pes=4, trace_bus=bus)).run(8)
    assert traced.value == plain.value
    assert traced.time == plain.time
    assert traced.instructions == plain.instructions


# ----------------------------------------------------------------------
# Instrumentation coverage: networks and VN processors
# ----------------------------------------------------------------------

def _drive_network(net):
    got = []
    net.attach(0, got.append)
    net.attach(1, got.append)
    net.send(0, 1, "hello")
    net.sim.run()
    return got


def test_base_network_emits_inject_and_deliver():
    for factory in (IdealNetwork, CrossbarNetwork):
        sim = Simulator()
        net = factory(sim, 2)
        bus = TraceBus()
        ring = bus.add_sink(RingSink())
        net.attach_bus(bus, source="net")
        _drive_network(net)
        kinds = [e.kind for e in ring.events]
        assert "net_inject" in kinds and "net_deliver" in kinds, factory
        deliver = next(e for e in ring.events if e.kind == "net_deliver")
        assert deliver.source == "net"
        assert deliver.fields["latency"] >= 0


def test_network_register_metrics():
    sim = Simulator()
    net = CrossbarNetwork(sim, 2)
    net.attach_bus(TraceBus())
    _drive_network(net)
    registry = MetricsRegistry()
    net.register_metrics(registry, prefix="net")
    snap = registry.snapshot(now=sim.now)
    assert snap["net.injected"] == 1
    assert snap["net.delivered"] == 1
    assert "net.latency.mean" in snap
    assert "net.out0.served" in snap


def test_omega_network_emits_combine_and_split():
    sim = Simulator()
    net = CombiningOmegaNetwork(sim, stages=2, combining=True)
    bus = TraceBus()
    ring = bus.add_sink(RingSink())
    net.attach_bus(bus, source="net")
    replies = []
    for port in range(net.n_ports):
        net.attach_memory(port, lambda record, payload: net.reply(record, 0))
        net.attach_processor(port, lambda payload, value: replies.append(value))
    # Identical concurrent fetch-and-adds to one address combine in the
    # switches (the paper's Ultracomputer argument, §1.2.3).
    for src in range(net.n_ports):
        net.request(src, FetchAddRequest(address=0, value=1))
    sim.run()
    assert len(replies) == net.n_ports
    kinds = {e.kind for e in ring.events}
    assert "net_combine" in kinds
    assert "net_split" in kinds
    registry = MetricsRegistry()
    net.register_metrics(registry, prefix="net")
    snap = registry.snapshot(now=sim.now)
    assert snap["net.combines"] >= 1
    assert snap["net.splits"] == snap["net.combines"]
    assert snap["net.round_trip.count"] == net.n_ports


def test_vn_processor_events():
    bus = TraceBus()
    ring = bus.add_sink(RingSink())
    machine = VNMachine(n_procs=1, memory="dancehall", latency=6.0,
                        trace_bus=bus)
    machine.load_spmd(SPMD_ASM)
    machine.run()
    kinds = [e.kind for e in ring.events]
    assert kinds.count("vn_exec") == 6
    assert "vn_stall" in kinds
    assert "vn_halt" in kinds
    stall = next(e for e in ring.events if e.kind == "vn_stall")
    assert stall.source == "proc0"
    assert stall.fields["dur"] > 0  # the §1.2.2 idle window


def test_multithreaded_processor_events():
    bus = TraceBus()
    ring = bus.add_sink(RingSink())
    machine = VNMachine(n_procs=1, memory="dancehall", latency=8.0,
                        contexts=2, trace_bus=bus)
    machine.add_multithreaded_processor(
        [(SPMD_ASM, {1: 0}), (SPMD_ASM, {1: 1})])
    machine.run()
    kinds = {e.kind for e in ring.events}
    assert "vn_exec" in kinds
    assert "vn_switch" in kinds
    assert "vn_halt" in kinds
    switch = next(e for e in ring.events if e.kind == "vn_switch")
    assert switch.source == "proc0"
    assert "ctx" in switch.fields


def test_istructure_events_present_in_machine_trace():
    bus = TraceBus()
    ring = bus.add_sink(RingSink())
    program = compile_source(FIB)
    machine = TaggedTokenMachine(
        program, MachineConfig(n_pes=2, trace_bus=bus))
    machine.run(6)
    kinds = {e.kind for e in ring.events}
    assert "exec" in kinds and "match" in kinds
    assert "route" in kinds
    assert "run_begin" in kinds and "run_end" in kinds


# ----------------------------------------------------------------------
# Overhead when disabled
# ----------------------------------------------------------------------

def test_disabled_tracing_overhead_is_small():
    """No sinks attached -> near-zero cost.  The bound is deliberately
    loose (CI machines are noisy); the claim being protected is "no
    per-event string formatting when disabled", whose violation costs
    tens of percent, not five."""
    program = compile_source(FIB)

    def run_once(config):
        machine = TaggedTokenMachine(program, config)
        machine.run(10)
        return machine.sim.wall_seconds

    def best_of(config_factory, repeats=5):
        return min(run_once(config_factory()) for _ in range(repeats))

    run_once(MachineConfig(n_pes=4))  # warm up
    plain = best_of(lambda: MachineConfig(n_pes=4))
    with_bus = best_of(
        lambda: MachineConfig(n_pes=4, trace_bus=TraceBus()))
    assert with_bus <= plain * 1.4, (plain, with_bus)
