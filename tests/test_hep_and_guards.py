"""The HEP model, and single-use guards on the execution engines."""

import pytest

from repro.common import MachineError
from repro.dataflow import Interpreter, MachineConfig, TaggedTokenMachine
from repro.machines import registry
from repro.workloads.handbuilt import build_add_constant


class TestHep:
    def test_saturation_curve(self):
        utils = [registry.create("hep", contexts=k,
                                 latency=8).run().metric("utilization")
                 for k in (1, 4, 16)]
        assert utils[0] < utils[1] < utils[2]
        assert utils[2] > 0.8  # 16 contexts cover latency 8

    def test_build_hep_runs_custom_source(self):
        machine = registry.create("hep", contexts=3).build(
            source="movi r2, 7\nmovi r3, 100\nadd r4, r2, r1\n"
                   "store r4, r3, 0\nhalt",
            regs_of=lambda index: {1: index, 3: 0},
        )
        # give each context a distinct store target via r3
        proc = machine.processors[0]
        for index, context in enumerate(proc.contexts):
            context.regs[3] = 0  # overwritten by movi anyway
        machine.run()
        assert machine.peek(100) in (7, 8, 9)

    def test_producer_consumer_traffic_exceeds_two_per_element(self):
        result = registry.create("hep").run(
            workload="producer_consumer", n=12, producer_work=24)
        assert result.metric("retries") > 0
        # busy-waiting inflates traffic
        assert result.metric("requests_per_element") > 2.0

    def test_fast_producer_needs_no_retries(self):
        result = registry.create("hep", retry_backoff=8.0).run(
            workload="producer_consumer", n=12, producer_work=0)
        # The barrel interleaves producer and consumer; with no filler
        # work the producer stays ahead most of the time.
        assert result.metric("requests_per_element") < 3.0


class TestSingleUseGuards:
    def test_interpreter_single_use(self):
        interp = Interpreter(build_add_constant(1))
        interp.run(1)
        with pytest.raises(MachineError, match="single-use"):
            interp.run(2)

    def test_machine_single_use(self):
        machine = TaggedTokenMachine(build_add_constant(1),
                                     MachineConfig(n_pes=1))
        machine.run(1)
        with pytest.raises(MachineError, match="single-use"):
            machine.run(2)
