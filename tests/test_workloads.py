"""The Id workload library: both engines vs. the Python references."""

import pytest

from repro.dataflow import Interpreter, MachineConfig, TaggedTokenMachine
from repro.workloads import WORKLOADS, compile_workload


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_interpreter_matches_reference(name):
    program, reference, args = compile_workload(name)
    interp = Interpreter(program)
    assert interp.run(*args) == pytest.approx(reference(*args))


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_machine_matches_reference(name):
    program, reference, args = compile_workload(name)
    machine = TaggedTokenMachine(program, MachineConfig(n_pes=4))
    assert machine.run(*args).value == pytest.approx(reference(*args))


class TestWavefrontSemantics:
    def test_rows_overlap(self):
        """Wavefront rows are produced and consumed concurrently: the
        critical path is O(n), not O(n^2)."""
        program, _, _ = compile_workload("wavefront")
        n = 8
        interp = Interpreter(program)
        interp.run(n)
        ops_per_cell = interp.instructions_executed / (n * n)
        # Serial execution would have depth ~ instructions; the wavefront
        # should cut that by a factor approaching the mean parallelism.
        assert interp.average_parallelism() > 3.0
        assert ops_per_cell < 60

    def test_deferred_reads_prove_out_of_order_access(self):
        program, _, _ = compile_workload("wavefront")
        interp = Interpreter(program)
        interp.run(6)
        # At least some interior reads race ahead of their producers.
        assert interp.heap.counters["reads_deferred"] > 0

    def test_small_cases_by_hand(self):
        from repro.workloads import wavefront_reference

        # n=3: interior fills to [[2,3],[3,6]] from unit borders.
        assert wavefront_reference(2) == 2
        assert wavefront_reference(3) == 6
        assert wavefront_reference(4) == 20


class TestScaling:
    def test_matmul_speeds_up_with_pes(self):
        program, _, _ = compile_workload("matmul")
        times = {}
        for n_pes in (1, 8):
            machine = TaggedTokenMachine(program, MachineConfig(n_pes=n_pes))
            times[n_pes] = machine.run(4).time
        assert times[8] < times[1]

    def test_fib_exposes_tree_parallelism(self):
        program, _, _ = compile_workload("fib")
        interp = Interpreter(program)
        interp.run(12)
        assert interp.average_parallelism() > 4.0


class TestJacobi:
    @pytest.mark.parametrize("n,steps,probe", [(8, 1, 4), (10, 4, 5), (6, 3, 1)])
    def test_matches_reference(self, n, steps, probe):
        from repro.workloads import jacobi_reference

        program, _, _ = compile_workload("jacobi")
        assert Interpreter(program).run(n, steps, probe) == pytest.approx(
            jacobi_reference(n, steps, probe)
        )

    def test_array_refs_circulate_through_loop(self):
        program, _, _ = compile_workload("jacobi")
        interp = Interpreter(program)
        interp.run(8, 3, 4)
        # One fresh structure per step plus the initial vector.
        assert interp.allocator.allocated == 4
