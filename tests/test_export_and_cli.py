"""Tests for graph export (networkx/DOT), graph statistics, and the CLI."""

import io
import json

import networkx as nx
import pytest

from repro.graph import graph_statistics, to_dot, to_networkx
from repro.cli import main
from repro.workloads import TRAPEZOID, compile_workload
from repro.workloads.handbuilt import build_factorial, build_sum_loop


class TestToNetworkx:
    def test_every_instruction_becomes_a_node(self):
        program, _, _ = compile_workload("trapezoid")
        graph = to_networkx(program)
        assert graph.number_of_nodes() == program.total_instructions

    def test_loop_linkage_edges_cross_blocks(self):
        program = build_sum_loop()
        graph = to_networkx(program)
        kinds = {attrs["kind"] for _, _, attrs in graph.edges(data=True)}
        assert "loop-entry" in kinds
        assert "loop-exit" in kinds

    def test_call_and_return_edges(self):
        program = build_factorial()
        graph = to_networkx(program)
        kinds = [attrs["kind"] for _, _, attrs in graph.edges(data=True)]
        assert "call" in kinds
        assert "return" in kinds

    def test_switch_false_edges_marked(self):
        program = build_sum_loop()
        graph = to_networkx(program)
        false_edges = [
            (u, v) for u, v, attrs in graph.edges(data=True)
            if attrs["kind"] == "switch-false"
        ]
        assert false_edges  # the loop exit path uses the false side

    def test_graph_is_connected_as_undirected(self):
        program, _, _ = compile_workload("pipeline")
        graph = to_networkx(program)
        assert nx.is_weakly_connected(nx.DiGraph(graph))


class TestToDot:
    def test_dot_contains_clusters_and_edges(self):
        program = build_sum_loop()
        dot = to_dot(program, title="sum")
        assert dot.startswith("digraph dataflow")
        assert "subgraph cluster_sum" in dot
        assert "subgraph cluster_sum_loop" in dot
        assert "->" in dot
        assert 'label="sum"' in dot

    def test_dot_is_parsable_bracket_balanced(self):
        program, _, _ = compile_workload("matmul")
        dot = to_dot(program)
        assert dot.count("{") == dot.count("}")


class TestGraphStatistics:
    def test_statistics_fields(self):
        program, _, _ = compile_workload("trapezoid")
        stats = graph_statistics(program)
        assert stats["instructions"] == program.total_instructions
        assert stats["arcs"] > stats["instructions"]  # fan-out exists
        assert stats["blocks"] == len(program.blocks)
        assert stats["by_class"]["tag"] > 0
        assert stats["static_depth"] >= 3
        assert stats["max_fan_out"] >= 2

    def test_class_counts_sum_to_total(self):
        program = build_factorial()
        stats = graph_statistics(program)
        assert sum(stats["by_class"].values()) == stats["instructions"]


class TestCli:
    @pytest.fixture
    def source_file(self, tmp_path):
        path = tmp_path / "trap.id"
        path.write_text(TRAPEZOID)
        return str(path)

    def _run(self, argv):
        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def test_run_interpreter(self, source_file):
        code, output = self._run(
            ["run", source_file, "--entry", "trapezoid",
             "--args", "0.0", "1.0", "16", "0.0625"]
        )
        assert code == 0
        assert "result: 0.785" in output
        assert "critical_path" in output

    def test_run_machine_json(self, source_file):
        code, output = self._run(
            ["run", source_file, "--entry", "trapezoid", "--engine",
             "machine", "--pes", "2", "--args", "0.0", "1.0", "8", "0.125",
             "--json"]
        )
        assert code == 0
        payload = json.loads(output)
        assert payload["result"] == pytest.approx(0.7847, abs=1e-3)
        assert payload["time_cycles"] > 0
        assert "2 PEs" in payload["engine"]

    def test_graph_listing(self, source_file):
        code, output = self._run(["graph", source_file, "--entry",
                                  "trapezoid"])
        assert code == 0
        assert "procedure trapezoid" in output
        assert "L⁻¹" in output

    def test_graph_dot(self, source_file):
        code, output = self._run(["graph", source_file, "--dot"])
        assert code == 0
        assert output.startswith("digraph")

    def test_stats(self, source_file):
        code, output = self._run(["stats", source_file])
        assert code == 0
        payload = json.loads(output)
        assert payload["instructions"] > 20
        assert "by_class" in payload

    def test_argument_parsing_types(self):
        from repro.cli import _parse_value

        assert _parse_value("3") == 3
        assert _parse_value("3.5") == 3.5
        assert _parse_value("true") is True
        assert _parse_value("hello") == "hello"


class TestWmCapacity:
    def test_finite_store_slows_the_machine(self):
        from repro.dataflow import MachineConfig, TaggedTokenMachine

        program, reference, _ = compile_workload("matmul")
        unbounded = TaggedTokenMachine(program, MachineConfig(n_pes=2))
        r1 = unbounded.run(4)
        tiny = TaggedTokenMachine(
            program,
            MachineConfig(n_pes=2, wm_capacity=8, wm_overflow_penalty=16.0),
        )
        r2 = tiny.run(4)
        assert r1.value == r2.value == reference(4)
        assert r2.time > r1.time
        assert r2.counters.get("wm_overflows", 0) > 0
        assert r1.counters.get("wm_overflows", 0) == 0
