"""Unit tests for the measurement primitives."""

import pytest

from repro.common import (
    Counter,
    Histogram,
    SeriesRecorder,
    TimeWeighted,
    UtilizationTracker,
    summarize,
)


class TestCounter:
    def test_add_and_get(self):
        c = Counter()
        c.add("reads")
        c.add("reads", 4)
        assert c.get("reads") == 5
        assert c["reads"] == 5

    def test_missing_is_zero(self):
        assert Counter().get("nothing") == 0

    def test_as_dict_is_a_copy(self):
        c = Counter()
        c.add("x")
        d = c.as_dict()
        d["x"] = 99
        assert c.get("x") == 1


class TestHistogram:
    def test_moments(self):
        h = Histogram()
        for v in [1, 2, 3, 4]:
            h.observe(v)
        assert h.count == 4
        assert h.mean == pytest.approx(2.5)
        assert h.variance == pytest.approx(1.25)
        assert h.min == 1 and h.max == 4

    def test_weighted_observation(self):
        h = Histogram()
        h.observe(10, weight=3)
        h.observe(20)
        assert h.count == 4
        assert h.mean == pytest.approx(12.5)

    def test_percentile(self):
        h = Histogram()
        for v in range(1, 101):
            h.observe(v)
        assert h.percentile(50) == 50
        assert h.percentile(95) == 95
        assert h.percentile(100) == 100

    def test_empty_histogram(self):
        h = Histogram()
        assert h.mean == 0.0
        assert h.percentile(50) is None


class TestTimeWeighted:
    def test_mean_occupancy(self):
        tw = TimeWeighted(initial=0)
        tw.update(10, 4)  # 0 for 10 cycles
        tw.update(20, 0)  # 4 for 10 cycles
        assert tw.mean() == pytest.approx(2.0)
        assert tw.max == 4

    def test_extend_to_end_time(self):
        tw = TimeWeighted(initial=2)
        tw.update(5, 6)
        assert tw.mean(end_time=10) == pytest.approx((2 * 5 + 6 * 5) / 10)

    def test_adjust(self):
        tw = TimeWeighted()
        tw.adjust(1, +3)
        tw.adjust(2, -1)
        assert tw.current == 2

    def test_time_going_backwards_rejected(self):
        tw = TimeWeighted()
        tw.update(5, 1)
        with pytest.raises(ValueError):
            tw.update(4, 2)


class TestUtilizationTracker:
    def test_simple_busy_interval(self):
        u = UtilizationTracker()
        u.begin(2)
        u.end(6)
        assert u.utilization(10) == pytest.approx(0.4)
        assert u.operations == 1

    def test_overlapping_intervals_count_once(self):
        u = UtilizationTracker()
        u.begin(0)
        u.begin(1)
        u.end(2)
        u.end(4)
        assert u.busy_time() == pytest.approx(4.0)

    def test_open_interval_extends_to_now(self):
        u = UtilizationTracker()
        u.begin(5)
        assert u.busy_time(now=8) == pytest.approx(3.0)

    def test_end_without_begin_rejected(self):
        with pytest.raises(ValueError):
            UtilizationTracker().end(1)

    def test_zero_window(self):
        assert UtilizationTracker().utilization(0) == 0.0


def test_series_recorder():
    s = SeriesRecorder()
    s.record(1, 10)
    s.record(2, 20)
    assert len(s) == 2
    assert list(s) == [(1, 10), (2, 20)]
    assert s.times == [1, 2]
    assert s.values == [10, 20]


def test_summarize():
    mean, std, low, high = summarize([2, 4, 6])
    assert mean == pytest.approx(4.0)
    assert low == 2 and high == 6
    assert std == pytest.approx(1.632993, rel=1e-5)
    assert summarize([]) == (0.0, 0.0, None, None)
