"""Tests for the von Neumann substrate: assembler, processors, caches,
coherence, atomics, full/empty bits, multithreading."""

import pytest

from repro.common import CompileError, MachineError, SimulationError
from repro.vonneumann import (
    Cache,
    CacheConfig,
    CacheState,
    Op,
    VNMachine,
    assemble,
    programs,
)


class TestAssembler:
    def test_labels_and_branches(self):
        program = assemble("""
            movi r1, 3
        top:
            subi r1, r1, 1
            bnez r1, top
            halt
        """)
        assert len(program) == 4
        assert program[2].target == 1

    def test_store_operand_order(self):
        (instr,) = assemble("store r5, r2, 8")
        assert instr.op is Op.STORE
        assert instr.rd == 5 and instr.ra == 2 and instr.imm == 8

    def test_comments_and_blank_lines(self):
        program = assemble("""
            ; a comment
            nop     ; trailing comment

            halt
        """)
        assert [i.op for i in program] == [Op.NOP, Op.HALT]

    def test_unknown_mnemonic(self):
        with pytest.raises(CompileError, match="unknown mnemonic"):
            assemble("frobnicate r1")

    def test_undefined_label(self):
        with pytest.raises(CompileError, match="undefined label"):
            assemble("jmp nowhere")

    def test_duplicate_label(self):
        with pytest.raises(CompileError, match="duplicate label"):
            assemble("x: nop\nx: halt")

    def test_operand_count_mismatch(self):
        with pytest.raises(CompileError, match="expects"):
            assemble("add r1, r2")

    def test_bad_register(self):
        with pytest.raises(CompileError, match="expected register"):
            assemble("mov r1, 42")


class TestSingleProcessor:
    def test_array_sum(self):
        machine = VNMachine(1, memory="dancehall", latency=2, memory_time=1)
        for i in range(8):
            machine.poke(100 + i, i * 3)
        machine.add_processor(programs.array_sum(100, 8))
        result = machine.run()
        assert machine.peek(108) == sum(i * 3 for i in range(8))
        assert result.instructions > 8

    def test_alu_coverage(self):
        machine = VNMachine(1, memory="dancehall", latency=1)
        machine.add_processor("""
            movi r2, 7
            movi r3, 3
            add  r4, r2, r3
            sub  r5, r2, r3
            mul  r6, r2, r3
            div  r7, r2, r3
            mod  r8, r2, r3
            and  r9, r2, r3
            or   r10, r2, r3
            xor  r11, r2, r3
            slt  r12, r2, r3
            sle  r13, r3, r3
            seq  r14, r2, r2
            sne  r15, r2, r3
            halt
        """)
        machine.run()
        regs = machine.processors[0].regs
        assert regs[4:16] == [10, 4, 21, 2, 1, 3, 7, 4, 0, 1, 1, 1]

    def test_division_by_zero(self):
        machine = VNMachine(1, memory="dancehall")
        machine.add_processor("""
            movi r2, 1
            movi r3, 0
            div r4, r2, r3
            halt
        """)
        with pytest.raises(MachineError, match="division by zero"):
            machine.run()

    def test_utilization_decays_with_latency(self):
        utils = []
        for latency in (1, 10, 50):
            machine = VNMachine(1, memory="dancehall", latency=latency,
                                memory_time=1)
            machine.add_processor(programs.compute_loop(50, loads_per_iter=1,
                                                        alu_ops_per_iter=4))
            result = machine.run()
            utils.append(result.utilizations[0])
        assert utils[0] > utils[1] > utils[2]
        assert utils[2] < 0.2


class TestAtomics:
    @pytest.mark.parametrize("memory", ["bus", "dancehall"])
    def test_spinlock_mutual_exclusion(self, memory):
        n_procs, increments = 4, 5
        machine = VNMachine(n_procs, memory=memory, memory_time=2, latency=2)
        machine.load_spmd(programs.shared_counter_spinlock(0, 1, increments))
        machine.run()
        assert machine.peek(1) == n_procs * increments

    @pytest.mark.parametrize("memory", ["bus", "dancehall"])
    def test_faa_counter(self, memory):
        n_procs, increments = 4, 6
        machine = VNMachine(n_procs, memory=memory, memory_time=2, latency=2)
        machine.load_spmd(programs.shared_counter_faa(1, increments))
        machine.run()
        assert machine.peek(1) == n_procs * increments

    def test_faa_cheaper_than_spinlock(self):
        def total_time(source):
            machine = VNMachine(8, memory="dancehall", memory_time=2, latency=4)
            machine.load_spmd(source)
            return machine.run().time

        faa = total_time(programs.shared_counter_faa(1, 8))
        lock = total_time(programs.shared_counter_spinlock(0, 1, 8))
        assert faa < lock


class TestFullEmptyBits:
    def test_producer_consumer_correct(self):
        n = 10
        machine = VNMachine(2, memory="dancehall", latency=2, memory_time=1,
                            retry_backoff=4)
        machine.add_processor(programs.producer_per_element(100, n))
        machine.add_processor(programs.consumer_per_element(100, n, 99))
        machine.run()
        assert machine.peek(99) == sum(k * k for k in range(n))

    def test_busy_waiting_generates_retries(self):
        n = 10
        machine = VNMachine(2, memory="dancehall", latency=2, memory_time=1,
                            retry_backoff=4)
        # Slow producer: lots of filler work per element.
        machine.add_processor(programs.producer_per_element(100, n,
                                                            work_per_element=30))
        machine.add_processor(programs.consumer_per_element(100, n, 99,
                                                            work_per_element=0))
        result = machine.run()
        assert result.counters["retries"] > 0
        assert machine.memory.total_retries() == result.counters["retries"]

    def test_whole_array_discipline(self):
        n = 8
        machine = VNMachine(2, memory="dancehall", latency=2, memory_time=1,
                            retry_backoff=4)
        machine.add_processor(programs.producer_whole_array(100, n, 50))
        machine.add_processor(programs.consumer_whole_array(100, n, 50, 99))
        machine.run()
        assert machine.peek(99) == sum(k * k for k in range(n))

    def test_livelocked_consumer_detected_by_event_budget(self):
        machine = VNMachine(1, memory="dancehall", latency=1, retry_backoff=2)
        machine.add_processor("movi r2, 77\nreadf r3, r2, 0\nhalt")
        with pytest.raises(SimulationError, match="budget"):
            machine.run(max_events=5000)


class TestCacheModel:
    def test_fill_and_hit(self):
        cache = Cache(CacheConfig(n_sets=4, assoc=2, line_words=4))
        assert cache.lookup(0) is CacheState.INVALID
        cache.fill(0, CacheState.SHARED)
        assert cache.lookup(0) is CacheState.SHARED
        assert cache.lookup(3) is CacheState.SHARED  # same line
        assert cache.lookup(4) is CacheState.INVALID  # next line

    def test_lru_eviction(self):
        cache = Cache(CacheConfig(n_sets=1, assoc=2, line_words=1))
        cache.fill(0, CacheState.SHARED)
        cache.fill(1, CacheState.SHARED)
        cache.lookup(0)  # touch 0 so 1 is LRU
        cache.fill(2, CacheState.SHARED)
        assert cache.peek_state(0) is CacheState.SHARED
        assert cache.peek_state(1) is CacheState.INVALID
        assert cache.counters["evictions"] == 1

    def test_dirty_eviction_reports_writeback(self):
        cache = Cache(CacheConfig(n_sets=1, assoc=1, line_words=1))
        cache.fill(0, CacheState.MODIFIED)
        victim = cache.fill(1, CacheState.SHARED)
        assert victim is CacheState.MODIFIED
        assert cache.counters["writebacks"] == 1

    def test_invalidate(self):
        cache = Cache(CacheConfig())
        cache.fill(8, CacheState.SHARED)
        assert cache.invalidate(8) is True
        assert cache.invalidate(8) is False
        assert cache.peek_state(8) is CacheState.INVALID


class TestCoherence:
    def _machine(self, n_procs=2, **kwargs):
        defaults = dict(memory="bus", cache_config=CacheConfig(),
                        memory_time=10, bus_time=2)
        defaults.update(kwargs)
        return VNMachine(n_procs, **defaults)

    def test_censier_feautrier_axiom(self):
        """A LOAD returns the latest STORE's value, across processors."""
        machine = self._machine()
        machine.add_processor("""
            movi r2, 40
            movi r3, 123
            store r3, r2, 0
            movi r4, 50
            movi r5, 1
            writef r5, r4, 0   ; signal
            halt
        """)
        machine.add_processor("""
            movi r4, 50
            readf r5, r4, 0    ; wait for the signal
            movi r2, 40
            load r6, r2, 0
            store r6, r2, 1    ; publish what we saw
            halt
        """, regs={})
        machine.run()
        assert machine.peek(41) == 123

    def test_caches_produce_hits_on_reuse(self):
        machine = self._machine(n_procs=1)
        machine.add_processor("""
            movi r2, 16
            load r3, r2, 0
            load r4, r2, 0
            load r5, r2, 0
            halt
        """)
        machine.run()
        assert machine.memory.counters["load_hits"] == 2
        assert machine.memory.counters["bus_read_miss"] == 1

    def test_shared_write_invalidates(self):
        machine = self._machine(n_procs=2, retry_backoff=4)
        machine.add_processor("""
            movi r2, 16
            load r3, r2, 0     ; both caches get the line shared
            movi r4, 7
            store r4, r2, 0    ; upgrade -> invalidate the other copy
            movi r5, 50
            movi r6, 1
            writef r6, r5, 0
            halt
        """)
        machine.add_processor("""
            movi r2, 16
            load r3, r2, 0
            movi r5, 50
            readf r6, r5, 0
            load r7, r2, 0     ; must re-miss: its copy was invalidated
            halt
        """)
        machine.run()
        assert machine.memory.counters["invalidations"] >= 1

    def test_uncached_bus_machine(self):
        machine = VNMachine(2, memory="bus", cache_config=None,
                            memory_time=5, bus_time=1)
        machine.load_spmd(programs.shared_counter_faa(1, 3))
        machine.run()
        assert machine.peek(1) == 6
        assert machine.memory.counters.get("load_hits") == 0


class TestMultithreaded:
    def _latency_machine(self, contexts, latency, iterations=20):
        machine = VNMachine(1, memory="dancehall", latency=latency,
                            memory_time=1)
        source = programs.compute_loop(iterations, loads_per_iter=1,
                                       alu_ops_per_iter=1)
        machine.add_multithreaded_processor(
            [(source, {}) for _ in range(contexts)]
        )
        return machine

    def test_correct_completion(self):
        machine = self._latency_machine(4, latency=10)
        result = machine.run()
        proc = machine.processors[0]
        assert all(c.state == "halted" for c in proc.contexts)
        assert result.instructions > 0

    def test_more_contexts_tolerate_more_latency(self):
        utils = {}
        for contexts in (1, 4, 16):
            machine = self._latency_machine(contexts, latency=20)
            machine.run()
            utils[contexts] = machine.processors[0].utilization()
        assert utils[1] < utils[4] < utils[16]

    def test_context_switch_overhead_counted(self):
        machine = VNMachine(1, memory="dancehall", latency=5, switch_time=1.0)
        source = programs.compute_loop(5)
        machine.add_multithreaded_processor([(source, {}), (source, {})])
        machine.run()
        proc = machine.processors[0]
        assert proc.counters["context_switches"] > 0
        assert proc.switch_cycles > 0


class TestMachineErrors:
    def test_no_processors(self):
        with pytest.raises(MachineError, match="no processors"):
            VNMachine(1).run()

    def test_unknown_memory_kind(self):
        with pytest.raises(MachineError, match="unknown memory"):
            VNMachine(1, memory="drum")
