"""The sweep service: store, scheduler, HTTP server, client, cache CLI."""

import io
import json

import pytest

from repro.serve import (
    ProtocolError,
    ServeClient,
    ServeError,
    ServerThread,
    SqliteStore,
    SweepRequest,
    SweepScheduler,
    open_store,
)
from repro.serve.protocol import key_config, machine_plan, scheduling_plan
from repro.serve.store import default_store_path

WAIT = 120.0  # generous per-sweep ceiling; sweeps finish in seconds


# ---------------------------------------------------------------------------
# the durable store
# ---------------------------------------------------------------------------

class TestStore:
    def test_round_trip_and_hit_counters(self, tmp_path):
        store = SqliteStore(str(tmp_path / "s.sqlite"))
        found, _ = store.get("e1", "k1")
        assert not found
        store.put("e1", "k1", {"x": 1}, "v0", {"y": 2})
        found, value = store.get("e1", "k1")
        assert found and value == {"y": 2}
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["session"]["hits"] == 1
        assert stats["session"]["misses"] == 1
        store.close()

    def test_put_is_idempotent_upsert(self, tmp_path):
        store = SqliteStore(str(tmp_path / "s.sqlite"))
        store.put("e1", "k1", {}, "v0", 1)
        store.put("e1", "k1", {}, "v0", 2)
        assert store.get("e1", "k1") == (True, 2)
        assert store.stats()["entries"] == 1
        store.close()

    def test_prune_and_clear(self, tmp_path):
        store = SqliteStore(str(tmp_path / "s.sqlite"))
        for i in range(4):
            store.put("e1", f"k{i}", {}, "v0", i)
        assert store.prune(older_than_seconds=3600.0) == 0
        assert store.prune(older_than_seconds=0.0) == 4
        store.put("e1", "k9", {}, "v0", 9)
        assert store.clear() == 1
        assert store.stats()["entries"] == 0
        store.close()

    def test_prune_rejects_negative_and_nan_windows(self, tmp_path):
        """A negative (or NaN) window would place the cutoff in the
        future and delete entries written this instant — refused."""
        store = SqliteStore(str(tmp_path / "s.sqlite"))
        store.put("e1", "k1", {}, "v0", 1)
        with pytest.raises(ValueError, match=">= 0"):
            store.prune(older_than_seconds=-1.0)
        with pytest.raises(ValueError, match=">= 0"):
            store.prune(older_than_seconds=float("nan"))
        assert store.stats()["entries"] == 1
        store.close()

    def test_prune_is_clock_skew_safe(self, tmp_path):
        """An entry whose ``created`` stamp lies in the future (the wall
        clock stepped backwards since the write) must never be pruned,
        and its reported age clamps at zero instead of going negative."""
        import time as _time

        store = SqliteStore(str(tmp_path / "s.sqlite"))
        store.put("e1", "k1", {}, "v0", 1)
        with store._lock:
            store._db.execute("UPDATE results SET created = ?",
                              (_time.time() + 3600.0,))
            store._db.commit()
        assert store.prune(older_than_seconds=0.0) == 0
        assert store.prune(older_than_seconds=86400.0) == 0
        assert store.stats()["oldest_age_seconds"] == 0.0
        assert store.get("e1", "k1") == (True, 1)
        store.close()

    def test_open_store_dispatch(self, tmp_path):
        # A .sqlite path (even a fresh one) opens a SqliteStore.
        explicit = open_store(str(tmp_path / "a.sqlite"))
        assert isinstance(explicit, SqliteStore)
        explicit.close()
        # A plain directory gets a store.sqlite inside it.
        inside = open_store(str(tmp_path / "fresh"))
        assert isinstance(inside, SqliteStore)
        assert inside.path.endswith("store.sqlite")
        inside.close()
        # A legacy .expcache layout (subdirs of .json files) opens as
        # the directory cache.
        legacy = tmp_path / "expcache" / "e1"
        legacy.mkdir(parents=True)
        (legacy / "abc.json").write_text('{"value": 1}')
        dir_store = open_store(str(tmp_path / "expcache"))
        assert not isinstance(dir_store, SqliteStore)

    def test_default_store_path_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env.sqlite"))
        assert default_store_path() == str(tmp_path / "env.sqlite")
        monkeypatch.delenv("REPRO_STORE")
        assert ".cache" in default_store_path()

    def test_ingest_legacy_dir_cache(self, tmp_path):
        from repro.exp import ResultCache

        legacy = ResultCache(str(tmp_path / "expcache"))
        legacy.put("e1", "deadbeef", {"x": 1}, "v0", {"y": 7})
        store = SqliteStore(str(tmp_path / "s.sqlite"))
        assert store.ingest_dir(str(tmp_path / "expcache")) == 1
        assert store.get("e1", "deadbeef") == (True, {"y": 7})
        # Re-ingesting never clobbers or duplicates.
        assert store.ingest_dir(str(tmp_path / "expcache")) == 0
        store.close()


# ---------------------------------------------------------------------------
# request validation + fault-plan splitting
# ---------------------------------------------------------------------------

class TestProtocol:
    def test_request_needs_experiment_or_callable(self):
        with pytest.raises(ProtocolError, match="experiment"):
            SweepRequest.from_dict({})

    def test_unknown_fields_rejected(self):
        with pytest.raises(ProtocolError, match="unknown"):
            SweepRequest.from_dict({"experiment": "e07", "bogus": 1})

    def test_callable_needs_grid(self):
        with pytest.raises(ProtocolError, match="grid"):
            SweepRequest.from_dict({"callable": "serve_jobs:square"})

    def test_bad_fault_plan_rejected(self):
        with pytest.raises(ProtocolError, match="fault plan"):
            SweepRequest.from_dict({"experiment": "e07",
                                    "faults": {"no_such_knob": 1.0}})

    def test_predict_flag_parses_and_rejects_non_bool(self):
        request = SweepRequest.from_dict(
            {"experiment": "e07_trapezoid", "predict": True})
        assert request.predict is True
        assert SweepRequest.from_dict(
            {"experiment": "e07_trapezoid"}).predict is False
        with pytest.raises(ProtocolError, match="predict"):
            SweepRequest.from_dict(
                {"experiment": "e07_trapezoid", "predict": 1})

    def test_worker_crash_rate_is_scheduling_only(self):
        faults = {"worker_crash_rate": 0.5, "seed": 3,
                  "mem_slow_rate": 0.01}
        machine = machine_plan(faults)
        chaos = scheduling_plan(faults)
        assert "worker_crash_rate" not in machine
        assert machine["mem_slow_rate"] == 0.01
        assert chaos["worker_crash_rate"] == 0.5
        # Pure chaos (no machine-level fields) leaves the cache key
        # untouched: a chaos run shares store entries with a clean run.
        assert machine_plan({"worker_crash_rate": 0.5}) is None
        assert key_config({"x": 1}, None) == {"x": 1}
        assert key_config({"x": 1}, machine) == {
            "__faults__": machine, "config": {"x": 1}}


# ---------------------------------------------------------------------------
# the scheduler: stragglers, crashes, store hits
# ---------------------------------------------------------------------------

def _request(grid, **extra):
    payload = {"callable": "serve_jobs:square", "grid": grid}
    payload.update(extra)
    return payload


class TestScheduler:
    def test_sweep_executes_and_repeat_hits_store(self, tmp_path):
        grid = [{"x": i} for i in range(5)]
        with SweepScheduler(store=open_store(str(tmp_path)),
                            workers=2) as sched:
            first = sched.submit(_request(grid))
            assert sched.wait(first, timeout=WAIT)
            second = sched.submit(_request(grid))
            assert sched.wait(second, timeout=WAIT)
            s1 = sched.status(first)
            s2 = sched.status(second)
        assert s1["stats"]["executed"] == 5
        assert s2["stats"]["executed"] == 0          # zero new tasks
        assert s2["stats"]["store_hits"] == 5
        assert ([r["value"] for r in s1["records"]]
                == [r["value"] for r in s2["records"]]
                == [{"x": i, "y": i * i} for i in range(5)])

    def test_backup_first_wins_is_byte_identical(self, tmp_path):
        # One cell's original copy straggles (sentinel-file trick); the
        # backup copy returns instantly and must win without changing
        # a byte of the records.
        def run(backup, subdir):
            work = tmp_path / subdir
            work.mkdir()
            grid = [{"x": 0, "dir": str(work), "delay": 3.0},
                    {"x": 1, "dir": str(work), "delay": 0.0},
                    {"x": 2, "dir": str(work), "delay": 0.0},
                    {"x": 3, "dir": str(work), "delay": 0.0}]
            with SweepScheduler(store=None, workers=2,
                                backup_fraction=0.5) as sched:
                sid = sched.submit(
                    {"callable": "serve_jobs:slow_first_copy",
                     "grid": grid, "backup": backup})
                assert sched.wait(sid, timeout=WAIT)
                return sched.status(sid)

        backed = run(True, "a")
        assert backed["stats"]["backups"] >= 1
        # First completion won: the straggling copy (3s) never held up
        # the sweep, whichever copy drew the short straw.
        assert backed["wall_seconds"] < 3.0
        plain = run(False, "b")
        assert plain["stats"]["backups"] == 0
        assert plain["wall_seconds"] >= 3.0  # rode the straggler out

        def canonical(status):
            rows = []
            for row in status["records"]:
                row = dict(row)
                row["config"] = {k: v for k, v in row["config"].items()
                                 if k not in ("dir",)}
                rows.append(row)
            return json.dumps(rows, sort_keys=True)

        assert canonical(backed) == canonical(plain)

    def test_crashed_workers_recovered(self, tmp_path):
        grid = [{"x": i} for i in range(8)]
        chaos = {"worker_crash_rate": 0.5, "seed": 7, "max_retries": 4}
        with SweepScheduler(store=open_store(str(tmp_path)),
                            workers=2) as sched:
            sid = sched.submit(_request(grid, faults=chaos))
            assert sched.wait(sid, timeout=WAIT)
            status = sched.status(sid)
        assert status["state"] == "done"
        assert status["failed"] == 0
        assert status["stats"]["worker_deaths"] >= 1
        assert ([r["value"] for r in status["records"]]
                == [{"x": i, "y": i * i} for i in range(8)])

    def test_crash_rows_identical_to_clean_run(self, tmp_path):
        grid = [{"x": i} for i in range(6)]
        chaos = {"worker_crash_rate": 0.6, "seed": 11, "max_retries": 4}
        with SweepScheduler(store=None, workers=2) as sched:
            sid_clean = sched.submit(_request(grid))
            sched.wait(sid_clean, timeout=WAIT)
            sid_chaos = sched.submit(_request(grid, faults=chaos))
            sched.wait(sid_chaos, timeout=WAIT)
            clean = sched.status(sid_clean)
            chaotic = sched.status(sid_chaos)
        assert chaotic["stats"]["worker_deaths"] >= 1
        assert ([r["value"] for r in clean["records"]]
                == [r["value"] for r in chaotic["records"]])
        # attempts/wall differ under chaos; values cannot.

    def test_cell_timeout_records_phase(self, tmp_path):
        request = {"callable": "serve_jobs:sleep_forever",
                   "grid": [{"sleep": 60.0}],
                   "timeout": 1.0, "retries": 0}
        with SweepScheduler(store=None, workers=1) as sched:
            sid = sched.submit(request)
            assert sched.wait(sid, timeout=WAIT)
            status = sched.status(sid)
        (row,) = status["records"]
        assert row["status"] == "timeout"
        assert row["timeout_phase"] == "run"

    def test_failed_cells_surface_as_rows(self, tmp_path):
        request = {"callable": "serve_jobs:fail_on_three",
                   "grid": [{"x": 1}, {"x": 3}], "retries": 1}
        with SweepScheduler(store=None, workers=2) as sched:
            sid = sched.submit(request)
            assert sched.wait(sid, timeout=WAIT)
            status = sched.status(sid)
            assert sched.table_text(sid) is None
        ok, bad = status["records"]
        assert ok["status"] == "ok"
        assert bad["status"] == "error"
        assert "three is right out" in bad["error"]
        assert bad["attempts"] == 2

    def test_bad_request_fails_fast(self):
        with SweepScheduler(store=None, workers=1) as sched:
            with pytest.raises(ProtocolError, match="unknown experiment"):
                sched.submit({"experiment": "no_such_table"})

    def test_fatal_cell_is_not_retried(self, tmp_path):
        # MemoryError in a pool worker must surface as a structured
        # ``fatal`` row with its traceback, and must never burn retries.
        with SweepScheduler(store=open_store(str(tmp_path)),
                            workers=1) as sched:
            sid = sched.submit(
                {"callable": "serve_jobs:raise_memory_error",
                 "grid": [{"x": 1}], "retries": 3})
            assert sched.wait(sid, timeout=WAIT)
            status = sched.status(sid)
        (record,) = status["records"]
        assert record["status"] == "fatal"
        assert record["attempts"] == 1
        assert "MemoryError" in record["error"]
        assert "pool allocation failure" in record["error"]
        assert "Traceback" in record["error"]
        assert status["stats"]["requeued"] == 0

    def test_predict_mode_answers_sweep_without_workers(self, tmp_path):
        # Opt-in predict mode: every in-region e07 cell is answered by
        # the committed cell surrogate — zero worker executions — and
        # the predicted values never enter the store.
        store = open_store(str(tmp_path))
        with SweepScheduler(store=store, workers=2) as sched:
            sid = sched.submit({"experiment": "e07_trapezoid",
                                "predict": True})
            assert sched.wait(sid, timeout=WAIT)
            status = sched.status(sid)
            stats = store.stats()
        assert status["state"] == "done"
        assert status["stats"]["executed"] == 0
        assert status["stats"]["store_hits"] == 0
        assert status["stats"]["predict_hits"] == len(status["records"])
        assert status["stats"]["predict_hits"] == 6
        assert all(record["status"] == "ok"
                   and record.get("predicted") is True
                   for record in status["records"])
        assert stats["entries"] == 0

    def test_predict_mode_matches_simulation_at_table_precision(
            self, tmp_path):
        # The surrogate-answered sweep must assemble the same table a
        # real simulated sweep does (the artifacts are fitted to round
        # trip the committed grid exactly).
        with SweepScheduler(store=None, workers=2) as sched:
            predicted = sched.submit({"experiment": "e07_trapezoid",
                                      "predict": True})
            simulated = sched.submit({"experiment": "e07_trapezoid"})
            assert sched.wait(predicted, timeout=WAIT)
            assert sched.wait(simulated, timeout=WAIT)
            assert (sched.table_text(predicted)
                    == sched.table_text(simulated))


# ---------------------------------------------------------------------------
# the HTTP server + client (one server for the whole class)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def server(tmp_path_factory):
    store = str(tmp_path_factory.mktemp("serve") / "store.sqlite")
    with ServerThread(store_path=store, workers=2,
                      err=io.StringIO()) as handle:
        yield handle


class TestHttp:
    def test_healthz(self, server):
        health = ServeClient(server.url).health()
        assert health["ok"] is True
        assert health["pool"]["size"] == 2

    def test_unknown_routes_and_sweeps_404(self, server):
        client = ServeClient(server.url)
        with pytest.raises(ServeError) as err:
            client.status("sw9999")
        assert err.value.status == 404
        with pytest.raises(ServeError) as err:
            client._request("GET", "/no/such/route")
        assert err.value.status == 404

    def test_bad_request_is_400(self, server):
        with pytest.raises(ServeError) as err:
            ServeClient(server.url).submit({"bogus": 1})
        assert err.value.status == 400
        assert "unknown" in str(err.value)

    def test_submit_wait_events_table(self, server):
        client = ServeClient(server.url)
        grid = [{"x": i} for i in range(4)]
        submitted = client.submit(_request(grid))
        assert submitted["id"].startswith("sw")
        seen = []
        status = client.wait(submitted["id"], timeout=WAIT,
                             on_event=seen.append)
        assert status["state"] == "done"
        assert status["ok"] == 4
        kinds = {event["kind"] for event in seen}
        assert "sweep_begin" in kinds
        assert "sweep_task" in kinds
        assert "sweep_end" in kinds
        # The event feed paginates: a fresh read from 0 returns
        # everything, a read from the end returns nothing new.
        chunk = client.events(submitted["id"], since=0, timeout=0.0)
        assert chunk["next"] == len(chunk["events"]) > 0
        done = client.events(submitted["id"], since=chunk["next"],
                             timeout=0.0)
        assert done["events"] == []
        assert done["state"] == "done"
        # No assembler on an inline callable sweep -> table is a 409.
        with pytest.raises(ServeError) as err:
            client.table(submitted["id"])
        assert err.value.status == 409

    def test_repeat_submit_all_store_hits(self, server):
        client = ServeClient(server.url)
        grid = [{"x": 100 + i} for i in range(3)]
        first = client.run(_request(grid), timeout=WAIT)
        again = client.run(_request(grid), timeout=WAIT)
        assert first["stats"]["executed"] == 3
        assert again["stats"]["executed"] == 0
        assert again["stats"]["store_hits"] == 3
        assert ([r["value"] for r in first["records"]]
                == [r["value"] for r in again["records"]])

    def test_predict_route_answers_and_refuses(self, server):
        client = ServeClient(server.url)
        described = client.predict_describe()
        assert "ttda" in described["machines"]
        answer = client.predict("ttda", {"workload": "matmul",
                                         "n_pes": 8,
                                         "network_latency": 20})
        assert answer["in_region"] is True
        assert answer["time"] > 0.0
        assert sum(answer["buckets"].values()) == pytest.approx(
            answer["time"])
        with pytest.raises(ServeError) as err:
            client.predict("ttda", {"workload": "matmul", "n_pes": 256})
        assert err.value.status == 409
        out = client.predict("ttda", {"workload": "matmul", "n_pes": 256},
                             extrapolate=True)
        assert out["in_region"] is False

    def test_store_stats_route(self, server):
        stats = ServeClient(server.url).store_stats()
        assert stats["backend"] == "sqlite"
        assert stats["entries"] >= 1

    def test_sweep_listing(self, server):
        sweeps = ServeClient(server.url).sweeps()
        assert len(sweeps) >= 1
        assert all("records" not in sweep for sweep in sweeps)


# ---------------------------------------------------------------------------
# the live telemetry plane: /healthz, /metrics, sweep traces, flight
# recorder, long-poll edge cases
# ---------------------------------------------------------------------------

def _metric(parsed, name, **labels):
    return parsed.get(
        (f"repro_{name}", tuple(sorted(labels.items()))), 0.0)


class TestTelemetry:
    def test_healthz_reports_pool_liveness(self, server):
        health = ServeClient(server.url).health()
        pool = health["pool"]
        assert pool["size"] == 2
        assert pool["alive"] == 2
        assert pool["spawned"] >= pool["alive"]
        assert pool["restarts"] >= 0
        assert health["queue_depth"] == pool["queue_depth"]

    def test_metrics_exposition_parses_and_counters_move(self, server):
        from repro.obs.live import parse_prometheus

        client = ServeClient(server.url)
        before = parse_prometheus(client.metrics())
        grid = [{"x": 200 + i} for i in range(3)]
        client.run(_request(grid, no_store=True), timeout=WAIT)
        after = parse_prometheus(client.metrics())
        assert (_metric(after, "sweeps_submitted_total")
                == _metric(before, "sweeps_submitted_total") + 1)
        assert (_metric(after, "cells_executed_total")
                >= _metric(before, "cells_executed_total") + 3)
        assert _metric(after, "sweeps_completed_total", status="done") >= 1
        assert _metric(after, "workers_alive") == 2
        assert _metric(after, "workers_spawned_total") >= 2
        # Per-worker gauge carries a label per pool slot.
        assert _metric(after, "worker_busy", worker="1") in (0.0, 1.0)
        # The HTTP layer meters itself, including this very route.
        assert _metric(after, "http_requests_total",
                       route="GET /metrics") >= 1
        assert _metric(after, "http_request_seconds_count",
                       route="POST /sweeps") >= 1

    def test_metrics_render_is_deterministic(self, server):
        client = ServeClient(server.url)
        # Strip the only moving self-measurement (this scrape's own
        # latency sample lands between the two reads).
        def stable(text):
            return [line for line in text.splitlines()
                    if "http_request" not in line]

        assert stable(client.metrics()) == stable(client.metrics())

    def test_trace_endpoint_is_valid_chrome_trace(self, server):
        from repro.obs.sinks import validate_chrome_trace

        client = ServeClient(server.url)
        grid = [{"x": 300 + i} for i in range(6)]
        status = client.run(_request(grid, no_store=True), timeout=WAIT)
        payload = client.trace(status["id"])
        validate_chrome_trace(payload)
        slices = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == 6          # one duration slice per cell
        assert {e["tid"] for e in slices} >= {1, 2}  # both workers
        assert all(e["args"]["trace"] == f"tr-{status['id']}"
                   for e in slices)
        assert payload["otherData"]["state"] == "done"
        with pytest.raises(ServeError) as err:
            client.trace("sw9999")
        assert err.value.status == 404

    def test_trace_records_crash_recovery(self):
        from repro.obs.sinks import validate_chrome_trace
        from repro.serve import sweep_trace

        grid = [{"x": i} for i in range(8)]
        chaos = {"worker_crash_rate": 0.5, "seed": 7, "max_retries": 4}
        with SweepScheduler(store=None, workers=2) as sched:
            sid = sched.submit(_request(grid, faults=chaos))
            assert sched.wait(sid, timeout=WAIT)
            status = sched.status(sid)
            payload = sweep_trace(sched, sid)
        assert status["stats"]["worker_deaths"] >= 1
        validate_chrome_trace(payload)
        names = [e["name"] for e in payload["traceEvents"]]
        # A killed attempt closes as a requeue slice and the pool's
        # worker-exit instant lands on the same timeline.
        assert any("requeue:" in name for name in names)
        assert "serve_worker_exit" in names
        assert sweep_trace(sched, "sw9999") is None

    def test_failure_rows_carry_flight_tail(self):
        request = {"callable": "serve_jobs:fail_on_three",
                   "grid": [{"x": 1}, {"x": 3}], "retries": 0}
        with SweepScheduler(store=None, workers=1) as sched:
            sid = sched.submit(request)
            assert sched.wait(sid, timeout=WAIT)
            status = sched.status(sid)
        ok, bad = status["records"]
        assert ok["status"] == "ok"
        assert "flight" not in ok       # payload key is only-when-set
        kinds = [crumb["kind"] for crumb in bad["flight"]]
        assert kinds[0] == "flight_begin"
        assert kinds[-1] == "flight_error"
        assert all(crumb["sweep"] == sid for crumb in bad["flight"])
        assert all(crumb["trace"] == f"tr-{sid}"
                   for crumb in bad["flight"])
        assert all(crumb["index"] == 1 for crumb in bad["flight"])

    def test_longpoll_finished_sweep_returns_immediately(self, server):
        import time

        client = ServeClient(server.url)
        status = client.run(_request([{"x": 400}]), timeout=WAIT)
        t0 = time.monotonic()
        chunk = client.events(status["id"], since=0, timeout=20.0)
        assert time.monotonic() - t0 < 5.0
        assert chunk["state"] == "done"
        assert chunk["events"]

    def test_longpoll_no_new_events_honors_timeout(self, server):
        import time

        client = ServeClient(server.url)
        submitted = client.submit(
            {"callable": "serve_jobs:sleep_forever",
             "grid": [{"sleep": 2.5}], "timeout": 30.0})
        sid = submitted["id"]
        # Drain what exists, then poll at the cursor end while the cell
        # is still sleeping: the poll must ride out its window, not spin.
        chunk = client.events(sid, since=0, timeout=0.0)
        t0 = time.monotonic()
        again = client.events(sid, since=chunk["next"], timeout=1.0)
        elapsed = time.monotonic() - t0
        if again["state"] == "running" and not again["events"]:
            assert 0.8 <= elapsed < 5.0
        client.wait(sid, timeout=WAIT)  # leave the pool idle

    def test_longpoll_cursor_reuse_no_dup_no_drop(self, server):
        client = ServeClient(server.url)
        status = client.run(_request([{"x": 402}, {"x": 403}]),
                            timeout=WAIT)
        full = client.events(status["id"], since=0, timeout=0.0)["events"]
        assert [e["seq"] for e in full] == list(range(len(full)))
        stepped, since = [], 0
        while True:
            chunk = client.events(status["id"], since=since, timeout=0.0)
            if not chunk["events"]:
                break
            stepped.extend(chunk["events"])
            since = chunk["next"]
        assert stepped == full
        # Re-reading an old cursor replays the identical suffix.
        mid = len(full) // 2
        again = client.events(status["id"], since=mid,
                              timeout=0.0)["events"]
        assert again == full[mid:]


# ---------------------------------------------------------------------------
# the cache CLI
# ---------------------------------------------------------------------------

class TestCacheCli:
    def _main(self, *argv):
        from repro.cli import main

        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_stats_prune_clear(self, tmp_path):
        store_path = str(tmp_path / "s.sqlite")
        store = SqliteStore(store_path)
        for i in range(3):
            store.put("e07_trapezoid", f"k{i}", {"x": i}, "v0", i)
        store.close()
        code, text = self._main("cache", "stats", "--store", store_path)
        assert code == 0
        assert "3 entries" in text and "e07_trapezoid" in text
        code, text = self._main("cache", "prune", "--older-than", "2w",
                                "--store", store_path)
        assert code == 0 and "pruned 0" in text
        code, text = self._main("cache", "clear", "--store", store_path)
        assert code == 0 and "cleared 3" in text

    def test_stats_json_shape(self, tmp_path):
        store_path = str(tmp_path / "s.sqlite")
        SqliteStore(store_path).close()
        code, text = self._main("cache", "stats", "--json",
                                "--store", store_path)
        assert code == 0
        stats = json.loads(text)
        assert stats["entries"] == 0 and stats["backend"] == "sqlite"

    def test_ingest_subcommand(self, tmp_path):
        from repro.exp import ResultCache

        legacy = ResultCache(str(tmp_path / "expcache"))
        legacy.put("e1", "cafe", {"x": 1}, "v0", 41)
        store_path = str(tmp_path / "s.sqlite")
        code, text = self._main("cache", "ingest",
                                str(tmp_path / "expcache"),
                                "--store", store_path)
        assert code == 0 and "ingested 1" in text
        store = SqliteStore(store_path)
        assert store.get("e1", "cafe") == (True, 41)
        store.close()

    def test_duration_parsing(self):
        from repro.cli import _parse_duration

        assert _parse_duration("90") == 90.0
        assert _parse_duration("30m") == 1800.0
        assert _parse_duration("12h") == 12 * 3600.0
        assert _parse_duration("7d") == 7 * 86400.0
        assert _parse_duration("2w") == 14 * 86400.0
        with pytest.raises(SystemExit):
            _parse_duration("fortnight")
