"""Tests for the FIFO server, result tables, sweeps and analytic models."""

import pytest

from repro.analysis import (
    Table,
    contexts_needed,
    crossover_point,
    efficiency,
    geometric_range,
    harmonic_mean,
    multithreaded_utilization,
    speedup,
    sweep,
    von_neumann_utilization,
)
from repro.common import Simulator
from repro.common.queueing import FifoServer


class TestFifoServer:
    def test_fifo_order(self):
        sim = Simulator()
        server = FifoServer(sim, service_time=2)
        done = []
        for item in "abc":
            server.submit(item, done.append)
        sim.run()
        assert done == ["a", "b", "c"]
        assert sim.now == 6
        assert server.items_served == 3

    def test_custom_service_time(self):
        sim = Simulator()
        server = FifoServer(sim, service_time=1)
        done = []
        server.submit("big", done.append, service_time=10)
        sim.run()
        assert sim.now == 10

    def test_resubmission_from_completion(self):
        sim = Simulator()
        server = FifoServer(sim, service_time=1)
        done = []

        def chain(item):
            done.append(item)
            if item < 3:
                server.submit(item + 1, chain)

        server.submit(0, chain)
        sim.run()
        assert done == [0, 1, 2, 3]
        assert sim.now == 4

    def test_utilization_and_queue_depth(self):
        sim = Simulator()
        server = FifoServer(sim, service_time=5)
        server.submit("a", lambda _: None)
        server.submit("b", lambda _: None)
        sim.run()
        assert server.utilization.utilization(sim.now) == pytest.approx(1.0)
        assert server.queue_depth.max == 1  # b waited while a served

    def test_idle_server_stays_idle(self):
        sim = Simulator()
        server = FifoServer(sim, service_time=5)
        sim.run()
        assert not server.busy
        assert server.queued == 0


class TestTable:
    def test_alignment_and_title(self):
        table = Table("My results", ["name", "value"])
        table.add_row("alpha", 1.5)
        table.add_row("b", 20000.0)
        text = str(table)
        assert text.splitlines()[0] == "My results"
        assert "alpha" in text and "2e+04" in text

    def test_wrong_cell_count_rejected(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError, match="cells"):
            table.add_row(1)

    def test_bool_and_float_formatting(self):
        table = Table("t", ["x"])
        table.add_row(True)
        table.add_row(0.5)
        table.add_row(0.000123)
        assert table.column("x") == ["yes", "0.5", "0.000123"]

    def test_csv(self):
        table = Table("t", ["a", "b"])
        table.add_row(1, 2)
        assert table.to_csv() == "a,b\n1,2"

    def test_notes_rendered(self):
        table = Table("t", ["a"], notes=["first"])
        table.note("second")
        text = str(table)
        assert "* first" in text and "* second" in text


class TestSweepHelpers:
    def test_sweep(self):
        assert sweep([1, 2, 3], lambda v: v * v) == [(1, 1), (2, 4), (3, 9)]

    def test_geometric_range(self):
        assert geometric_range(1, 16) == [1, 2, 4, 8, 16]
        assert geometric_range(3, 20, factor=3) == [3, 9]

    def test_crossover_point(self):
        a = [(1, 10), (2, 10), (3, 10)]
        b = [(1, 1), (2, 9), (3, 12)]
        assert crossover_point(a, b) == 3

    def test_no_crossover(self):
        a = [(1, 10), (2, 10)]
        b = [(1, 1), (2, 2)]
        assert crossover_point(a, b) is None

    def test_mismatched_x_rejected(self):
        with pytest.raises(ValueError):
            crossover_point([(1, 0)], [(2, 0)])


class TestMetrics:
    def test_von_neumann_law(self):
        assert von_neumann_utilization(4, 4) == pytest.approx(0.5)
        assert von_neumann_utilization(1, 99) == pytest.approx(0.01)

    def test_multithreaded_saturates(self):
        assert multithreaded_utilization(100, 1, 9) == 1.0
        assert multithreaded_utilization(2, 1, 9) == pytest.approx(0.2)

    def test_contexts_needed_grows_linearly(self):
        small = contexts_needed(1, 10)
        large = contexts_needed(1, 100)
        assert large > small
        assert contexts_needed(1, 100) == pytest.approx(
            10 * contexts_needed(1, 10), rel=0.2
        )

    def test_speedup_and_efficiency(self):
        assert speedup(100, 25) == 4.0
        assert efficiency(100, 25, 8) == 0.5

    def test_harmonic_mean(self):
        assert harmonic_mean([1, 1, 1]) == pytest.approx(1.0)
        assert harmonic_mean([2, 6]) == pytest.approx(3.0)
        assert harmonic_mean([]) == 0.0
