"""The causal profiler: cycle accounting, critical path, regression gate.

Covers the PR-3 acceptance criteria: the accounting invariant (buckets
sum to cycles x units for every registered machine on two workloads),
critical-path sanity (bounded by total cycles, at least the busiest
unit's span, byte-identical across runs), the flow-event export, the
``repro profile`` CLI, and the ``repro bench --check`` gate primitives.
"""

import io
import json
import math
import os

import pytest

from repro.cli import main
from repro.dataflow import MachineConfig, TaggedTokenMachine
from repro.lang import compile_source
from repro.machines import registry
from repro.machines.api import SimResult
from repro.obs import RingSink, TraceBus, validate_chrome_trace
from repro.obs.analysis import (
    BUCKETS,
    CausalGraph,
    CycleAccounting,
    build_profile,
    chrome_flow_events,
    compare_entry,
    check_suite,
    compute_slack,
    extract_critical_path,
    make_baseline,
    ttda_accounting,
    unit_account,
    vn_accounting,
    write_baselines,
)
from repro.obs.events import TraceEvent

def _example(name):
    here = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return os.path.join(here, "examples", "programs", name)


def _machine_run(n_pes=4, provenance=True):
    bus = TraceBus(provenance=provenance)
    ring = bus.add_sink(RingSink(limit=None))
    with open(_example("trapezoid.id"), "r", encoding="utf-8") as fh:
        program = compile_source(fh.read(), entry="trapezoid")
    config = MachineConfig(n_pes=n_pes, network_latency=4.0, trace_bus=bus)
    machine = TaggedTokenMachine(program, config)
    result = machine.run(0.0, 1.0, 8, 0.125)
    return machine, result, ring


# ----------------------------------------------------------------------
# Accounting invariant across the registry
# ----------------------------------------------------------------------

# (name, config, workload) — every registered machine, two workloads.
REGISTRY_RUNS = [
    ("ttda", {}, {}),
    ("ttda", {"n_pes": 2}, {"workload": "matmul", "args": (3,)}),
    ("hep", {}, {}),
    ("hep", {"contexts": 4}, {"workload": "producer_consumer", "n": 8}),
    ("cmmp", {"n_procs": 4}, {"iterations": 10}),
    ("cmmp", {"n_procs": 4}, {"workload": "semaphore", "increments": 4}),
    ("cmstar", {}, {"n_refs": 10}),
    ("cmstar", {}, {"remote_fraction": 0.4, "n_refs": 10, "contexts": 2}),
    ("ultracomputer", {"stages": 3}, {}),
    ("ultracomputer", {"stages": 3, "combining": False}, {}),
    ("connection_machine", {"groups_log2": 5}, {"rounds": 4}),
    ("connection_machine", {}, {"workload": "illiac_shifts",
                                "transfers": [(1, 2), (-1, 0)]}),
    ("vliw", {}, {}),
    ("vliw", {"issue_width": 4}, {"actual_latency": 5.0}),
]


@pytest.mark.parametrize(
    "name,config,workload", REGISTRY_RUNS,
    ids=[f"{name}-{i % 2}" for i, (name, _, _) in enumerate(REGISTRY_RUNS)])
def test_accounting_invariant_across_registry(name, config, workload):
    """Buckets sum exactly to cycles x units for every model."""
    result = registry.create(name, **config).run(**workload)
    acct = result.profile()
    assert isinstance(acct, CycleAccounting)
    acct.check()  # raises on violation
    assert acct.exact(), f"{name}: accounting not bit-exact"
    assert acct.n_units >= 1
    totals = acct.totals()
    assert set(totals) == set(BUCKETS)
    assert math.isclose(sum(totals[b] for b in BUCKETS),
                        acct.total_unit_cycles, rel_tol=1e-12, abs_tol=1e-9)
    # The payload round-trips through JSON (sweep engine caching).
    rebuilt = SimResult.from_dict(json.loads(json.dumps(result.as_dict())))
    assert rebuilt.profile().as_dict() == acct.as_dict()


def test_registry_covers_all_seven_machines():
    assert set(registry.names()) == {name for name, _, _ in REGISTRY_RUNS}


def test_profile_hook_raises_without_accounting():
    result = registry.create("ttda", n_pes=0).run()  # interpreter: untimed
    with pytest.raises(ValueError, match="no cycle accounting"):
        result.profile()


def test_unit_account_idle_is_exact_residual():
    account = unit_account("u", 10.0, compute=3.3, memory_stall=1.1,
                           sync_wait=0.7, network_queue=2.2)
    assert account.total() == 10.0  # bit-for-bit, not approximately


def test_accounting_check_rejects_violations():
    bad = CycleAccounting("m", 10.0, [unit_account("u", 10.0, compute=3.0)])
    bad.units[0].buckets["idle"] = 0.0  # break the tiling
    with pytest.raises(ValueError, match="accounting violated"):
        bad.check()
    negative = CycleAccounting("m", 10.0,
                               [unit_account("u", 10.0, compute=-2.0)])
    with pytest.raises(ValueError, match="negative"):
        negative.check()


# ----------------------------------------------------------------------
# Causal graph + critical path
# ----------------------------------------------------------------------

def _event(eid, t, kind="exec", parent=None, joins=None, dur=None, src=0):
    fields = {"eid": eid}
    if parent is not None:
        fields["parent"] = parent
    if joins:
        fields["joins"] = joins
    if dur is not None:
        fields["dur"] = dur
    return TraceEvent(t, src, kind, fields=fields)


def test_causal_graph_structure():
    graph = CausalGraph.from_events([
        _event(1, 0.0),
        _event(2, 2.0, parent=1, dur=2.0),
        _event(3, 1.0, kind="park", parent=1),
        _event(4, 3.0, kind="match", parent=2, joins=[3]),
        TraceEvent(9.0, 0, "noise"),  # no eid -> skipped
    ])
    assert len(graph) == 4
    assert [n.eid for n in graph.roots()] == [1]
    assert sorted(graph.edges()) == [(1, 2), (1, 3), (2, 4), (3, 4)]
    assert graph.node(2).start == 0.0 and graph.node(2).dur == 2.0


def test_terminal_prefers_result_then_caused_events():
    graph = CausalGraph.from_events([
        _event(1, 0.0),
        _event(2, 5.0, parent=1),
        _event(3, 9.0, kind="run_end"),  # later, but parentless
    ])
    assert graph.terminal().eid == 2
    with_result = CausalGraph.from_events([
        _event(1, 0.0),
        _event(2, 5.0, kind="result", parent=1),
        _event(3, 9.0, parent=1),
    ])
    assert with_result.terminal().eid == 2


def test_critical_path_sanity_on_machine_run():
    machine, result, ring = _machine_run()
    graph = CausalGraph.from_events(ring.events)
    path = extract_critical_path(graph)
    # Bounded above by the run, below by the busiest single unit.
    assert 0 < path.cycles <= result.time
    acct = ttda_accounting(machine)
    busiest = max(unit.window - unit.buckets["idle"] for unit in acct.units)
    assert path.cycles >= busiest
    # Times never decrease along the path; edges follow parent links.
    for earlier, later in zip(path.nodes, path.nodes[1:]):
        assert later.time >= earlier.time
        assert earlier.eid in later.parents
    breakdown = path.kind_breakdown()
    assert sum(breakdown.values()) == pytest.approx(path.cycles)


def test_critical_path_deterministic_across_runs():
    _, _, ring_a = _machine_run()
    _, _, ring_b = _machine_run()
    path_a = extract_critical_path(CausalGraph.from_events(ring_a.events))
    path_b = extract_critical_path(CausalGraph.from_events(ring_b.events))
    assert path_a.format() == path_b.format()  # byte-identical
    assert [n.eid for n in path_a.nodes] == [n.eid for n in path_b.nodes]


def test_critical_path_needs_provenance():
    _, _, ring = _machine_run(provenance=False)
    graph = CausalGraph.from_events(ring.events)
    assert len(graph) == 0
    with pytest.raises(ValueError, match="provenance"):
        extract_critical_path(graph)


def test_slack_zero_on_path_nonnegative_off_path():
    _, _, ring = _machine_run()
    graph = CausalGraph.from_events(ring.events)
    path = extract_critical_path(graph)
    slack = compute_slack(graph)
    assert all(value >= 0 for value in slack.values())
    assert slack[path.nodes[-1].eid] == 0


def test_chrome_flow_events_validate():
    _, _, ring = _machine_run()
    path = extract_critical_path(CausalGraph.from_events(ring.events))
    tids = {}
    records = chrome_flow_events(
        path, lambda src: tids.setdefault(src, len(tids) + 1))
    assert len(records) == len(path.nodes)
    assert records[0]["ph"] == "s" and records[-1]["ph"] == "f"
    assert all(r["ph"] == "t" for r in records[1:-1])
    assert len({r["id"] for r in records}) == 1
    assert records[-1]["bp"] == "e"
    payload = {"traceEvents": records}
    assert validate_chrome_trace(payload)


def test_build_profile_report_sections():
    machine, result, ring = _machine_run()
    report = build_profile(ring.events, ttda_accounting(machine),
                           meta={"source": "trapezoid", "engine": "machine",
                                 "result": result.value,
                                 "time_cycles": result.time})
    text = report.format()
    assert "cycle accounting" in text
    assert "[exact]" in text
    assert "Issue 1" in text and "Issue 2" in text
    assert "critical path:" in text
    payload = report.as_dict()
    assert payload["critical_path"]["cycles"] <= result.time
    assert payload["slack"]["events"] > 0


# ----------------------------------------------------------------------
# VN accounting details
# ----------------------------------------------------------------------

def test_vn_accounting_splits_issue1_from_issue2():
    # producer/consumer on full/empty memory busy-waits -> sync_wait;
    # the compute_loop never retries -> memory_stall only.
    retrying = registry.create("hep", contexts=2).run(
        workload="producer_consumer", n=8).profile()
    assert retrying.totals()["sync_wait"] > 0
    plain = registry.create("cmmp", n_procs=4).run(iterations=10).profile()
    assert plain.totals()["memory_stall"] > 0
    assert plain.totals()["sync_wait"] == 0


def test_run_sequential_return_machine():
    from repro.vonneumann import run_sequential

    source = "def f(n) = n * n + 1;"
    value, result, machine = run_sequential(source, (5,),
                                            return_machine=True)
    assert value == 26
    acct = vn_accounting(machine, result)
    acct.check()
    assert acct.exact()
    # Back-compat: the historical 2-tuple shape still stands.
    assert run_sequential(source, (5,))[0] == 26


# ----------------------------------------------------------------------
# Regression gate
# ----------------------------------------------------------------------

def _entry(rows, columns=("n", "cycles", "wall_seconds")):
    return {"experiment": "exp", "columns": list(columns),
            "data": [dict(zip(columns, row)) for row in rows]}


def test_compare_entry_clean_and_tolerant():
    entry = _entry([(1, 100.0, 0.5), (2, 200.0, 0.9)])
    baseline = make_baseline(entry)
    assert baseline["rows"] == [[1, 100.0, 0.5], [2, 200.0, 0.9]]
    assert compare_entry(entry, baseline) == []
    # wall columns are host noise: ignored entirely.
    noisy = _entry([(1, 100.0, 9.9), (2, 200.0, 0.1)])
    assert compare_entry(noisy, baseline) == []
    # within tolerance passes, beyond fails.
    near = _entry([(1, 100.0 * (1 + 1e-12), 0.5), (2, 200.0, 0.9)])
    assert compare_entry(near, baseline) == []
    far = _entry([(1, 101.0, 0.5), (2, 200.0, 0.9)])
    diffs = compare_entry(far, baseline)
    assert len(diffs) == 1 and diffs[0]["kind"] == "cell"
    assert diffs[0]["column"] == "cycles" and diffs[0]["row"] == 0


def test_compare_entry_structural_diffs():
    entry = _entry([(1, 100.0, 0.5)])
    baseline = make_baseline(entry)
    fewer = _entry([])
    assert compare_entry(fewer, baseline)[0]["kind"] == "rows"
    renamed = _entry([(1, 100.0, 0.5)], columns=("n", "time", "wall_seconds"))
    assert compare_entry(renamed, baseline)[0]["kind"] == "columns"


def test_compare_entry_nan_and_strings():
    entry = _entry([(1, float("nan"), 0.5)])
    baseline = make_baseline(entry)
    assert compare_entry(entry, baseline) == []  # nan == nan for the gate
    strings = _entry([("a", "ok", 0.1)])
    assert compare_entry(strings, make_baseline(strings)) == []
    changed = _entry([("a", "bad", 0.1)])
    assert compare_entry(changed, make_baseline(strings))


def test_compare_entry_nan_vs_number_is_drift():
    baseline = make_baseline(_entry([(1, 100.0, 0.5)]))
    nan_now = _entry([(1, float("nan"), 0.5)])
    diffs = compare_entry(nan_now, baseline)
    assert len(diffs) == 1 and diffs[0]["kind"] == "cell"
    # ...and the mirror image: a number where the baseline recorded NaN.
    nan_base = make_baseline(_entry([(1, float("nan"), 0.5)]))
    diffs = compare_entry(_entry([(1, 100.0, 0.5)]), nan_base)
    assert len(diffs) == 1 and diffs[0]["kind"] == "cell"


def test_compare_entry_infinities():
    # Same-sign infinities agree (inf - inf is NaN; the tolerance
    # arithmetic must never see it)...
    inf = _entry([(1, float("inf"), 0.5)])
    assert compare_entry(inf, make_baseline(inf)) == []
    neg = _entry([(1, float("-inf"), 0.5)])
    assert compare_entry(neg, make_baseline(neg)) == []
    # ...opposite signs and inf-vs-finite are drift.
    assert compare_entry(neg, make_baseline(inf))
    assert compare_entry(_entry([(1, 100.0, 0.5)]), make_baseline(inf))
    assert compare_entry(inf, make_baseline(_entry([(1, 100.0, 0.5)])))


def test_check_suite_roundtrip(tmp_path):
    entry = _entry([(1, 100.0, 0.5)])
    write_baselines([entry], str(tmp_path))
    result = check_suite([entry], str(tmp_path))
    assert result["ok"] and result["checked"] == ["exp"]
    other = dict(entry, experiment="unseen")
    missing = check_suite([other], str(tmp_path))
    assert missing["ok"] and missing["missing"] == ["unseen"]
    bad = _entry([(1, 150.0, 0.5)])
    failed = check_suite([bad], str(tmp_path))
    assert not failed["ok"] and failed["diffs"]


def test_committed_e07_baseline_exists():
    here = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    path = os.path.join(here, "benchmarks", "baselines",
                        "e07_trapezoid.json")
    payload = json.load(open(path))
    assert payload["experiment"] == "e07_trapezoid"
    assert payload["rows"] and payload["columns"]
    assert "tolerances" in payload


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def _cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_cli_profile_machine_deterministic():
    trapezoid = _example("trapezoid.id")
    code_a, text_a = _cli("profile", trapezoid, "--engine", "machine")
    code_b, text_b = _cli("profile", trapezoid, "--engine", "machine")
    assert code_a == code_b == 0
    assert text_a == text_b  # acceptance: byte-identical reports
    assert "[exact]" in text_a
    assert "critical path:" in text_a


def test_cli_profile_json_invariant():
    code, text = _cli("profile", _example("trapezoid.id"), "--json")
    assert code == 0
    payload = json.loads(text)
    acct = CycleAccounting.from_dict(payload["accounting"])
    assert acct.exact()
    assert sum(payload["totals"].values()) == acct.total_unit_cycles
    assert payload["critical_path"]["cycles"] <= payload["meta"]["time_cycles"]


def test_cli_profile_vn_engine():
    code, text = _cli("profile", _example("trapezoid.id"), "--engine", "vn")
    assert code == 0
    assert "[exact]" in text
    assert "vn_exec" in text  # the path runs through the processor


def test_cli_profile_flow_export(tmp_path):
    flow = str(tmp_path / "flow.json")
    out_json = str(tmp_path / "profile.json")
    code, text = _cli("profile", _example("trapezoid.id"),
                      "--flow", flow, "--out", out_json)
    assert code == 0
    payload = json.load(open(flow))
    events = validate_chrome_trace(payload)
    flows = [e for e in events if e["ph"] in ("s", "t", "f")]
    assert flows and flows[0]["ph"] == "s" and flows[-1]["ph"] == "f"
    report = json.load(open(out_json))
    assert report["critical_path"]["events"] == len(flows)


def test_cli_machine_json_carries_accounting():
    code, text = _cli("machine", "hep", "--set", "contexts=4", "--json")
    assert code == 0
    payload = json.loads(text)
    assert "accounting" in payload
    acct = CycleAccounting.from_dict(payload["accounting"])
    acct.check()
    code, text = _cli("machine", "hep", "--set", "contexts=4")
    assert code == 0
    assert "accounting:" in text  # human rendering shows the buckets
