"""PE internals: classification, matching hazards, structure homing,
controller allocation, and machine configuration edge cases."""

import pytest

from repro.common import MachineError
from repro.dataflow import (
    MachineConfig,
    TaggedTokenMachine,
    Tag,
    Token,
    TokenKind,
)
from repro.dataflow.pe import AllocRequest
from repro.graph import Opcode, ProgramBuilder
from repro.istructure import ReadRequest, WriteRequest
from repro.network import IdealNetwork
from repro.workloads.handbuilt import build_arith_diamond


def diamond_machine(n_pes=2, **config_kwargs):
    return TaggedTokenMachine(
        build_arith_diamond(), MachineConfig(n_pes=n_pes, **config_kwargs)
    )


class TestTokenClassification:
    def test_needs_partner_only_for_multi_operand_normals(self):
        tag = Tag(None, "diamond", 0, 1)
        assert Token(tag, 0, 1, TokenKind.NORMAL, nt=2).needs_partner
        assert not Token(tag, 0, 1, TokenKind.NORMAL, nt=1).needs_partner
        assert not Token(tag, 0, 1, TokenKind.STRUCTURE, nt=2).needs_partner

    def test_routed_to_preserves_fields(self):
        tag = Tag(None, "diamond", 0, 1)
        token = Token(tag, 1, "v", TokenKind.NORMAL, nt=2)
        routed = token.routed_to(3)
        assert routed.pe == 3
        assert (routed.tag, routed.port, routed.data, routed.nt) == (
            tag, 1, "v", 2
        )

    def test_unknown_control_request_raises(self):
        machine = diamond_machine()
        pe = machine.pes[0]
        with pytest.raises(MachineError, match="unknown control request"):
            pe._control("garbage")


class TestMatchingHazards:
    def test_duplicate_token_detected(self):
        machine = diamond_machine(n_pes=1)
        pe = machine.pes[0]
        tag = Tag(None, "diamond", 0, 1)
        token = Token(tag, 0, 1, TokenKind.NORMAL, nt=2, pe=0)
        pe.receive(token)
        pe.receive(token)
        with pytest.raises(MachineError, match="duplicate token"):
            machine.sim.run()

    def test_occupancy_tracks_parked_tokens(self):
        machine = diamond_machine(n_pes=1)
        pe = machine.pes[0]
        tag = Tag(None, "diamond", 2, 1)  # MUL needs two operands
        pe.receive(Token(tag, 0, 1, TokenKind.NORMAL, nt=2, pe=0))
        machine.sim.run()
        assert pe._waiting_tokens() == 1
        assert pe.counters["tokens_parked"] == 1
        pe.receive(Token(tag, 1, 2, TokenKind.NORMAL, nt=2, pe=0))
        machine.sim.run()
        assert pe.counters["matches"] == 1
        # MUL fired and its result now parks at RETURN awaiting the
        # continuation (which this hand-driven test never injected).
        assert pe._waiting_tokens() == 1


class TestStructureHoming:
    def test_structure_requests_carry_home_pe(self):
        machine = diamond_machine(n_pes=4)
        pe = machine.pes[0]
        tag = Tag(None, "diamond", 0, 1)
        ref = machine.allocate_structure(8, on_pe=0)
        from repro.dataflow.exec_core import StructureRead

        effect = StructureRead(ref, 5, replies=((tag, 0),))
        pe._emit(effect, tag)
        machine.sim.run()
        # The d=1 token went to interleave_home(ref, 5, 4).
        from repro.istructure import interleave_home

        home = interleave_home(ref, 5, 4)
        total_pending = sum(p.istructure.pending_reads for p in machine.pes)
        assert total_pending == 1
        assert machine.pes[home].istructure.pending_reads == 1

    def test_controller_allocation_delivers_ref(self):
        machine = diamond_machine(n_pes=2)
        pe = machine.pes[1]
        # Ask the PE controller to allocate and reply into MUL port 0.
        reply_tag = Tag(None, "diamond", 2, 1)
        request = AllocRequest(size=6, replies=((reply_tag, 0),))
        pe.receive(Token(reply_tag, 0, request, TokenKind.CONTROL, pe=1))
        machine.sim.run()
        assert machine.counters["structures_allocated"] == 1
        # The StructureRef landed in some PE's matching store (MUL nt=2).
        parked = sum(p._waiting_tokens() for p in machine.pes)
        assert parked == 1


class TestMachineConfigEdges:
    def test_zero_pes_rejected(self):
        with pytest.raises(MachineError, match="at least one PE"):
            TaggedTokenMachine(build_arith_diamond(), MachineConfig(n_pes=0))

    def test_network_smaller_than_machine_rejected(self):
        config = MachineConfig(
            n_pes=4, network_factory=lambda sim, n: IdealNetwork(sim, 2)
        )
        with pytest.raises(MachineError, match="ports"):
            TaggedTokenMachine(build_arith_diamond(), config)

    def test_entry_arity_checked(self):
        machine = diamond_machine()
        with pytest.raises(MachineError, match="takes 2"):
            machine.run(1)

    def test_local_loopback_disable_routes_everything(self):
        on = diamond_machine(n_pes=1, local_loopback=True).run(3, 2)
        off_machine = diamond_machine(n_pes=1, local_loopback=False)
        off = off_machine.run(3, 2)
        assert on.value == off.value == 5
        assert on.counters.get("tokens_network", 0) == 0
        assert off.counters.get("tokens_local", 0) == 0
        assert off.counters["tokens_network"] > 0

    def test_result_only_once(self):
        machine = diamond_machine()
        machine.run(1, 1)
        with pytest.raises(MachineError, match="more than once"):
            machine._program_result(99)


class TestSinglePEStillWorks:
    def test_all_units_on_one_pe(self):
        pb = ProgramBuilder()
        b = pb.procedure("f")
        alloc = b.emit(Opcode.I_ALLOC)
        store = b.emit(Opcode.I_STORE, constant=0, constant_port=1)
        fetch = b.emit(Opcode.I_FETCH, constant=0, constant_port=1)
        ret = b.emit(Opcode.RETURN)
        b.wire(alloc, store, 0)
        b.wire(alloc, fetch, 0)
        b.wire(fetch, ret, 0)
        b.param((alloc, 0))
        b.param((store, 2))
        machine = TaggedTokenMachine(pb.build(), MachineConfig(n_pes=1))
        assert machine.run(1, "payload").value == "payload"
