"""Unit tests for I-structure storage: presence bits and deferred reads."""

import pytest

from repro.common import IStructureError
from repro.istructure import (
    Allocator,
    DEFERRED,
    IStructureModule,
    Presence,
    StructureRef,
    interleave_home,
)


class TestModule:
    def test_read_after_write_is_immediate(self):
        m = IStructureModule()
        assert m.write(("a", 0), 42) == []
        assert m.read(("a", 0), reply="r1") == 42
        assert m.counters["reads_immediate"] == 1

    def test_read_before_write_is_deferred_then_satisfied(self):
        m = IStructureModule()
        assert m.read(("a", 0), reply="r1") is DEFERRED
        assert m.presence(("a", 0)) is Presence.WAITING
        drained = m.write(("a", 0), 7)
        assert drained == ["r1"]
        assert m.presence(("a", 0)) is Presence.PRESENT

    def test_multiple_deferred_readers_all_satisfied_in_order(self):
        m = IStructureModule()
        for i in range(5):
            assert m.read(("a", 3), reply=f"r{i}") is DEFERRED
        drained = m.write(("a", 3), "v")
        assert drained == [f"r{i}" for i in range(5)]
        assert m.pending_reads() == 0

    def test_double_write_raises(self):
        m = IStructureModule()
        m.write(("a", 0), 1)
        with pytest.raises(IStructureError, match="second write"):
            m.write(("a", 0), 2)

    def test_untouched_cell_is_empty(self):
        m = IStructureModule()
        assert m.presence(("zzz", 9)) is Presence.EMPTY

    def test_value_of_unwritten_cell_raises(self):
        m = IStructureModule()
        with pytest.raises(IStructureError):
            m.value(("a", 0))

    def test_pending_cells_reports_waiting_keys(self):
        m = IStructureModule()
        m.read(("a", 1), reply="r")
        m.write(("b", 0), 5)
        assert m.pending_cells() == [("a", 1)]

    def test_deferred_list_length_histogram(self):
        m = IStructureModule()
        m.read(("a", 0), "r1")
        m.read(("a", 0), "r2")
        m.write(("a", 0), 1)
        m.write(("a", 1), 2)
        assert m.deferred_list_lengths.count == 2
        assert m.deferred_list_lengths.max == 2
        assert m.deferred_list_lengths.min == 0


class TestAllocator:
    def test_unique_ids_and_accounting(self):
        a = Allocator()
        r1 = a.allocate(10)
        r2 = a.allocate(20)
        assert r1.sid != r2.sid
        assert a.allocated == 2
        assert a.cells_allocated == 30

    def test_invalid_size_rejected(self):
        a = Allocator()
        with pytest.raises(IStructureError):
            a.allocate(-1)
        with pytest.raises(IStructureError):
            a.allocate(2.5)
        with pytest.raises(IStructureError):
            a.allocate(True)

    def test_zero_size_allowed(self):
        ref = Allocator().allocate(0)
        assert ref.size == 0


class TestStructureRef:
    def test_bounds_check(self):
        ref = StructureRef(sid=1, size=4)
        assert ref.check_index(0) == 0
        assert ref.check_index(3) == 3
        with pytest.raises(IStructureError):
            ref.check_index(4)
        with pytest.raises(IStructureError):
            ref.check_index(-1)
        with pytest.raises(IStructureError):
            ref.check_index(1.5)
        with pytest.raises(IStructureError):
            ref.check_index(True)


class TestInterleaving:
    def test_consecutive_elements_hit_distinct_modules(self):
        ref = StructureRef(sid=5, size=16)
        homes = [interleave_home(ref, i, 4) for i in range(8)]
        assert homes == [1, 2, 3, 0, 1, 2, 3, 0]

    def test_all_modules_in_range(self):
        ref = StructureRef(sid=123, size=100)
        for i in range(100):
            assert 0 <= interleave_home(ref, i, 7) < 7
