"""Batch execution mode (``exec_mode="batch"``): the SoA batch drain.

Covers the PR-9 acceptance criteria: per-call ``resolve_exec_mode``
resolution, byte-identical result tables event-vs-batch for every
registered machine (with and without a fault plan), the cycle-accounting
invariant under batch mode, flush ordering (cancel-during-flush, budget
exhaustion mid-flush leaves a resumable tail), the kernel_stats surface,
and the SoA kernels' own edge paths (in-array pair matching, the
full/empty bit plane).
"""

import io
import json
import math

import pytest

from repro.cli import main
from repro.common.batch import BatchPlane, EXEC_MODES, FusedKind, resolve_exec_mode
from repro.common.errors import SimulationError
from repro.common.simulator import CalendarSimulator, Simulator
from repro.common.stats import Counter, TimeWeighted
from repro.common.queueing import FifoServer
from repro.machines import registry
from repro.vonneumann.memory import FullBitPlane


# ----------------------------------------------------------------------
# resolve_exec_mode
# ----------------------------------------------------------------------

class TestResolveExecMode:
    def test_default_is_event(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXEC_MODE", raising=False)
        assert resolve_exec_mode() == "event"

    def test_env_is_read_per_call(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_MODE", "batch")
        assert resolve_exec_mode() == "batch"
        monkeypatch.setenv("REPRO_EXEC_MODE", "event")
        assert resolve_exec_mode() == "event"

    def test_explicit_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_MODE", "batch")
        assert resolve_exec_mode("event") == "event"

    def test_case_insensitive(self):
        assert resolve_exec_mode("BATCH") == "batch"

    def test_unknown_mode_raises(self):
        with pytest.raises(SimulationError, match="unknown exec mode"):
            resolve_exec_mode("vectorized")

    def test_unknown_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_MODE", "soa")
        with pytest.raises(SimulationError, match="unknown exec mode"):
            resolve_exec_mode()

    def test_known_modes(self):
        assert EXEC_MODES == ("event", "batch")


# ----------------------------------------------------------------------
# Byte identity: batch mode must change nothing in any result table
# ----------------------------------------------------------------------

# (name, config, workload) — every registered machine, small instances.
REGISTRY_RUNS = [
    ("ttda", {"n_pes": 4}, {"workload": "matmul", "args": (3,)}),
    ("ttda", {"n_pes": 8}, {"workload": "fib", "args": (8,)}),
    ("hep", {"contexts": 4}, {}),
    ("cmmp", {"n_procs": 4}, {"iterations": 8}),
    ("cmstar", {}, {"n_refs": 8}),
    ("ultracomputer", {"stages": 3}, {}),
    ("connection_machine", {"groups_log2": 5}, {"rounds": 2}),
    ("vliw", {}, {}),
]

FAULTS = {"seed": 11, "mem_slow_rate": 0.2, "mem_slow_cycles": 8,
          "mem_fail_rate": 0.05}


def _run_pair(name, config, workload):
    """(event result dict, batch result dict), exec_mode echo stripped."""
    event = registry.create(name, **config).run(**workload).as_dict()
    batch_result = registry.create(
        name, exec_mode="batch", **config).run(**workload)
    batch = batch_result.as_dict()
    # The config echo records exec_mode only when set (cache keys and
    # baselines stay byte-stable); strip it for the comparison.
    assert batch["config"].pop("exec_mode") == "batch"
    event["config"].pop("exec_mode", None)
    return event, batch, batch_result


@pytest.mark.parametrize(
    "name,config,workload", REGISTRY_RUNS,
    ids=[f"{name}-{i}" for i, (name, _, _) in enumerate(REGISTRY_RUNS)])
def test_byte_identical_tables(name, config, workload):
    event, batch, _ = _run_pair(name, config, workload)
    assert event == batch


@pytest.mark.parametrize("name,config,workload", [
    ("ttda", {"n_pes": 4, "faults": FAULTS},
     {"workload": "matmul", "args": (3,)}),
    ("cmmp", {"n_procs": 4, "faults": FAULTS}, {"iterations": 8}),
], ids=["ttda-faults", "cmmp-faults"])
def test_byte_identical_with_fault_plan(name, config, workload):
    """Fault injection needs per-event interposition, so batch mode runs
    the reference path — and must still be byte-identical."""
    event, batch, batch_result = _run_pair(name, config, workload)
    assert event == batch
    stats = batch_result.kernel_stats
    # The plane stays attached (honest mode reporting) but no kinds are
    # registered, so nothing batches.
    assert stats["exec_mode"] == "batch"
    assert stats["batched_ops"] == 0


def test_batch_mode_actually_batches():
    """On a plain TTDA run the SoA kernels really engage (the identity
    tests above would pass vacuously if nothing ever batched)."""
    result = registry.create("ttda", n_pes=8, exec_mode="batch").run(
        workload="matmul", args=(4,))
    stats = result.kernel_stats
    assert stats["exec_mode"] == "batch"
    assert stats["batched_ops"] > 0
    assert stats["batch_flushes"] > 0
    assert stats["max_batch_width"] >= 8


# ----------------------------------------------------------------------
# Accounting invariant holds under batch mode
# ----------------------------------------------------------------------

@pytest.mark.parametrize("name,config,workload", [
    ("ttda", {"n_pes": 4}, {"workload": "matmul", "args": (3,)}),
    ("cmmp", {"n_procs": 4}, {"iterations": 8}),
], ids=["ttda", "cmmp"])
def test_accounting_invariant_in_batch_mode(name, config, workload):
    result = registry.create(name, exec_mode="batch", **config).run(**workload)
    acct = result.profile()
    acct.check()  # raises on violation
    assert acct.exact()
    totals = acct.totals()
    assert math.isclose(sum(totals.values()), acct.total_unit_cycles,
                        rel_tol=1e-12, abs_tol=1e-9)


# ----------------------------------------------------------------------
# Flush ordering: cancellation and budget exhaustion during a flush
# ----------------------------------------------------------------------

class _Worker:
    """A fused-batchable callback target with an execution log."""

    def __init__(self):
        self.log = []
        self.on_hit = None

    def hit(self, i):
        self.log.append(i)
        if self.on_hit is not None:
            self.on_hit(i)


def _batched_sim():
    sim = Simulator()
    assert isinstance(sim, CalendarSimulator)
    plane = sim.attach_batch_plane(BatchPlane())
    worker = _Worker()
    plane.register(worker.hit, FusedKind())
    return sim, plane, worker


def test_cancel_during_flush():
    """A batched handler cancels an Event sitting later in the same
    bucket; the scan keeps Events scalar, so the cancel is honored."""
    sim, plane, worker = _batched_sim()
    boom = []
    for i in range(10):
        sim.post(1, worker.hit, i)
    decoy = sim.schedule(1, boom.append, "fired")
    worker.on_hit = lambda i: decoy.cancel() if i == 3 else None
    sim.run()
    assert worker.log == list(range(10))
    assert boom == []  # cancelled mid-flush, before the drain reached it
    assert plane.batched_ops == 10
    assert plane.max_batch_width == 10


def test_budget_exhaustion_mid_flush_leaves_resumable_tail():
    """The scan bounds every run by the remaining event budget, so
    exhaustion raises at the same entry as the event path and the
    unfired tail survives for a later run()."""
    sim, plane, worker = _batched_sim()
    for i in range(16):
        sim.post(1, worker.hit, i)
    with pytest.raises(SimulationError, match="event budget exhausted"):
        sim.run(max_events=12)
    assert worker.log == list(range(12))
    sim.run()
    assert worker.log == list(range(16))  # each entry fired exactly once
    assert sim.events_fired == 16


def test_batch_order_matches_event_order():
    """Interleaved batchable and scalar entries fire in posting order."""
    def scalar(tag, log=None):
        log.append(tag)

    sim, plane, worker = _batched_sim()
    order = []
    worker.on_hit = order.append
    expected = []
    for i in range(30):
        if i % 5 == 4:
            sim.post(1, scalar, ("s", i), order)
            expected.append(("s", i))
        else:
            sim.post(1, worker.hit, i)
            expected.append(i)
    sim.run()
    assert order == expected


# ----------------------------------------------------------------------
# kernel_stats surfacing
# ----------------------------------------------------------------------

def test_event_mode_reports_exec_mode():
    result = registry.create("ttda", n_pes=2).run(
        workload="matmul", args=(3,))
    assert result.kernel_stats["exec_mode"] == "event"


def test_kernel_stats_not_in_payload():
    """Telemetry rides the SimResult, never the cacheable payload."""
    result = registry.create("ttda", n_pes=2, exec_mode="batch").run(
        workload="matmul", args=(3,))
    payload = result.as_dict()
    assert "kernel_stats" not in payload
    assert "exec_mode" not in json.dumps(payload["metrics"])


def test_machine_cli_exec_batch_json():
    out = io.StringIO()
    code = main(["machine", "ttda", "--set", "n_pes=4", "--exec", "batch",
                 "--workload", "workload=matmul", "--json"], out=out)
    assert code == 0
    payload = json.loads(out.getvalue())
    stats = payload["kernel_stats"]
    assert stats["exec_mode"] == "batch"
    assert stats["batched_ops"] > 0
    assert payload["config"]["exec_mode"] == "batch"


def test_unknown_exec_mode_rejected_at_construction():
    with pytest.raises(SimulationError, match="unknown exec mode"):
        registry.create("ttda", n_pes=2, exec_mode="simd")


# ----------------------------------------------------------------------
# FullBitPlane: the dense full/empty bit plane
# ----------------------------------------------------------------------

class TestFullBitPlane:
    def test_set_compatible(self):
        plane = FullBitPlane()
        assert 5 not in plane
        plane.add(5)
        assert 5 in plane
        assert 6 not in plane
        assert len(plane) == 1
        assert list(plane) == [5]

    def test_grows_past_initial_capacity(self):
        plane = FullBitPlane(capacity=8)
        plane.add(4096)
        assert 4096 in plane
        assert 4095 not in plane

    def test_odd_addresses_spill(self):
        plane = FullBitPlane()
        plane.add(-3)
        plane.add("symbolic")
        plane.add(FullBitPlane.DENSE_LIMIT + 7)
        assert -3 in plane
        assert "symbolic" in plane
        assert FullBitPlane.DENSE_LIMIT + 7 in plane
        assert len(plane) == 3
        assert set(plane) == {-3, "symbolic", FullBitPlane.DENSE_LIMIT + 7}


# ----------------------------------------------------------------------
# The in-array pair path of the waiting-matching kernel
# ----------------------------------------------------------------------

class _FakePE:
    """The slice of ProcessingElement the WM replay touches."""

    def __init__(self, pe):
        self.pe = pe
        self.counters = Counter()
        self._waiting = 2
        self.match_occupancy = TimeWeighted()
        self._match_causes = {}
        self._match_store = {}
        self.fetched = []
        self.fetch = self
        self.scalar = []

    # stands in for pe.fetch.submit
    def submit(self, work, on_done):
        self.fetched.append(work)

    def _fetched(self, work):  # pragma: no cover - never driven here
        raise AssertionError

    def _match(self, token):
        self.scalar.append(token)


def test_in_array_pair_match():
    """Two same-tag dyadic tokens completing in one run match entirely
    in-array: the associative store is never touched, and the enabled
    instruction goes straight to fetch.  (Real machines serialize
    same-tag probes on one server, so this path needs a harness that
    drives several waiting-matching stores in one instant.)"""
    from repro.dataflow.pe import WaitingMatchKind
    from repro.dataflow.tags import intern_tag, reset_intern_table
    from repro.dataflow.token import Token, TokenKind

    sim = Simulator()
    reset_intern_table()
    tag = intern_tag(None, "pairs", 0, 1)
    lone = intern_tag(None, "pairs", 0, 2)
    pe = _FakePE(3)
    servers = [FifoServer(sim, 1.0, name=f"wm{i}") for i in range(3)]
    tokens = [
        Token(tag, 0, 10, TokenKind.NORMAL, nt=2),
        Token(tag, 1, 20, TokenKind.NORMAL, nt=2),
        Token(lone, 0, 30, TokenKind.NORMAL, nt=2),
    ]
    for server, token in zip(servers, tokens):
        server.submit(token, pe._match)
    bucket = sim._buckets[1.0]
    assert len(bucket) == 3

    class _M:
        pass

    machine = _M()
    machine.sim = sim
    kind = WaitingMatchKind(machine)
    kind.apply_run(bucket, 0, 3)

    # The pair matched in-array: one park + one match, store untouched,
    # the enabled instruction submitted to fetch with both operands.
    assert pe.counters["tokens_parked"] == 1
    assert pe.counters["matches"] == 1
    assert pe._match_store == {}
    assert pe.fetched == [(tag, {0: 10, 1: 20}, None)]
    # The single token replayed through the scalar handler.
    assert [t.tag for t in pe.scalar] == [lone]
    # Every server was released, exactly as FifoServer._complete does.
    assert all(not s._busy for s in servers)
    assert [s.items_served for s in servers] == [1, 1, 1]
