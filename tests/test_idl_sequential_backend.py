"""The sequential (von Neumann) backend: same source, same answers."""

import io

import pytest

from repro.cli import main
from repro.common import CompileError
from repro.dataflow import run_program
from repro.lang import compile_source
from repro.vonneumann import compile_to_assembly, run_sequential
from repro.workloads import PIPELINE, PRIMES, WAVEFRONT


SOURCES = {
    "arith": ("def f(x, y) = (x + y) * (x - y) + x % 3;", (9, 4), None),
    "conditional": (
        "def f(x) = if x > 10 then x - 10 else 10 - x;", (3,), None
    ),
    "nested_if": (
        "def sign(x) = if x > 0 then 1 else if x == 0 then 0 else 0 - 1;",
        (-7,), None,
    ),
    "let": ("def f(x) = let a = x + 1; b = a * a in b - a;", (4,), None),
    "boolean": (
        "def f(x, y) = if x > 0 and not (y > 0) then 1 else 0;",
        (3, -2), None,
    ),
    "builtins": (
        "def f(x, y) = min(x, y) + max(x, y) + abs(x - y) + floor(x);",
        (9, 4), None,
    ),
    "for_loop": (
        "def f(n) = (initial s <- 0 for i from 1 to n do "
        "new s <- s + i * i return s);",
        (12,), None,
    ),
    "while_loop": (
        "def f(n) = (initial x <- n; c <- 0 while x > 1 do "
        "new x <- x / 2; new c <- c + 1 return c);",
        (64,), None,  # integer halving: both engines agree on powers of 2
    ),
    "nested_loop": (
        "def f(n) = (initial t <- 0 for i from 1 to n do new t <- t + "
        "(initial s <- 0 for j from 1 to i do new s <- s + j return s) "
        "return t);",
        (6,), None,
    ),
    "call": (
        "def sq(x) = x * x;\ndef f(n) = sq(n) + sq(n + 1);", (5,), "f",
    ),
    "call_in_loop": (
        "def sq(x) = x * x;\n"
        "def f(n) = (initial s <- 0 for i from 1 to n do "
        "new s <- s + sq(i) return s);",
        (7,), "f",
    ),
    "arrays": (PIPELINE, (10,), "pipeline"),
    "primes": (PRIMES, (30,), "count_primes"),
    "wavefront": (WAVEFRONT, (6,), "wavefront"),
}


class TestSameSourceSameAnswer:
    @pytest.mark.parametrize("name", sorted(SOURCES))
    def test_vn_matches_dataflow(self, name):
        source, args, entry = SOURCES[name]
        dataflow = run_program(compile_source(source, entry=entry), *args)
        vn_value, result = run_sequential(source, args, entry=entry)
        assert vn_value == dataflow
        assert result.time > 0


class TestBackendBehaviour:
    def test_latency_hurts_memory_bound_code(self):
        source, args, entry = SOURCES["arrays"]
        _, fast = run_sequential(source, args, entry=entry, latency=1)
        _, slow = run_sequential(source, args, entry=entry, latency=20)
        assert slow.time > 2 * fast.time

    def test_pure_register_code_ignores_latency(self):
        source, args, entry = SOURCES["for_loop"]
        _, fast = run_sequential(source, args, entry=entry, latency=1)
        _, slow = run_sequential(source, args, entry=entry, latency=50)
        # One store (the result) is the only memory traffic.
        assert slow.time - fast.time == pytest.approx(2 * 49, abs=1)

    def test_assembly_is_legal(self):
        from repro.vonneumann import assemble

        for name, (source, _, entry) in SOURCES.items():
            text, _ = compile_to_assembly(source, entry=entry)
            assemble(text)  # must not raise

    def test_loop_updates_are_parallel(self):
        # new a <- b; new b <- a  must swap, not alias.
        source = """
        def f(n) =
          (initial a <- 1; b <- 2
           for i from 1 to n do
             new a <- b;
             new b <- a
           return a * 10 + b);
        """
        dataflow = run_program(compile_source(source), 3)
        vn_value, _ = run_sequential(source, (3,))
        assert vn_value == dataflow == 21  # odd swaps: a=2, b=1


class TestBackendLimits:
    def test_recursion_rejected(self):
        with pytest.raises(CompileError, match="recursive"):
            compile_to_assembly(
                "def f(n) = if n < 2 then n else f(n - 1) + f(n - 2);"
            )

    def test_floats_rejected(self):
        with pytest.raises(CompileError, match="integer-only"):
            compile_to_assembly("def f(x) = x + 1.5;")

    def test_transcendentals_rejected(self):
        with pytest.raises(CompileError, match="unsupported"):
            compile_to_assembly("def f(x) = sqrt(x);")

    def test_power_rejected(self):
        with pytest.raises(CompileError, match="unsupported"):
            compile_to_assembly("def f(x) = x ** 2;")


class TestCliVnEngine:
    def test_run_vn(self, tmp_path):
        path = tmp_path / "p.id"
        path.write_text(SOURCES["for_loop"][0])
        out = io.StringIO()
        code = main(["run", str(path), "--args", "12", "--engine", "vn"],
                    out=out)
        assert code == 0
        assert "result: 650" in out.getvalue()
        assert "von Neumann" in out.getvalue()
