"""Coverage for the RNG substreams and network base-class plumbing."""

import pytest

from repro.common import DeterministicRng, NetworkError, substream
from repro.common.simulator import Simulator
from repro.network import IdealNetwork, Packet


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a = substream(42, "arrivals")
        b = substream(42, "arrivals")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_decorrelate(self):
        a = substream(42, "arrivals")
        b = substream(42, "service")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        assert substream(1, "x").random() != substream(2, "x").random()

    def test_factory_caches_streams(self):
        rng = DeterministicRng(7)
        stream = rng.stream("traffic")
        stream.random()
        assert rng.stream("traffic") is stream
        # A fresh factory replays from the start.
        fresh = DeterministicRng(7).stream("traffic")
        first_value = substream(7, "traffic").random()
        assert fresh.random() == first_value


class TestNetworkBase:
    def test_zero_ports_rejected(self):
        with pytest.raises(NetworkError, match="at least one port"):
            IdealNetwork(Simulator(), 0)

    def test_in_flight_accounting(self):
        sim = Simulator()
        net = IdealNetwork(sim, 2, latency=5)
        net.attach(1, lambda p: None)
        net.send(0, 1, "x")
        assert net.in_flight == 1
        sim.run()
        assert net.in_flight == 0
        assert net.counters["delivered"] == 1

    def test_packet_ids_unique_and_repr(self):
        a = Packet(src=0, dst=1, payload="p")
        b = Packet(src=0, dst=1, payload="q")
        assert a.pid != b.pid
        assert "->1" in repr(a)

    def test_attach_out_of_range(self):
        net = IdealNetwork(Simulator(), 2)
        with pytest.raises(NetworkError):
            net.attach(5, lambda p: None)

    def test_repr_mentions_type(self):
        net = IdealNetwork(Simulator(), 2)
        assert "IdealNetwork" in repr(net)
