"""Deterministic fault injection: plans, recovery, determinism contracts."""

import json

import pytest

from repro.exp import Experiment, records_payload, run_experiment
from repro.faults import FaultInjector, FaultPlan, coerce_plan
from repro.machines import registry
from repro.vonneumann import VNMachine, programs


# ---------------------------------------------------------------------------
# FaultPlan validation and coercion
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_round_trips_through_dict(self):
        plan = FaultPlan(seed=7, mem_slow_rate=0.5, mem_slow_cycles=32)
        assert FaultPlan.from_dict(plan.as_dict()) == plan

    @pytest.mark.parametrize("field", ["net_delay_rate", "mem_slow_rate",
                                       "mem_fail_rate", "pe_stall_rate",
                                       "pe_crash_rate"])
    def test_rates_outside_unit_interval_rejected(self, field):
        with pytest.raises(ValueError):
            FaultPlan(**{field: 1.5})
        with pytest.raises(ValueError):
            FaultPlan(**{field: -0.1})

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="mem_slow_cycels"):
            FaultPlan.from_dict({"mem_slow_cycels": 32})

    def test_levels_key_allowed(self):
        # The sweep-file extension `repro bench --faults` reads.
        plan = FaultPlan.from_dict(
            {"mem_slow_rate": 0.9, "levels": [0, 32, 64]})
        assert plan.mem_slow_rate == 0.9

    def test_negative_max_retries_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(max_retries=-1)

    def test_enabled_only_with_nonzero_rate(self):
        assert not FaultPlan().enabled
        assert not FaultPlan(mem_slow_cycles=100.0).enabled  # no rate
        assert FaultPlan(mem_slow_rate=0.1).enabled

    def test_coerce_accepts_none_plan_dict_and_path(self, tmp_path):
        assert coerce_plan(None) is None
        plan = FaultPlan(seed=3, mem_fail_rate=0.2)
        assert coerce_plan(plan) is plan
        assert coerce_plan(plan.as_dict()) == plan
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.as_dict()))
        assert coerce_plan(str(path)) == plan

    def test_coerce_rejects_other_types(self):
        with pytest.raises(TypeError):
            coerce_plan(42)

    def test_site_streams_are_independent(self):
        # Drawing at one site never perturbs another site's sequence.
        lone = FaultInjector(FaultPlan(seed=9, mem_slow_rate=0.5))
        mixed = FaultInjector(FaultPlan(seed=9, mem_slow_rate=0.5))
        lone_draws = [lone.rng.stream("mem.m0").random() for _ in range(8)]
        mixed_draws = []
        for _ in range(8):
            mixed.rng.stream("mem.m1").random()  # interleaved other site
            mixed_draws.append(mixed.rng.stream("mem.m0").random())
        assert lone_draws == mixed_draws


# ---------------------------------------------------------------------------
# Machine-level behavior: recovery, accounting, no-faults transparency
# ---------------------------------------------------------------------------

SLOW_PLAN = {"seed": 11, "mem_slow_rate": 0.9, "mem_slow_cycles": 64}


def _payload(result):
    return json.dumps(result.as_dict(), sort_keys=True, default=repr)


class TestMachineFaults:
    def test_faults_none_is_byte_identical_to_no_kwarg(self):
        for name in ("hep", "ttda", "cmmp", "cmstar", "ultracomputer",
                     "vliw", "connection_machine"):
            plain = registry.create(name).run()
            gated = registry.create(name, faults=None).run()
            assert _payload(plain) == _payload(gated), name

    def test_same_plan_same_seed_is_deterministic(self):
        for name in ("hep", "ttda"):
            first = registry.create(name, faults=SLOW_PLAN).run()
            second = registry.create(name, faults=SLOW_PLAN).run()
            assert _payload(first) == _payload(second), name

    def test_slow_banks_degrade_both_architectures(self):
        hep_base = registry.create("hep").run().metric("time")
        hep_slow = registry.create("hep", faults=SLOW_PLAN).run()
        assert hep_slow.metric("time") > hep_base
        ttda_base = registry.create("ttda").run(workload="matmul")
        ttda_slow = registry.create(
            "ttda", faults=SLOW_PLAN).run(workload="matmul")
        assert ttda_slow.metric("time") > ttda_base.metric("time")
        assert ttda_slow.metric("faults_injected") > 0
        # The split-phase machine hides the same injected latency better.
        assert (ttda_slow.metric("time") / ttda_base.metric("time")
                < hep_slow.metric("time") / hep_base)

    def test_vn_transient_failures_retry_and_complete(self):
        def build(faults):
            machine = VNMachine(1, memory="dancehall", faults=faults)
            machine.add_processor(
                programs.compute_loop(8, loads_per_iter=1,
                                      alu_ops_per_iter=2))
            return machine
        base = build(None).run()
        faulty = build({"seed": 5, "mem_fail_rate": 1.0,
                        "retry_backoff": 2.0, "max_retries": 3}).run()
        # Every request fails max_retries times, then the fault clears:
        # the run completes (liveness), later (the backoff is paid), and
        # every injector fail has a matching module-level retry.
        assert faulty.time > base.time
        assert faulty.counters["faults_mem_fail"] > 0
        assert (faulty.counters["fault_retries"]
                == faulty.counters["faults_mem_fail"])

    def test_istructure_transient_failures_retry_and_complete(self):
        base = registry.create("ttda").run(workload="matmul")
        faulty = registry.create(
            "ttda", faults={"seed": 2, "mem_fail_rate": 0.3,
                            "retry_backoff": 4.0},
        ).run(workload="matmul")
        assert faulty.metric("faults_injected") > 0
        assert faulty.metric("time") > base.metric("time")

    def test_network_delay_spikes_inject_and_complete(self):
        result = registry.create(
            "ttda", faults={"seed": 4, "net_delay_rate": 0.5,
                            "net_delay_cycles": 5.0},
        ).run(workload="matmul")
        assert result.metric("faults_injected") > 0

    def test_pe_stalls_and_crashes_recover(self):
        base = registry.create("ttda").run(workload="matmul")
        result = registry.create(
            "ttda", faults={"seed": 6, "pe_stall_rate": 0.3,
                            "pe_stall_cycles": 3.0, "pe_crash_rate": 0.2,
                            "retry_backoff": 4.0},
        ).run(workload="matmul")
        assert result.metric("faults_injected") > 0
        assert result.metric("time") > base.metric("time")

    def test_plan_echoed_in_config_only_when_set(self):
        plain = registry.create("ttda")
        faulty = registry.create("ttda", faults=SLOW_PLAN)
        assert "faults" not in plain.config
        assert faulty.config["faults"]["mem_slow_cycles"] == 64


# ---------------------------------------------------------------------------
# Sweep determinism: faults are a pure function of the config
# ---------------------------------------------------------------------------

def fault_sweep_point(config):
    """Module-level (picklable) worker: one e20-style grid point."""
    level = config["level"]
    faults = None if level == 0 else {
        "seed": 11, "mem_slow_rate": 0.9, "mem_slow_cycles": level}
    return registry.create("hep", faults=faults).run().as_dict()


class TestSweepDeterminism:
    def test_jobs0_and_jobs2_are_byte_identical(self):
        experiment = Experiment(
            name="fault_sweep", run=fault_sweep_point,
            grid=[{"level": level} for level in (0, 64, 256)])
        inline = run_experiment(experiment, jobs=0)
        workers = run_experiment(experiment, jobs=2)
        assert all(record.ok for record in inline + workers)
        assert (json.dumps(records_payload(inline), sort_keys=True,
                           default=repr)
                == json.dumps(records_payload(workers), sort_keys=True,
                              default=repr))


# ---------------------------------------------------------------------------
# Long-run correctness companions: tag interning across the capacity
# boundary (run-boundary-only eviction)
# ---------------------------------------------------------------------------

class TestInternBoundary:
    def test_capacity_crossing_preserves_identity(self, monkeypatch):
        from repro.dataflow import tags as tags_mod

        tags_mod.reset_intern_table()
        monkeypatch.setattr(tags_mod, "_INTERN_MAX", 4)
        first = tags_mod.intern_tag("c", "blk", 0)
        for statement in range(16):  # cross the capacity boundary
            tags_mod.intern_tag("c", "blk", statement)
        # The table was NOT cleared mid-run: early tags keep their
        # canonical identity, overflow tags degrade to structural
        # equality, and the table never exceeds its bound.
        assert tags_mod.intern_tag("c", "blk", 0) is first
        overflow = tags_mod.intern_tag("c", "other", 99)
        assert overflow == tags_mod.intern_tag("c", "other", 99)
        assert len(tags_mod._INTERN) <= 4
        tags_mod.reset_intern_table()
        assert len(tags_mod._INTERN) == 0

    def test_machine_result_unchanged_when_capacity_crossed_midrun(
            self, monkeypatch):
        from repro.dataflow import tags as tags_mod

        expected = registry.create("ttda").run(workload="matmul")
        monkeypatch.setattr(tags_mod, "_INTERN_MAX", 8)
        capped = registry.create("ttda").run(workload="matmul")
        # Interning is a pure identity optimization: forfeiting it
        # mid-run (capacity) must not change a single measurement.
        assert _payload(capped) == _payload(expected)
