"""Unit tests for the interconnection networks."""

import pytest

from repro.common import NetworkError, Simulator
from repro.network import (
    CombiningOmegaNetwork,
    CrossbarNetwork,
    FetchAddRequest,
    HierarchicalNetwork,
    HypercubeNetwork,
    IdealNetwork,
    build_shortest_path_table,
    emulated_neighbors,
    gray_code,
    grid_embedding,
    ring_embedding,
)


def collect(net, port):
    """Attach a collector to a port; returns the list it fills."""
    received = []
    net.attach(port, received.append)
    return received


class TestIdealNetwork:
    def test_fixed_latency(self):
        sim = Simulator()
        net = IdealNetwork(sim, 4, latency=7)
        inbox = collect(net, 2)
        net.send(0, 2, "hello")
        sim.run()
        assert [p.payload for p in inbox] == ["hello"]
        assert sim.now == 7
        assert net.mean_latency() == 7

    def test_bad_port_rejected(self):
        net = IdealNetwork(Simulator(), 2)
        with pytest.raises(NetworkError):
            net.send(0, 5, "x")

    def test_missing_handler_raises(self):
        sim = Simulator()
        net = IdealNetwork(sim, 2)
        net.send(0, 1, "x")
        with pytest.raises(NetworkError, match="no handler"):
            sim.run()


class TestCrossbar:
    def test_output_port_contention_serializes(self):
        sim = Simulator()
        net = CrossbarNetwork(sim, 4, switch_latency=1, port_service_time=2)
        inbox = collect(net, 3)
        for src in range(3):
            net.send(src, 3, f"p{src}")
        sim.run()
        assert len(inbox) == 3
        # switch transit 1 + serialized service 2 each: 3, 5, 7
        assert net.latency.max == pytest.approx(7)

    def test_distinct_outputs_do_not_contend(self):
        sim = Simulator()
        net = CrossbarNetwork(sim, 4, switch_latency=1, port_service_time=2)
        boxes = [collect(net, i) for i in range(4)]
        for i in range(4):
            net.send(0, i, i)
        sim.run()
        assert net.latency.max == pytest.approx(3)
        assert all(len(b) == 1 for b in boxes)

    def test_quadratic_cost_model(self):
        assert CrossbarNetwork.crosspoint_count(16) == 256
        assert CrossbarNetwork.crosspoint_count(64) == 4096


class TestHypercube:
    def test_hop_count_is_hamming_distance(self):
        sim = Simulator()
        net = HypercubeNetwork(sim, 4, flit_time=1, wire_latency=1)
        inbox = collect(net, 0b1111)
        net.send(0b0000, 0b1111, "x")
        sim.run()
        assert inbox[0].hops == 4
        assert HypercubeNetwork.minimum_hops(0b0000, 0b1111) == 4

    def test_local_delivery_is_immediate(self):
        sim = Simulator()
        net = HypercubeNetwork(sim, 2)
        inbox = collect(net, 1)
        net.send(1, 1, "self")
        sim.run()
        assert inbox[0].hops == 0

    def test_fault_detour(self):
        sim = Simulator()
        net = HypercubeNetwork(sim, 3)
        inbox = collect(net, 0b011)
        net.fail_link(0b000, 0b001)
        net.send(0b000, 0b011, "x")
        sim.run()
        assert len(inbox) == 1
        # It must still arrive, possibly via dimension 1 first.
        assert inbox[0].hops == 2

    def test_cut_off_node_raises(self):
        sim = Simulator()
        net = HypercubeNetwork(sim, 2)
        collect(net, 3)
        net.fail_link(0, 1)
        net.fail_link(0, 2)
        with pytest.raises(NetworkError, match="cut off"):
            net.send(0, 3, "x")

    def test_partitions_block_cross_traffic(self):
        sim = Simulator()
        net = HypercubeNetwork(sim, 2)
        net.set_partitions([{0, 1}, {2, 3}])
        collect(net, 1)
        net.send(0, 1, "ok")
        sim.run()
        with pytest.raises(NetworkError, match="partition"):
            net.send(0, 2, "blocked")

    def test_routing_table_override(self):
        sim = Simulator()
        net = HypercubeNetwork(sim, 2)
        inbox = collect(net, 3)
        # Force 0->3 via node 2 instead of dimension-order via 1.
        net.load_routing_table({(0, 3): 2})
        net.send(0, 3, "x")
        sim.run()
        assert inbox[0].hops == 2

    def test_non_edge_link_rejected(self):
        net = HypercubeNetwork(Simulator(), 3)
        with pytest.raises(NetworkError, match="not a hypercube edge"):
            net.fail_link(0, 3)


class TestRoutingHelpers:
    def test_gray_code_neighbors_differ_by_one_bit(self):
        for i in range(63):
            diff = gray_code(i) ^ gray_code(i + 1)
            assert bin(diff).count("1") == 1

    def test_ring_embedding_is_a_permutation(self):
        ring = ring_embedding(4)
        assert sorted(ring) == list(range(16))

    def test_ring_neighbors_one_hop(self):
        ring = ring_embedding(3)
        for a, b in emulated_neighbors(ring, "ring"):
            assert HypercubeNetwork.minimum_hops(a, b) == 1

    def test_grid_embedding_neighbors_one_hop(self):
        grid = grid_embedding(2, 2)
        for a, b in emulated_neighbors(grid, "grid"):
            assert HypercubeNetwork.minimum_hops(a, b) == 1

    def test_shortest_path_table_avoids_dead_links(self):
        sim = Simulator()
        net = HypercubeNetwork(sim, 3)
        net.fail_link(0, 1)
        table = build_shortest_path_table(net, pairs=[(0, 1)])
        assert table[(0, 1)] in (2, 4)  # detour around the dead link
        net.load_routing_table(table)
        inbox = collect(net, 1)
        net.send(0, 1, "x")
        sim.run()
        assert inbox[0].hops == 3  # one-bit distance becomes a 3-hop detour


class TestHierarchical:
    def test_latency_grows_with_distance(self):
        sim = Simulator()
        net = HierarchicalNetwork(sim, n_clusters=2, cluster_size=2,
                                  kmap_time=3, intercluster_time=9, local_time=1)
        boxes = {i: collect(net, i) for i in range(3)}
        net.send(0, 0, "local")
        net.send(0, 1, "intra")
        net.send(0, 2, "inter")
        sim.run()
        assert all(len(b) == 1 for b in boxes.values())
        latencies = sorted(net.latency.items())
        # local 1; intra 3; inter queues behind intra at the Kmap:
        # wait 3 + kmap 3 + bus 9 + remote kmap 3 = 18.
        assert [lat for lat, _ in latencies] == [1, 3, 18]

    def test_kmap_contention(self):
        sim = Simulator()
        net = HierarchicalNetwork(sim, 1, 3, kmap_time=5)
        collect(net, 2)
        net.send(0, 2, "a")
        net.send(1, 2, "b")
        sim.run()
        assert net.latency.max == pytest.approx(10)

    def test_cluster_of(self):
        net = HierarchicalNetwork(Simulator(), 3, 4)
        assert net.cluster_of(0) == 0
        assert net.cluster_of(11) == 2


class TestOmega:
    def _run_hotspot(self, stages, combining, n_requesters=None):
        """All processors FETCH-AND-ADD the same address once."""
        sim = Simulator()
        net = CombiningOmegaNetwork(sim, stages, combining=combining)
        n = net.n_ports if n_requesters is None else n_requesters
        memory = {}

        def memory_handler(record, payload):
            old = memory.get(payload.address, 0)
            memory[payload.address] = old + payload.value
            net.reply(record, old)

        replies = []
        for port in range(net.n_ports):
            net.attach_memory(port, memory_handler)
            net.attach_processor(
                port, lambda payload, value: replies.append(value)
            )
        for src in range(n):
            net.request(src, FetchAddRequest(address=0, value=1))
        sim.run()
        return net, memory, replies

    @pytest.mark.parametrize("combining", [True, False])
    def test_fetch_and_add_is_serializable(self, combining):
        net, memory, replies = self._run_hotspot(3, combining)
        # Sum is preserved and the returned values are a permutation of 0..n-1
        assert memory[0] == 8
        assert sorted(replies) == list(range(8))

    def test_combining_happens_on_hot_spot(self):
        net, _, _ = self._run_hotspot(4, combining=True)
        assert net.counters["combines"] > 0
        assert net.counters["combines"] == net.counters["splits"]

    def test_no_combining_when_disabled(self):
        net, _, _ = self._run_hotspot(4, combining=False)
        assert net.counters["combines"] == 0

    def test_combining_reduces_memory_traffic(self):
        with_c, _, _ = self._run_hotspot(4, combining=True)
        without, _, _ = self._run_hotspot(4, combining=False)
        assert with_c.counters["memory_arrivals"] < without.counters["memory_arrivals"]

    def test_distinct_addresses_do_not_combine(self):
        sim = Simulator()
        net = CombiningOmegaNetwork(sim, 2, combining=True)
        memory = {}

        def memory_handler(record, payload):
            old = memory.get(payload.address, 0)
            memory[payload.address] = old + payload.value
            net.reply(record, old)

        replies = []
        for port in range(net.n_ports):
            net.attach_memory(port, memory_handler)
            net.attach_processor(port, lambda p, v: replies.append((p.address, v)))
        for src in range(4):
            net.request(src, FetchAddRequest(address=src, value=1))
        sim.run()
        assert net.counters["combines"] == 0
        assert len(replies) == 4
