"""Unit tests for the discrete-event kernel."""

import pytest

from repro.common import SimulationError, Simulator
from repro.common.simulator import CalendarSimulator, LegacySimulator

BOTH_KERNELS = pytest.mark.parametrize(
    "sim_class", [CalendarSimulator, LegacySimulator],
    ids=["calendar", "legacy"],
)


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(5, fired.append, "b")
    sim.schedule(1, fired.append, "a")
    sim.schedule(9, fired.append, "c")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 9


def test_same_time_events_fire_fifo():
    sim = Simulator()
    fired = []
    for name in "abcde":
        sim.schedule(3, fired.append, name)
    sim.run()
    assert fired == list("abcde")


def test_schedule_from_within_event():
    sim = Simulator()
    trace = []

    def first():
        trace.append(("first", sim.now))
        sim.schedule(2, second)

    def second():
        trace.append(("second", sim.now))

    sim.schedule(1, first)
    sim.run()
    assert trace == [("first", 1.0), ("second", 3.0)]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1, fired.append, "x")
    sim.schedule(2, fired.append, "y")
    event.cancel()
    sim.run()
    assert fired == ["y"]


def test_run_until_stops_clock_at_bound():
    sim = Simulator()
    fired = []
    sim.schedule(1, fired.append, "a")
    sim.schedule(10, fired.append, "b")
    stopped = sim.run(until=5)
    assert fired == ["a"]
    assert stopped == 5
    sim.run()
    assert fired == ["a", "b"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(5, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1, lambda: None)


def test_event_budget_detects_livelock():
    sim = Simulator()

    def forever():
        sim.schedule(1, forever)

    sim.schedule(0, forever)
    with pytest.raises(SimulationError, match="budget"):
        sim.run(max_events=100)


def test_quiescence_hook_refills_queue_once():
    sim = Simulator()
    fired = []
    refills = []

    def hook():
        if not refills:
            refills.append(True)
            sim.schedule(4, fired.append, "late")

    sim.add_quiescence_hook(hook)
    sim.schedule(1, fired.append, "early")
    sim.run()
    assert fired == ["early", "late"]
    assert sim.now == 5


def test_pending_and_counters():
    sim = Simulator()
    sim.schedule(1, lambda: None)
    sim.schedule(2, lambda: None)
    assert sim.pending == 2
    assert sim.events_fired == 0
    sim.run()
    assert sim.pending == 0
    assert sim.events_fired == 2


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False
    sim.schedule(1, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


# ----------------------------------------------------------------------
# Kernel edge cases, run against both the calendar and legacy kernels so
# the two stay behaviourally interchangeable.
# ----------------------------------------------------------------------

@BOTH_KERNELS
def test_post_fires_and_counts(sim_class):
    sim = sim_class()
    fired = []
    sim.post(2, fired.append, "a")
    sim.post(1, fired.append, "b")
    assert sim.pending == 2
    sim.run()
    assert fired == ["b", "a"]
    assert sim.pending == 0
    assert sim.events_fired == 2


@BOTH_KERNELS
def test_event_exactly_at_until_boundary_fires(sim_class):
    # `until` is inclusive: an event AT the bound fires and the clock
    # lands on the bound, not past it.
    sim = sim_class()
    fired = []
    sim.schedule(5, fired.append, "edge")
    sim.schedule(5.5, fired.append, "past")
    stopped = sim.run(until=5)
    assert fired == ["edge"]
    assert stopped == 5.0
    assert sim.now == 5.0


@BOTH_KERNELS
def test_cancel_during_same_instant_dispatch(sim_class):
    # An event cancels a later event at the SAME instant while the
    # instant is being dispatched: the victim must not fire.
    sim = sim_class()
    fired = []
    victim = []

    def killer():
        fired.append("killer")
        victim[0].cancel()

    sim.schedule(1, killer)
    victim.append(sim.schedule(1, fired.append, "victim"))
    sim.schedule(1, fired.append, "after")
    sim.run()
    assert fired == ["killer", "after"]
    assert sim.pending == 0


@BOTH_KERNELS
def test_cancel_during_step(sim_class):
    sim = sim_class()
    fired = []
    later = sim.schedule(2, fired.append, "later")
    sim.schedule(1, later.cancel)
    assert sim.step() is True  # runs the cancel
    assert sim.step() is False  # nothing live remains
    assert fired == []


@BOTH_KERNELS
def test_quiescence_hook_can_schedule_at_current_instant(sim_class):
    sim = sim_class()
    fired = []
    refilled = []

    def hook():
        if not refilled:
            refilled.append(True)
            sim.post(0, fired.append, "now")

    sim.add_quiescence_hook(hook)
    sim.post(3, fired.append, "first")
    sim.run()
    assert fired == ["first", "now"]
    assert sim.now == 3.0


@BOTH_KERNELS
def test_int_and_float_times_share_an_instant(sim_class):
    # post(1) and post(1.0) are the same instant; FIFO holds across the
    # int/float spelling and across post()/schedule() entries.
    sim = sim_class()
    fired = []
    sim.post(1, fired.append, "a")
    sim.schedule(1.0, fired.append, "b")
    sim.post(1.0, fired.append, "c")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 1.0


@BOTH_KERNELS
def test_fifo_across_integer_and_fractional_instants(sim_class):
    sim = sim_class()
    fired = []
    sim.post(1, fired.append, "t1-first")
    sim.post(0.5, fired.append, "t0.5")
    sim.schedule(1, fired.append, "t1-second")
    sim.post(1.5, fired.append, "t1.5")
    sim.post(1, fired.append, "t1-third")
    sim.run()
    assert fired == ["t0.5", "t1-first", "t1-second", "t1-third", "t1.5"]


@BOTH_KERNELS
def test_same_instant_posts_from_within_dispatch_fire_same_instant(sim_class):
    # A callback posting at delay 0 extends the current instant's batch.
    sim = sim_class()
    fired = []

    def first():
        fired.append(("first", sim.now))
        sim.post(0, second)

    def second():
        fired.append(("second", sim.now))

    sim.post(2, first)
    sim.run()
    assert fired == [("first", 2.0), ("second", 2.0)]


@BOTH_KERNELS
def test_cancelled_only_instant_does_not_advance_clock(sim_class):
    sim = sim_class()
    fired = []
    decoy = sim.schedule(7, fired.append, "decoy")
    sim.schedule(1, fired.append, "real")
    decoy.cancel()
    sim.run()
    assert fired == ["real"]
    assert sim.now == 1.0  # never advanced to the cancelled instant


@BOTH_KERNELS
def test_budget_exhaustion_keeps_unfired_events(sim_class):
    # Hitting the budget mid-instant must not lose the unfired tail.
    sim = sim_class()
    fired = []
    for name in "abcd":
        sim.post(1, fired.append, name)
    with pytest.raises(SimulationError, match="budget"):
        sim.run(max_events=2)
    assert fired == ["a", "b"]
    sim.run()
    assert fired == ["a", "b", "c", "d"]


@BOTH_KERNELS
def test_double_cancel_is_idempotent(sim_class):
    sim = sim_class()
    event = sim.schedule(1, lambda: None)
    event.cancel()
    event.cancel()
    assert sim.pending == 0
    sim.run()
    assert sim.events_fired == 0


def test_cancel_after_fire_is_noop():
    sim = Simulator()
    fired = []
    event = sim.schedule(1, fired.append, "x")
    sim.run()
    event.cancel()  # already consumed; must not corrupt counters
    assert fired == ["x"]
    assert sim.pending == 0
    assert sim.events_fired == 1


def test_mass_cancellation_keeps_queue_bounded():
    # Regression: 10k schedule-then-cancel cycles used to leave 10k dead
    # Event records in the heap.  The calendar kernel compacts lazily;
    # the debris must stay bounded and the final state clean.
    sim = CalendarSimulator()
    fired = []
    for i in range(10_000):
        event = sim.schedule(1_000_000 + i, fired.append, i)
        event.cancel()
        # Debris never exceeds the compaction threshold by more than one
        # pending sweep's worth.
        assert sim._ncancelled <= 1024
    sim.schedule(1, fired.append, "live")
    assert sim.pending == 1
    sim.run()
    assert fired == ["live"]
    assert sim._ncancelled == 0
    assert not sim._buckets
    assert not sim._keys


def test_calendar_and_legacy_fire_identical_order():
    # Determinism contract: both kernels produce the same total order
    # on a workload mixing posts, schedules, cancels, and re-posts.
    def workload(sim):
        order = []

        def spawn(name, depth):
            order.append((name, sim.now))
            if depth > 0:
                sim.post(1, spawn, f"{name}.a", depth - 1)
                sim.post(0.5, spawn, f"{name}.b", depth - 1)
                doomed = sim.schedule(2, order.append, ("doomed", name))
                sim.post(0, doomed.cancel)

        for i in range(3):
            sim.post(i, spawn, f"root{i}", 3)
        sim.run()
        return order, sim.now, sim.events_fired

    calendar = workload(CalendarSimulator())
    legacy = workload(LegacySimulator())
    assert calendar == legacy


# ---------------------------------------------------------------------------
# Kernel selection: resolved at construction time, not import time
# ---------------------------------------------------------------------------

def test_env_kernel_honored_after_import(monkeypatch):
    # Historically the choice was frozen at `import repro` — setting
    # REPRO_SIM_KERNEL afterwards was silently ignored.  The factory
    # resolves per construction.
    monkeypatch.setenv("REPRO_SIM_KERNEL", "legacy")
    assert isinstance(Simulator(), LegacySimulator)
    monkeypatch.setenv("REPRO_SIM_KERNEL", "calendar")
    assert isinstance(Simulator(), CalendarSimulator)
    monkeypatch.delenv("REPRO_SIM_KERNEL")
    assert isinstance(Simulator(), CalendarSimulator)  # the default


def test_kernel_kwarg_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_KERNEL", "legacy")
    assert isinstance(Simulator(kernel="calendar"), CalendarSimulator)
    assert isinstance(Simulator(kernel="legacy"), LegacySimulator)


def test_unknown_kernel_rejected(monkeypatch):
    with pytest.raises(SimulationError, match="quantum"):
        Simulator(kernel="quantum")
    monkeypatch.setenv("REPRO_SIM_KERNEL", "bogus")
    with pytest.raises(SimulationError, match="bogus"):
        Simulator()
