"""Unit tests for the discrete-event kernel."""

import pytest

from repro.common import SimulationError, Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(5, fired.append, "b")
    sim.schedule(1, fired.append, "a")
    sim.schedule(9, fired.append, "c")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 9


def test_same_time_events_fire_fifo():
    sim = Simulator()
    fired = []
    for name in "abcde":
        sim.schedule(3, fired.append, name)
    sim.run()
    assert fired == list("abcde")


def test_schedule_from_within_event():
    sim = Simulator()
    trace = []

    def first():
        trace.append(("first", sim.now))
        sim.schedule(2, second)

    def second():
        trace.append(("second", sim.now))

    sim.schedule(1, first)
    sim.run()
    assert trace == [("first", 1.0), ("second", 3.0)]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1, fired.append, "x")
    sim.schedule(2, fired.append, "y")
    event.cancel()
    sim.run()
    assert fired == ["y"]


def test_run_until_stops_clock_at_bound():
    sim = Simulator()
    fired = []
    sim.schedule(1, fired.append, "a")
    sim.schedule(10, fired.append, "b")
    stopped = sim.run(until=5)
    assert fired == ["a"]
    assert stopped == 5
    sim.run()
    assert fired == ["a", "b"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(5, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1, lambda: None)


def test_event_budget_detects_livelock():
    sim = Simulator()

    def forever():
        sim.schedule(1, forever)

    sim.schedule(0, forever)
    with pytest.raises(SimulationError, match="budget"):
        sim.run(max_events=100)


def test_quiescence_hook_refills_queue_once():
    sim = Simulator()
    fired = []
    refills = []

    def hook():
        if not refills:
            refills.append(True)
            sim.schedule(4, fired.append, "late")

    sim.add_quiescence_hook(hook)
    sim.schedule(1, fired.append, "early")
    sim.run()
    assert fired == ["early", "late"]
    assert sim.now == 5


def test_pending_and_counters():
    sim = Simulator()
    sim.schedule(1, lambda: None)
    sim.schedule(2, lambda: None)
    assert sim.pending == 2
    assert sim.events_fired == 0
    sim.run()
    assert sim.pending == 0
    assert sim.events_fired == 2


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False
    sim.schedule(1, lambda: None)
    assert sim.step() is True
    assert sim.step() is False
