"""Run functions for the sweep-service tests.

These live in their own module (not the test file) so pool workers can
resolve them by name: a sweep request carries ``"serve_jobs:square"``
and the worker imports this module — exactly how a real client names an
inline callable.
"""

import os
import time


def square(config):
    return {"x": config["x"], "y": config["x"] * config["x"]}


def fail_on_three(config):
    if config["x"] == 3:
        raise ValueError("three is right out")
    return {"x": config["x"]}


def raise_memory_error(config):
    raise MemoryError("pool allocation failure")


def sleep_forever(config):
    time.sleep(config.get("sleep", 60.0))
    return "done"


def slow_first_copy(config):
    """Sleep only on the first execution of each cell (a sentinel file
    marks later copies): the original copy straggles, a backup copy
    returns instantly.  The value never depends on which copy ran."""
    sentinel = os.path.join(config["dir"], f"cell{config['x']}.seen")
    try:
        fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        os.close(fd)
        time.sleep(config.get("delay", 1.0))
    except FileExistsError:
        pass
    return {"x": config["x"], "y": config["x"] * config["x"]}
