"""Tests of the untimed reference interpreter against the hand-built kernels."""

import math

import pytest

from repro.common import DeadlockError, MachineError
from repro.dataflow import Interpreter, run_program
from repro.graph import Opcode, ProgramBuilder
from repro.workloads.handbuilt import (
    build_add_constant,
    build_arith_diamond,
    build_array_pipeline,
    build_factorial,
    build_store_then_fetch,
    build_sum_loop,
)


class TestStraightLine:
    def test_add_constant(self):
        assert run_program(build_add_constant(5), 10) == 15

    def test_diamond(self):
        assert run_program(build_arith_diamond(), 7, 3) == (7 + 3) * (7 - 3)

    def test_diamond_parallelism_profile(self):
        interp = Interpreter(build_arith_diamond())
        interp.run(2, 1)
        # step 1: ADD and SUB fire together; step 2: MUL; step 3: RETURN.
        assert interp.parallelism_profile[1] == 2
        assert interp.critical_path == 3
        assert interp.average_parallelism() == pytest.approx(4 / 3)


class TestRecursion:
    @pytest.mark.parametrize("n,expected", [(0, 1), (1, 1), (5, 120), (10, 3628800)])
    def test_factorial(self, n, expected):
        assert run_program(build_factorial(), n) == expected
        assert run_program(build_factorial(), n) == math.factorial(max(n, 1))

    def test_factorial_context_depth_grows_with_n(self):
        interp = Interpreter(build_factorial())
        interp.run(8)
        # 8 recursive invocations -> at least 8 levels of critical path.
        assert interp.critical_path > 8


class TestLoops:
    @pytest.mark.parametrize("n", [0, 1, 2, 5, 25])
    def test_sum_loop(self, n):
        assert run_program(build_sum_loop(), n) == n * (n + 1) // 2

    def test_loop_iterations_unfold_in_tag_space(self):
        interp = Interpreter(build_sum_loop())
        interp.run(10)
        tag_classes = interp.counters["class_tag"]
        # 3 L + 10 iterations x 3 D + D_INV + L_INV
        assert tag_classes >= 3 + 10 * 3 + 2


class TestIStructures:
    def test_fetch_deferred_until_store(self):
        program = build_store_then_fetch()
        assert run_program(program, 1, "payload") == "payload"

    def test_deferred_read_counted(self):
        interp = Interpreter(build_store_then_fetch())
        interp.run(1, 99)
        assert interp.heap.counters["reads_deferred"] == 1
        assert interp.heap.counters["reads_immediate"] == 0

    @pytest.mark.parametrize("n", [1, 2, 8, 20])
    def test_producer_consumer_pipeline(self, n):
        expected = sum(k * k for k in range(n))
        assert run_program(build_array_pipeline(), n) == expected

    def test_pipeline_overlaps_production_and_consumption(self):
        interp = Interpreter(build_array_pipeline())
        interp.run(16)
        # The consumer's critical path tracks the producer element-by-element
        # rather than waiting for the whole array: depth grows linearly in n
        # but is far below the serialized depth of (producer + consumer).
        serial_depth_estimate = 2 * 16 * 8
        assert interp.critical_path < serial_depth_estimate


class TestErrors:
    def test_entry_arity_mismatch(self):
        with pytest.raises(MachineError, match="takes 1"):
            run_program(build_add_constant(), 1, 2)

    def test_unwritten_cell_deadlocks(self):
        pb = ProgramBuilder()
        b = pb.procedure("stuck")
        alloc = b.emit(Opcode.I_ALLOC)
        fetch = b.emit(Opcode.I_FETCH, constant=0, constant_port=1)
        ret = b.emit(Opcode.RETURN)
        b.wire(alloc, fetch, 0)
        b.wire(fetch, ret, 0)
        b.param((alloc, 0))
        program = pb.build()
        with pytest.raises(DeadlockError) as excinfo:
            run_program(program, 4)
        assert excinfo.value.pending  # names the never-written cell

    def test_switch_with_non_boolean_control(self):
        pb = ProgramBuilder()
        b = pb.procedure("badswitch")
        sw = b.emit(Opcode.SWITCH)
        ret = b.emit(Opcode.RETURN)
        b.wire(sw, ret, 0, side="true")
        b.param((sw, 0))
        b.param((sw, 1))
        with pytest.raises(MachineError, match="not a boolean"):
            run_program(pb.build(), 1, 42)

    def test_division_by_zero_reported_with_tag(self):
        pb = ProgramBuilder()
        b = pb.procedure("divzero")
        div = b.emit(Opcode.DIV, constant=0, constant_port=1)
        ret = b.emit(Opcode.RETURN)
        b.wire(div, ret, 0)
        b.param((div, 0))
        with pytest.raises(MachineError, match="div failed"):
            run_program(pb.build(), 1)

    def test_bounds_violation(self):
        program = build_store_then_fetch()
        with pytest.raises(Exception):  # IStructureError via MachineError chain
            run_program(program, 0, "v")  # size 0, index 0 out of bounds


class TestDeterminism:
    def test_same_inputs_same_profile(self):
        a = Interpreter(build_sum_loop())
        a.run(12)
        b = Interpreter(build_sum_loop())
        b.run(12)
        assert a.parallelism_profile == b.parallelism_profile
        assert a.counters.as_dict() == b.counters.as_dict()
