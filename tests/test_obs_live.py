"""The live telemetry plane: Prometheus exposition + kernel stats.

Covers :mod:`repro.obs.live` (LiveMetrics families, deterministic
rendering, the text-format parser) and the ``kernel_stats()`` surface
that the event kernels expose through :class:`repro.machines.api.
SimResult` and the ``repro machine`` / ``repro profile`` CLI.
"""

import io
import json
import threading

import pytest

from repro.obs.live import DEFAULT_BUCKETS, LiveMetrics, parse_prometheus


def _cli(*argv):
    from repro.cli import main

    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


# ---------------------------------------------------------------------------
# LiveMetrics: declaration, updates, rendering
# ---------------------------------------------------------------------------

class TestLiveMetrics:
    def test_counter_gauge_histogram_round_trip(self):
        metrics = LiveMetrics()
        metrics.counter("jobs_total", "Jobs processed.")
        metrics.inc("jobs_total", 3)
        metrics.gauge("depth", "Queue depth.")
        metrics.set("depth", 7)
        metrics.histogram("latency_seconds", "Request latency.")
        metrics.observe("latency_seconds", 0.003)
        metrics.observe("latency_seconds", 1.0)
        parsed = parse_prometheus(metrics.render())
        assert parsed[("repro_jobs_total", ())] == 3.0
        assert parsed[("repro_depth", ())] == 7.0
        assert parsed[("repro_latency_seconds_count", ())] == 2.0
        assert parsed[("repro_latency_seconds_sum", ())] == 1.003
        # Cumulative buckets: le=0.005 holds one sample, +Inf holds all.
        assert parsed[("repro_latency_seconds_bucket",
                       (("le", "0.005"),))] == 1.0
        assert parsed[("repro_latency_seconds_bucket",
                       (("le", "+Inf"),))] == 2.0
        assert len(DEFAULT_BUCKETS) >= 4

    def test_updates_auto_declare(self):
        metrics = LiveMetrics()
        metrics.inc("seen_total")
        metrics.set("level", 2.5)
        metrics.observe("wait_seconds", 0.1)
        text = metrics.render()
        assert "# TYPE repro_seen_total counter" in text
        assert "# TYPE repro_level gauge" in text
        assert "# TYPE repro_wait_seconds histogram" in text

    def test_labels_render_sorted_and_deterministic(self):
        metrics = LiveMetrics()
        metrics.counter("req_total", "Requests.")
        metrics.inc("req_total", route="b", method="GET")
        metrics.inc("req_total", method="GET", route="a")
        text = metrics.render()
        # Label keys are sorted inside each series; series are sorted
        # within the family — the exposition is byte-deterministic.
        a = text.index('repro_req_total{method="GET",route="a"}')
        b = text.index('repro_req_total{method="GET",route="b"}')
        assert 0 < a < b
        assert text == metrics.render()

    def test_value_and_snapshot(self):
        metrics = LiveMetrics()
        metrics.inc("hits_total", 2, kind="a")
        assert metrics.value("hits_total", kind="a") == 2.0
        snap = metrics.snapshot()
        assert snap['repro_hits_total{kind="a"}'] == 2.0
        assert list(snap) == sorted(snap)

    def test_gauge_fn_scalar_and_labelled(self):
        metrics = LiveMetrics()
        depth = [4]
        metrics.gauge_fn("depth", "Live depth.", lambda: depth[0])
        metrics.gauge_fn(
            "busy", "Per-worker busyness.",
            lambda: {(("worker", "1"),): 1, (("worker", "2"),): 0})
        parsed = parse_prometheus(metrics.render())
        assert parsed[("repro_depth", ())] == 4.0
        depth[0] = 9
        assert metrics.value("depth") == 9.0
        assert parsed[("repro_busy", (("worker", "1"),))] == 1.0
        assert parsed[("repro_busy", (("worker", "2"),))] == 0.0

    def test_gauge_fn_may_reenter_the_registry(self):
        # The scheduler's gauge callables take its own lock and may even
        # touch the metrics object; render() must evaluate them outside
        # the metrics lock or this deadlocks.
        metrics = LiveMetrics()
        metrics.counter("spawns_total", "Spawned.")

        def loopback():
            return metrics.value("spawns_total")

        metrics.gauge_fn("alive", "Loopback gauge.", loopback)
        metrics.inc("spawns_total", 5)
        parsed = parse_prometheus(metrics.render())
        assert parsed[("repro_alive", ())] == 5.0

    def test_thread_safety_under_contention(self):
        metrics = LiveMetrics()
        metrics.counter("n_total", "Contended counter.")

        def hammer():
            for _ in range(500):
                metrics.inc("n_total")
                metrics.observe("lat_seconds", 0.01)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert metrics.value("n_total") == 2000.0
        parsed = parse_prometheus(metrics.render())
        assert parsed[("repro_lat_seconds_count", ())] == 2000.0

    def test_parse_rejects_malformed_exposition(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is not prometheus\n")
        with pytest.raises(ValueError):
            parse_prometheus("repro_x{unclosed=\"1\n")
        # Comments and blank lines are fine.
        assert parse_prometheus("# HELP x y\n\n") == {}


# ---------------------------------------------------------------------------
# kernel_stats: simulators -> SimResult -> CLI
# ---------------------------------------------------------------------------

class TestKernelStats:
    def test_calendar_and_legacy_expose_stats(self):
        from repro.common.simulator import (CalendarSimulator,
                                            LegacySimulator)

        for cls, kernel in ((CalendarSimulator, "calendar"),
                            (LegacySimulator, "legacy")):
            sim = cls()
            fired = []
            sim.post(1, lambda: fired.append(1))
            sim.post(2, lambda: fired.append(2))
            sim.run()
            stats = sim.kernel_stats()
            assert stats["kernel"] == kernel
            assert stats["events_fired"] == 2
            assert stats["pending"] == 0

    def test_sharded_stats_carry_null_updates_and_balance(self):
        from repro.common.psim import ShardedSimulator

        sim = ShardedSimulator(shards=2, mode="window")
        a, b = object(), object()
        sim.configure_shards([(a, 0), (b, 1)],
                             {(0, 1): 1.0, (1, 0): 1.0})

        def hop(owner, other, n):
            if n > 0:
                sim.post_to(other, 1.0, hop, other, owner, n - 1)

        sim.post_to(a, 0, hop, a, b, 20)
        sim.run()
        stats = sim.kernel_stats()
        assert stats["kernel"] == "parallel"
        assert stats["shards"] == 2
        assert "null_updates" in stats
        assert "channel_messages" in stats
        assert len(stats["shard_events"]) == 2
        assert stats["shard_imbalance"] >= 1.0

    def test_sim_result_payload_excludes_kernel_telemetry(self):
        # kernel_stats describes the engine that ran, not the result:
        # it must never reach the cacheable payload, or serial and
        # sharded runs would stop being byte-identical and store-cached
        # values would claim the kernel that populated them.
        from repro.machines.api import SimResult

        stats = {"kernel": "calendar", "events_fired": 7}
        full = SimResult(machine="m", config={}, workload={}, metrics={},
                         kernel_stats=stats)
        assert full.kernel_stats == stats
        payload = full.as_dict()
        assert "kernel_stats" not in payload
        assert SimResult.from_dict(payload).kernel_stats is None

    def test_cli_machine_json_carries_kernel_stats(self):
        code, text = _cli("machine", "ttda", "--json")
        assert code == 0
        stats = json.loads(text)["kernel_stats"]
        assert stats["kernel"] == "calendar"
        assert stats["events_fired"] > 0

    def test_cli_machine_sharded_json_has_null_updates(self):
        code, text = _cli("machine", "ttda", "--shards", "2", "--json")
        assert code == 0
        stats = json.loads(text)["kernel_stats"]
        assert stats["kernel"] == "parallel"
        assert stats["shards"] == 2
        assert "null_updates" in stats
        assert len(stats["shard_events"]) == 2

    def test_cli_machine_text_renders_kernel_stats(self):
        code, text = _cli("machine", "ttda")
        assert code == 0
        assert "kernel_stats:" in text
        assert "events_fired:" in text


# ---------------------------------------------------------------------------
# MetricsRegistry.snapshot ordering (the pull-side contract /metrics
# and BENCH telemetry both lean on)
# ---------------------------------------------------------------------------

def test_registry_snapshot_is_stable_ordered():
    from repro.common.stats import Counter, Histogram
    from repro.obs import MetricsRegistry

    def build(register_order):
        registry = MetricsRegistry()
        counter = Counter()
        counter.add("b", 2)
        counter.add("a", 1)
        hist = Histogram()
        hist.observe(3.0)
        instruments = {"zeta": counter, "alpha": hist, "mid": lambda: 42}
        for name in register_order:
            registry.register(name, instruments[name])
        return registry.snapshot(now=1.0)

    first = build(["zeta", "alpha", "mid"])
    second = build(["mid", "zeta", "alpha"])  # insertion order is noise
    assert first == second
    assert list(first) == list(second) == sorted(first)
