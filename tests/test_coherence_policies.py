"""Write-back vs write-through caches, and timed I-structure controllers."""

import pytest

from repro.common import Simulator
from repro.istructure import IStructureController, ReadRequest, WriteRequest
from repro.vonneumann import CacheConfig, CacheState, VNMachine


class TestWriteThrough:
    def _machine(self, write_policy):
        return VNMachine(2, memory="bus", cache_config=CacheConfig(),
                         memory_time=10, bus_time=2,
                         write_policy=write_policy)

    def test_correctness_under_both_policies(self):
        for policy in ("write_back", "write_through"):
            machine = self._machine(policy)
            machine.add_processor("""
                movi r2, 8
                movi r3, 5
                store r3, r2, 0
                store r3, r2, 1
                load r4, r2, 0
                load r5, r2, 1
                add r6, r4, r5
                store r6, r2, 2
                halt
            """)
            machine.add_processor("nop\nhalt")
            machine.run()
            assert machine.peek(10) == 10, policy

    def test_write_through_never_holds_modified_lines(self):
        machine = self._machine("write_through")
        machine.add_processor("""
            movi r2, 8
            movi r3, 5
            store r3, r2, 0
            store r3, r2, 0
            halt
        """)
        machine.add_processor("nop\nhalt")
        machine.run()
        for cache in machine.memory.caches:
            for address in range(16):
                assert cache.peek_state(address) is not CacheState.MODIFIED

    def test_write_through_generates_more_bus_traffic(self):
        def repeated_stores(policy):
            machine = self._machine(policy)
            machine.add_processor("""
                movi r2, 8
                movi r3, 20
            loop:
                beqz r3, done
                store r3, r2, 0
                subi r3, r3, 1
                jmp loop
            done:
                halt
            """)
            machine.add_processor("nop\nhalt")
            result = machine.run()
            wt = machine.memory.counters.get("bus_write_through")
            wb = (machine.memory.counters.get("bus_write_miss")
                  + machine.memory.counters.get("bus_upgrade"))
            return result.time, wt + wb

        wb_time, wb_traffic = repeated_stores("write_back")
        wt_time, wt_traffic = repeated_stores("write_through")
        # Write-back coalesces 20 stores into one ownership transaction.
        assert wb_traffic <= 2
        assert wt_traffic == 20
        assert wt_time > wb_time

    def test_write_through_still_needs_invalidations(self):
        """The paper's point: store-through does not remove the coherence
        mechanism — remote copies must still be invalidated."""
        machine = self._machine("write_through")
        machine.add_processor("""
            movi r2, 8
            load r3, r2, 0     ; cache the line
            movi r5, 40
            movi r6, 1
            writef r6, r5, 0   ; signal partner to proceed
            movi r7, 41
        wait:
            readf r8, r7, 0    ; wait for partner's store
            load r9, r2, 0     ; must see the new value
            store r9, r2, 4
            halt
        """)
        machine.add_processor("""
            movi r5, 40
            readf r6, r5, 0    ; wait until partner cached the line
            movi r2, 8
            movi r3, 77
            store r3, r2, 0    ; write through + invalidate
            movi r7, 41
            writef r6, r7, 0
            halt
        """)
        machine.retry_backoff = 4
        for proc in machine.processors:
            proc.retry_backoff = 4
        machine.run()
        assert machine.peek(12) == 77
        assert machine.memory.counters.get("invalidations", 0) >= 1

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            self._machine("write_sideways")


class TestTimedIStructureController:
    def _controller(self, sim, **kwargs):
        replies = []
        controller = IStructureController(
            sim, deliver=lambda reply, value: replies.append(
                (sim.now, reply, value)
            ), **kwargs,
        )
        return controller, replies

    def test_write_takes_twice_as_long(self):
        sim = Simulator()
        controller, replies = self._controller(sim, read_cycles=1,
                                               write_cycles=2)
        controller.submit(WriteRequest(key=("a", 0), value=5))
        sim.run()
        write_done = sim.now
        controller.submit(ReadRequest(key=("a", 0), reply="r"))
        sim.run()
        assert write_done == 2
        assert sim.now - write_done == 1

    def test_fifo_queueing_under_load(self):
        sim = Simulator()
        controller, replies = self._controller(sim)
        controller.submit(WriteRequest(key=("a", 0), value=1))
        for i in range(3):
            controller.submit(ReadRequest(key=("a", 0), reply=i))
        sim.run()
        # write at t=2, reads at t=3,4,5 in submission order
        assert [(t, r) for t, r, _ in replies] == [(3.0, 0), (4.0, 1),
                                                   (5.0, 2)]

    def test_deferred_drain_charges_per_entry(self):
        sim = Simulator()
        controller, replies = self._controller(
            sim, drain_cycles_per_deferred=3
        )
        for i in range(4):
            controller.submit(ReadRequest(key=("a", 0), reply=i))
        sim.run()
        t_reads_done = sim.now  # 4 reads x 1 cycle
        controller.submit(WriteRequest(key=("a", 0), value="v"))
        sim.run()
        # write service 2 + 4 deferred entries x 3 cycles of drain
        assert sim.now == t_reads_done + 2 + 12
        assert len(replies) == 4

    def test_utilization_accounts_busy_time(self):
        sim = Simulator()
        controller, _ = self._controller(sim)
        controller.submit(WriteRequest(key=("a", 0), value=1))
        controller.submit(WriteRequest(key=("a", 1), value=2))
        sim.run()
        assert controller.utilization.utilization(sim.now) == pytest.approx(1.0)
        assert controller.queue_depth.max == 1
