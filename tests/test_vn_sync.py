"""Tests for the synchronization idiom library and memory edge cases."""

import pytest

from repro.common import MachineError, Simulator
from repro.vonneumann import (
    MemoryModule,
    MemRequest,
    Op,
    RETRY,
    VNMachine,
    sync,
)


class TestSyncFragments:
    def test_ticket_lock_counts_correctly(self):
        n_procs, increments = 4, 5
        # Ticket counter at address 0, now-serving at 1, counter at 2.
        body = f"""
            movi r2, 0          ; ticket-counter base
            movi r3, 2          ; shared counter
            movi r4, {increments}
            movi r9, 1          ; constant one
        loop:
            beqz r4, done
        {sync.faa_ticket_lock(2, 5, 9, 6)}
            load r7, r3, 0
            addi r7, r7, 1
            store r7, r3, 0
            faa  r8, r10, r9    ; advance now-serving (address in r10)
            subi r4, r4, 1
            jmp  loop
        done:
            halt
        """
        machine = VNMachine(n_procs, memory="dancehall", latency=2,
                            memory_time=1)
        machine.load_spmd(body, regs_of=lambda pid: {1: pid, 10: 1})
        machine.run()
        assert machine.peek(2) == n_procs * increments

    def test_counter_barrier_releases_everyone(self):
        n_procs = 4
        # Barrier counter at address 0; after the barrier every processor
        # writes its id to a distinct slot.
        body = f"""
            movi r2, 0
            movi r3, {n_procs}
            movi r9, 1
        {sync.counter_barrier(2, 3, 9, 5)}
            movi r6, 10
            add  r6, r6, r1
            store r1, r6, 0
            halt
        """
        machine = VNMachine(n_procs, memory="dancehall", latency=2,
                            memory_time=1)
        machine.load_spmd(body)
        machine.run()
        for pid in range(n_procs):
            assert machine.peek(10 + pid) == pid

    def test_spinlock_fragments_compose(self):
        source = f"""
            movi r2, 0      ; lock address
            movi r9, 0      ; zero for release
        {sync.spinlock_acquire(2, 5)}
            movi r3, 1
            store r3, r3, 9 ; mem[10] = 1 inside the critical section
        {sync.spinlock_release(2, 9)}
            halt
        """
        machine = VNMachine(1, memory="dancehall", latency=1)
        machine.add_processor(source)
        machine.run()
        assert machine.peek(10) == 1
        assert machine.peek(0) == 0  # lock released


class TestMemoryModule:
    def test_atomic_semantics(self):
        sim = Simulator()
        module = MemoryModule(sim)
        assert module.apply(MemRequest(Op.TESTSET, 5)) == 0
        assert module.apply(MemRequest(Op.TESTSET, 5)) == 1
        assert module.apply(MemRequest(Op.FAA, 6, value=10)) == 0
        assert module.apply(MemRequest(Op.FAA, 6, value=5)) == 10
        assert module.peek(6) == 15

    def test_full_empty_semantics(self):
        sim = Simulator()
        module = MemoryModule(sim)
        assert module.apply(MemRequest(Op.READF, 3)) is RETRY
        module.apply(MemRequest(Op.WRITEF, 3, value=7))
        assert module.apply(MemRequest(Op.READF, 3)) == 7
        assert module.counters["readf_retries"] == 1

    def test_writef_overwrite_counted(self):
        sim = Simulator()
        module = MemoryModule(sim)
        module.apply(MemRequest(Op.WRITEF, 3, value=1))
        module.apply(MemRequest(Op.WRITEF, 3, value=2))
        assert module.counters["writef_overwrites"] == 1

    def test_non_memory_op_rejected(self):
        module = MemoryModule(Simulator())
        with pytest.raises(MachineError):
            module.apply(MemRequest(Op.ADD, 0))

    def test_timed_service_serializes(self):
        sim = Simulator()
        module = MemoryModule(sim, service_time=4)
        done = []
        module.submit(MemRequest(Op.STORE, 0, value=1),
                      lambda r: done.append(sim.now))
        module.submit(MemRequest(Op.LOAD, 0),
                      lambda r: done.append(sim.now))
        sim.run()
        assert done == [4, 8]


class TestDancehallPlacement:
    def test_blocked_placement_localizes(self):
        machine = VNMachine(2, memory="dancehall", n_modules=2,
                            placement="blocked", block_size=100)
        assert machine.memory.module_of(5) == 0
        assert machine.memory.module_of(105) == 1
        assert machine.memory.module_of(205) == 0  # wraps

    def test_interleaved_placement_spreads(self):
        machine = VNMachine(2, memory="dancehall", n_modules=2)
        assert machine.memory.module_of(4) == 0
        assert machine.memory.module_of(5) == 1

    def test_unknown_placement_rejected(self):
        with pytest.raises(MachineError):
            VNMachine(1, memory="dancehall", placement="random")
