"""Integration tests: the timed tagged-token machine vs. the reference
interpreter, across PE counts, mappings and networks."""

import pytest

from repro.common import DeadlockError, Simulator
from repro.dataflow import (
    ByContextMapping,
    HashMapping,
    Interpreter,
    MachineConfig,
    TaggedTokenMachine,
    stable_tag_key,
    Tag,
)
from repro.graph import Opcode, ProgramBuilder
from repro.network import CrossbarNetwork, HypercubeNetwork, IdealNetwork
from repro.workloads.handbuilt import (
    build_add_constant,
    build_arith_diamond,
    build_array_pipeline,
    build_factorial,
    build_store_then_fetch,
    build_sum_loop,
)

ALL_PROGRAMS = [
    (build_add_constant(3), (39,), 42),
    (build_arith_diamond(), (9, 4), 65),
    (build_factorial(), (6,), 720),
    (build_sum_loop(), (10,), 55),
    (build_store_then_fetch(), (1, "x"), "x"),
    (build_array_pipeline(), (6,), 55),
]


class TestAgainstInterpreter:
    @pytest.mark.parametrize("program,args,expected", ALL_PROGRAMS)
    @pytest.mark.parametrize("n_pes", [1, 2, 4])
    def test_machine_matches_reference(self, program, args, expected, n_pes):
        assert Interpreter(program).run(*args) == expected
        machine = TaggedTokenMachine(program, MachineConfig(n_pes=n_pes))
        result = machine.run(*args)
        assert result.value == expected

    @pytest.mark.parametrize("program,args,expected", ALL_PROGRAMS)
    def test_by_context_mapping_matches(self, program, args, expected):
        config = MachineConfig(
            n_pes=4, mapping_factory=lambda n: ByContextMapping(n)
        )
        assert TaggedTokenMachine(program, config).run(*args).value == expected

    @pytest.mark.parametrize(
        "factory",
        [
            lambda sim, n: IdealNetwork(sim, n, latency=10),
            lambda sim, n: CrossbarNetwork(sim, n),
            lambda sim, n: HypercubeNetwork(sim, 2),
        ],
    )
    def test_networks_do_not_change_answers(self, factory):
        config = MachineConfig(n_pes=4, network_factory=factory)
        machine = TaggedTokenMachine(build_sum_loop(), config)
        assert machine.run(12).value == 78


class TestTiming:
    def test_result_time_positive_and_before_drain(self):
        machine = TaggedTokenMachine(build_sum_loop(), MachineConfig(n_pes=2))
        result = machine.run(8)
        assert 0 < result.time <= result.drain_time

    def test_instruction_count_matches_interpreter(self):
        interp = Interpreter(build_sum_loop())
        interp.run(9)
        machine = TaggedTokenMachine(build_sum_loop(), MachineConfig(n_pes=2))
        result = machine.run(9)
        assert result.instructions == interp.instructions_executed

    def test_utilization_in_bounds(self):
        machine = TaggedTokenMachine(build_factorial(), MachineConfig(n_pes=2))
        result = machine.run(8)
        for u in result.alu_utilizations:
            assert 0.0 <= u <= 1.0
        assert result.mean_alu_utilization > 0

    def test_single_pe_is_slower_than_four(self):
        # With parallelism available, more PEs should shorten makespan.
        slow = TaggedTokenMachine(build_array_pipeline(), MachineConfig(n_pes=1))
        fast = TaggedTokenMachine(build_array_pipeline(), MachineConfig(n_pes=8))
        assert fast.run(16).time < slow.run(16).time

    def test_network_latency_stretches_makespan_on_serial_code(self):
        # A serial chain cannot hide latency: makespan grows with latency.
        quick = MachineConfig(n_pes=4, network_latency=1)
        slow = MachineConfig(n_pes=4, network_latency=50)
        t_quick = TaggedTokenMachine(build_factorial(), quick).run(6).time
        t_slow = TaggedTokenMachine(build_factorial(), slow).run(6).time
        assert t_slow > t_quick

    def test_determinism(self):
        results = [
            TaggedTokenMachine(build_array_pipeline(), MachineConfig(n_pes=4)).run(8)
            for _ in range(2)
        ]
        assert results[0].value == results[1].value
        assert results[0].time == results[1].time
        assert results[0].counters == results[1].counters


class TestStructureMachinery:
    def test_structure_traffic_crosses_network(self):
        machine = TaggedTokenMachine(build_array_pipeline(), MachineConfig(n_pes=4))
        machine.run(8)
        assert machine.counters["structures_allocated"] == 1
        assert machine.counters["tokens_network"] > 0

    def test_deferred_reads_happen_under_timing(self):
        machine = TaggedTokenMachine(build_array_pipeline(), MachineConfig(n_pes=4))
        machine.run(12)
        deferred = sum(
            pe.istructure.module.counters["reads_deferred"] for pe in machine.pes
        )
        immediate = sum(
            pe.istructure.module.counters["reads_immediate"] for pe in machine.pes
        )
        assert deferred + immediate == 12

    def test_distributed_sids_unique(self):
        machine = TaggedTokenMachine(build_add_constant(), MachineConfig(n_pes=4))
        sids = {machine.allocate_structure(4, on_pe=p % 4).sid for p in range(40)}
        assert len(sids) == 40


class TestDeadlock:
    def test_unwritten_cell_reported(self):
        pb = ProgramBuilder()
        b = pb.procedure("stuck")
        alloc = b.emit(Opcode.I_ALLOC)
        fetch = b.emit(Opcode.I_FETCH, constant=0, constant_port=1)
        ret = b.emit(Opcode.RETURN)
        b.wire(alloc, fetch, 0)
        b.wire(fetch, ret, 0)
        b.param((alloc, 0))
        machine = TaggedTokenMachine(pb.build(), MachineConfig(n_pes=2))
        with pytest.raises(DeadlockError, match="deferred read"):
            machine.run(3)


class TestMapping:
    def test_stable_tag_key_deterministic(self):
        tag = Tag(Tag(None, "f", 3, 2), "g", 7, 5)
        assert stable_tag_key(tag) == stable_tag_key(
            Tag(Tag(None, "f", 3, 2), "g", 7, 5)
        )

    def test_hash_mapping_spreads_iterations(self):
        mapping = HashMapping(8)
        pes = {
            mapping.pe_of(Tag(None, "loop", 4, i)) for i in range(64)
        }
        assert len(pes) > 4  # iterations land on many PEs

    def test_by_context_mapping_keeps_context_together(self):
        mapping = ByContextMapping(8, spread_iterations=False)
        context = Tag(None, "main", 9, 1)
        pes = {
            mapping.pe_of(Tag(context, "f", s, i))
            for s in range(10)
            for i in range(5)
        }
        assert len(pes) == 1
