"""The graph optimizer: semantics preserved, instruction counts reduced."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dataflow import Interpreter, MachineConfig, TaggedTokenMachine
from repro.graph import Opcode, validate_program
from repro.graph.optimize import (
    collapse_idents,
    fold_constants,
    optimize_program,
    remove_dead_code,
)
from repro.lang import compile_source
from repro.workloads import WORKLOADS, compile_workload

from test_properties import arith_exprs


def _count(program, opcode):
    return sum(
        1 for block in program.blocks.values()
        for inst in block if inst.opcode is opcode
    )


class TestPasses:
    def test_idents_removed(self):
        program = compile_source("def f(x, y) = x + y;")
        assert _count(program, Opcode.IDENT) == 2
        optimized = optimize_program(program)
        assert _count(optimized, Opcode.IDENT) == 0
        assert Interpreter(optimized).run(3, 4) == 7

    def test_constants_folded(self):
        source = """
        def f(n) =
          (initial s <- 0
           for i from 1 to n do
             new s <- s + i
           return s);
        """
        program = compile_source(source)
        optimized = optimize_program(program)
        # The initial constants 0 and 1 fed L operators (not foldable),
        # but literal arithmetic folded during compilation; the optimizer
        # must not break anything and must not grow the program.
        assert optimized.total_instructions <= program.total_instructions
        assert Interpreter(optimized).run(6) == 21

    def test_fold_into_immediate_slot(self):
        # 'x + (2 * 3)' parses with a CONSTANT feeding ADD port 1 only if
        # not already folded; build a case via call argument shape.
        source = "def f(x) = max(x, 0) + max(0 - x, 0);"
        program = compile_source(source)
        optimized = optimize_program(program)
        for x in (-5, 0, 7):
            assert Interpreter(optimized).run(x) == abs(x)

    def test_dead_code_removed(self):
        source = "def f(x) = let unused = x * 99 in x + 1;"
        program = compile_source(source)
        assert _count(program, Opcode.MUL) == 1
        optimized = optimize_program(program)
        assert _count(optimized, Opcode.MUL) == 0
        assert Interpreter(optimized).run(4) == 5

    def test_dead_chain_removed_to_fixpoint(self):
        source = "def f(x) = let a = x + 1 in let b = a * 2 in x;"
        program = compile_source(source)
        optimized = optimize_program(program)
        assert _count(optimized, Opcode.ADD) == 0
        assert _count(optimized, Opcode.MUL) == 0
        assert Interpreter(optimized).run(9) == 9

    def test_original_program_not_mutated(self):
        program = compile_source("def f(x) = x + 1;")
        before = program.total_instructions
        optimize_program(program)
        assert program.total_instructions == before

    def test_passes_report_change_flags(self):
        program = compile_source("def f(x, y) = x + y;")
        from repro.graph.optimize import _clone

        clone = _clone(program)
        assert collapse_idents(clone) is True
        assert collapse_idents(clone) is False
        assert remove_dead_code(clone) is False  # nothing dead here
        assert fold_constants(clone) is False


class TestWorkloadsSurviveOptimization:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_optimized_matches_reference(self, name):
        program, reference, args = compile_workload(name)
        optimized = optimize_program(program)
        validate_program(optimized)
        assert optimized.total_instructions < program.total_instructions
        assert Interpreter(optimized).run(*args) == pytest.approx(
            reference(*args)
        )

    def test_optimized_runs_on_timed_machine(self):
        program, reference, args = compile_workload("matmul")
        optimized = optimize_program(program)
        machine = TaggedTokenMachine(optimized, MachineConfig(n_pes=4))
        assert machine.run(*args).value == reference(*args)

    def test_optimization_saves_dynamic_instructions(self):
        program, _, args = compile_workload("trapezoid")
        baseline = Interpreter(program)
        baseline.run(*args)
        optimized = Interpreter(optimize_program(program))
        optimized.run(*args)
        assert (
            optimized.instructions_executed < baseline.instructions_executed
        )


class TestOptimizeProperty:
    @given(arith_exprs(), st.integers(-15, 15), st.integers(-15, 15))
    @settings(max_examples=40, deadline=None)
    def test_optimized_equivalent_on_random_programs(self, expr, x, y):
        source_fragment, oracle = expr
        program = compile_source(f"def main(x, y) = {source_fragment};",
                                 entry="main")
        optimized = optimize_program(program)
        expected = oracle({"x": x, "y": y})
        assert Interpreter(optimized).run(x, y) == expected
