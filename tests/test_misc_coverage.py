"""Odds and ends: value types, reprs, profile flag, table determinism."""

import io

import pytest

from repro.cli import main
from repro.dataflow import Continuation, FunctionRef, Tag, Token, TokenKind
from repro.graph import Destination, Instruction, Opcode
from repro.istructure import StructureRef
from repro.workloads import TRAPEZOID


class TestValueTypes:
    def test_continuation_return_tags(self):
        cont = Continuation(
            context=None, code_block="f", iteration=3,
            dests=(Destination(4, 0), Destination(7, 1)),
        )
        tags = cont.return_tags()
        assert tags == [
            (Tag(None, "f", 4, 3), 0),
            (Tag(None, "f", 7, 3), 1),
        ]

    def test_halt_continuation_is_flagged(self):
        assert Continuation.HALT.halt
        assert repr(Continuation.HALT) == "⊥halt"

    def test_function_ref_repr(self):
        assert repr(FunctionRef("fact")) == "fn:fact"

    def test_structure_ref_repr(self):
        assert repr(StructureRef(3, 8)) == "IS#3[8]"

    def test_tag_repr_mentions_fields(self):
        tag = Tag(None, "main", 5, 2)
        assert "main" in repr(tag) and "5" in repr(tag)

    def test_token_repr_shows_d_field(self):
        tag = Tag(None, "main", 0, 1)
        token = Token(tag, 0, 42, TokenKind.STRUCTURE, nt=1, pe=3)
        assert repr(token).startswith("<d=1,PE=3")


class TestInstructionRepr:
    def test_switch_repr_shows_both_sides(self):
        inst = Instruction(
            Opcode.SWITCH,
            dests=(Destination(1, 0),),
            dests_false=(Destination(2, 0),),
        )
        inst.statement = 0
        text = repr(inst)
        assert "T:" in text and "F:" in text

    def test_immediate_repr(self):
        inst = Instruction(Opcode.ADD, constant=5, constant_port=1)
        inst.statement = 3
        assert "const[1]=5" in repr(inst)


class TestCliProfile:
    def test_profile_flag_prints_histogram(self, tmp_path):
        path = tmp_path / "t.id"
        path.write_text(TRAPEZOID)
        out = io.StringIO()
        code = main(
            ["run", str(path), "--entry", "trapezoid",
             "--args", "0.0", "1.0", "8", "0.125", "--profile"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "parallelism profile" in text
        assert "#" in text


class TestExperimentDeterminism:
    def test_e05_table_is_identical_across_runs(self):
        import sys
        sys.path.insert(0, "benchmarks")
        from bench_e05_fetch_and_add import run_experiment

        first = str(run_experiment([2, 4]))
        second = str(run_experiment([2, 4]))
        assert first == second

    def test_e11_table_is_identical_across_runs(self):
        import sys
        sys.path.insert(0, "benchmarks")
        from bench_e11_istructure_cost import run_experiment

        assert str(run_experiment()) == str(run_experiment())
