"""Deeper front-end cases: nested structures, higher-order patterns,
error paths, and graph-shape checks."""

import pytest

from repro.common import CompileError, MachineError
from repro.dataflow import Interpreter, MachineConfig, TaggedTokenMachine, run_program
from repro.lang import compile_source


class TestNestedStructures:
    MATRIX = """
    def fill_row(row, n, i) =
      (initial j <- 0
       while j < n do
         row[j] <- i * 10 + j;
         new j <- j + 1
       return 0);

    def make_matrix(n) =
      let m = array(n) in
      let t = (initial i <- 0
               while i < n do
                 m[i] <- array(n);
                 new i <- i + 1
               return 0) in
      let t2 = (initial i <- 0; acc <- 0
                while i < n do
                  new acc <- acc + fill_row(m[i], n, i);
                  new i <- i + 1
                return acc) in
      m;

    def trace(n) =
      let m = make_matrix(n) in
      (initial s <- 0
       for i from 0 to n - 1 do
         new s <- s + (m[i])[i]
       return s);
    """

    def test_array_of_arrays(self):
        program = compile_source(self.MATRIX, entry="trace")
        # trace of m[i][j] = 10i + j over the diagonal: sum 11*i
        n = 5
        assert run_program(program, n) == sum(11 * i for i in range(n))

    def test_nested_structure_on_timed_machine(self):
        program = compile_source(self.MATRIX, entry="trace")
        machine = TaggedTokenMachine(program, MachineConfig(n_pes=4))
        assert machine.run(4).value == sum(11 * i for i in range(4))


class TestLoopEdgeCases:
    def test_initial_dummy_new_binding(self):
        # 'new t2i' with matching initial binding; exercised via parser.
        source = """
        def f(n) =
          (initial a <- 0; b <- 100
           for i from 1 to n do
             new a <- a + b
           return a);
        """
        assert run_program(compile_source(source), 3) == 300

    def test_zero_iteration_for_loop_returns_initials(self):
        source = """
        def f(n) =
          (initial s <- 42
           for i from 5 to n do
             new s <- 0
           return s);
        """
        assert run_program(compile_source(source), 1) == 42

    def test_while_with_compound_condition(self):
        source = """
        def f(n) =
          (initial x <- 0; y <- n
           while x < 10 and y > 0 do
             new x <- x + 1;
             new y <- y - 2
           return x * 100 + y);
        """
        # n=8: iterations until y<=0: y: 8,6,4,2 -> 4 iters, x=4, y=0
        assert run_program(compile_source(source), 8) == 400

    def test_loop_index_visible_in_result(self):
        source = """
        def f(n) =
          (initial s <- 0
           for i from 1 to n do
             new s <- s + 1
           return i);
        """
        # After exit, i is the first value failing i <= n.
        assert run_program(compile_source(source), 4) == 5

    def test_call_in_loop_condition_is_rejected_cleanly(self):
        # Calls in while-conditions are legal — verify they work.
        source = """
        def half(x) = x / 2;
        def f(n) =
          (initial x <- n; c <- 0
           while half(x) >= 1 do
             new x <- x - 2;
             new c <- c + 1
           return c);
        """
        program = compile_source(source, entry="f")
        assert run_program(program, 8) == 4

    def test_runaway_loop_hits_step_budget(self):
        source = """
        def f(n) =
          (initial x <- n
           while x > 0 do
             new x <- x + 1
           return x);
        """
        program = compile_source(source)
        with pytest.raises(MachineError, match="livelock"):
            Interpreter(program).run(1, max_steps=20_000)


class TestConditionalEdgeCases:
    def test_condition_used_inside_arm(self):
        source = "def f(x) = if x > 0 then x else 0 - x;"
        assert run_program(compile_source(source), -7) == 7

    def test_deeply_nested_arms_with_lets(self):
        source = """
        def f(x, y) =
          if x > y
          then let d = x - y in (if d > 10 then d * 2 else d)
          else let d = y - x in (if d > 10 then 0 - d else d);
        """
        program = compile_source(source)
        assert run_program(program, 20, 5) == 30  # d=15 > 10 -> 30
        assert run_program(program, 7, 5) == 2
        assert run_program(program, 5, 25) == -20
        assert run_program(program, 5, 7) == 2

    def test_both_arms_call_different_functions(self):
        source = """
        def double(x) = 2 * x;
        def triple(x) = 3 * x;
        def f(x) = if x % 2 == 0 then double(x) else triple(x);
        """
        program = compile_source(source, entry="f")
        assert run_program(program, 4) == 8
        assert run_program(program, 5) == 15

    def test_literal_only_arms(self):
        source = "def f(x) = if x == 0 then 100 else 200;"
        program = compile_source(source)
        assert run_program(program, 0) == 100
        assert run_program(program, 1) == 200


class TestShadowing:
    def test_let_shadows_param(self):
        source = "def f(x) = let x = x + 1 in x * 10;"
        assert run_program(compile_source(source), 5) == 60

    def test_def_shadows_builtin(self):
        source = """
        def sqrt(x) = x;
        def f(x) = sqrt(x);
        """
        assert run_program(compile_source(source, entry="f"), 16) == 16

    def test_loop_var_shadows_outer(self):
        source = """
        def f(s) =
          (initial s <- 0
           for i from 1 to 3 do
             new s <- s + i
           return s);
        """
        assert run_program(compile_source(source), 999) == 6


class TestErrorPaths:
    def test_store_outside_loop_is_parse_error(self):
        with pytest.raises(CompileError):
            compile_source("def f(a) = a[0] <- 1;")

    def test_index_collision_with_binding(self):
        with pytest.raises(CompileError, match="collides"):
            compile_source(
                "def f(n) = (initial i <- 0 for i from 1 to n do "
                "new i <- i return i);"
            )

    def test_builtin_arity_error(self):
        with pytest.raises(CompileError, match="takes 1"):
            compile_source("def f(x) = sqrt(x, x);")

    def test_min_arity_error(self):
        with pytest.raises(CompileError, match="takes 2"):
            compile_source("def f(x) = min(x);")

    def test_undefined_in_loop_body(self):
        with pytest.raises(CompileError, match="undefined variable"):
            compile_source(
                "def f(n) = (initial s <- 0 for i from 1 to n do "
                "new s <- s + q return s);"
            )


class TestGraphShape:
    def test_invariants_get_their_own_L(self):
        from repro.graph import Opcode

        source = """
        def f(a, b, n) =
          (initial s <- 0
           for i from 1 to n do
             new s <- s + a * b
           return s);
        """
        program = compile_source(source)
        main = program.block("f")
        l_count = sum(1 for i in main if i.opcode is Opcode.L)
        # circulating: i, s, $hi plus invariants a, b -> five L operators.
        assert l_count == 5

    def test_loop_block_parents_chain_for_nesting(self):
        source = """
        def f(n) =
          (initial t <- 0
           for i from 1 to n do
             new t <- t + (initial s <- 0
                           for j from 1 to i do
                             new s <- s + j
                           return s)
           return t);
        """
        program = compile_source(source)
        loops = [b for b in program.blocks.values() if b.kind == "loop"]
        assert len(loops) == 2
        parents = {b.parent_block for b in loops}
        assert "f" in parents
        assert any(p.startswith("f$L") for p in parents)
