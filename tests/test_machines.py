"""Tests for the survey machine models (C.mmp, Cm*, Ultracomputer, VLIW,
Connection Machine / Illiac IV), driven through the unified registry API."""

import pytest

from repro.dataflow import Interpreter
from repro.machines import IlliacIV, registry, schedule_length
from repro.workloads.handbuilt import build_array_pipeline, build_sum_loop


class TestRegistry:
    def test_all_seven_models_registered(self):
        assert registry.names() == [
            "cmmp", "cmstar", "connection_machine", "hep", "ttda",
            "ultracomputer", "vliw",
        ]

    def test_create_applies_config(self):
        model = registry.create("cmmp", n_procs=8)
        assert model.name == "cmmp"
        assert model.config["n_procs"] == 8

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(KeyError, match="ultracomputer"):
            registry.get("ultra")


class TestCmmp:
    def test_cost_grows_quadratically_latency_stays_flat(self):
        results = [registry.create("cmmp", n_procs=n).run(
                       workload="array_sum", iterations=10)
                   for n in (2, 4, 8)]
        costs = [r.metric("crosspoints") for r in results]
        latencies = [r.metric("mean_latency") for r in results]
        assert costs == [n * n for n in (2, 4, 8)]
        # Latency stays within a small constant factor while cost 16x's.
        assert max(latencies) < 4 * min(latencies)

    def test_semaphore_costs_much_more_than_alu(self):
        result = registry.create("cmmp", n_procs=4).run(
            workload="semaphore", increments=8)
        assert result.metric("ratio") > 10  # "rather high" vs an ALU op


class TestCmstar:
    def _util(self, fraction, **kwargs):
        model = registry.create("cmstar", n_clusters=2, cluster_size=2)
        return model.run(remote_fraction=fraction, n_refs=30, **kwargs)

    def test_utilization_falls_with_remote_fraction(self):
        utils = [self._util(f).metric("utilization")
                 for f in (0.0, 0.2, 0.5)]
        assert utils[0] > utils[1] > utils[2]

    def test_intercluster_hurts_more_than_intracluster(self):
        intra = self._util(0.5, remote_kind="intracluster")
        inter = self._util(0.5, remote_kind="intercluster")
        assert inter.metric("utilization") < intra.metric("utilization")

    def test_prediction_tracks_measurement(self):
        model = registry.create("cmstar", n_clusters=2, cluster_size=2)
        for fraction in (0.0, 0.3):
            result = model.run(remote_fraction=fraction, n_refs=40)
            assert result.metric("utilization") == pytest.approx(
                result.metric("predicted_utilization"), rel=0.35)

    def test_local_references_bypass_kmap(self):
        from repro.machines.cmstar import locality_kernel
        machine = registry.create("cmstar", n_clusters=2,
                                  cluster_size=2).build()
        machine.add_processor(locality_kernel(0, 4, 2, 20, 0.0), regs={1: 0})
        machine.run()
        network = machine.memory.network
        assert network.counters["local"] > 0
        assert network.counters.get("intra_cluster") == 0
        assert network.counters.get("inter_cluster") == 0


class TestUltracomputer:
    def _hotspot(self, stages, combining):
        return registry.create("ultracomputer", stages=stages,
                               combining=combining).hotspot()

    def test_fetch_and_add_sums_correctly(self):
        result = self._hotspot(4, combining=True)
        assert result.final_value == result.n_procs

    def test_combining_collapses_hot_port_traffic(self):
        with_c = self._hotspot(5, combining=True)
        without = self._hotspot(5, combining=False)
        assert with_c.memory_arrivals < without.memory_arrivals
        assert with_c.serialization_factor < 0.5
        assert without.serialization_factor == 1.0

    def test_combining_bounds_latency_growth(self):
        small = self._hotspot(3, combining=True)
        large = self._hotspot(6, combining=True)
        small_nc = self._hotspot(3, combining=False)
        large_nc = self._hotspot(6, combining=False)
        growth_c = large.max_round_trip / small.max_round_trip
        growth_nc = large_nc.max_round_trip / small_nc.max_round_trip
        assert growth_c < growth_nc  # combining turns ~n into ~log n

    def test_adds_bounded_by_log_n(self):
        result = self._hotspot(5, combining=True)
        # A full combine tree performs n-1 adds total; each *reference*
        # sees at most log2(n) of them on its path.
        assert result.combines <= result.n_procs - 1
        assert result.splits == result.combines


class TestVLIW:
    def _profile(self):
        interp = Interpreter(build_sum_loop())
        interp.run(12)
        return interp

    def test_schedule_length_shrinks_then_flattens(self):
        interp = self._profile()
        rows = registry.create("vliw").width_sweep(interp,
                                                   [1, 2, 4, 8, 16, 64])
        cycles = [c for _, c, _ in rows]
        assert cycles[0] > cycles[2]  # width helps at first
        assert cycles[-1] == cycles[-2]  # ...then flattens (small-scale ||ism)
        # Even infinite width cannot beat the critical path.
        assert cycles[-1] >= interp.critical_path

    def test_latency_surprise_stalls_whole_machine(self):
        interp = Interpreter(build_array_pipeline())
        interp.run(8)
        schedule = registry.create("vliw", issue_width=8,
                                   assumed_latency=2).compile(interp)
        on_time = schedule.execution_time(actual_latency=2)
        late = schedule.execution_time(actual_latency=20)
        assert late > on_time
        assert late - on_time == schedule.n_memory_ops * 18

    def test_width_one_equals_total_ops(self):
        interp = self._profile()
        assert schedule_length(interp.parallelism_profile, 1) == (
            interp.instructions_executed
        )


class TestConnectionMachine:
    def test_communication_dominates_on_random_graphs(self):
        model = registry.create("connection_machine", groups_log2=8)
        result = model.run_graph_workload(rounds=4, messages_per_group=1)
        assert result.comm_fraction > 0.9  # the paper's "90%? 99%?"

    def test_neighbor_pattern_is_cheap(self):
        model = registry.create("connection_machine", groups_log2=8)
        random_result = model.run_graph_workload(rounds=4, pattern="random")
        neighbor_result = model.run_graph_workload(rounds=4, pattern="neighbor")
        assert neighbor_result.comm_time < random_result.comm_time
        assert neighbor_result.mean_hops == 1.0

    def test_mean_hops_near_half_dimensions(self):
        model = registry.create("connection_machine", groups_log2=10)
        result = model.run_graph_workload(rounds=2, pattern="random")
        assert result.mean_hops == pytest.approx(5.0, abs=0.5)

    def test_alu_speed_is_irrelevant(self):
        t_fast = registry.create("connection_machine", groups_log2=8,
                                 word_bits=1).run_graph_workload(rounds=4)
        t_slow = registry.create("connection_machine", groups_log2=8,
                                 word_bits=32).run_graph_workload(rounds=4)
        # A 32x faster ALU changes total time by well under 10%.
        assert t_slow.total_time < 1.1 * t_fast.total_time


class TestIlliacIV:
    def test_opposite_directions_serialize(self):
        model = IlliacIV()
        assert model.shifts_needed([(0, 1)]) == 1
        assert model.shifts_needed([(0, 1), (0, -1)]) == 2  # east and west

    def test_everyone_waits_for_farthest(self):
        model = IlliacIV()
        assert model.shifts_needed([(0, 1), (3, 0)]) == 4

    def test_empty_transfer_set(self):
        assert IlliacIV().shifts_needed([]) == 0


class TestRemovedShims:
    """The PR 2 deprecation shims are gone; the one-release ``__getattr__``
    stub names the registry replacement instead of a bare ImportError."""

    @pytest.mark.parametrize("name", [
        "build_cmmp", "crossbar_scaling_table", "semaphore_cost",
        "build_cmstar", "locality_sweep", "build_hep", "saturation_table",
        "producer_consumer_traffic", "run_hotspot", "hotspot_sweep",
        "ConnectionMachineModel", "IlliacIVModel", "VLIWModel",
    ])
    def test_removed_names_raise_with_migration_hint(self, name):
        import repro.machines as machines
        with pytest.raises(AttributeError, match="removed"):
            getattr(machines, name)
        try:
            getattr(machines, name)
        except AttributeError as err:
            message = str(err)
        assert name in message
        assert "registry" in message or "repro.exp" in message

    def test_import_of_removed_name_fails(self):
        with pytest.raises(ImportError):
            from repro.machines import run_hotspot  # noqa: F401

    def test_unknown_attribute_still_plain(self):
        import repro.machines as machines
        with pytest.raises(AttributeError, match="no attribute"):
            machines.definitely_not_a_thing
