"""Tests for the survey machine models (C.mmp, Cm*, Ultracomputer, VLIW,
Connection Machine / Illiac IV)."""

import pytest

from repro.dataflow import Interpreter
from repro.machines import (
    CMConfig,
    ConnectionMachineModel,
    IlliacIVModel,
    VLIWModel,
    build_cmstar,
    crossbar_scaling_table,
    locality_sweep,
    run_hotspot,
    schedule_length,
    semaphore_cost,
)
from repro.workloads.handbuilt import build_array_pipeline, build_sum_loop


class TestCmmp:
    def test_cost_grows_quadratically_latency_stays_flat(self):
        rows = crossbar_scaling_table([2, 4, 8], workload_iterations=10)
        ns = [row[0] for row in rows]
        costs = [row[1] for row in rows]
        latencies = [row[2] for row in rows]
        assert costs == [n * n for n in ns]
        # Latency stays within a small constant factor while cost 16x's.
        assert max(latencies) < 4 * min(latencies)

    def test_semaphore_costs_much_more_than_alu(self):
        cycles, alu, ratio = semaphore_cost(n_procs=4, increments=8)
        assert ratio > 10  # "rather high" relative to an ALU op


class TestCmstar:
    def test_utilization_falls_with_remote_fraction(self):
        rows = locality_sweep([0.0, 0.2, 0.5], n_clusters=2, cluster_size=2,
                              n_refs=30)
        utils = [u for _, u, _ in rows]
        assert utils[0] > utils[1] > utils[2]

    def test_intercluster_hurts_more_than_intracluster(self):
        intra = locality_sweep([0.5], n_clusters=2, cluster_size=2,
                               n_refs=30, remote_kind="intracluster")
        inter = locality_sweep([0.5], n_clusters=2, cluster_size=2,
                               n_refs=30, remote_kind="intercluster")
        assert inter[0][1] < intra[0][1]

    def test_prediction_tracks_measurement(self):
        rows = locality_sweep([0.0, 0.3], n_clusters=2, cluster_size=2,
                              n_refs=40)
        for _, measured, predicted in rows:
            assert measured == pytest.approx(predicted, rel=0.35)

    def test_local_references_bypass_kmap(self):
        machine = build_cmstar(n_clusters=2, cluster_size=2)
        from repro.machines.cmstar import locality_kernel
        machine.add_processor(locality_kernel(0, 4, 2, 20, 0.0), regs={1: 0})
        machine.run()
        network = machine.memory.network
        assert network.counters["local"] > 0
        assert network.counters.get("intra_cluster") == 0
        assert network.counters.get("inter_cluster") == 0


class TestUltracomputer:
    def test_fetch_and_add_sums_correctly(self):
        result = run_hotspot(4, combining=True)
        assert result.final_value == result.n_procs

    def test_combining_collapses_hot_port_traffic(self):
        with_c = run_hotspot(5, combining=True)
        without = run_hotspot(5, combining=False)
        assert with_c.memory_arrivals < without.memory_arrivals
        assert with_c.serialization_factor < 0.5
        assert without.serialization_factor == 1.0

    def test_combining_bounds_latency_growth(self):
        small = run_hotspot(3, combining=True)
        large = run_hotspot(6, combining=True)
        small_nc = run_hotspot(3, combining=False)
        large_nc = run_hotspot(6, combining=False)
        growth_c = large.max_round_trip / small.max_round_trip
        growth_nc = large_nc.max_round_trip / small_nc.max_round_trip
        assert growth_c < growth_nc  # combining turns ~n into ~log n

    def test_adds_bounded_by_log_n(self):
        result = run_hotspot(5, combining=True)
        # A full combine tree performs n-1 adds total; each *reference*
        # sees at most log2(n) of them on its path.
        assert result.combines <= result.n_procs - 1
        assert result.splits == result.combines


class TestVLIW:
    def _profile(self):
        interp = Interpreter(build_sum_loop())
        interp.run(12)
        return interp

    def test_schedule_length_shrinks_then_flattens(self):
        interp = self._profile()
        rows = VLIWModel().width_sweep(interp, [1, 2, 4, 8, 16, 64])
        cycles = [c for _, c, _ in rows]
        assert cycles[0] > cycles[2]  # width helps at first
        assert cycles[-1] == cycles[-2]  # ...then flattens (small-scale ||ism)
        # Even infinite width cannot beat the critical path.
        assert cycles[-1] >= interp.critical_path

    def test_latency_surprise_stalls_whole_machine(self):
        interp = Interpreter(build_array_pipeline())
        interp.run(8)
        schedule = VLIWModel(issue_width=8, assumed_latency=2).compile(interp)
        on_time = schedule.execution_time(actual_latency=2)
        late = schedule.execution_time(actual_latency=20)
        assert late > on_time
        assert late - on_time == schedule.n_memory_ops * 18

    def test_width_one_equals_total_ops(self):
        interp = self._profile()
        assert schedule_length(interp.parallelism_profile, 1) == (
            interp.instructions_executed
        )


class TestConnectionMachine:
    def test_communication_dominates_on_random_graphs(self):
        model = ConnectionMachineModel(CMConfig(groups_log2=8))
        result = model.run_graph_workload(rounds=4, messages_per_group=1)
        assert result.comm_fraction > 0.9  # the paper's "90%? 99%?"

    def test_neighbor_pattern_is_cheap(self):
        model = ConnectionMachineModel(CMConfig(groups_log2=8))
        random_result = model.run_graph_workload(rounds=4, pattern="random")
        neighbor_result = model.run_graph_workload(rounds=4, pattern="neighbor")
        assert neighbor_result.comm_time < random_result.comm_time
        assert neighbor_result.mean_hops == 1.0

    def test_mean_hops_near_half_dimensions(self):
        model = ConnectionMachineModel(CMConfig(groups_log2=10))
        result = model.run_graph_workload(rounds=2, pattern="random")
        assert result.mean_hops == pytest.approx(5.0, abs=0.5)

    def test_alu_speed_is_irrelevant(self):
        fast = CMConfig(groups_log2=8, word_bits=1)
        slow = CMConfig(groups_log2=8, word_bits=32)
        t_fast = ConnectionMachineModel(fast).run_graph_workload(rounds=4)
        t_slow = ConnectionMachineModel(slow).run_graph_workload(rounds=4)
        # A 32x faster ALU changes total time by well under 10%.
        assert t_slow.total_time < 1.1 * t_fast.total_time


class TestIlliacIV:
    def test_opposite_directions_serialize(self):
        model = IlliacIVModel()
        assert model.shifts_needed([(0, 1)]) == 1
        assert model.shifts_needed([(0, 1), (0, -1)]) == 2  # east and west

    def test_everyone_waits_for_farthest(self):
        model = IlliacIVModel()
        assert model.shifts_needed([(0, 1), (3, 0)]) == 4

    def test_empty_transfer_set(self):
        assert IlliacIVModel().shifts_needed([]) == 0
