"""Tests for the Id-like front end: lexer, parser, compiler, execution."""

import math

import pytest

from repro.common import CompileError
from repro.dataflow import Interpreter, run_program
from repro.lang import (
    BinOp,
    Call,
    If,
    Literal,
    Loop,
    Var,
    compile_source,
    free_vars,
    parse,
    parse_expression,
    tokenize,
)


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("def f(x) = x + 1;")
        kinds = [t.kind for t in tokens]
        assert kinds == ["keyword", "name", "op", "name", "op", "op",
                         "name", "op", "number", "op", "eof"]

    def test_arrow_and_comparisons(self):
        tokens = tokenize("a <- b <= c == d")
        ops = [t.text for t in tokens if t.kind == "op"]
        assert ops == ["<-", "<=", "=="]

    def test_numbers(self):
        tokens = tokenize("1 2.5 3e2 4.5e-1")
        values = [t.text for t in tokens if t.kind == "number"]
        assert values == ["1", "2.5", "3e2", "4.5e-1"]

    def test_comments(self):
        tokens = tokenize("x // comment\ny ;; also\nz")
        names = [t.text for t in tokens if t.kind == "name"]
        assert names == ["x", "y", "z"]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens[:3]] == [1, 2, 3]

    def test_bad_character(self):
        with pytest.raises(CompileError, match="unexpected character"):
            tokenize("a @ b")


class TestParser:
    def test_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, BinOp) and expr.op == "+"
        assert isinstance(expr.right, BinOp) and expr.right.op == "*"

    def test_comparison_binds_looser_than_arith(self):
        expr = parse_expression("a + 1 < b * 2")
        assert expr.op == "<"

    def test_if_expression(self):
        expr = parse_expression("if a < b then a else b")
        assert isinstance(expr, If)

    def test_call_and_index(self):
        expr = parse_expression("f(a, g(b))[i]")
        assert expr.__class__.__name__ == "Index"
        assert isinstance(expr.array, Call)

    def test_loop_for_form(self):
        expr = parse_expression(
            "(initial s <- 0 for i from 1 to n do new s <- s + i return s)"
        )
        assert isinstance(expr, Loop)
        assert expr.index == "i"
        assert expr.updates == [("s", expr.updates[0][1])]

    def test_loop_while_form(self):
        expr = parse_expression(
            "(initial x <- n while x > 1 do new x <- x / 2 return x)"
        )
        assert isinstance(expr, Loop)
        assert expr.index is None and expr.cond is not None

    def test_new_without_initial_rejected(self):
        with pytest.raises(CompileError, match="no matching initial"):
            parse_expression(
                "(initial s <- 0 for i from 1 to n do new q <- 1 return s)"
            )

    def test_duplicate_params_rejected(self):
        with pytest.raises(CompileError, match="duplicate parameter"):
            parse("def f(x, x) = x;")

    def test_free_vars(self):
        expr = parse_expression(
            "(initial s <- a for i from 1 to n do new s <- s + b return s)"
        )
        assert free_vars(expr) == {"a", "b", "n"}

    def test_missing_semicolon(self):
        with pytest.raises(CompileError, match="expected"):
            parse("def f(x) = x")


class TestCompileAndRun:
    def run_src(self, source, *args, entry=None):
        return run_program(compile_source(source, entry=entry), *args)

    def test_arithmetic(self):
        assert self.run_src("def f(x, y) = (x + y) * (x - y);", 9, 4) == 65

    def test_immediate_folding(self):
        program = compile_source("def f(x) = 2 * x + 1;")
        assert run_program(program, 10) == 21

    def test_constant_folding(self):
        assert self.run_src("def f(x) = x + 2 * 3;", 1) == 7

    def test_builtins(self):
        assert self.run_src("def f(x) = sqrt(x);", 49.0) == 7.0
        assert self.run_src("def f(x) = min(x, 3);", 9) == 3
        assert self.run_src("def f(x) = abs(0 - x);", 5) == 5

    def test_conditional(self):
        source = "def f(x, y) = if x < y then y - x else x - y;"
        assert self.run_src(source, 3, 10) == 7
        assert self.run_src(source, 10, 3) == 7

    def test_conditional_with_constants(self):
        source = "def f(x) = if x > 0 then 1 else 0 - 1;"
        assert self.run_src(source, 5) == 1
        assert self.run_src(source, -5) == -1

    def test_nested_conditionals(self):
        source = """
        def sign(x) = if x > 0 then 1 else if x == 0 then 0 else 0 - 1;
        """
        assert self.run_src(source, 42) == 1
        assert self.run_src(source, 0) == 0
        assert self.run_src(source, -9) == -1

    def test_let(self):
        source = "def f(x) = let a = x + 1; b = a * 2 in a + b;"
        assert self.run_src(source, 3) == 4 + 8

    def test_call_between_defs(self):
        source = """
        def square(x) = x * x;
        def f(x) = square(x) + square(x + 1);
        """
        assert self.run_src(source, 3, entry="f") == 9 + 16

    def test_recursion(self):
        source = "def fib(n) = if n < 2 then n else fib(n - 1) + fib(n - 2);"
        assert self.run_src(source, 10) == 55

    def test_for_loop(self):
        source = """
        def sum_to(n) =
          (initial s <- 0
           for i from 1 to n do
             new s <- s + i
           return s);
        """
        for n in (0, 1, 7, 30):
            assert self.run_src(source, n) == n * (n + 1) // 2

    def test_while_loop(self):
        source = """
        def halvings(n) =
          (initial x <- n; c <- 0
           while x > 1 do
             new x <- x / 2;
             new c <- c + 1
           return c);
        """
        assert self.run_src(source, 1) == 0
        assert self.run_src(source, 16) == 4
        assert self.run_src(source, 100) == 7  # 100/2/2/... real division

    def test_loop_invariants_circulate(self):
        source = """
        def f(a, n) =
          (initial s <- 0
           for i from 1 to n do
             new s <- s + a
           return s);
        """
        assert self.run_src(source, 5, 4) == 20

    def test_nested_loops(self):
        source = """
        def f(n) =
          (initial total <- 0
           for i from 1 to n do
             new total <- total +
               (initial s <- 0
                for j from 1 to i do
                  new s <- s + j
                return s)
           return total);
        """
        expected = sum(j * (j + 1) // 2 for j in range(1, 6))
        assert self.run_src(source, 5) == expected

    def test_loop_inside_conditional(self):
        source = """
        def f(x, n) =
          if x > 0
          then (initial s <- 0 for i from 1 to n do new s <- s + i return s)
          else 0 - 1;
        """
        assert self.run_src(source, 1, 4) == 10
        assert self.run_src(source, -1, 4) == -1

    def test_conditional_inside_loop(self):
        source = """
        def count_even(n) =
          (initial c <- 0
           for i from 1 to n do
             new c <- c + (if i % 2 == 0 then 1 else 0)
           return c);
        """
        assert self.run_src(source, 10) == 5

    def test_arrays_producer_consumer(self):
        source = """
        def f(n) =
          let a = array(n) in
          let done =
            (initial k <- 0
             while k < n do
               a[k] <- k * k;
               new k <- k + 1
             return k) in
          (initial s <- 0; t <- done
           for i from 1 to n do
             new s <- s + a[i - 1]
           return s);
        """
        assert self.run_src(source, 6) == sum(k * k for k in range(6))

    def test_call_in_loop_body(self):
        source = """
        def square(x) = x * x;
        def f(n) =
          (initial s <- 0
           for i from 1 to n do
             new s <- s + square(i)
           return s);
        """
        assert self.run_src(source, 4, entry="f") == 1 + 4 + 9 + 16

    def test_boolean_ops(self):
        source = "def f(x, y) = if x > 0 and y > 0 then 1 else 0;"
        assert self.run_src(source, 1, 1) == 1
        assert self.run_src(source, 1, -1) == 0
        source = "def f(x, y) = if x > 0 or y > 0 then 1 else 0;"
        assert self.run_src(source, -1, 1) == 1

    def test_unknown_variable(self):
        with pytest.raises(CompileError, match="undefined variable"):
            compile_source("def f(x) = y;")

    def test_unknown_function(self):
        with pytest.raises(CompileError, match="unknown function"):
            compile_source("def f(x) = g(x);")

    def test_call_arity_error(self):
        with pytest.raises(CompileError, match="takes 1"):
            compile_source("def g(x) = x;\ndef f(x) = g(x, x);")


class TestTrapezoid:
    """The paper's own program (Fig 2-2), verbatim in spirit."""

    SOURCE = """
    def f(x) = 1 / (1 + x * x);

    def trapezoid(a, b, n, h) =
      (initial s <- (f(a) + f(b)) / 2;
               x <- a + h
       for i from 1 to n - 1 do
         new x <- x + h;
         new s <- s + f(x)
       return s) * h;
    """

    def test_matches_numeric_integration(self):
        program = compile_source(self.SOURCE, entry="trapezoid")
        a, b, n = 0.0, 1.0, 32
        h = (b - a) / n
        result = run_program(program, a, b, n, h)
        # Trapezoidal rule for arctan'(x): integral of 1/(1+x^2) = pi/4.
        assert result == pytest.approx(math.pi / 4, abs=1e-3)

    def test_matches_reference_trapezoid(self):
        import numpy as np

        program = compile_source(self.SOURCE, entry="trapezoid")
        a, b, n = 0.0, 2.0, 64
        h = (b - a) / n
        result = run_program(program, a, b, n, h)
        xs = np.linspace(a, b, n + 1)
        expected = np.trapezoid(1 / (1 + xs * xs), xs)
        assert result == pytest.approx(expected, rel=1e-12)

    def test_graph_has_fig_2_2_shape(self):
        from repro.graph import Opcode, format_program

        program = compile_source(self.SOURCE, entry="trapezoid")
        loops = [b for b in program.blocks.values() if b.kind == "loop"]
        assert len(loops) == 1
        loop = loops[0]
        opcodes = [i.opcode for i in loop]
        assert Opcode.D in opcodes
        assert Opcode.D_INV in opcodes
        assert Opcode.L_INV in opcodes
        assert Opcode.SWITCH in opcodes
        parent = program.block("trapezoid")
        assert sum(1 for i in parent if i.opcode == Opcode.L) == len(
            loop.param_targets
        )
        # The loop invokes f per iteration: a CALL inside the loop block.
        assert Opcode.CALL in opcodes
        assert "trapezoid" in format_program(program)

    def test_parallelism_profile_shows_loop_unfolding(self):
        program = compile_source(self.SOURCE, entry="trapezoid")
        interp = Interpreter(program)
        interp.run(0.0, 1.0, 64, 1.0 / 64)
        # 64 iterations, each calling f: average parallelism well above 1.
        assert interp.average_parallelism() > 2.0
