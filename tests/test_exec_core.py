"""Direct unit tests of the shared opcode semantics (exec_core)."""

import pytest

from repro.common import MachineError
from repro.dataflow import Tag
from repro.dataflow.exec_core import (
    ProgramResult,
    Send,
    StructureAlloc,
    StructureRead,
    StructureWrite,
    assemble_operands,
    execute,
)
from repro.dataflow.values import Continuation, FunctionRef, StructureRef
from repro.graph import Destination, Instruction, Opcode, ProgramBuilder


def minimal_program():
    pb = ProgramBuilder()
    b = pb.procedure("f")
    ident = b.emit(Opcode.IDENT)
    ret = b.emit(Opcode.RETURN)
    b.wire(ident, ret, 0)
    b.param((ident, 0))
    return pb.build()


ROOT = Tag(None, "f", 0, 1)


class TestAssembleOperands:
    def test_plain(self):
        inst = Instruction(Opcode.ADD)
        assert assemble_operands(inst, {0: 2, 1: 3}) == [2, 3]

    def test_immediate_folded_in(self):
        inst = Instruction(Opcode.SUB, constant=1, constant_port=1)
        assert assemble_operands(inst, {0: 10}) == [10, 1]

    def test_immediate_on_port_zero(self):
        inst = Instruction(Opcode.SUB, constant=100, constant_port=0)
        assert assemble_operands(inst, {1: 1}) == [100, 1]

    def test_missing_operand_raises(self):
        inst = Instruction(Opcode.ADD)
        with pytest.raises(MachineError, match="without operand"):
            assemble_operands(inst, {0: 2})


class TestPureExecution:
    def test_add_fans_out(self):
        program = minimal_program()
        inst = Instruction(Opcode.ADD,
                           dests=(Destination(0, 0), Destination(1, 0)))
        effects = execute(program, inst, ROOT, [2, 3])
        assert effects == [
            Send(ROOT.at_statement(0), 0, 5),
            Send(ROOT.at_statement(1), 0, 5),
        ]

    def test_unary(self):
        program = minimal_program()
        inst = Instruction(Opcode.NEG, dests=(Destination(0, 0),))
        (effect,) = execute(program, inst, ROOT, [7])
        assert effect.value == -7

    def test_type_error_carries_tag(self):
        program = minimal_program()
        inst = Instruction(Opcode.ADD, dests=(Destination(0, 0),))
        with pytest.raises(MachineError, match="add failed"):
            execute(program, inst, ROOT, [1, "nope"])

    def test_integer_division_stays_exact(self):
        program = minimal_program()
        inst = Instruction(Opcode.DIV, dests=(Destination(0, 0),))
        (a,) = execute(program, inst, ROOT, [10, 2])
        assert a.value == 5 and isinstance(a.value, int)
        (b,) = execute(program, inst, ROOT, [10, 4])
        assert b.value == 2.5


class TestControl:
    def test_switch_routes_by_side(self):
        program = minimal_program()
        inst = Instruction(Opcode.SWITCH, dests=(Destination(0, 0),),
                           dests_false=(Destination(1, 0),))
        (true_effect,) = execute(program, inst, ROOT, ["v", True])
        assert true_effect.tag.statement == 0
        (false_effect,) = execute(program, inst, ROOT, ["v", False])
        assert false_effect.tag.statement == 1

    def test_switch_empty_side_produces_nothing(self):
        program = minimal_program()
        inst = Instruction(Opcode.SWITCH, dests=(Destination(0, 0),))
        assert execute(program, inst, ROOT, ["v", False]) == []

    def test_sink_absorbs(self):
        program = minimal_program()
        inst = Instruction(Opcode.SINK)
        assert execute(program, inst, ROOT, ["anything"]) == []

    def test_gate_passes_data_not_trigger(self):
        program = minimal_program()
        inst = Instruction(Opcode.GATE, dests=(Destination(0, 0),))
        (effect,) = execute(program, inst, ROOT, ["data", "trigger"])
        assert effect.value == "data"

    def test_constant_emits_literal(self):
        program = minimal_program()
        inst = Instruction(Opcode.CONSTANT, literal=42,
                           dests=(Destination(0, 0),))
        (effect,) = execute(program, inst, ROOT, ["trigger"])
        assert effect.value == 42


class TestLinkage:
    def test_dynamic_call_through_function_ref(self):
        program = minimal_program()
        inst = Instruction(Opcode.CALL, arg_count=1,
                           dests=(Destination(1, 0),))
        effects = execute(program, inst, ROOT, [FunctionRef("f"), 99])
        sends = {(e.tag.code_block, e.tag.statement, e.port) for e in effects}
        assert ("f", 0, 0) in sends  # the argument
        assert ("f", 1, 1) in sends  # the continuation
        continuation = [e.value for e in effects
                        if isinstance(e.value, Continuation)][0]
        assert continuation.dests == (Destination(1, 0),)

    def test_dynamic_call_with_non_function_raises(self):
        program = minimal_program()
        inst = Instruction(Opcode.CALL, arg_count=1)
        with pytest.raises(MachineError, match="not a procedure value"):
            execute(program, inst, ROOT, [123, 99])

    def test_call_arity_mismatch_raises(self):
        program = minimal_program()
        inst = Instruction(Opcode.CALL, target_block="f", arg_count=2)
        with pytest.raises(MachineError, match="takes 1"):
            execute(program, inst, ROOT, [1, 2])

    def test_return_to_halt_produces_program_result(self):
        program = minimal_program()
        inst = Instruction(Opcode.RETURN)
        (effect,) = execute(program, inst, ROOT, [5, Continuation.HALT])
        assert effect == ProgramResult(5)

    def test_return_without_continuation_raises(self):
        program = minimal_program()
        inst = Instruction(Opcode.RETURN)
        with pytest.raises(MachineError, match="not a continuation"):
            execute(program, inst, ROOT, [5, "oops"])

    def test_l_inv_at_root_context_raises(self):
        pb = ProgramBuilder()
        main = pb.procedure("m")
        l1 = main.emit(Opcode.L, target_block="loop", site=1, param_index=0)
        ret = main.emit(Opcode.RETURN)
        main.param((l1, 0))
        loop = pb.loop("loop", parent_block="m")
        ident = loop.emit(Opcode.IDENT)
        exit_ = loop.emit(Opcode.L_INV, param_index=0)
        loop.wire(ident, exit_, 0)
        loop.param((ident, 0))
        loop.exit((ret, 0))
        program = pb.build()
        inst = program.block("loop").instruction(exit_)
        bad_tag = Tag(None, "loop", exit_, 1)  # no enclosing context
        with pytest.raises(MachineError, match="no enclosing context"):
            execute(program, inst, bad_tag, [0])


class TestStructureEffects:
    def test_fetch_effect_carries_reply_arcs(self):
        program = minimal_program()
        ref = StructureRef(sid=9, size=4)
        inst = Instruction(Opcode.I_FETCH, dests=(Destination(1, 0),))
        (effect,) = execute(program, inst, ROOT, [ref, 2])
        assert isinstance(effect, StructureRead)
        assert effect.index == 2
        assert effect.replies == ((ROOT.at_statement(1), 0),)

    def test_store_emits_write_plus_issue_signal(self):
        program = minimal_program()
        ref = StructureRef(sid=9, size=4)
        inst = Instruction(Opcode.I_STORE, dests=(Destination(0, 0),))
        write, signal = execute(program, inst, ROOT, [ref, 1, "v"])
        assert isinstance(write, StructureWrite)
        assert write.value == "v"
        assert isinstance(signal, Send)

    def test_alloc_checks_size(self):
        program = minimal_program()
        inst = Instruction(Opcode.I_ALLOC, dests=(Destination(0, 0),))
        (effect,) = execute(program, inst, ROOT, [16])
        assert isinstance(effect, StructureAlloc) and effect.size == 16
        for bad in (-1, 2.5, True, "x"):
            with pytest.raises(MachineError, match="bad size"):
                execute(program, inst, ROOT, [bad])

    def test_fetch_on_non_ref_raises(self):
        program = minimal_program()
        inst = Instruction(Opcode.I_FETCH)
        with pytest.raises(MachineError, match="non-structure"):
            execute(program, inst, ROOT, [42, 0])

    def test_out_of_bounds_index_raises(self):
        program = minimal_program()
        ref = StructureRef(sid=1, size=2)
        inst = Instruction(Opcode.I_FETCH, dests=(Destination(0, 0),))
        with pytest.raises(Exception):
            execute(program, inst, ROOT, [ref, 5])
