"""The analytic surrogate: solver, model properties, artifacts, CLI."""

import io
import json
import os

import pytest

from repro.cli import main
from repro.exp import Experiment
from repro.predict import (
    CELL_TOLERANCE_REL,
    FEATURES,
    OutOfRegionError,
    PredictError,
    Predictor,
    cells_path,
    default_fits_dir,
    feature_vector,
    fit_cells,
    fit_machine,
    fitted_machines,
    least_squares,
    load_cells,
    load_fit,
    machine_specs,
    nnls,
    render,
    solve_linear,
    write_cells,
    write_fit,
)


# ---------------------------------------------------------------------------
# the hand-rolled solver


class TestSolver:
    def test_solve_linear_known_system(self):
        # 2x + y = 5, x - y = 1  ->  x = 2, y = 1
        solution = solve_linear([[2.0, 1.0], [1.0, -1.0]], [5.0, 1.0])
        assert solution == pytest.approx([2.0, 1.0])

    def test_solve_linear_singular_returns_none(self):
        assert solve_linear([[1.0, 2.0], [2.0, 4.0]], [1.0, 2.0]) is None

    def test_least_squares_square_is_exact_interpolation(self):
        design = [[1.0, x] for x in (1.0, 3.0)]
        coef = least_squares(design, [5.0, 11.0])  # y = 2 + 3x
        assert coef == pytest.approx([2.0, 3.0])

    def test_least_squares_overdetermined_recovers_line(self):
        design = [[1.0, float(x)] for x in range(10)]
        targets = [7.0 + 0.5 * x for x in range(10)]
        coef = least_squares(design, targets)
        assert coef == pytest.approx([7.0, 0.5], rel=1e-6)

    def test_nnls_clamps_negative_solution(self):
        # Unconstrained best fit of y = -x needs a negative slope; NNLS
        # must zero it rather than go negative.
        design = [[1.0, float(x)] for x in range(5)]
        targets = [-float(x) for x in range(5)]
        coef = nnls(design, targets)
        assert len(coef) == 2
        assert all(c >= 0.0 for c in coef)

    def test_nnls_matches_least_squares_when_positive(self):
        design = [[1.0, float(x)] for x in range(6)]
        targets = [2.0 + 3.0 * x for x in range(6)]
        assert nnls(design, targets) == pytest.approx(
            least_squares(design, targets))

    def test_nnls_is_deterministic(self):
        design = [feature_vector(w, n, lat)
                  for w in (10, 20) for n in (1, 4) for lat in (1, 50)]
        targets = [row[1] * 0.3 + row[3] * 2.0 for row in design]
        assert nnls(design, targets) == nnls(design, targets)


# ---------------------------------------------------------------------------
# model properties over the committed fits


class TestModelProperties:
    def test_feature_vector_length_matches_names(self):
        assert len(feature_vector(10, 4, 8)) == len(FEATURES)

    def test_features_nonnegative(self):
        for work in (0, 1, 125):
            for procs in (1, 4, 16):
                for lat in (0, 1, 100):
                    assert all(f >= 0.0
                               for f in feature_vector(work, procs, lat))

    @pytest.mark.parametrize("machine", fitted_machines())
    def test_predicted_time_monotone_in_latency(self, machine):
        """Non-negative coefficients over latency-monotone features make
        the predicted time non-decreasing in the latency knob."""
        payload = load_fit(default_fits_dir(), machine)
        assert payload is not None, "committed fit artifact missing"
        predictor = Predictor(payload)
        for workload, spec in machine_specs(machine).items():
            knob = {"ttda": "network_latency", "hep": "latency",
                    "cmmp": "memory_time"}[machine]
            low, high = spec.region()[knob]
            times = [
                predictor.query({"workload": workload, knob: value})["time"]
                for value in sorted({low, (low + high) / 2.0, high})
            ]
            assert times == sorted(times)
            assert all(t >= 0.0 for t in times)

    @pytest.mark.parametrize("machine", fitted_machines())
    def test_buckets_sum_to_time(self, machine):
        predictor = Predictor(load_fit(default_fits_dir(), machine))
        answer = predictor.query({"workload": predictor.workloads()[0]})
        assert sum(answer["buckets"].values()) == pytest.approx(
            answer["time"])

    def test_unknown_knob_is_refused(self):
        predictor = Predictor(load_fit(default_fits_dir(), "hep"))
        with pytest.raises(PredictError, match="no knob"):
            predictor.query({"workload": "compute_loop", "bogus": 3})

    def test_out_of_region_raises_with_box(self):
        predictor = Predictor(load_fit(default_fits_dir(), "hep"))
        with pytest.raises(OutOfRegionError) as excinfo:
            predictor.query({"workload": "compute_loop", "latency": 1e9})
        assert "latency" in excinfo.value.region

    def test_extrapolate_answers_out_of_region(self):
        predictor = Predictor(load_fit(default_fits_dir(), "hep"))
        answer = predictor.query(
            {"workload": "compute_loop", "latency": 500},
            extrapolate=True)
        assert not answer["in_region"]
        assert answer["time"] > 0.0


# ---------------------------------------------------------------------------
# artifacts


class TestArtifacts:
    def test_committed_artifacts_round_trip_byte_identically(self):
        """render(json.load(artifact)) must reproduce the file bytes —
        the invariant that lets CI refit and ``diff`` the directory."""
        fits_dir = default_fits_dir()
        names = sorted(os.listdir(fits_dir))
        assert names, "no committed fit artifacts"
        for name in names:
            path = os.path.join(fits_dir, name)
            with open(path, "r", encoding="utf-8") as fh:
                original = fh.read()
            assert render(json.loads(original)) == original, name

    def test_refit_is_deterministic(self, tmp_path):
        """Two from-scratch fits of the same machine are byte-identical
        (the pure-Python solver has a fixed operation order)."""
        first = render(fit_machine("hep"))
        second = render(fit_machine("hep"))
        assert first == second

    def test_write_and_load_round_trip(self, tmp_path):
        payload = fit_machine("hep")
        path = write_fit(payload, str(tmp_path))
        assert os.path.isfile(path)
        loaded = load_fit(str(tmp_path), "hep")
        assert loaded == payload

    def test_load_missing_returns_none(self, tmp_path):
        assert load_fit(str(tmp_path), "nope") is None


# ---------------------------------------------------------------------------
# cell surrogates


def _ratio_run(config):
    # x/(x+1) is outside the polynomial basis span, but its numerator
    # and denominator are integer columns the fitter reproduces exactly.
    x = config["x"]
    return [x, x + 1, x / (x + 1.0)]


def _unfittable_run(config):
    # 2^x over 7 points: outside the polynomial basis span and no ratio
    # of the other columns.
    return [config["x"], float(2 ** config["x"])]


class TestCellSurrogate:
    def test_committed_e07_cells_answer_in_region(self):
        surrogate = load_cells(default_fits_dir(), "e07_trapezoid")
        assert surrogate is not None, "committed e07 cell surrogate missing"
        row = surrogate.value({"intervals": 4})
        assert row is not None
        assert row[0] == 4                      # int column exact
        assert isinstance(row[1], float)
        assert surrogate.value({"intervals": 256}) is None  # out of region
        assert surrogate.value({"intervals": 3}) is None
        assert surrogate.value({"intervals": 8, "extra": 1}) is None

    def test_ratio_fallback_detected(self):
        experiment = Experiment(
            name="ratio", run=_ratio_run,
            grid=[{"x": x} for x in range(1, 8)])
        payload = fit_cells(experiment)
        kinds = [column["kind"] for column in payload["columns"]]
        assert kinds[2] == "ratio"
        assert payload["columns"][2]["num"] == 0
        assert payload["columns"][2]["den"] == 1
        assert payload["train_error"]["max_rel"] <= CELL_TOLERANCE_REL

    def test_uncoverable_column_is_refused(self):
        experiment = Experiment(
            name="expgrowth", run=_unfittable_run,
            grid=[{"x": x} for x in range(1, 8)])
        with pytest.raises(ValueError, match="refused"):
            fit_cells(experiment)

    def test_written_cells_round_trip(self, tmp_path):
        experiment = Experiment(
            name="ratio", run=_ratio_run,
            grid=[{"x": x} for x in range(1, 8)])
        payload = fit_cells(experiment)
        path = write_cells(payload, str(tmp_path))
        assert path == cells_path(str(tmp_path), "ratio")
        with open(path, "r", encoding="utf-8") as fh:
            written = fh.read()
        assert render(json.loads(written)) == written
        loaded = load_cells(str(tmp_path), "ratio")
        assert loaded.value({"x": 2}) == pytest.approx(_ratio_run({"x": 2}))


# ---------------------------------------------------------------------------
# the CLI surface


class TestPredictCli:
    def test_query_prints_time_and_buckets(self, capsys):
        out = io.StringIO()
        code = main(["predict", "ttda", "workload=matmul", "n_pes=8",
                     "network_latency=20"], out=out)
        assert code == 0
        text = out.getvalue()
        assert "predicted time" in text
        assert "compute" in text

    def test_out_of_region_exits_2(self, capsys):
        out = io.StringIO()
        code = main(["predict", "ttda", "workload=matmul", "n_pes=256"],
                    out=out)
        assert code == 2

    def test_unfitted_machine_exits_1(self, capsys):
        out = io.StringIO()
        code = main(["predict", "vn", "latency=3"], out=out)
        assert code == 1

    def test_extrapolate_answers(self, capsys):
        out = io.StringIO()
        code = main(["predict", "ttda", "workload=matmul", "n_pes=256",
                     "--extrapolate", "--json"], out=out)
        assert code == 0
        answer = json.loads(out.getvalue())
        assert answer["in_region"] is False

    def test_listing_names_fitted_machines(self):
        out = io.StringIO()
        code = main(["predict"], out=out)
        assert code == 0
        text = out.getvalue()
        for machine in fitted_machines():
            assert machine in text

    def test_validate_passes_on_committed_fits(self):
        out = io.StringIO()
        code = main(["predict", "--validate", "--json"], out=out)
        assert code == 0
        report = json.loads(out.getvalue())
        assert report["ok"] is True
        by_name = {entry["machine"]: entry for entry in report["machines"]}
        for machine in fitted_machines():
            assert by_name[machine]["ok"] is True
