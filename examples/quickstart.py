"""Quickstart: compile an Id-like program and run it three ways.

1. Compile source text to a tagged-token dataflow graph.
2. Execute on the reference interpreter (unbounded parallelism).
3. Execute on the timed multi-PE machine and read the measurements.

Run:  python examples/quickstart.py
"""

from repro.dataflow import Interpreter, MachineConfig, TaggedTokenMachine
from repro.graph import format_program
from repro.lang import compile_source

SOURCE = """
def square(x) = x * x;

def sum_of_squares(n) =
  (initial s <- 0
   for i from 1 to n do
     new s <- s + square(i)
   return s);
"""


def main():
    program = compile_source(SOURCE, entry="sum_of_squares")

    print("== Compiled dataflow graph ==")
    print(format_program(program))
    print()

    print("== Reference interpreter (ideal machine) ==")
    interp = Interpreter(program)
    answer = interp.run(10)
    print(f"sum_of_squares(10) = {answer}")
    print(f"instructions executed : {interp.instructions_executed}")
    print(f"critical path (steps) : {interp.critical_path}")
    print(f"average parallelism   : {interp.average_parallelism():.2f}")
    print()

    print("== Timed tagged-token machine, 4 PEs ==")
    machine = TaggedTokenMachine(program, MachineConfig(n_pes=4))
    result = machine.run(10)
    print(f"answer                : {result.value}")
    print(f"completion time       : {result.time:.0f} cycles")
    print(f"mean ALU utilization  : {result.mean_alu_utilization:.3f}")
    print(f"tokens over network   : {result.counters.get('tokens_network', 0)}")
    assert result.value == answer == sum(i * i for i in range(1, 11))


if __name__ == "__main__":
    main()
