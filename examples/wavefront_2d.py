"""Issue 2 on a 2-D array: the wavefront computation.

This is exactly the scenario §1.1 worries about — "consider the case
where the elements are not produced in a regular (i.e., row order or
column order) way": element (i,j) needs (i-1,j) and (i,j-1), so the
computation sweeps diagonally while the code is written as plain nested
row loops.  I-structure presence bits let every row's producer and
consumer run concurrently, deferring exactly the reads that arrive early.

Run:  python examples/wavefront_2d.py
"""

from repro.dataflow import Interpreter, MachineConfig, TaggedTokenMachine
from repro.graph import optimize_program
from repro.lang import compile_source
from repro.workloads import WAVEFRONT, wavefront_reference

N = 10


def main():
    program = compile_source(WAVEFRONT, entry="wavefront")

    print(f"== wavefront over a {N}x{N} I-structure ==")
    interp = Interpreter(program)
    value = interp.run(N)
    expected = wavefront_reference(N)
    print(f"w[n-1][n-1] = {value} (reference {expected})")
    assert value == expected

    deferred = interp.heap.counters["reads_deferred"]
    immediate = interp.heap.counters["reads_immediate"]
    print(f"\nreads that raced ahead of their writer : {deferred}")
    print(f"reads that found the cell present      : {immediate}")
    print("Every deferred read parked once on the cell's deferred list and")
    print("was answered by the eventual write - no retries, no barriers.")

    print("\nideal parallelism profile (diagonal sweep):")
    print(f"  instructions    : {interp.instructions_executed}")
    print(f"  critical path   : {interp.critical_path} steps")
    print(f"  avg parallelism : {interp.average_parallelism():.2f}")

    print("\ntimed machine, optimized graph:")
    optimized = optimize_program(program)
    for n_pes in (1, 4, 16):
        machine = TaggedTokenMachine(optimized, MachineConfig(n_pes=n_pes))
        result = machine.run(N)
        assert result.value == expected
        print(f"  {n_pes:>2} PEs: {result.time:7.0f} cycles "
              f"(ALU util {result.mean_alu_utilization:.3f})")


if __name__ == "__main__":
    main()
