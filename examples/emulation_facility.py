"""Section 3's emulation facility: a 7-cube with table-based routing.

Demonstrates the three flexibility claims of the packet-switch design:
emulated topologies (a 128-node ring embedded at dilation 1), fault
tolerance (traffic rerouted around failed links), and static partitioning
(two independent half-machines).

Run:  python examples/emulation_facility.py
"""

import random

from repro.common import Simulator
from repro.network import (
    HypercubeNetwork,
    build_shortest_path_table,
    emulated_neighbors,
    ring_embedding,
)

DIMENSIONS = 7  # 2^7 = 128 microprogrammable processors, as in the paper


def main():
    print(f"== {2**DIMENSIONS}-node hypercube emulation facility ==\n")

    # 1. Emulated ring topology via Gray-code routing tables.
    ring = ring_embedding(DIMENSIONS)
    hops = [HypercubeNetwork.minimum_hops(a, b)
            for a, b in emulated_neighbors(ring, "ring")]
    print(f"ring embedding: {len(ring)} emulated nodes, "
          f"max {max(hops)} physical hop(s) per ring edge")

    # 2. Fault tolerance: kill links, rebuild tables, traffic flows on.
    rng = random.Random(42)
    sim = Simulator()
    net = HypercubeNetwork(sim, DIMENSIONS)
    edges = sorted({tuple(sorted(e)) for e in net.links})
    failed = rng.sample(edges, 20)
    for a, b in failed:
        net.fail_link(a, b)
    pairs = [(rng.randrange(128), rng.randrange(128)) for _ in range(100)]
    pairs = [(s, d) for s, d in pairs if s != d]
    net.load_routing_table(build_shortest_path_table(net, pairs=pairs))
    received = []
    for port in range(net.n_ports):
        net.attach(port, received.append)
    for s, d in pairs:
        net.send(s, d, None)
    sim.run()
    detours = [p.hops - HypercubeNetwork.minimum_hops(p.src, p.dst)
               for p in received]
    print(f"fault tolerance: {len(failed)} links failed, "
          f"{len(received)}/{len(pairs)} messages delivered, "
          f"mean detour {sum(detours) / len(detours):.2f} hops")

    # 3. Static partitioning into two independent 64-node machines.
    sim2 = Simulator()
    net2 = HypercubeNetwork(sim2, DIMENSIONS)
    net2.set_partitions([set(range(64)), set(range(64, 128))])
    inbox = []
    for port in range(net2.n_ports):
        net2.attach(port, inbox.append)
    net2.send(3, 60, "intra low half")
    net2.send(70, 100, "intra high half")
    sim2.run()
    print(f"partitioning: {len(inbox)} intra-partition messages delivered")
    try:
        net2.send(3, 100, "cross partition")
        print("partitioning: FAILED - cross-partition send was allowed")
    except Exception:
        print("partitioning: cross-partition send correctly refused")


if __name__ == "__main__":
    main()
