"""Figure 2-2, end to end: the paper's own trapezoidal-rule program.

Compiles the ID program of §2.2.1 (integrating f from a to b over n
intervals), prints the compiled loop schema — the L, D, D⁻¹, L⁻¹ and
SWITCH vertices of Figure 2-2 — then executes it on both engines and
checks the answer against scipy.

Run:  python examples/trapezoid_fig_2_2.py
"""

import math

import numpy as np
from scipy.integrate import trapezoid as scipy_trapezoid

from repro.dataflow import Interpreter, MachineConfig, TaggedTokenMachine
from repro.graph import format_program
from repro.lang import compile_source
from repro.workloads import TRAPEZOID


def main():
    program = compile_source(TRAPEZOID, entry="trapezoid")

    print("== The compiled graph (compare with Figure 2-2) ==")
    print(format_program(program))
    print()

    a, b, n = 0.0, 1.0, 64
    h = (b - a) / n

    interp = Interpreter(program)
    value = interp.run(a, b, n, h)
    xs = np.linspace(a, b, n + 1)
    reference = float(scipy_trapezoid(1 / (1 + xs * xs), xs))

    print("== Numeric check ==")
    print(f"dataflow result  : {value:.12f}")
    print(f"scipy trapezoid  : {reference:.12f}")
    print(f"pi/4             : {math.pi / 4:.12f}")
    assert abs(value - reference) < 1e-12

    print()
    print("== Loop unfolding in tag space ==")
    print(f"instructions executed : {interp.instructions_executed}")
    print(f"critical path         : {interp.critical_path} steps")
    print(f"average parallelism   : {interp.average_parallelism():.2f}")
    print("parallelism profile (first 20 steps):")
    for step in sorted(interp.parallelism_profile)[:20]:
        count = interp.parallelism_profile[step]
        print(f"  t={step:<4} {'#' * count} ({count})")

    print()
    print("== On the timed machine ==")
    for n_pes in (1, 2, 4, 8):
        machine = TaggedTokenMachine(program, MachineConfig(n_pes=n_pes))
        result = machine.run(a, b, n, h)
        print(
            f"  {n_pes:>2} PEs: {result.time:8.0f} cycles, "
            f"ALU util {result.mean_alu_utilization:.3f}"
        )


if __name__ == "__main__":
    main()
