"""A tour of §1.2: run every surveyed machine and print its verdict.

One representative measurement per machine — C.mmp's quadratic crossbar,
Cm*'s locality ceiling, the Ultracomputer's combining switches, the VLIW
width plateau, and the Connection Machine's communication dominance —
each annotated with the paper's sentence it reproduces.

Run:  python examples/survey_tour.py
"""

from repro.dataflow import Interpreter
from repro.machines import (
    CMConfig,
    ConnectionMachineModel,
    VLIWModel,
    crossbar_scaling_table,
    locality_sweep,
    run_hotspot,
    semaphore_cost,
)
from repro.workloads import compile_workload


def cmmp():
    print("C.mmp (§1.2.1) — 'cost ... grows at least quadratically'")
    rows = crossbar_scaling_table([2, 4, 8, 16], workload_iterations=12)
    for n, cost, latency, util in rows:
        print(f"  {n:>2} ports: {cost:>4} crosspoints, "
              f"latency {latency:5.1f}, utilization {util:.2f}")
    cycles, _, ratio = semaphore_cost(n_procs=4, increments=8)
    print(f"  semaphore: {cycles:.1f} cycles per critical section "
          f"({ratio:.0f}x an ALU op)\n")


def cmstar():
    print("Cm* (§1.2.2) — 'greater interprocessor distances translated "
          "into ... decreased processor utilization'")
    for fraction, util, _ in locality_sweep([0.0, 0.1, 0.3, 0.5],
                                            n_clusters=2, cluster_size=2,
                                            n_refs=30):
        print(f"  {fraction * 100:4.0f}% remote refs -> utilization {util:.3f}")
    print()


def ultracomputer():
    print("NYU Ultracomputer (§1.2.3) — combining FETCH-AND-ADD")
    for combining in (False, True):
        result = run_hotspot(5, combining=combining)
        label = "with combining   " if combining else "without combining"
        print(f"  {label}: {result.memory_arrivals:>3} hot-port arrivals "
              f"for {result.n_procs} processors, "
              f"worst round trip {result.max_round_trip:.0f}")
    print()


def vliw():
    print("VLIW (§1.2.4) — 'small scale (4 to 8) parallelism'")
    program, _, args = compile_workload("trapezoid")
    interp = Interpreter(program)
    interp.run(*args)
    for width, cycles, speedup in VLIWModel().width_sweep(
            interp, [1, 4, 8, 32]):
        print(f"  width {width:>2}: {cycles:>5} cycles "
              f"(speedup {speedup:.2f})")
    print()


def connection_machine():
    print("Connection Machine (§1.2.5) — 'almost all (90%?, 99%?) of its "
          "time communicating'")
    model = ConnectionMachineModel(CMConfig(groups_log2=9))
    for pattern in ("neighbor", "random"):
        result = model.run_graph_workload(rounds=5, pattern=pattern)
        print(f"  {pattern:>8} traffic: {result.comm_fraction * 100:5.1f}% "
              "of time in communication")
    print()


def main():
    cmmp()
    cmstar()
    ultracomputer()
    vliw()
    connection_machine()
    print("Each machine fails one of the paper's two issues; "
          "see benchmarks/ for the full experiments E1-E15.")


if __name__ == "__main__":
    main()
