"""A tour of §1.2: run every surveyed machine and print its verdict.

One representative measurement per machine — C.mmp's quadratic crossbar,
Cm*'s locality ceiling, the Ultracomputer's combining switches, the VLIW
width plateau, and the Connection Machine's communication dominance —
each annotated with the paper's sentence it reproduces.

Every machine is constructed through the unified registry
(``repro.machines.registry``), the same API the sweep engine uses.

Run:  python examples/survey_tour.py
"""

from repro.dataflow import Interpreter
from repro.machines import registry
from repro.workloads import compile_workload


def cmmp():
    print("C.mmp (§1.2.1) — 'cost ... grows at least quadratically'")
    for ports in (2, 4, 8, 16):
        result = registry.create("cmmp", n_procs=ports).run(
            workload="array_sum", iterations=12)
        print(f"  {ports:>2} ports: {result.metric('crosspoints'):>4} "
              f"crosspoints, latency {result.metric('mean_latency'):5.1f}, "
              f"utilization {result.metric('mean_utilization'):.2f}")
    sem = registry.create("cmmp", n_procs=4).run(workload="semaphore",
                                                 increments=8)
    print(f"  semaphore: {sem.metric('cycles_per_section'):.1f} cycles per "
          f"critical section ({sem.metric('ratio'):.0f}x an ALU op)\n")


def cmstar():
    print("Cm* (§1.2.2) — 'greater interprocessor distances translated "
          "into ... decreased processor utilization'")
    model = registry.create("cmstar", n_clusters=2, cluster_size=2)
    for fraction in (0.0, 0.1, 0.3, 0.5):
        result = model.run(remote_fraction=fraction, n_refs=30)
        print(f"  {fraction * 100:4.0f}% remote refs -> utilization "
              f"{result.metric('utilization'):.3f}")
    print()


def ultracomputer():
    print("NYU Ultracomputer (§1.2.3) — combining FETCH-AND-ADD")
    for combining in (False, True):
        result = registry.create("ultracomputer", stages=5,
                                 combining=combining).run()
        label = "with combining   " if combining else "without combining"
        print(f"  {label}: {result.metric('memory_arrivals'):>3} hot-port "
              f"arrivals for {result.metric('n_procs')} processors, "
              f"worst round trip {result.metric('max_round_trip'):.0f}")
    print()


def vliw():
    print("VLIW (§1.2.4) — 'small scale (4 to 8) parallelism'")
    program, _, args = compile_workload("trapezoid")
    interp = Interpreter(program)
    interp.run(*args)
    for width, cycles, speedup in registry.create("vliw").width_sweep(
            interp, [1, 4, 8, 32]):
        print(f"  width {width:>2}: {cycles:>5} cycles "
              f"(speedup {speedup:.2f})")
    print()


def connection_machine():
    print("Connection Machine (§1.2.5) — 'almost all (90%?, 99%?) of its "
          "time communicating'")
    model = registry.create("connection_machine", groups_log2=9)
    for pattern in ("neighbor", "random"):
        result = model.run_graph_workload(rounds=5, pattern=pattern)
        print(f"  {pattern:>8} traffic: {result.comm_fraction * 100:5.1f}% "
              "of time in communication")
    print()


def main():
    cmmp()
    cmstar()
    ultracomputer()
    vliw()
    connection_machine()
    print("Each machine fails one of the paper's two issues; "
          "see benchmarks/ for the full experiments E1-E15.")


if __name__ == "__main__":
    main()
