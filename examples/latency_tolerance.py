"""Issue 1 live: sweep memory latency under both architectures.

Prints the E1 table — a von Neumann processor's utilization collapsing
with latency while the tagged-token machine shrugs — plus the analytic
model column so you can see the r/(r+L) law emerge.

Run:  python examples/latency_tolerance.py
"""

import sys
import os

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "benchmarks"))

from bench_e01_latency_tolerance import run_experiment  # noqa: E402


def main():
    print(run_experiment())
    print()
    print("Reading the table:")
    print(" * 'vN util' falls as r/(r+L): the processor idles on every")
    print("   reference because the program counter admits one request at")
    print("   a time (the paper's Issue 1).")
    print(" * 'dataflow slowdown' stays near 1: enough enabled activities")
    print("   are in flight to cover the latency, exactly the §2.3 claim.")


if __name__ == "__main__":
    main()
