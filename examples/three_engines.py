"""One source, three machines — and both sides of the argument.

The same Id-like sources run on (1) the untimed U-interpreter, (2) the
timed tagged-token multiprocessor, and (3) a stalling von Neumann
uniprocessor via the sequential backend.  Two workloads are swept over
network latency to show that Issue 1 is about *where the data lives*:

* ``wavefront`` keeps its data in **memory** (an n x n array): the
  uniprocessor stalls on every element and its time grows with latency,
  while the dataflow machine hides the latency behind the diagonal
  parallelism — the paper's headline effect;
* ``count_primes`` keeps its working set in **registers**: the
  uniprocessor barely notices latency, while the dataflow machine pays
  network freight on every token — the locality cost of fine-grain
  dataflow that Arvind's group spent the rest of the decade attacking.

Run:  python examples/three_engines.py
"""

from repro.analysis import Table
from repro.dataflow import Interpreter, MachineConfig, TaggedTokenMachine
from repro.lang import compile_source
from repro.vonneumann import run_sequential
from repro.workloads import PRIMES, WAVEFRONT

LATENCIES = (1, 4, 16, 64)


def sweep(name, source, entry, args, n_pes=8):
    program = compile_source(source, entry=entry)
    interp = Interpreter(program)
    answer = interp.run(*args)
    print(f"{name}{args} = {answer}   "
          f"(avg parallelism {interp.average_parallelism():.1f})")
    table = Table(
        f"{name}: same source on both machines",
        ["latency", "von Neumann time", f"dataflow time ({n_pes} PEs)",
         "dataflow advantage"],
    )
    for latency in LATENCIES:
        vn_value, vn_result = run_sequential(source, args, entry=entry,
                                             latency=latency)
        machine = TaggedTokenMachine(
            program, MachineConfig(n_pes=n_pes, network_latency=latency)
        )
        df_result = machine.run(*args)
        assert vn_value == df_result.value == answer
        table.add_row(latency, vn_result.time, df_result.time,
                      vn_result.time / df_result.time)
    print(table)
    print()


def main():
    sweep("wavefront", WAVEFRONT, "wavefront", (8,))
    print("Memory-resident data: the stalling processor pays the latency")
    print("per element; the dataflow machine hides it (Issue 1, resolved).\n")

    sweep("count_primes", PRIMES, "count_primes", (60,))
    print("Register-resident data: the uniprocessor is latency-immune, and")
    print("the dataflow machine ships every operand through the network -")
    print("token freight is the price of fine-grain generality.  Both rows")
    print("of this story are measured, not asserted.")


if __name__ == "__main__":
    main()
