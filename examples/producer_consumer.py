"""Issue 2 live: three ways to synchronize a producer and a consumer.

The paper's §1.1 example — one routine filling a array, another reading
it — under the three disciplines the paper discusses: a whole-array
barrier, HEP-style per-element busy-waiting, and I-structure deferred
reads.  Prints completion times, overlap, and the busy-wait traffic.

Run:  python examples/producer_consumer.py
"""

from repro.dataflow import Interpreter, MachineConfig, TaggedTokenMachine
from repro.lang import compile_source
from repro.vonneumann import VNMachine, programs
from repro.workloads import PIPELINE

N = 24


def whole_array():
    machine = VNMachine(2, memory="dancehall", latency=2, memory_time=1,
                        retry_backoff=4)
    machine.add_processor(programs.producer_whole_array(100, N, 50))
    machine.add_processor(programs.consumer_whole_array(100, N, 50, 99))
    result = machine.run()
    return result.time, result.counters.get("retries", 0), machine.peek(99)


def per_element_busywait():
    machine = VNMachine(2, memory="dancehall", latency=2, memory_time=1,
                        retry_backoff=4)
    machine.add_processor(programs.producer_per_element(100, N))
    machine.add_processor(programs.consumer_per_element(100, N, 99))
    result = machine.run()
    return result.time, result.counters.get("retries", 0), machine.peek(99)


def istructure():
    program = compile_source(PIPELINE, entry="pipeline")
    machine = TaggedTokenMachine(
        program, MachineConfig(n_pes=4, network_latency=2)
    )
    result = machine.run(N)
    deferred = sum(
        pe.istructure.module.counters["reads_deferred"] for pe in machine.pes
    )
    return result.time, deferred, result.value


def main():
    expected = sum(k * k for k in range(N))
    print(f"producing and consuming a {N}-element array "
          f"(expected sum = {expected})\n")

    t, retries, value = whole_array()
    assert value == expected
    print("whole-array flag (von Neumann)")
    print(f"  time {t:7.0f}   busy-wait retries {retries:5d}   "
          "overlap: none — consumer waits for the flag\n")

    t, retries, value = per_element_busywait()
    assert value == expected
    print("per-element full/empty bits, HEP style (von Neumann)")
    print(f"  time {t:7.0f}   busy-wait retries {retries:5d}   "
          "overlap: yes — paid for in retry traffic\n")

    t, deferred, value = istructure()
    assert value == expected
    print("per-element I-structures (tagged-token dataflow)")
    print(f"  time {t:7.0f}   deferred reads    {deferred:5d}   "
          "overlap: yes — each early read parks once, no retries\n")

    print("The untimed interpreter shows the ideal overlap:")
    interp = Interpreter(compile_source(PIPELINE, entry="pipeline"))
    interp.run(N)
    print(f"  critical path {interp.critical_path} steps for "
          f"{interp.instructions_executed} instructions "
          f"(avg parallelism {interp.average_parallelism():.1f})")


if __name__ == "__main__":
    main()
