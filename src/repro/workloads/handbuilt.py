"""Kernels built directly with the graph builder.

These are the graphs a compiler would produce, written out by hand.  They
serve three purposes: unit-testing the execution engines independently of
the Id front end, seeding the benchmarks with known-shape graphs, and
documenting the loop/call schemata (the D, D⁻¹, L, L⁻¹ arrangement of
Fig 2-2 and the CALL/RETURN continuation protocol).
"""

from ..graph import Opcode, ProgramBuilder

__all__ = [
    "build_add_constant",
    "build_arith_diamond",
    "build_factorial",
    "build_sum_loop",
    "build_store_then_fetch",
    "build_array_pipeline",
]


def build_add_constant(amount=1):
    """``f(x) = x + amount`` — the smallest possible procedure."""
    pb = ProgramBuilder()
    b = pb.procedure("add_const")
    add = b.emit(Opcode.ADD, constant=amount, constant_port=1, name="x+k")
    ret = b.emit(Opcode.RETURN)
    b.wire(add, ret, 0)
    b.param((add, 0))
    return pb.build()


def build_arith_diamond():
    """``f(x, y) = (x + y) * (x - y)`` — exposes two-way parallelism."""
    pb = ProgramBuilder()
    b = pb.procedure("diamond")
    plus = b.emit(Opcode.ADD, name="x+y")
    minus = b.emit(Opcode.SUB, name="x-y")
    times = b.emit(Opcode.MUL, name="product")
    ret = b.emit(Opcode.RETURN)
    b.wire(plus, times, 0)
    b.wire(minus, times, 1)
    b.wire(times, ret, 0)
    b.param((plus, 0), (minus, 0))
    b.param((plus, 1), (minus, 1))
    return pb.build()


def build_factorial():
    """Recursive factorial via the CALL/RETURN continuation protocol.

    ``fact(n) = 1 if n <= 1 else n * fact(n - 1)``
    """
    pb = ProgramBuilder()
    b = pb.procedure("fact")
    pred = b.emit(Opcode.LE, constant=1, constant_port=1, name="n<=1")
    switch = b.emit(Opcode.SWITCH, name="route n")
    sub = b.emit(Opcode.SUB, constant=1, constant_port=1, name="n-1")
    mul = b.emit(Opcode.MUL, name="n*fact(n-1)")
    call = b.emit(Opcode.CALL, target_block="fact", arg_count=1, name="recurse")
    one = b.emit(Opcode.CONSTANT, literal=1, name="base case")
    ret = b.emit(Opcode.RETURN)
    b.wire(pred, switch, 1)
    b.wire(switch, one, 0, side="true")  # n <= 1: trigger the constant
    b.wire(switch, sub, 0, side="false")  # n > 1: recurse
    b.wire(switch, mul, 0, side="false")
    b.wire(sub, call, 0)
    b.wire(call, mul, 1)
    b.wire(mul, ret, 0)
    b.wire(one, ret, 0)
    b.param((pred, 0), (switch, 0))
    return pb.build()


def build_sum_loop():
    """``sum(n) = 1 + 2 + ... + n`` with the Fig 2-2 loop schema.

    Circulating variables: ``i`` (the counter), ``s`` (the accumulator) and
    the loop-invariant ``n``.  The loop body is its own code block entered
    through L, advanced through D, and exited through D⁻¹/L⁻¹.
    """
    pb = ProgramBuilder()

    main = pb.procedure("sum")
    c_i = main.emit(Opcode.CONSTANT, literal=1, name="i0")
    c_s = main.emit(Opcode.CONSTANT, literal=0, name="s0")
    l_i = main.emit(Opcode.L, target_block="sum$loop", site=100, param_index=0)
    l_s = main.emit(Opcode.L, target_block="sum$loop", site=100, param_index=1)
    l_n = main.emit(Opcode.L, target_block="sum$loop", site=100, param_index=2)
    ret = main.emit(Opcode.RETURN)
    main.wire(c_i, l_i, 0)
    main.wire(c_s, l_s, 0)
    main.param((c_i, 0), (c_s, 0), (l_n, 0))  # n triggers the constants too

    loop = pb.loop("sum$loop", parent_block="sum")
    pred = loop.emit(Opcode.LE, name="i<=n")
    sw_i = loop.emit(Opcode.SWITCH, name="route i")
    sw_s = loop.emit(Opcode.SWITCH, name="route s")
    sw_n = loop.emit(Opcode.SWITCH, name="route n")
    inc = loop.emit(Opcode.ADD, constant=1, constant_port=1, name="i+1")
    acc = loop.emit(Opcode.ADD, name="s+i")
    d_i = loop.emit(Opcode.D, name="D i")
    d_s = loop.emit(Opcode.D, name="D s")
    d_n = loop.emit(Opcode.D, name="D n")
    d_inv = loop.emit(Opcode.D_INV, name="canonicalize s")
    l_inv = loop.emit(Opcode.L_INV, param_index=0, name="exit s")

    loop.wire(pred, sw_i, 1)
    loop.wire(pred, sw_s, 1)
    loop.wire(pred, sw_n, 1)
    # True side: run the body and circulate.
    loop.wire(sw_i, inc, 0, side="true")
    loop.wire(sw_i, acc, 1, side="true")
    loop.wire(sw_s, acc, 0, side="true")
    loop.wire(sw_n, d_n, 0, side="true")
    loop.wire(inc, d_i, 0)
    loop.wire(acc, d_s, 0)
    # Back edges: D re-delivers to the loop entry arcs at iteration i+1.
    loop.wire(d_i, pred, 0)
    loop.wire(d_i, sw_i, 0)
    loop.wire(d_s, sw_s, 0)
    loop.wire(d_n, pred, 1)
    loop.wire(d_n, sw_n, 0)
    # False side: s leaves through D⁻¹ then L⁻¹; i and n are discarded.
    loop.wire(sw_s, d_inv, 0, side="false")
    loop.wire(d_inv, l_inv, 0)

    loop.param((pred, 0), (sw_i, 0))  # i
    loop.param((sw_s, 0))  # s
    loop.param((pred, 1), (sw_n, 0))  # n
    loop.exit((ret, 0))

    return pb.build()


def build_store_then_fetch():
    """Reads that race ahead of the write: the I-structure discipline.

    ``f(size, value)`` allocates a structure, issues a FETCH of cell 0
    *before* the STORE of ``value`` into cell 0 reaches memory, and returns
    the fetched value.  Correct output requires the deferred read list.
    """
    pb = ProgramBuilder()
    b = pb.procedure("store_then_fetch")
    alloc = b.emit(Opcode.I_ALLOC, name="alloc")
    fetch = b.emit(Opcode.I_FETCH, constant=0, constant_port=1, name="read[0]")
    store = b.emit(Opcode.I_STORE, constant=0, constant_port=1, name="write[0]")
    ret = b.emit(Opcode.RETURN)
    b.wire(alloc, fetch, 0)  # listed first: the fetch races ahead
    b.wire(alloc, store, 0)
    b.wire(fetch, ret, 0)
    b.param((alloc, 0))  # size
    b.param((store, 2))  # value
    return pb.build()


def build_array_pipeline():
    """Producer/consumer sharing an I-structure at element granularity.

    ``f(n)`` runs two loops over the *same* structure: a producer storing
    ``k*k`` into cell ``k`` and a consumer summing all cells.  Neither loop
    waits for the other — element-level synchronization comes entirely
    from the presence bits (§1.1 Issue 2, resolved per §2.3).
    Returns ``sum_{k=0}^{n-1} k²``.
    """
    pb = ProgramBuilder()

    main = pb.procedure("pipeline")
    alloc = main.emit(Opcode.I_ALLOC, name="alloc n")
    # Producer loop: circulating k, invariant (ref, n).
    pk0 = main.emit(Opcode.CONSTANT, literal=0, name="k0")
    p_lk = main.emit(Opcode.L, target_block="pipe$prod", site=200, param_index=0)
    p_lr = main.emit(Opcode.L, target_block="pipe$prod", site=200, param_index=1)
    p_ln = main.emit(Opcode.L, target_block="pipe$prod", site=200, param_index=2)
    # Consumer loop: circulating (k, s), invariant (ref, n).
    ck0 = main.emit(Opcode.CONSTANT, literal=0, name="k0")
    cs0 = main.emit(Opcode.CONSTANT, literal=0, name="s0")
    c_lk = main.emit(Opcode.L, target_block="pipe$cons", site=201, param_index=0)
    c_ls = main.emit(Opcode.L, target_block="pipe$cons", site=201, param_index=1)
    c_lr = main.emit(Opcode.L, target_block="pipe$cons", site=201, param_index=2)
    c_ln = main.emit(Opcode.L, target_block="pipe$cons", site=201, param_index=3)
    ret = main.emit(Opcode.RETURN)
    done_sink = main.emit(Opcode.SINK, name="producer done")
    main.wire(alloc, p_lr, 0)
    main.wire(alloc, c_lr, 0)
    main.wire(alloc, pk0, 0)  # the ref also triggers the loop constants
    main.wire(alloc, ck0, 0)
    main.wire(alloc, cs0, 0)
    main.wire(pk0, p_lk, 0)
    main.wire(ck0, c_lk, 0)
    main.wire(cs0, c_ls, 0)
    main.param((alloc, 0), (p_ln, 0), (c_ln, 0))  # n

    prod = pb.loop("pipe$prod", parent_block="pipeline")
    p_pred = prod.emit(Opcode.LT, name="k<n")
    p_swk = prod.emit(Opcode.SWITCH, name="route k")
    p_swr = prod.emit(Opcode.SWITCH, name="route ref")
    p_swn = prod.emit(Opcode.SWITCH, name="route n")
    p_sq = prod.emit(Opcode.MUL, name="k*k")
    p_store = prod.emit(Opcode.I_STORE, name="a[k]=k*k")
    p_inc = prod.emit(Opcode.ADD, constant=1, constant_port=1, name="k+1")
    p_dk = prod.emit(Opcode.D)
    p_dr = prod.emit(Opcode.D)
    p_dn = prod.emit(Opcode.D)
    p_done = prod.emit(Opcode.D_INV, name="producer done signal")
    p_exit = prod.emit(Opcode.L_INV, param_index=0)
    prod.wire(p_pred, p_swk, 1)
    prod.wire(p_pred, p_swr, 1)
    prod.wire(p_pred, p_swn, 1)
    prod.wire(p_swk, p_sq, 0, side="true")
    prod.wire(p_swk, p_sq, 1, side="true")
    prod.wire(p_swk, p_store, 1, side="true")
    prod.wire(p_swk, p_inc, 0, side="true")
    prod.wire(p_swr, p_store, 0, side="true")
    prod.wire(p_sq, p_store, 2)
    prod.wire(p_swn, p_dn, 0, side="true")
    prod.wire(p_inc, p_dk, 0)
    prod.wire(p_swr, p_dr, 0, side="true")
    # wait: ref must circulate *and* feed the store; see arcs above
    prod.wire(p_dk, p_pred, 0)
    prod.wire(p_dk, p_swk, 0)
    prod.wire(p_dr, p_swr, 0)
    prod.wire(p_dn, p_pred, 1)
    prod.wire(p_dn, p_swn, 0)
    prod.wire(p_swn, p_done, 0, side="false")
    prod.wire(p_done, p_exit, 0)
    prod.param((p_pred, 0), (p_swk, 0))  # k
    prod.param((p_swr, 0))  # ref
    prod.param((p_pred, 1), (p_swn, 0))  # n
    # The producer's exit value is a pure completion signal; absorb it.
    prod.exit((done_sink, 0))

    cons = pb.loop("pipe$cons", parent_block="pipeline")
    c_pred = cons.emit(Opcode.LT, name="k<n")
    c_swk = cons.emit(Opcode.SWITCH, name="route k")
    c_sws = cons.emit(Opcode.SWITCH, name="route s")
    c_swr = cons.emit(Opcode.SWITCH, name="route ref")
    c_swn = cons.emit(Opcode.SWITCH, name="route n")
    c_fetch = cons.emit(Opcode.I_FETCH, name="a[k]")
    c_acc = cons.emit(Opcode.ADD, name="s+a[k]")
    c_inc = cons.emit(Opcode.ADD, constant=1, constant_port=1, name="k+1")
    c_dk = cons.emit(Opcode.D)
    c_ds = cons.emit(Opcode.D)
    c_dr = cons.emit(Opcode.D)
    c_dn = cons.emit(Opcode.D)
    c_dinv = cons.emit(Opcode.D_INV)
    c_exit = cons.emit(Opcode.L_INV, param_index=0)
    cons.wire(c_pred, c_swk, 1)
    cons.wire(c_pred, c_sws, 1)
    cons.wire(c_pred, c_swr, 1)
    cons.wire(c_pred, c_swn, 1)
    cons.wire(c_swk, c_fetch, 1, side="true")
    cons.wire(c_swk, c_inc, 0, side="true")
    cons.wire(c_swr, c_fetch, 0, side="true")
    cons.wire(c_fetch, c_acc, 1)
    cons.wire(c_sws, c_acc, 0, side="true")
    cons.wire(c_acc, c_ds, 0)
    cons.wire(c_inc, c_dk, 0)
    cons.wire(c_swr, c_dr, 0, side="true")
    cons.wire(c_swn, c_dn, 0, side="true")
    cons.wire(c_dk, c_pred, 0)
    cons.wire(c_dk, c_swk, 0)
    cons.wire(c_ds, c_sws, 0)
    cons.wire(c_dr, c_swr, 0)
    cons.wire(c_dn, c_pred, 1)
    cons.wire(c_dn, c_swn, 0)
    cons.wire(c_sws, c_dinv, 0, side="false")
    cons.wire(c_dinv, c_exit, 0)
    cons.param((c_pred, 0), (c_swk, 0))  # k
    cons.param((c_sws, 0))  # s
    cons.param((c_swr, 0))  # ref
    cons.param((c_pred, 1), (c_swn, 0))  # n
    cons.exit((ret, 0))

    return pb.build()
