"""The workload library, written in the Id-like language.

Each workload is source text plus a pure-Python reference function; tests
and benchmarks compile the source once and check both engines against the
reference.  The set covers the behaviours the paper argues about:

* ``TRAPEZOID`` — the paper's own program (Fig 2-2): a sequential-looking
  loop whose iterations unfold in tag space;
* ``MATMUL`` — nested loops + procedure calls + I-structure arrays, the
  scalable-parallelism workload for the speedup experiments;
* ``WAVEFRONT`` — the §1.1 Issue 2 example: a 2-D array where element
  (i,j) needs (i-1,j) and (i,j-1); rows are *produced and consumed
  concurrently*, synchronized only by presence bits;
* ``JACOBI`` — iterative relaxation carrying an array reference around a
  loop (chaotic-relaxation stand-in for the Cm* discussion);
* ``FIB`` — exponential recursion, for context-tree stress;
* ``PIPELINE`` — the explicit producer/consumer pair of E2;
* ``PRIMES`` — a conditional inside a nested loop inside a reduction
  (irregular per-iteration work, the anti-SIMD workload);
* ``REDUCTION`` — a recursive divide-and-conquer tree sum over an
  I-structure (logarithmic critical path over linear work).
"""

from ..lang import compile_source

__all__ = [
    "TRAPEZOID", "MATMUL", "WAVEFRONT", "JACOBI", "FIB", "PIPELINE",
    "PRIMES", "REDUCTION",
    "compile_workload", "WORKLOADS",
    "trapezoid_reference", "matmul_checksum_reference",
    "wavefront_reference", "jacobi_reference", "fib_reference",
    "pipeline_reference", "primes_reference", "reduction_reference",
]

TRAPEZOID = """
def f(x) = 1 / (1 + x * x);

def trapezoid(a, b, n, h) =
  (initial s <- (f(a) + f(b)) / 2;
           x <- a + h
   for i from 1 to n - 1 do
     new x <- x + h;
     new s <- s + f(x)
   return s) * h;
"""


def trapezoid_reference(a, b, n):
    h = (b - a) / n
    f = lambda x: 1 / (1 + x * x)  # noqa: E731
    s = (f(a) + f(b)) / 2
    x = a + h
    for _ in range(1, n):
        s += f(x)
        x += h
    return s * h


MATMUL = """
def elem_a(i, j) = i + 2 * j + 1;
def elem_b(i, j) = i - j + 2;

def fill_row_a(a, n, i) =
  (initial j <- 0
   while j < n do
     a[i * n + j] <- elem_a(i, j);
     new j <- j + 1
   return 0);

def fill_row_b(b, n, i) =
  (initial j <- 0
   while j < n do
     b[i * n + j] <- elem_b(i, j);
     new j <- j + 1
   return 0);

def fill(a, b, n) =
  (initial i <- 0; t <- 0
   while i < n do
     new t <- t + fill_row_a(a, n, i) + fill_row_b(b, n, i);
     new i <- i + 1
   return t);

def dot(a, b, n, i, j) =
  (initial k <- 0; s <- 0
   while k < n do
     new s <- s + a[i * n + k] * b[k * n + j];
     new k <- k + 1
   return s);

def row_sum(a, b, n, i) =
  (initial j <- 0; s <- 0
   while j < n do
     new s <- s + dot(a, b, n, i, j);
     new j <- j + 1
   return s);

def matmul_checksum(n) =
  let a = array(n * n);
      b = array(n * n);
      t = fill(a, b, n) in
  (initial i <- 0; s <- 0
   while i < n do
     new s <- s + row_sum(a, b, n, i);
     new i <- i + 1
   return s);
"""


def matmul_checksum_reference(n):
    a = [[i + 2 * j + 1 for j in range(n)] for i in range(n)]
    b = [[i - j + 2 for j in range(n)] for i in range(n)]
    return sum(
        sum(a[i][k] * b[k][j] for k in range(n))
        for i in range(n)
        for j in range(n)
    )


WAVEFRONT = """
def fill_top(w, n) =
  (initial j <- 0
   while j < n do
     w[j] <- 1;
     new j <- j + 1
   return 0);

def fill_left(w, n) =
  (initial i <- 1
   while i < n do
     w[i * n] <- 1;
     new i <- i + 1
   return 0);

def fill_row(w, n, i) =
  (initial j <- 1
   while j < n do
     w[i * n + j] <- w[(i - 1) * n + j] + w[i * n + j - 1];
     new j <- j + 1
   return 0);

def wavefront(n) =
  let w = array(n * n);
      t0 = fill_top(w, n);
      t1 = fill_left(w, n);
      t2 = (initial i <- 1; t <- 0
            while i < n do
              new t <- t + fill_row(w, n, i);
              new i <- i + 1
            return t) in
  w[n * n - 1];
"""


def wavefront_reference(n):
    w = [[0] * n for _ in range(n)]
    for j in range(n):
        w[0][j] = 1
    for i in range(1, n):
        w[i][0] = 1
    for i in range(1, n):
        for j in range(1, n):
            w[i][j] = w[i - 1][j] + w[i][j - 1]
    return w[n - 1][n - 1]


JACOBI = """
def relax_interior(src, dst, n) =
  (initial j <- 1
   while j < n - 1 do
     dst[j] <- (src[j - 1] + src[j + 1]) / 2;
     new j <- j + 1
   return 0);

def step(src, n) =
  let dst = array(n) in
  let t0 = (initial q <- 0 while q < 1 do
              dst[0] <- src[0];
              dst[n - 1] <- src[n - 1];
              new q <- q + 1
            return 0);
      t1 = relax_interior(src, dst, n) in
  dst;

def init(v, n) =
  (initial j <- 0
   while j < n do
     v[j] <- j * j;
     new j <- j + 1
   return 0);

def jacobi(n, steps, probe) =
  let v0 = array(n) in
  let t = init(v0, n) in
  (initial v <- v0
   for k from 1 to steps do
     new v <- step(v, n)
   return v[probe]);
"""


def jacobi_reference(n, steps, probe):
    v = [float(j * j) for j in range(n)]
    for _ in range(steps):
        nxt = list(v)
        for j in range(1, n - 1):
            nxt[j] = (v[j - 1] + v[j + 1]) / 2
        v = nxt
    return v[probe]


FIB = """
def fib(n) = if n < 2 then n else fib(n - 1) + fib(n - 2);
"""


def fib_reference(n):
    a, b = 0, 1
    for _ in range(n):
        a, b = b, a + b
    return a


PRIMES = """
def is_prime(k) =
  if k < 2 then 0 else
  (initial d <- 2; p <- 1
   while d * d <= k and p == 1 do
     new p <- if k % d == 0 then 0 else p;
     new d <- d + 1
   return p);

def count_primes(n) =
  (initial c <- 0
   for k from 2 to n do
     new c <- c + is_prime(k)
   return c);
"""


def primes_reference(n):
    count = 0
    for k in range(2, n + 1):
        if k >= 2 and all(k % d for d in range(2, int(k**0.5) + 1)):
            count += 1
    return count


REDUCTION = """
def tree_sum(a, lo, hi) =
  if hi - lo == 1 then a[lo]
  else let mid = floor((lo + hi) / 2) in
       tree_sum(a, lo, mid) + tree_sum(a, mid, hi);

def reduce(n) =
  let a = array(n) in
  let t = (initial k <- 0
           while k < n do
             a[k] <- k + 1;
             new k <- k + 1
           return 0) in
  tree_sum(a, 0, n);
"""


def reduction_reference(n):
    return n * (n + 1) // 2


PIPELINE = """
def produce(a, n) =
  (initial k <- 0
   while k < n do
     a[k] <- k * k;
     new k <- k + 1
   return 0);

def consume(a, n) =
  (initial k <- 0; s <- 0
   while k < n do
     new s <- s + a[k];
     new k <- k + 1
   return s);

def pipeline(n) =
  let a = array(n) in
  let t = produce(a, n) in
  consume(a, n);
"""


def pipeline_reference(n):
    return sum(k * k for k in range(n))


#: name -> (source, entry, reference, default args builder)
WORKLOADS = {
    "trapezoid": (
        TRAPEZOID, "trapezoid",
        lambda a, b, n, h: trapezoid_reference(a, b, n),
        lambda: (0.0, 1.0, 32, 1.0 / 32),
    ),
    "matmul": (
        MATMUL, "matmul_checksum", matmul_checksum_reference, lambda: (6,)
    ),
    "wavefront": (WAVEFRONT, "wavefront", wavefront_reference, lambda: (8,)),
    "jacobi": (
        JACOBI, "jacobi", jacobi_reference, lambda: (10, 4, 5)
    ),
    "fib": (FIB, "fib", fib_reference, lambda: (10,)),
    "pipeline": (PIPELINE, "pipeline", pipeline_reference, lambda: (16,)),
    "primes": (PRIMES, "count_primes", primes_reference, lambda: (40,)),
    "reduction": (REDUCTION, "reduce", reduction_reference, lambda: (16,)),
}


def compile_workload(name):
    """Compile a named workload; returns (program, reference, default_args)."""
    source, entry, reference, default_args = WORKLOADS[name]
    return compile_source(source, entry=entry), reference, default_args()
