"""HTTP client for a running ``repro serve`` instance.

:class:`ServeClient` is a thin stdlib (:mod:`http.client`) wrapper used
by the ``repro submit`` / ``repro sweeps`` CLI and the tests;
:func:`remote_suite` is the engine behind ``repro bench --remote URL``:
it submits each selected benchmark to the server, streams progress from
the long-poll event feed, then assembles and writes the result tables
*locally* through the same ``harness.write_table`` path the in-process
suite uses — so a remote bench run produces byte-identical
``benchmarks/results/*.txt`` files.
"""

import http.client
import importlib
import json
import os
import sys
import time
import urllib.parse

from ..exp.bench import build_experiment, find_bench_dir
from .protocol import ProtocolError

__all__ = ["ServeClient", "ServeError", "remote_suite"]


class ServeError(RuntimeError):
    """A non-2xx answer from the server (carries status + body)."""

    def __init__(self, status, payload):
        self.status = status
        self.payload = payload
        detail = (payload.get("error") if isinstance(payload, dict)
                  else payload)
        super().__init__(f"HTTP {status}: {detail}")


class ServeClient:
    """Talk to one ``repro serve`` endpoint.

    Every method opens a fresh connection (the server answers with
    ``Connection: close``); ``timeout`` bounds any single request, so
    long-poll calls pass their own slack on top of the poll window.
    """

    def __init__(self, url, timeout=30.0):
        parsed = urllib.parse.urlsplit(
            url if "//" in url else f"http://{url}")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 80
        self.timeout = timeout

    def _request(self, method, path, body=None, timeout=None):
        conn = http.client.HTTPConnection(
            self.host, self.port,
            timeout=self.timeout if timeout is None else timeout)
        try:
            data = (json.dumps(body, sort_keys=True, default=repr)
                    if body is not None else None)
            conn.request(method, path, body=data,
                         headers={"Content-Type": "application/json"}
                         if data else {})
            response = conn.getresponse()
            raw = response.read()
            content_type = response.getheader("Content-Type", "")
            if "json" in content_type:
                payload = json.loads(raw.decode("utf-8") or "null")
            else:
                payload = raw.decode("utf-8")
            if response.status >= 400:
                raise ServeError(response.status, payload)
            return payload
        finally:
            conn.close()

    # -- one method per route ------------------------------------------
    def health(self):
        return self._request("GET", "/healthz")

    def metrics(self):
        """The raw Prometheus text exposition (parse it with
        :func:`repro.obs.live.parse_prometheus`)."""
        return self._request("GET", "/metrics")

    def store_stats(self):
        return self._request("GET", "/store/stats")

    def submit(self, request):
        """POST a sweep request dict; returns ``{"id", ...}``."""
        return self._request("POST", "/sweeps", body=request)

    def sweeps(self):
        return self._request("GET", "/sweeps")["sweeps"]

    def status(self, sweep_id):
        return self._request("GET", f"/sweeps/{sweep_id}")

    def events(self, sweep_id, since=0, timeout=25.0):
        """One long-poll turn; returns ``{"events", "next", "state"}``."""
        query = urllib.parse.urlencode(
            {"since": since, "timeout": timeout})
        return self._request("GET", f"/sweeps/{sweep_id}/events?{query}",
                             timeout=timeout + 10.0)

    def table(self, sweep_id):
        """The assembled table text of a finished sweep."""
        return self._request("GET", f"/sweeps/{sweep_id}/table")

    def trace(self, sweep_id):
        """The Chrome-trace payload (a dict) of a sweep."""
        return self._request("GET", f"/sweeps/{sweep_id}/trace")

    def predict_describe(self):
        """Fitted machines + per-workload regions (``GET /predict``)."""
        return self._request("GET", "/predict")

    def predict(self, machine, config=None, extrapolate=False):
        """Answer a machine query from the server's analytic surrogate.

        Raises :class:`ServeError` with status 409 when the query lies
        outside the fitted region and ``extrapolate`` is not set."""
        body = {"machine": machine, "config": config or {}}
        if extrapolate:
            body["extrapolate"] = True
        return self._request("POST", "/predict", body=body)

    def shutdown(self):
        return self._request("POST", "/shutdown")

    # -- conveniences ---------------------------------------------------
    def wait(self, sweep_id, timeout=None, on_event=None):
        """Follow the event feed until the sweep finishes; returns the
        final status snapshot.  ``on_event(event)`` sees every progress
        event exactly once."""
        deadline = (time.monotonic() + timeout) if timeout else None
        since = 0
        while True:
            poll = 25.0
            if deadline is not None:
                poll = min(poll, max(0.1, deadline - time.monotonic()))
            chunk = self.events(sweep_id, since=since, timeout=poll)
            if on_event is not None:
                for event in chunk["events"]:
                    on_event(event)
            since = chunk["next"]
            if chunk["state"] in ("done", "aborted"):
                return self.status(sweep_id)
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"sweep {sweep_id} still {chunk['state']} after "
                    f"{timeout}s")

    def run(self, request, timeout=None, on_event=None):
        """Submit + wait; returns the final status snapshot."""
        submitted = self.submit(request)
        return self.wait(submitted["id"], timeout=timeout,
                         on_event=on_event)


def _progress_printer(name, err):
    def on_event(event):
        kind = event.get("kind", "")
        if kind in ("serve_store_hit", "serve_predict_hit", "sweep_task",
                    "serve_backup", "serve_requeue", "sweep_end"):
            print(f"  [{name}] {kind}: {event.get('detail', '')}",
                  file=err)
    return on_event


def remote_suite(url, only=None, bench_dir=None, err=None, faults=None,
                 no_store=False, timeout=None, verbose=False):
    """Run the benchmark suite against a remote ``repro serve``.

    The server simulates (or answers from its store); tables are
    assembled and written locally so ``benchmarks/results/*.txt`` and
    ``BENCH_results.json`` come out exactly as an in-process
    ``repro bench`` run would produce them.  Returns the aggregate
    telemetry dict (same shape as :func:`repro.exp.bench.run_suite`).
    """
    err = err if err is not None else sys.stderr
    client = ServeClient(url)
    bench_dir = find_bench_dir(bench_dir)
    os.environ["REPRO_BENCH_DIR"] = bench_dir
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    run_all = importlib.import_module("run_all")
    harness = importlib.import_module("harness")
    from ..exp.tables import table_rows

    if isinstance(faults, str):
        with open(faults, "r", encoding="utf-8") as fh:
            faults = json.load(fh)

    telemetry = []
    failures = []
    suite_start = time.time()
    for module_name, runners in run_all.EXPERIMENTS:
        for fn_name, out_name in runners:
            if only is not None and (only not in module_name
                                     and only not in out_name):
                continue
            request = {"experiment": out_name}
            if faults:
                request["faults"] = faults
            if no_store:
                request["no_store"] = True
            if timeout is not None:
                request["timeout"] = timeout
            start = time.time()
            try:
                status = client.run(
                    request,
                    on_event=(_progress_printer(out_name, err)
                              if verbose else None))
            except (ProtocolError, ServeError) as exc:
                print(f"[FAILED] {out_name}: {exc}", file=err)
                failures.append({"experiment": out_name,
                                 "module": module_name,
                                 "rows": [{"error": str(exc)}]})
                continue
            wall = time.time() - start
            records = status.get("records", [])
            failed = [r for r in records if r["status"] != "ok"]
            if status["state"] != "done" or failed:
                for row in failed:
                    print(f"[FAILED] {out_name}[{row['index']}] "
                          f"{row['status']} after {row['attempts']} "
                          f"attempt(s):\n{row['error']}", file=err)
                failures.append({"experiment": out_name,
                                 "module": module_name,
                                 "rows": failed or records})
                continue
            # Assemble locally through the experiment's own table
            # builder; values came over the wire, the layout is ours.
            module = importlib.import_module(module_name)
            experiment, _is_sweep = build_experiment(module, fn_name,
                                                     out_name)
            table = experiment.table([r["value"] for r in records])
            cached = status.get("cached", 0)
            harness.write_table(
                table, out_name,
                meta={"wall_seconds": round(wall, 3),
                      "cache_hits": cached,
                      "grid": len(records),
                      "remote": url})
            print(f"[{wall:6.1f}s] {out_name} "
                  f"({cached}/{len(records)} store hits, remote)\n",
                  file=err)
            telemetry.append({
                "experiment": out_name,
                "module": module_name,
                "title": table.title,
                "rows": len(table.rows),
                "columns": list(table.columns),
                "wall_seconds": round(wall, 3),
                "cache_hits": cached,
                "grid": len(records),
                "data": table_rows(table),
            })

    aggregate = {
        "experiments": telemetry,
        "failures": failures,
        "meta": {
            "remote": url,
            "wall_seconds": round(time.time() - suite_start, 3),
        },
    }
    aggregate_path = os.path.join(os.path.dirname(bench_dir),
                                  "BENCH_results.json")
    with open(aggregate_path, "w", encoding="utf-8") as fh:
        json.dump(aggregate, fh, indent=2, sort_keys=True, default=repr)
        fh.write("\n")
    total = sum(entry["wall_seconds"] for entry in telemetry)
    print(f"[{total:6.1f}s] total -> {aggregate_path}"
          + (f"  [{len(failures)} FAILED]" if failures else ""), file=err)
    return aggregate
