"""The ``repro serve`` HTTP/JSON front end (stdlib asyncio, hand-rolled
HTTP/1.1).

One asyncio event loop accepts connections and parses requests; all
sweep work happens in the :class:`~repro.serve.scheduler.SweepScheduler`
thread and its worker pool, so a handler only ever takes the scheduler
lock for a snapshot — the server stays responsive while a thousand cells
simulate.  Keeping the transport on stdlib primitives mirrors the
deployment constraint that the store and scheduler already honor: no
dependencies beyond the interpreter.

API (see docs/SERVICE.md for curl examples)::

    GET  /healthz             liveness + pool/queue stats
    GET  /metrics             Prometheus text exposition (live telemetry)
    GET  /store/stats         durable store statistics
    GET  /predict             fitted machines + regions (surrogate)
    POST /predict             answer a machine query from the analytic
                              surrogate (409 when outside the fitted
                              region, unless "extrapolate": true)
    POST /sweeps              submit a sweep request -> {"id": ...}
    GET  /sweeps              all sweeps (summaries)
    GET  /sweeps/<id>         one sweep: status + completed records
    GET  /sweeps/<id>/events  long-poll progress events (?since=N
                              &timeout=S); returns when new events
                              arrive, the sweep finishes, or S elapses
    GET  /sweeps/<id>/table   the assembled result table (text/plain)
    GET  /sweeps/<id>/trace   Chrome/Perfetto trace of the whole sweep
    POST /shutdown            graceful stop (tests / CI)
"""

import asyncio
import json
import threading
import time
import urllib.parse

from ..predict import OutOfRegionError, PredictError
from .protocol import DEFAULT_PORT, ProtocolError
from .scheduler import SweepScheduler
from .store import open_store
from .trace import sweep_trace

__all__ = ["ServeApp", "ServerThread", "run_server"]

#: Long-poll defaults/caps (seconds).
EVENTS_TIMEOUT = 25.0
EVENTS_TIMEOUT_CAP = 60.0
#: How often a long-poller re-checks the (thread-owned) event list.
POLL_INTERVAL = 0.05
MAX_BODY = 8 * 1024 * 1024

_REASONS = {200: "OK", 202: "Accepted", 204: "No Content",
            400: "Bad Request", 404: "Not Found", 405: "Method Not "
            "Allowed", 409: "Conflict", 413: "Payload Too Large",
            500: "Internal Server Error"}


class ServeApp:
    """Routes HTTP requests onto a running scheduler."""

    def __init__(self, scheduler, store=None):
        self.scheduler = scheduler
        self.store = store
        self.stopping = asyncio.Event()
        self.metrics = scheduler.metrics
        self.metrics.counter("http_requests_total",
                             "HTTP requests served, by route template")
        self.metrics.histogram("http_request_seconds",
                               "HTTP request latency, by route template")
        if store is not None:
            self.metrics.gauge_fn(
                "store_entries", "Rows in the content-addressed store",
                lambda: store.stats().get("entries", 0))
            self.metrics.gauge_fn(
                "store_bytes", "Payload bytes in the store",
                lambda: store.stats().get("bytes", 0))

    @staticmethod
    def _route_label(method, path):
        """Collapse sweep ids so the route label set stays bounded."""
        parts = [p for p in path.split("/") if p]
        if parts[:1] == ["sweeps"] and len(parts) >= 2:
            parts = ["sweeps", "*"] + parts[2:]
        return f"{method} /" + "/".join(parts)

    # -- transport -----------------------------------------------------
    async def handle(self, reader, writer):
        try:
            request_line = await reader.readline()
            if not request_line:
                return
            try:
                method, target, _version = (
                    request_line.decode("latin-1").split())
            except ValueError:
                await self._send(writer, 400, {"error": "bad request line"})
                return
            headers = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", 0) or 0)
            if length > MAX_BODY:
                await self._send(writer, 413,
                                 {"error": "request body too large"})
                return
            body = await reader.readexactly(length) if length else b""
            parsed = urllib.parse.urlsplit(target)
            query = {k: v[-1] for k, v in
                     urllib.parse.parse_qs(parsed.query).items()}
            label = self._route_label(method, parsed.path)
            started = time.perf_counter()
            try:
                await self._route(writer, method, parsed.path, query, body)
            except ProtocolError as exc:
                await self._send(writer, 400, {"error": str(exc)})
            except Exception as exc:  # noqa: BLE001 — report, don't die
                await self._send(writer, 500,
                                 {"error": f"{type(exc).__name__}: {exc}"})
            finally:
                self.metrics.inc("http_requests_total", route=label)
                self.metrics.observe("http_request_seconds",
                                     time.perf_counter() - started,
                                     route=label)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _send(self, writer, status, payload, content_type=None):
        if isinstance(payload, (dict, list)):
            body = (json.dumps(payload, sort_keys=True, default=repr)
                    + "\n").encode()
            content_type = content_type or "application/json"
        else:
            body = (payload or "").encode()
            content_type = content_type or "text/plain; charset=utf-8"
        head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n")
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # -- routing -------------------------------------------------------
    async def _route(self, writer, method, path, query, body):
        parts = [p for p in path.split("/") if p]
        if path == "/healthz" and method == "GET":
            pool = self.scheduler.pool_stats()
            await self._send(writer, 200,
                             {"ok": True, "pool": pool,
                              "queue_depth": pool["queue_depth"]})
        elif path == "/metrics" and method == "GET":
            await self._send(
                writer, 200, self.metrics.render(),
                content_type="text/plain; version=0.0.4; charset=utf-8")
        elif path == "/store/stats" and method == "GET":
            if self.store is None:
                await self._send(writer, 404, {"error": "no store attached"})
            else:
                await self._send(writer, 200, self.store.stats())
        elif path == "/predict" and method == "GET":
            await self._send(writer, 200,
                             self.scheduler.predict.describe())
        elif path == "/predict" and method == "POST":
            await self._predict(writer, body)
        elif path == "/shutdown" and method == "POST":
            await self._send(writer, 200, {"ok": True,
                                           "stopping": True})
            self.stopping.set()
        elif parts[:1] == ["sweeps"] and len(parts) == 1:
            if method == "POST":
                await self._submit(writer, body)
            elif method == "GET":
                await self._send(writer, 200,
                                 {"sweeps": self.scheduler.list_sweeps()})
            else:
                await self._send(writer, 405, {"error": "GET or POST"})
        elif parts[:1] == ["sweeps"] and len(parts) == 2 and method == "GET":
            status = self.scheduler.status(parts[1])
            if status is None:
                await self._send(writer, 404,
                                 {"error": f"no sweep {parts[1]!r}"})
            else:
                await self._send(writer, 200, status)
        elif (parts[:1] == ["sweeps"] and len(parts) == 3
                and parts[2] == "events" and method == "GET"):
            await self._events(writer, parts[1], query)
        elif (parts[:1] == ["sweeps"] and len(parts) == 3
                and parts[2] == "table" and method == "GET"):
            await self._table(writer, parts[1])
        elif (parts[:1] == ["sweeps"] and len(parts) == 3
                and parts[2] == "trace" and method == "GET"):
            payload = sweep_trace(self.scheduler, parts[1])
            if payload is None:
                await self._send(writer, 404,
                                 {"error": f"no sweep {parts[1]!r}"})
            else:
                await self._send(writer, 200, payload)
        else:
            await self._send(writer, 404, {"error": f"no route for "
                                           f"{method} {path}"})

    async def _submit(self, writer, body):
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except ValueError as exc:
            raise ProtocolError(f"request body is not JSON: {exc}") from exc
        loop = asyncio.get_running_loop()
        # Resolution imports bench modules — run it off the event loop.
        sweep_id = await loop.run_in_executor(
            None, self.scheduler.submit, payload)
        await self._send(writer, 202, {
            "id": sweep_id,
            "status_url": f"/sweeps/{sweep_id}",
            "events_url": f"/sweeps/{sweep_id}/events",
            "table_url": f"/sweeps/{sweep_id}/table",
            "trace_url": f"/sweeps/{sweep_id}/trace",
        })

    async def _predict(self, writer, body):
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except ValueError as exc:
            raise ProtocolError(f"request body is not JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ProtocolError("predict request body must be a JSON "
                                "object")
        machine = payload.get("machine")
        if not isinstance(machine, str) or not machine:
            raise ProtocolError("predict request needs 'machine'")
        config = payload.get("config", {})
        if not isinstance(config, dict):
            raise ProtocolError("'config' must be a JSON object")
        extrapolate = payload.get("extrapolate", False)
        if not isinstance(extrapolate, bool):
            raise ProtocolError("'extrapolate' must be a boolean")
        try:
            answer = self.scheduler.predict_query(machine, config,
                                                  extrapolate=extrapolate)
        except OutOfRegionError as exc:
            await self._send(writer, 409,
                             {"error": str(exc), "region": exc.region})
            return
        except PredictError as exc:
            raise ProtocolError(str(exc)) from exc
        await self._send(writer, 200, answer)

    async def _events(self, writer, sweep_id, query):
        try:
            since = int(query.get("since", 0))
            timeout = min(EVENTS_TIMEOUT_CAP,
                          float(query.get("timeout", EVENTS_TIMEOUT)))
        except ValueError as exc:
            raise ProtocolError(f"bad query parameter: {exc}") from exc
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while True:
            events, state = self.scheduler.events_after(sweep_id, since)
            if events is None:
                await self._send(writer, 404,
                                 {"error": f"no sweep {sweep_id!r}"})
                return
            finished = state in ("done", "aborted")
            if events or finished or loop.time() >= deadline:
                await self._send(writer, 200, {
                    "events": events,
                    "next": since + len(events),
                    "state": state,
                })
                return
            await asyncio.sleep(POLL_INTERVAL)

    async def _table(self, writer, sweep_id):
        status = self.scheduler.status(sweep_id, include_records=False)
        if status is None:
            await self._send(writer, 404,
                             {"error": f"no sweep {sweep_id!r}"})
            return
        if status["state"] not in ("done", "aborted"):
            await self._send(writer, 409,
                             {"error": "sweep still running",
                              "state": status["state"]})
            return
        text = self.scheduler.table_text(sweep_id)
        if text is None:
            await self._send(writer, 409,
                             {"error": "no table (failed cells or no "
                              "assembler)", "state": status["state"]})
            return
        await self._send(writer, 200, text + "\n")

    # -- lifecycle -----------------------------------------------------
    async def main(self, host, port, ready=None, banner=None):
        """Serve until :attr:`stopping` is set; returns the bound port."""
        server = await asyncio.start_server(self.handle, host, port)
        bound = server.sockets[0].getsockname()[1]
        if ready is not None:
            ready(bound)
        if banner is not None:
            banner(bound)
        async with server:
            await self.stopping.wait()
        return bound


def run_server(host="127.0.0.1", port=DEFAULT_PORT, workers=None,
               store_path=None, no_store=False, timeout=None,
               retries=None, backup_fraction=0.2, bench_dir=None,
               bus=None, err=None, ready=None):
    """Blocking entry point behind ``repro serve``.

    Builds the store and scheduler, serves until SIGINT or a POST to
    ``/shutdown``, then drains the pool.  ``ready(port)`` (tests) fires
    once the socket is bound.
    """
    import sys

    from ..exp.engine import DEFAULT_RETRIES

    err = err if err is not None else sys.stderr
    store = None if no_store else open_store(store_path)
    scheduler = SweepScheduler(
        store=store, workers=workers, timeout=timeout,
        retries=DEFAULT_RETRIES if retries is None else retries,
        backup_fraction=backup_fraction, bench_dir=bench_dir, bus=bus)
    app = ServeApp(scheduler, store=store)

    def banner(bound):
        root = getattr(store, "path", getattr(store, "root", None))
        print(f"repro serve: http://{host}:{bound}  "
              f"(workers={scheduler.size}, "
              f"store={root if store is not None else 'off'})", file=err)

    async def _main():
        task = asyncio.ensure_future(
            app.main(host, port, ready=ready, banner=banner))
        await task
        return task.result()

    scheduler.start()
    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("repro serve: interrupted, draining workers", file=err)
    finally:
        scheduler.close()
        if store is not None and hasattr(store, "close"):
            store.close()
    return 0


class ServerThread:
    """A serve instance on a background thread (tests, CI helpers).

    ::

        with ServerThread(store_path=tmp, workers=2) as handle:
            client = ServeClient(handle.url)
    """

    def __init__(self, host="127.0.0.1", port=0, **kwargs):
        self.host = host
        self.requested_port = port
        self.kwargs = kwargs
        self.port = None
        self._bound = threading.Event()
        self._thread = None

    @property
    def url(self):
        return f"http://{self.host}:{self.port}"

    def start(self):
        def _ready(port):
            self.port = port
            self._bound.set()

        self._thread = threading.Thread(
            target=run_server,
            kwargs=dict(host=self.host, port=self.requested_port,
                        ready=_ready, **self.kwargs),
            daemon=True, name="repro-serve")
        self._thread.start()
        if not self._bound.wait(timeout=30.0):
            raise RuntimeError("repro serve did not bind within 30s")
        return self

    def stop(self, timeout=15.0):
        if self.port is not None:
            from .client import ServeClient

            try:
                ServeClient(self.url).shutdown()
            except OSError:
                pass
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()
