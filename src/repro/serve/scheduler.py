"""The sweep scheduler: a persistent worker pool in the MapReduce
master/worker shape.

The paper's scalability argument — tolerate latency, keep many
outstanding operations in flight, recover from stragglers — applied to
our own experiment pipeline.  A single :class:`SweepScheduler` owns a
pool of long-lived worker processes and any number of concurrently
running sweeps; cells flow through the same
:class:`~repro.exp.engine.TaskQueue` the batch engine uses, and finished
values land in a durable content-addressed store
(:mod:`repro.serve.store`) so repeat sweeps never simulate.

Failure handling (Dean & Ghemawat's three classics):

* **Worker death** — a worker whose pipe hits EOF (crash, OOM kill,
  ``worker_crash_rate`` chaos) has its in-flight cell re-queued with the
  retry/backoff machinery (growing delay, bounded attempts) and the pool
  respawns a replacement lazily.
* **Timeout** — a worker past its per-attempt deadline (which covers
  dispatch + module import + run, with a ``begin`` handshake splitting
  startup from run) is terminated and the cell retried; the final
  failure row records ``timeout_phase``.
* **Backup tasks** — when a sweep's unfinished-cell count drops to the
  straggler threshold and workers sit idle, the scheduler re-issues the
  longest-running cells to them, bounded at ``backup_fraction`` of the
  grid.  The first completion wins; this is safe *because results are
  deterministic* — both copies compute byte-identical values, so
  first-wins cannot change the table, only the wall clock.

Threading: one background scheduler thread owns all worker pipes and
the store; HTTP/CLI threads call :meth:`submit` / :meth:`status` /
:meth:`events_after` / :meth:`wait`, which only touch state under the
scheduler lock and wake the thread through a self-pipe.
"""

import itertools
import json
import math
import multiprocessing
import os
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass
from multiprocessing.connection import wait as _wait_connections
from typing import Any, Optional

from ..exp.cache import config_key
from ..exp.engine import (DEFAULT_RETRIES, RunRecord, TaskQueue,
                          experiment_code_version, records_payload)
from ..obs.live import LiveMetrics
from ..predict import OutOfRegionError, PredictPlane
from .protocol import (SweepRequest, key_config, machine_plan,
                       resolve_experiment, scheduling_plan)

__all__ = ["SweepScheduler", "SweepState"]

#: Base requeue delay (seconds); attempt ``n`` waits ``BACKOFF * 2**n``.
RETRY_BACKOFF = 0.05
#: Upper bound on any single requeue delay.
RETRY_BACKOFF_CAP = 2.0
#: Flight-recorder breadcrumbs attached to a failure row, and pool-level
#: events retained for trace assembly.
FLIGHT_TAIL = 50
POOL_EVENT_LIMIT = 10_000


@dataclass
class _Assignment:
    """One cell attempt running on one worker."""

    sweep_id: str
    index: int
    attempt: int
    key: Optional[str]
    backup: bool
    started: float
    deadline: Optional[float]
    phase: str = "startup"


@dataclass
class _Worker:
    """One persistent pool worker process."""

    wid: int
    process: Any
    conn: Any
    busy: Optional[_Assignment] = None
    spawned: float = 0.0
    completed: int = 0
    #: Spill file the worker's flight recorder writes breadcrumbs to;
    #: read back by the scheduler when the worker dies or is terminated
    #: (the pipe is gone by then, so the tail cannot ship over it).
    flight_path: Optional[str] = None


class SweepState:
    """Everything the scheduler tracks for one submitted sweep."""

    def __init__(self, sweep_id, request, experiment, code_version,
                 plan, chaos, retries, timeout, trace_id=None):
        self.id = sweep_id
        self.trace_id = trace_id or f"tr-{sweep_id}"
        self.request = request
        self.experiment = experiment
        self.code_version = code_version
        self.plan = plan          # machine-level fault plan (or None)
        self.chaos = chaos        # scheduling-level chaos (or None)
        self.retries = retries
        self.timeout = timeout
        self.state = "queued"     # queued | running | done | aborted
        self.created = time.monotonic()
        self.created_wall = time.time()
        self.wall_seconds = None
        self.records = {}         # index -> RunRecord (completed cells)
        self.queue = TaskQueue()  # (index, attempt, key) awaiting a worker
        self.live = {}            # index -> live assignment count
        self.backups_issued = 0
        self.events = []          # [{seq, t, kind, detail, ...}]
        self.done = threading.Event()
        self.stats = {
            "store_hits": 0, "predict_hits": 0, "executed": 0,
            "requeued": 0, "timeouts": 0, "worker_deaths": 0,
            "backups": 0, "backup_wins": 0, "duplicates_ignored": 0,
        }

    @property
    def cells(self):
        return len(self.experiment.grid)

    @property
    def remaining(self):
        return self.cells - len(self.records)

    def snapshot(self, include_records=True):
        """A JSON-able status view (called under the scheduler lock)."""
        ordered = sorted(self.records.values(), key=lambda r: r.index)
        out = {
            "id": self.id,
            "trace": self.trace_id,
            "experiment": self.experiment.name,
            "label": self.request.label,
            "state": self.state,
            "cells": self.cells,
            "completed": len(self.records),
            "ok": sum(1 for r in ordered if r.ok),
            "failed": sum(1 for r in ordered if not r.ok),
            "cached": sum(1 for r in ordered if r.cached),
            "stats": dict(self.stats),
            "created": self.created_wall,
            "wall_seconds": (self.wall_seconds if self.wall_seconds
                             is not None
                             else round(time.monotonic() - self.created, 3)),
            "events": len(self.events),
        }
        if include_records:
            out["records"] = records_payload(ordered)
        return out


class SweepScheduler:
    """Master of the persistent worker pool; see the module docstring."""

    def __init__(self, store=None, workers=None, timeout=None,
                 retries=DEFAULT_RETRIES, backup_fraction=0.2,
                 backup_threshold=None, bus=None, bench_dir=None,
                 metrics=None, predict=None):
        self.store = store
        #: The analytic-surrogate query surface (fit artifacts are loaded
        #: lazily on first use, so an unfitted checkout costs nothing).
        self.predict = (predict if predict is not None
                        else PredictPlane(bench_dir=bench_dir))
        self.size = max(1, workers if workers is not None
                        else (os.cpu_count() or 2))
        self.timeout = timeout
        self.retries = retries
        self.backup_fraction = backup_fraction
        #: Backups start once a sweep's unfinished cells fit in the pool.
        self.backup_threshold = (backup_threshold if backup_threshold
                                 is not None else self.size)
        self.bus = bus
        self.bench_dir = bench_dir
        self.metrics = metrics if metrics is not None else LiveMetrics()
        self._lock = threading.RLock()
        self._sweeps = {}
        self._order = []
        self._workers = {}
        self._tasks = {}           # task_id -> (_Worker, _Assignment)
        self._next_sweep = itertools.count(1)
        self._next_wid = itertools.count(1)
        self._next_task = itertools.count(1)
        self._intake = []
        self._closing = False
        self._clock0 = time.monotonic()
        self._spawned_total = 0
        self._exits_total = 0
        self._flight_dir = None
        #: Pool-level lifecycle events (spawn/exit), kept for sweep trace
        #: assembly — sweep-level events live on each SweepState.
        self.pool_events = []
        self._declare_metrics()
        self._context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")
        self._wake_r, self._wake_w = multiprocessing.Pipe(duplex=False)
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="serve-scheduler")
        self._started = False

    # -- telemetry -----------------------------------------------------
    def _declare_metrics(self):
        """Register the scheduler's metric families (names + help text)
        up front so ``/metrics`` is fully populated from the first
        scrape, counters included, even before any sweep runs."""
        m = self.metrics
        m.counter("sweeps_submitted_total", "Sweep requests accepted")
        m.counter("sweeps_completed_total",
                  "Sweeps finished, labeled by terminal state")
        m.counter("cells_executed_total",
                  "Grid cells computed by a pool worker")
        m.counter("cells_store_hit_total",
                  "Grid cells answered from the durable store")
        m.counter("cells_requeued_total",
                  "Cell attempts requeued after a failure")
        m.counter("cell_timeouts_total",
                  "Cell attempts terminated at their deadline")
        m.counter("worker_deaths_total",
                  "Worker processes that died mid-task")
        m.counter("workers_spawned_total", "Worker processes started")
        m.counter("backup_tasks_total",
                  "Backup (straggler) copies issued")
        m.counter("backup_wins_total", "Cells won by a backup copy")
        m.counter("predict_requests_total",
                  "Analytic surrogate queries (POST /predict)")
        m.counter("predict_cells_total",
                  "Sweep cells answered by the analytic surrogate")
        m.counter("predict_out_of_region_total",
                  "Surrogate answers refused: outside the fitted region")
        m.gauge_fn("sweeps_active",
                   "Sweeps currently queued or running",
                   lambda: self.pool_stats()["active"])
        m.gauge_fn("queue_depth",
                   "Cells awaiting a worker across running sweeps",
                   lambda: self.pool_stats()["queue_depth"])
        m.gauge_fn("workers_alive", "Live pool worker processes",
                   lambda: self.pool_stats()["alive"])
        m.gauge_fn("workers_busy", "Pool workers running a cell",
                   lambda: self.pool_stats()["busy"])
        m.gauge_fn("worker_busy",
                   "Per-worker busy flag (1 = running a cell)",
                   self._worker_gauge)

    def _worker_gauge(self):
        with self._lock:
            return {(("worker", str(w.wid)),):
                    (0 if w.busy is None else 1)
                    for w in self._workers.values()}

    # -- lifecycle -----------------------------------------------------
    def start(self):
        if not self._started:
            self._started = True
            self._thread.start()
        return self

    def close(self, timeout=10.0):
        """Stop the scheduler thread and the worker pool.  Unfinished
        sweeps are marked ``aborted`` and their waiters released."""
        with self._lock:
            self._closing = True
        self._wake()
        if self._started:
            self._thread.join(timeout)

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.close()

    def _wake(self):
        try:
            self._wake_w.send_bytes(b"w")
        except (OSError, ValueError):
            pass

    # -- the public (cross-thread) surface -----------------------------
    def submit(self, payload):
        """Accept a sweep request (a dict or :class:`SweepRequest`);
        returns the sweep id.  Raises
        :class:`~repro.serve.protocol.ProtocolError` on a bad request —
        resolution happens here, in the caller's thread, so a bad
        experiment name fails fast with a clean error."""
        request = (payload if isinstance(payload, SweepRequest)
                   else SweepRequest.from_dict(payload))
        if request.bench_dir is None and self.bench_dir is not None:
            request.bench_dir = self.bench_dir
        plan = machine_plan(request.faults)
        chaos = scheduling_plan(request.faults)
        experiment = resolve_experiment(request.spec(), grid=request.grid,
                                        plan=plan)
        code_version = experiment_code_version(experiment)
        retries = request.retries
        if retries is None:
            # A crash-chaos sweep must outlast its crash budget
            # (attempts at or past max_retries never crash): liveness.
            retries = max(self.retries,
                          chaos["max_retries"] if chaos else 0)
        timeout = (request.timeout if request.timeout is not None
                   else self.timeout)
        with self._lock:
            sweep_id = f"sw{next(self._next_sweep):04d}"
            sweep = SweepState(sweep_id, request, experiment, code_version,
                               plan, chaos, retries, timeout)
            sweep.created_rel = sweep.created - self._clock0
            self._sweeps[sweep_id] = sweep
            self._order.append(sweep_id)
            self._intake.append(sweep_id)
            self._event(sweep, "serve_request", experiment.name,
                        experiment=experiment.name, cells=sweep.cells)
        self.metrics.inc("sweeps_submitted_total")
        self._wake()
        return sweep_id

    def get(self, sweep_id):
        with self._lock:
            return self._sweeps.get(sweep_id)

    def status(self, sweep_id, include_records=True):
        """A JSON-able snapshot of one sweep, or ``None``."""
        with self._lock:
            sweep = self._sweeps.get(sweep_id)
            return (None if sweep is None
                    else sweep.snapshot(include_records))

    def list_sweeps(self):
        with self._lock:
            return [self._sweeps[sid].snapshot(include_records=False)
                    for sid in self._order]

    def events_after(self, sweep_id, since=0):
        """Events with ``seq >= since`` (a snapshot), plus sweep state."""
        with self._lock:
            sweep = self._sweeps.get(sweep_id)
            if sweep is None:
                return None, None
            return list(sweep.events[since:]), sweep.state

    def wait(self, sweep_id, timeout=None):
        """Block until a sweep completes; returns True if it did."""
        with self._lock:
            sweep = self._sweeps.get(sweep_id)
        if sweep is None:
            raise KeyError(sweep_id)
        return sweep.done.wait(timeout)

    def table_text(self, sweep_id):
        """The assembled result table for a finished, fully-ok sweep
        (``None`` while running / failed / assembler-less)."""
        with self._lock:
            sweep = self._sweeps.get(sweep_id)
            if sweep is None or sweep.state != "done":
                return None
            ordered = sorted(sweep.records.values(), key=lambda r: r.index)
            if any(not r.ok for r in ordered):
                return None
            if sweep.experiment.assemble is None:
                return None
            values = [r.value for r in ordered]
        return str(sweep.experiment.table(values))

    def predict_query(self, machine, config, extrapolate=False):
        """Answer a ``POST /predict`` machine query from the surrogate.

        Raises :class:`~repro.predict.PredictError` (no fit / bad knob)
        or :class:`~repro.predict.OutOfRegionError` (refused, HTTP 409);
        the refusal is counted so the fallback rate is observable."""
        self.metrics.inc("predict_requests_total")
        try:
            return self.predict.query(machine, config,
                                      extrapolate=extrapolate)
        except OutOfRegionError:
            self.metrics.inc("predict_out_of_region_total")
            raise

    def pool_stats(self):
        with self._lock:
            return {
                "size": self.size,
                "alive": len(self._workers),
                "busy": sum(1 for w in self._workers.values() if w.busy),
                "spawned": self._spawned_total,
                "restarts": self._exits_total,
                "sweeps": len(self._sweeps),
                "active": sum(1 for s in self._sweeps.values()
                              if s.state in ("queued", "running")),
                "queue_depth": sum(
                    len(s.queue) for s in self._sweeps.values()
                    if s.state == "running"),
            }

    # -- events --------------------------------------------------------
    def _event(self, sweep, kind, detail="", **fields):
        record = {"seq": len(sweep.events),
                  "t": round(time.monotonic() - sweep.created, 6),
                  "kind": kind, "detail": detail}
        record.update(fields)
        sweep.events.append(record)
        if self.bus is not None:
            self.bus.emit(round(time.monotonic() - self._clock0, 6),
                          "serve", kind, detail, sweep=sweep.id,
                          trace=sweep.trace_id, **fields)

    def _pool_event(self, kind, detail="", **fields):
        record = {"t": round(time.monotonic() - self._clock0, 6),
                  "kind": kind, "detail": detail}
        record.update(fields)
        if len(self.pool_events) < POOL_EVENT_LIMIT:
            self.pool_events.append(record)
        if self.bus is not None:
            self.bus.emit(record["t"], "serve", kind, detail, **fields)

    # -- scheduler-thread internals (all called under the lock) --------
    def _intake_pass(self, now):
        """Answer freshly submitted sweeps from the store; queue the rest."""
        while self._intake:
            sweep = self._sweeps[self._intake.pop(0)]
            use_store = (self.store is not None
                         and not sweep.request.no_store)
            self._event(sweep, "sweep_begin", sweep.experiment.name,
                        configs=sweep.cells, jobs=self.size)
            sweep.state = "running"
            for index, config in enumerate(sweep.experiment.grid):
                key = None
                if use_store or self.store is not None:
                    key = config_key(sweep.experiment.name,
                                     key_config(config, sweep.plan),
                                     sweep.code_version)
                if use_store:
                    found, value = self.store.get(sweep.experiment.name,
                                                  key)
                    if found:
                        sweep.stats["store_hits"] += 1
                        self.metrics.inc("cells_store_hit_total")
                        self._event(sweep, "serve_store_hit",
                                    f"{sweep.experiment.name}[{index}]",
                                    index=index)
                        self._finish_cell(sweep, RunRecord(
                            index=index, config=config, status="ok",
                            value=value, cached=True, cache_key=key))
                        continue
                # Opt-in predict mode: an in-region cell of a fitted
                # experiment is answered by the analytic surrogate
                # instead of a worker.  Predicted values are
                # approximations, so they never enter the durable store
                # (no ``put``, no ``cache_key``), and a machine-level
                # fault plan disables the path entirely — the surrogate
                # was fitted on a fault-free machine.
                if sweep.request.predict and sweep.plan is None:
                    value = self._predict_cell(sweep, config)
                    if value is not None:
                        sweep.stats["predict_hits"] += 1
                        self.metrics.inc("predict_cells_total")
                        self._event(sweep, "serve_predict_hit",
                                    f"{sweep.experiment.name}[{index}]",
                                    index=index)
                        self._finish_cell(sweep, RunRecord(
                            index=index, config=config, status="ok",
                            value=value, predicted=True))
                        continue
                sweep.queue.push((index, 0, key))
            self._check_done(sweep)

    def _predict_cell(self, sweep, config):
        """The surrogate's answer for one grid cell, or ``None`` when
        the experiment has no cell surrogate, the config is outside the
        fitted region, or the artifact is unreadable — every miss falls
        back to the worker pool (predict mode may degrade to a normal
        sweep, never fail one)."""
        try:
            surrogate = self.predict.cell_surrogate(sweep.experiment.name)
            if surrogate is None:
                return None
            value = surrogate.value(config)
        except (OSError, ValueError):
            return None
        if value is None:
            self.metrics.inc("predict_out_of_region_total")
        return value

    def _flight_root(self):
        if self._flight_dir is None:
            self._flight_dir = tempfile.mkdtemp(prefix="repro-serve-flight-")
        return self._flight_dir

    def _spawn_worker(self):
        wid = next(self._next_wid)
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        from .protocol import pool_worker_main

        flight_path = os.path.join(self._flight_root(),
                                   f"worker{wid}.jsonl")
        process = self._context.Process(
            target=pool_worker_main, args=(child_conn, wid),
            kwargs={"flight_path": flight_path},
            name=f"serve-worker-{wid}", daemon=True)
        process.start()
        child_conn.close()
        worker = _Worker(wid=wid, process=process, conn=parent_conn,
                         spawned=time.monotonic(),
                         flight_path=flight_path)
        self._workers[wid] = worker
        self._spawned_total += 1
        self.metrics.inc("workers_spawned_total")
        self._pool_event("serve_worker_spawn", f"worker {wid}", worker=wid)
        return worker

    def _idle_worker(self):
        for worker in self._workers.values():
            if worker.busy is None:
                return worker
        if len(self._workers) < self.size:
            return self._spawn_worker()
        return None

    def _dispatch(self, worker, sweep, index, attempt, key, backup, now):
        task_id = next(self._next_task)
        timeout = sweep.timeout
        assignment = _Assignment(
            sweep_id=sweep.id, index=index, attempt=attempt, key=key,
            backup=backup, started=now,
            deadline=(now + timeout) if timeout else None)
        message = ("task", {
            "task_id": task_id,
            "index": index,
            "attempt": attempt,
            "spec": sweep.request.spec(),
            "config": sweep.experiment.grid[index],
            "plan": sweep.plan,
            "chaos": sweep.chaos,
            # Telemetry: the sweep's trace id rides along so the
            # worker's flight-recorder events carry it end to end.
            "sweep": sweep.id,
            "trace": sweep.trace_id,
            "backup": backup,
            "experiment": sweep.experiment.name,
        })
        try:
            worker.conn.send(message)
        except (OSError, ValueError, BrokenPipeError):
            # The worker died between completions; reap it and requeue.
            self._worker_died(worker, "send failed")
            sweep.queue.push((index, attempt, key), front=True)
            return False
        worker.busy = assignment
        self._tasks[task_id] = (worker, assignment)
        sweep.live[index] = sweep.live.get(index, 0) + 1
        kind = "serve_backup" if backup else "serve_assign"
        self._event(sweep, kind,
                    f"{sweep.experiment.name}[{index}] -> worker "
                    f"{worker.wid}",
                    index=index, worker=worker.wid, attempt=attempt,
                    backup=backup)
        if backup:
            sweep.backups_issued += 1
            sweep.stats["backups"] += 1
            self.metrics.inc("backup_tasks_total")
        return True

    def _assign_pass(self, now):
        for sid in self._order:
            sweep = self._sweeps[sid]
            if sweep.state != "running":
                continue
            while True:
                item = sweep.queue.pop(now)
                if item is None:
                    break
                index, attempt, key = item
                if index in sweep.records:
                    continue  # a backup copy won while this waited
                worker = self._idle_worker()
                if worker is None:
                    sweep.queue.push(item, front=True)
                    return
                self._dispatch(worker, sweep, index, attempt, key,
                               backup=False, now=now)
        self._backup_pass(now)

    def _backup_pass(self, now):
        """Re-issue straggler cells to idle workers (first-wins)."""
        if self.backup_fraction <= 0.0:
            return
        for sid in self._order:
            sweep = self._sweeps[sid]
            if (sweep.state != "running" or not sweep.request.backup
                    or sweep.queue or sweep.remaining == 0
                    or sweep.remaining > self.backup_threshold):
                continue
            budget = (max(1, math.ceil(self.backup_fraction * sweep.cells))
                      - sweep.backups_issued)
            if budget <= 0:
                continue
            # The slowest cells: single-copy in-flight work, oldest first.
            candidates = sorted(
                (assignment.started, assignment.index, assignment.attempt,
                 assignment.key)
                for _w, assignment in self._tasks.values()
                if assignment.sweep_id == sid
                and not assignment.backup
                and assignment.index not in sweep.records
                and sweep.live.get(assignment.index, 0) == 1)
            for started, index, attempt, key in candidates:
                if budget <= 0:
                    break
                worker = self._idle_worker()
                if worker is None:
                    return
                if self._dispatch(worker, sweep, index, attempt, key,
                                  backup=True, now=now):
                    budget -= 1

    def _finish_cell(self, sweep, record, worker=None):
        sweep.records[record.index] = record
        fields = dict(index=record.index, status=record.status,
                      attempts=record.attempts, cached=record.cached,
                      wall=round(record.wall_seconds, 4))
        if record.predicted:
            fields["predicted"] = True
        if worker is not None:
            fields["worker"] = worker
        if record.error:
            fields["error"] = record.error.strip().splitlines()[-1][:200]
        self._event(sweep, "sweep_task",
                    f"{sweep.experiment.name}[{record.index}] "
                    f"{record.status}", **fields)
        self._check_done(sweep)

    def _check_done(self, sweep):
        if sweep.state == "running" and sweep.remaining == 0:
            sweep.state = "done"
            sweep.wall_seconds = round(time.monotonic() - sweep.created, 4)
            ordered = sorted(sweep.records.values(), key=lambda r: r.index)
            summary = dict(
                ok=sum(1 for r in ordered if r.ok),
                failed=sum(1 for r in ordered if not r.ok),
                cached=sum(1 for r in ordered if r.cached),
                wall=sweep.wall_seconds)
            self._event(sweep, "sweep_end", sweep.experiment.name,
                        **summary)
            self._event(sweep, "serve_sweep_done", sweep.experiment.name,
                        executed=sweep.stats["executed"], **summary)
            self.metrics.inc("sweeps_completed_total", status="done")
            sweep.done.set()

    def _attempt_over(self, assignment, status, value, error, now,
                      phase=None, worker=None, flight=None):
        """One attempt finished (ok, error, timeout, or worker death)."""
        sweep = self._sweeps.get(assignment.sweep_id)
        if sweep is None:
            return
        index = assignment.index
        sweep.live[index] = max(0, sweep.live.get(index, 0) - 1)
        if index in sweep.records:
            # A sibling copy already won this cell; results are
            # byte-identical by determinism, so drop this one.
            sweep.stats["duplicates_ignored"] += 1
            return
        if status == "ok":
            if assignment.key is not None and self.store is not None:
                self.store.put(sweep.experiment.name, assignment.key,
                               key_config(sweep.experiment.grid[index],
                                          sweep.plan),
                               sweep.code_version, value)
            sweep.stats["executed"] += 1
            self.metrics.inc("cells_executed_total")
            if assignment.backup:
                sweep.stats["backup_wins"] += 1
                self.metrics.inc("backup_wins_total")
            self._finish_cell(sweep, RunRecord(
                index=index, config=sweep.experiment.grid[index],
                status="ok", value=value, attempts=assignment.attempt + 1,
                wall_seconds=now - assignment.started,
                cache_key=assignment.key), worker=worker)
            return
        # Failure path.  ``fatal`` (operator interrupt / resource
        # exhaustion in the worker) is never retried: the row lands
        # immediately with its traceback instead of burning attempts.
        if status != "fatal" and sweep.live.get(index, 0) > 0:
            self._event(sweep, "serve_requeue",
                        f"{sweep.experiment.name}[{index}] copy failed; "
                        "sibling still running",
                        index=index, attempt=assignment.attempt,
                        reason="sibling_live", **(
                            {"worker": worker} if worker is not None
                            else {}))
            return
        if status != "fatal" and assignment.attempt < sweep.retries:
            delay = min(RETRY_BACKOFF_CAP,
                        RETRY_BACKOFF * (2 ** assignment.attempt))
            sweep.queue.push((index, assignment.attempt + 1,
                              assignment.key), not_before=now + delay)
            sweep.stats["requeued"] += 1
            self.metrics.inc("cells_requeued_total")
            self._event(sweep, "serve_requeue",
                        f"{sweep.experiment.name}[{index}] attempt "
                        f"{assignment.attempt} {status}",
                        index=index, attempt=assignment.attempt + 1,
                        reason=status, **(
                            {"worker": worker} if worker is not None
                            else {}))
            return
        self._finish_cell(sweep, RunRecord(
            index=index, config=sweep.experiment.grid[index],
            status=status, error=error, attempts=assignment.attempt + 1,
            wall_seconds=now - assignment.started,
            cache_key=assignment.key,
            timeout_phase=phase if status == "timeout" else None,
            flight=flight), worker=worker)

    def _drop_task(self, worker):
        """Detach the worker's current task; returns the assignment."""
        assignment = worker.busy
        worker.busy = None
        for task_id, (w, a) in list(self._tasks.items()):
            if w is worker and a is assignment:
                del self._tasks[task_id]
        return assignment

    def _read_flight(self, worker):
        """The tail of a dead worker's flight-recorder spill file (the
        pipe is gone, so this is the only copy of its last moments)."""
        path = worker.flight_path
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
        except OSError:
            return None
        tail = []
        for line in lines[-FLIGHT_TAIL:]:
            try:
                tail.append(json.loads(line))
            except ValueError:
                continue  # torn final write mid-crash
        return tail or None

    def _worker_died(self, worker, reason):
        now = time.monotonic()
        self._workers.pop(worker.wid, None)
        assignment = self._drop_task(worker)
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.process.join(timeout=1.0)
        code = worker.process.exitcode
        self._exits_total += 1
        self._pool_event("serve_worker_exit",
                         f"worker {worker.wid}: {reason}",
                         worker=worker.wid, reason=reason)
        if assignment is not None:
            sweep = self._sweeps.get(assignment.sweep_id)
            if sweep is not None:
                sweep.stats["worker_deaths"] += 1
            self.metrics.inc("worker_deaths_total")
            self._attempt_over(
                assignment, "error", None,
                f"worker process died (exit code {code}) while running "
                f"cell {assignment.index}", now, worker=worker.wid,
                flight=self._read_flight(worker))

    def _check_deadlines(self, now):
        for worker in list(self._workers.values()):
            assignment = worker.busy
            if (assignment is None or assignment.deadline is None
                    or now < assignment.deadline):
                continue
            sweep = self._sweeps.get(assignment.sweep_id)
            timeout = sweep.timeout if sweep else None
            self._workers.pop(worker.wid, None)
            self._drop_task(worker)
            worker.process.terminate()
            worker.process.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:
                pass
            if sweep is not None:
                sweep.stats["timeouts"] += 1
            self._exits_total += 1
            self.metrics.inc("cell_timeouts_total")
            self._pool_event("serve_worker_exit",
                             f"worker {worker.wid}: timeout",
                             worker=worker.wid, reason="timeout")
            self._attempt_over(
                assignment, "timeout", None,
                f"cell exceeded {timeout}s (in {assignment.phase} phase) "
                "and its worker was terminated", now,
                phase=assignment.phase, worker=worker.wid,
                flight=self._read_flight(worker))

    def _handle_message(self, worker, message, now):
        kind = message[0]
        if kind == "begin":
            if worker.busy is not None:
                worker.busy.phase = "run"
            return
        if kind == "done":
            # 5-tuple from older workers; 6th element is the flight-
            # recorder tail a failing run ships back over the pipe.
            _kind, task_id, status, value, error = message[:5]
            flight = message[5] if len(message) > 5 else None
            entry = self._tasks.pop(task_id, None)
            worker.busy = None
            worker.completed += 1
            if entry is None:
                return  # task was cancelled (timeout path) — stale reply
            _worker, assignment = entry
            self._attempt_over(assignment, status, value, error, now,
                               worker=worker.wid, flight=flight)

    def _wait_timeout(self, now):
        """How long the wait may block: next deadline or queued delay."""
        horizon = None
        for worker in self._workers.values():
            if worker.busy is not None and worker.busy.deadline is not None:
                remaining = worker.busy.deadline - now
                horizon = (remaining if horizon is None
                           else min(horizon, remaining))
        for sid in self._order:
            sweep = self._sweeps[sid]
            if sweep.state != "running":
                continue
            delay = sweep.queue.next_ready(now)
            if delay is not None:
                horizon = delay if horizon is None else min(horizon, delay)
        if horizon is None:
            return None
        return max(0.0, horizon)

    def _run(self):
        while True:
            with self._lock:
                if self._closing:
                    self._shutdown()
                    return
                now = time.monotonic()
                self._intake_pass(now)
                self._check_deadlines(now)
                self._assign_pass(now)
                conns = [w.conn for w in self._workers.values()]
                conns.append(self._wake_r)
                timeout = self._wait_timeout(now)
            ready = _wait_connections(conns, timeout=timeout)
            with self._lock:
                now = time.monotonic()
                if self._wake_r in ready:
                    while self._wake_r.poll():
                        try:
                            self._wake_r.recv_bytes()
                        except (EOFError, OSError):
                            break
                for worker in list(self._workers.values()):
                    if worker.conn not in ready:
                        continue
                    while True:
                        try:
                            if not worker.conn.poll():
                                break
                            message = worker.conn.recv()
                        except (EOFError, OSError):
                            self._worker_died(worker, "pipe closed")
                            break
                        self._handle_message(worker, message, now)

    def _shutdown(self):
        for worker in list(self._workers.values()):
            try:
                worker.conn.send(("stop",))
            except (OSError, ValueError, BrokenPipeError):
                pass
        deadline = time.monotonic() + 2.0
        for worker in self._workers.values():
            worker.process.join(timeout=max(0.0,
                                            deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        self._workers.clear()
        self._tasks.clear()
        for sweep in self._sweeps.values():
            if sweep.state in ("queued", "running"):
                sweep.state = "aborted"
                self.metrics.inc("sweeps_completed_total",
                                 status="aborted")
                sweep.done.set()
        if self._flight_dir is not None:
            shutil.rmtree(self._flight_dir, ignore_errors=True)
            self._flight_dir = None
