"""What flows between client, server, and pool workers.

Three layers share the definitions here:

* **Sweep requests** — the JSON body of ``POST /sweeps``, validated by
  :class:`SweepRequest`.  A request names a registered experiment (a
  ``run_all.EXPERIMENTS`` table name such as ``e07_trapezoid``), or a
  ``module:function`` callable plus an inline ``grid`` of config dicts,
  optionally with a :class:`~repro.faults.FaultPlan`.
* **Experiment resolution** — :func:`resolve_experiment` turns a request
  spec into a live :class:`~repro.exp.Experiment` through the same
  machinery ``repro bench`` uses, exporting the machine-level fault plan
  (``REPRO_FAULT_PLAN``) before the bench module is (re)imported so
  fault-aware grids honor it even in a long-running process.
* **Worker pipe messages** — :func:`pool_worker_main` is the body of a
  persistent pool worker: it loops receiving ``("task", {...})``
  messages, answers ``("begin", id)`` when it enters the run function
  (so the parent can attribute timeouts to startup vs run, exactly like
  the batch engine's handshake) and ``("done", id, status, value,
  error)`` when finished.

Fault plans split in two: *machine-level* fields (slow banks, network
spikes, ...) change a run's value, so they are folded into the cell's
cache key and exported to the worker; *scheduling-level* fields
(``worker_crash_rate``) crash the worker process itself — they can never
change a value, so they are stripped from keys: a chaos run and a clean
run of the same cell share one store entry.
"""

import importlib
import json
import os
import sys
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..common.rng import substream
from ..exp.bench import build_experiment, find_bench_dir
from ..exp.engine import FATAL_EXCEPTIONS
from ..exp.experiment import Experiment
from ..faults import SCHEDULING_FIELDS, FaultPlan

__all__ = ["FlightRecorder", "ProtocolError", "SweepRequest",
           "key_config", "machine_plan", "pool_worker_main",
           "resolve_experiment", "scheduling_plan"]

#: Default TCP port for ``repro serve`` (after CSG Memo 226).
DEFAULT_PORT = 8226

#: Exit code a chaos-crashed worker dies with (distinguishable from a
#: genuine fault in test output).
CRASH_EXIT_CODE = 117


class ProtocolError(ValueError):
    """A malformed or unresolvable sweep request (HTTP 400)."""


@dataclass
class SweepRequest:
    """A validated ``POST /sweeps`` body."""

    #: A run_all table name (``e07_trapezoid``) — or a display name when
    #: ``callable`` is given.
    experiment: Optional[str] = None
    #: ``"package.module:function"`` run function for inline sweeps.
    callable: Optional[str] = None
    #: Inline config dicts; replaces the declared grid when present
    #: (sweep-style experiments only), required with ``callable``.
    grid: Optional[List[Dict[str, Any]]] = None
    #: A FaultPlan dict (machine-level fields + ``worker_crash_rate``).
    faults: Optional[Dict[str, Any]] = None
    #: Skip store lookups (every cell is freshly simulated); results are
    #: still written back to the store.
    no_store: bool = False
    #: Per-attempt retry budget override (default: the scheduler's).
    retries: Optional[int] = None
    #: Per-attempt timeout override in seconds.
    timeout: Optional[float] = None
    #: Allow straggler backup copies for this sweep.
    backup: bool = True
    #: Free-form client label echoed in status output.
    label: Optional[str] = None
    #: Benchmarks directory override (tests; defaults to auto-detect).
    bench_dir: Optional[str] = None
    #: Answer in-region cells from the fitted surrogate
    #: (:mod:`repro.predict`) instead of scheduling workers; cells the
    #: surrogate cannot cover fall back to the worker pool.  Opt-in:
    #: predicted values are approximations and never enter the store.
    predict: bool = False

    _FIELDS = ("experiment", "callable", "grid", "faults", "no_store",
               "retries", "timeout", "backup", "label", "bench_dir",
               "predict")

    @classmethod
    def from_dict(cls, payload):
        if not isinstance(payload, dict):
            raise ProtocolError("sweep request body must be a JSON object")
        unknown = set(payload) - set(cls._FIELDS)
        if unknown:
            raise ProtocolError(
                f"unknown sweep request field(s): {sorted(unknown)}")
        request = cls(**payload)
        if not request.experiment and not request.callable:
            raise ProtocolError(
                "a sweep request needs 'experiment' (a run_all table "
                "name) or 'callable' (module:function)")
        if request.callable and not request.grid:
            raise ProtocolError("'callable' sweeps need an inline 'grid'")
        if request.grid is not None:
            if (not isinstance(request.grid, list) or not request.grid
                    or not all(isinstance(c, dict) for c in request.grid)):
                raise ProtocolError(
                    "'grid' must be a non-empty list of config objects")
        if request.faults is not None:
            try:
                FaultPlan.from_dict(request.faults)
            except (TypeError, ValueError) as exc:
                raise ProtocolError(f"invalid fault plan: {exc}") from exc
        if not isinstance(request.predict, bool):
            raise ProtocolError("'predict' must be a boolean")
        if request.retries is not None and request.retries < 0:
            raise ProtocolError("'retries' must be >= 0")
        if request.timeout is not None and request.timeout <= 0:
            raise ProtocolError("'timeout' must be positive")
        return request

    def as_dict(self):
        """The canonical JSON form (defaults omitted)."""
        out = {}
        for name in self._FIELDS:
            value = getattr(self, name)
            if value is not None and value != SweepRequest.__dataclass_fields__[name].default:
                out[name] = value
        return out

    def spec(self):
        """The worker-side resolution spec (no grid — cells arrive as
        individual task configs)."""
        if self.callable:
            return {"callable": self.callable,
                    "experiment": self.experiment or self.callable}
        spec = {"experiment": self.experiment}
        if self.bench_dir:
            spec["bench_dir"] = self.bench_dir
        return spec


# ---------------------------------------------------------------------------
# fault-plan splitting


def machine_plan(faults):
    """The machine-level remainder of a fault plan dict, or ``None``
    when nothing in it can affect a simulated run."""
    if not faults:
        return None
    plan = {k: v for k, v in faults.items() if k not in SCHEDULING_FIELDS}
    if not FaultPlan.from_dict(plan).enabled:
        return None
    return plan


def scheduling_plan(faults):
    """The scheduling-level chaos parameters of a fault plan dict
    (worker crashes), or ``None`` when inert."""
    if not faults or not faults.get("worker_crash_rate"):
        return None
    plan = FaultPlan.from_dict(faults)
    return {"worker_crash_rate": plan.worker_crash_rate,
            "seed": plan.seed, "max_retries": plan.max_retries}


def key_config(config, plan):
    """The config dict a cell is cache-keyed by: the run config itself,
    wrapped with the machine-level fault plan when one is active (the
    plan changes the value, so it must change the key)."""
    if plan is None:
        return config
    return {"__faults__": plan, "config": config}


# ---------------------------------------------------------------------------
# experiment resolution

#: module name -> canonical machine-plan JSON it was last imported under.
_MODULE_PLAN = {}


def _apply_plan_env(plan):
    if plan is not None:
        os.environ["REPRO_FAULT_PLAN"] = json.dumps(plan, sort_keys=True)
    else:
        os.environ.pop("REPRO_FAULT_PLAN", None)


def _import_callable(path):
    module_name, _, fn_name = path.partition(":")
    if not module_name or not fn_name:
        raise ProtocolError(
            f"callable must be 'module:function', got {path!r}")
    try:
        module = importlib.import_module(module_name)
        return getattr(module, fn_name)
    except (ImportError, AttributeError) as exc:
        raise ProtocolError(f"cannot resolve callable {path!r}: {exc}") \
            from exc


def resolve_experiment(spec, grid=None, plan=None):
    """Build the :class:`Experiment` a spec names.

    ``plan`` (a machine-level fault plan dict) is exported as
    ``REPRO_FAULT_PLAN`` first; a bench module that was previously
    imported under a *different* plan is reloaded so fault-aware grids
    (e20) rebuild against the new environment — the long-running-server
    equivalent of ``repro bench`` exporting the plan before import.
    ``grid`` replaces the declared grid (sweep experiments only).
    """
    _apply_plan_env(plan)
    plan_json = json.dumps(plan, sort_keys=True) if plan else None
    if spec.get("callable"):
        run = _import_callable(spec["callable"])
        return Experiment(
            name=spec.get("experiment") or spec["callable"],
            run=run,
            grid=[dict(config) for config in (grid or [{}])],
        )

    name = spec.get("experiment")
    bench_dir = find_bench_dir(spec.get("bench_dir"))
    os.environ["REPRO_BENCH_DIR"] = bench_dir
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    run_all = importlib.import_module("run_all")
    for module_name, runners in run_all.EXPERIMENTS:
        for fn_name, out_name in runners:
            if out_name != name:
                continue
            already = module_name in sys.modules
            module = importlib.import_module(module_name)
            if already and _MODULE_PLAN.get(module_name) != plan_json:
                module = importlib.reload(module)
            _MODULE_PLAN[module_name] = plan_json
            experiment, is_sweep = build_experiment(module, fn_name,
                                                    out_name)
            if grid is not None:
                if not is_sweep:
                    raise ProtocolError(
                        f"experiment {name!r} is a legacy whole-table "
                        "run; it does not accept an inline grid")
                experiment = Experiment(
                    name=experiment.name, run=experiment.run,
                    grid=[dict(config) for config in grid],
                    title=experiment.title,
                    assemble=experiment.assemble,
                    code_paths=list(experiment.code_paths),
                    notes=list(experiment.notes),
                )
            return experiment
    raise ProtocolError(
        f"unknown experiment {name!r} (not a run_all.EXPERIMENTS table)")


# ---------------------------------------------------------------------------
# the persistent pool worker

#: Breadcrumbs kept in a worker's in-memory flight ring (per task).
FLIGHT_RING_LIMIT = 256
#: Breadcrumbs shipped back on a ``done`` failure message.
FLIGHT_TAIL = 50


class FlightRecorder:
    """A worker's black box: a bounded :class:`~repro.obs.RingSink` of
    breadcrumb events plus a crash-safe spill file.

    Every task starts a fresh recording stamped with the sweep's trace
    id.  Breadcrumbs go two places at once: the in-memory ring (whose
    tail rides back on a failing ``done`` message) and ``flight_path``,
    truncated per task and flushed per event — so when the process dies
    by ``os._exit`` (chaos), OOM kill, or the scheduler's timeout
    ``terminate()``, the parent can still read what the worker was doing
    from the file.  Post-mortems need no re-run.
    """

    def __init__(self, worker_id, flight_path=None,
                 limit=FLIGHT_RING_LIMIT):
        import time as _time

        from ..obs import RingSink, TraceBus

        self._time = _time
        self.source = f"worker{worker_id}"
        self._limit = limit
        self.ring = RingSink(limit=limit)
        self.bus = TraceBus(self.ring)
        self.path = flight_path
        self._fh = None
        self._t0 = self._time.monotonic()
        self._stamp = {}

    def begin_task(self, task):
        """Start recording one task: fresh ring, truncated spill file,
        the task's trace stamp, and the ``flight_begin`` breadcrumb —
        a failure row carries only its own task's story."""
        from ..obs import RingSink, TraceBus

        self.ring = RingSink(limit=self._limit)
        self.bus = TraceBus(self.ring)
        self._t0 = self._time.monotonic()
        self._stamp = {}
        for key in ("trace", "sweep", "index"):
            if task.get(key) is not None:
                self._stamp[key] = task[key]
        if self.path is not None:
            try:
                self._fh = open(self.path, "w", encoding="utf-8")
            except OSError:
                self._fh = None
        fields = {"attempt": task.get("attempt", 0)}
        if task.get("backup"):
            fields["backup"] = True
        self.note("flight_begin",
                  f"{task.get('experiment', '?')}[{task.get('index')}]",
                  **fields)

    def note(self, kind, detail="", **fields):
        t = round(self._time.monotonic() - self._t0, 6)
        stamped = dict(self._stamp)
        stamped.update(fields)
        event = self.bus.emit(t, self.source, kind, detail, **stamped)
        if self._fh is not None and event is not None:
            try:
                self._fh.write(json.dumps(event.to_json_dict(),
                                          sort_keys=True, default=repr)
                               + "\n")
                self._fh.flush()
            except (OSError, ValueError):
                self._fh = None

    def tail(self, limit=FLIGHT_TAIL):
        """The newest breadcrumbs as JSON-able dicts."""
        return [event.to_json_dict()
                for event in list(self.ring.events)[-limit:]]


def _chaos_crash(task):
    """Deterministically crash this worker process if the task's chaos
    plan says so.  The draw comes from a substream named by (cell,
    attempt) — independent of worker identity and scheduling order —
    and attempts at or past ``max_retries`` never crash (liveness)."""
    chaos = task.get("chaos")
    if not chaos:
        return
    rate = chaos.get("worker_crash_rate", 0.0)
    attempt = task.get("attempt", 0)
    if rate <= 0.0 or attempt >= chaos.get("max_retries", 8):
        return
    stream = substream(chaos.get("seed", 0),
                       f"serve.cell{task['index']}.attempt{attempt}")
    if stream.random() < rate:
        os._exit(CRASH_EXIT_CODE)


def pool_worker_main(conn, worker_id, flight_path=None):
    """Body of one persistent pool worker process.

    Resolved run functions are memoized per (spec, plan), so a worker
    that serves a thousand cells of one sweep imports its bench module
    once.  Any exception a run raises ships back as a structured
    ``done`` error (with the flight-recorder tail as a sixth element);
    only a ``stop`` message or pipe loss ends the loop.  The
    :class:`FlightRecorder` spills breadcrumbs to ``flight_path`` so
    even a crash or external ``terminate()`` leaves a black box behind.
    """
    runners = {}
    recorder = FlightRecorder(worker_id, flight_path=flight_path)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message[0] == "stop":
            conn.close()
            return
        task = message[1]
        task_id = task["task_id"]
        # Breadcrumb lands before the chaos draw: a chaos crash must
        # leave evidence of the task it interrupted.
        recorder.begin_task(task)
        _chaos_crash(task)
        try:
            memo = json.dumps([task["spec"], task.get("plan")],
                              sort_keys=True)
            run = runners.get(memo)
            if run is None:
                recorder.note("flight_resolve", str(task["spec"]))
                run = resolve_experiment(task["spec"],
                                         plan=task.get("plan")).run
                runners[memo] = run
            conn.send(("begin", task_id))
            recorder.note("flight_run")
            value = run(task["config"])
            recorder.note("flight_done")
            conn.send(("done", task_id, "ok", value, None))
        except FATAL_EXCEPTIONS:
            # Operator interrupts / resource exhaustion: ship the
            # traceback as a never-retried ``fatal`` row, then leave the
            # loop — a worker that just blew its memory budget (or was
            # interrupted) must not quietly pick up the next task.
            failure = traceback.format_exc()
            recorder.note("flight_fatal",
                          failure.strip().splitlines()[-1][:200])
            try:
                conn.send(("done", task_id, "fatal", None, failure,
                           recorder.tail()))
            except (OSError, ValueError):
                print(failure, file=sys.stderr)
            conn.close()
            return
        except BaseException:  # noqa: BLE001 — parent turns this into a row
            failure = traceback.format_exc()
            recorder.note("flight_error",
                          failure.strip().splitlines()[-1][:200])
            try:
                conn.send(("done", task_id, "error", None, failure,
                           recorder.tail()))
            except (OSError, ValueError):
                print(failure, file=sys.stderr)
                return
