"""Assemble one Chrome/Perfetto trace of a whole sweep.

The scheduler already records everything that happens to a sweep — the
ordered event list on :class:`~repro.serve.scheduler.SweepState`
(assignments, store hits, requeues, completions) plus the pool-level
spawn/exit events — and every record is stamped with wall-clock offsets
on one timeline.  This module folds those into the Chrome trace_event
JSON Object Format (the same format :class:`~repro.obs.sinks.
ChromeTraceSink` emits for machine runs), one track per pool worker plus
a scheduler track:

* a **duration slice** (``ph: X``) per cell attempt, opened by its
  ``serve_assign``/``serve_backup`` event and closed by the matching
  ``sweep_task`` completion or ``serve_requeue`` (failure/timeout/crash
  recovery) — backup copies and crash retries appear as distinct slices
  racing on different worker tracks;
* an **instant** (``ph: i``) per store/predict hit, worker spawn/exit, sweep
  begin/end, and flight-recorder breadcrumb attached to a failure row;
* **metadata** (``ph: M``) naming the process after the sweep and each
  thread after its worker.

Timestamps are microseconds on the scheduler's clock, so slices from
different workers and sweeps line up.  ``GET /sweeps/<id>/trace`` and
``repro sweeps <id> --trace`` serve the result; it loads directly in
Perfetto / ``chrome://tracing``.
"""

__all__ = ["sweep_trace"]

#: Spare window (seconds) around a sweep in which pool-level events
#: (worker spawn/exit) are considered part of its story.
POOL_WINDOW_PAD = 1.0


def _us(seconds):
    return int(round(seconds * 1e6))


def sweep_trace(scheduler, sweep_id):
    """The Chrome-trace payload (a JSON-able dict) for one sweep, or
    ``None`` when the sweep id is unknown."""
    with scheduler._lock:
        sweep = scheduler._sweeps.get(sweep_id)
        if sweep is None:
            return None
        events = [dict(e) for e in sweep.events]
        pool_events = [dict(e) for e in scheduler.pool_events]
        base = getattr(sweep, "created_rel",
                       sweep.created - scheduler._clock0)
        state = sweep.state
        trace_id = sweep.trace_id
        experiment = sweep.experiment.name
        wall = (sweep.wall_seconds
                if sweep.wall_seconds is not None
                else (events[-1]["t"] if events else 0.0))
        flights = {r.index: r.flight
                   for r in sweep.records.values() if r.flight}

    pid = 0
    trace_events = [{
        "ph": "M", "name": "process_name", "pid": pid,
        "args": {"name": f"repro serve sweep {sweep_id} ({experiment})"},
    }, {
        "ph": "M", "name": "thread_name", "pid": pid, "tid": 0,
        "args": {"name": "scheduler"},
    }]
    named_workers = set()

    def worker_tid(wid):
        # Track ids 1.. mirror worker ids directly (wid is 1-based).
        if wid not in named_workers:
            named_workers.add(wid)
            trace_events.append({
                "ph": "M", "name": "thread_name", "pid": pid,
                "tid": wid, "args": {"name": f"worker {wid}"},
            })
        return wid

    def instant(name, t, tid, args=None):
        event = {"ph": "i", "name": name, "pid": pid, "tid": tid,
                 "ts": _us(base + t), "s": "t"}
        if args:
            event["args"] = args
        trace_events.append(event)

    # index -> {worker: open assign event} (attempts on one worker are
    # sequential, so (index, worker) is unique among open slices).
    open_slices = {}

    def close_slice(index, worker, t_end, name_suffix, args):
        opens = open_slices.get(index)
        if not opens:
            return False
        if worker is None or worker not in opens:
            # Old-format closure without a worker stamp: close the
            # oldest open copy.
            worker = min(opens, key=lambda w: opens[w]["t"])
        start = opens.pop(worker)
        if not opens:
            open_slices.pop(index, None)
        slice_args = {"attempt": start.get("attempt", 0),
                      "trace": trace_id}
        if start.get("backup"):
            slice_args["backup"] = True
        slice_args.update(args)
        trace_events.append({
            "ph": "X",
            "name": f"{experiment}[{index}]{name_suffix}",
            "pid": pid, "tid": worker_tid(worker),
            "ts": _us(base + start["t"]),
            "dur": max(1, _us(t_end - start["t"])),
            "args": slice_args,
        })
        return True

    for event in events:
        kind = event["kind"]
        t = event["t"]
        index = event.get("index")
        if kind in ("serve_assign", "serve_backup"):
            open_slices.setdefault(index, {})[event["worker"]] = event
        elif kind == "sweep_task":
            if event.get("cached") or event.get("predicted"):
                continue  # the store/predict hit instant covers it
            args = {"status": event.get("status")}
            suffix = ("" if event.get("status") == "ok"
                      else f" {event.get('status')}")
            close_slice(index, event.get("worker"), t, suffix, args)
            for crumb in flights.get(index) or []:
                instant(f"flight:{crumb.get('kind', '?')}", t,
                        worker_tid(event["worker"])
                        if event.get("worker") is not None else 0,
                        args={k: v for k, v in crumb.items()
                              if k not in ("t",)})
        elif kind == "serve_requeue":
            close_slice(index, event.get("worker"), t,
                        f" requeue:{event.get('reason')}",
                        {"reason": event.get("reason")})
        elif kind == "serve_store_hit":
            instant(f"{experiment}[{index}] store_hit", t, 0)
        elif kind == "serve_predict_hit":
            instant(f"{experiment}[{index}] predict_hit", t, 0)
        elif kind in ("serve_request", "sweep_begin", "sweep_end",
                      "serve_sweep_done"):
            instant(kind, t, 0,
                    args={k: v for k, v in event.items()
                          if k not in ("seq", "t", "kind", "detail")})

    # Anything still open (running cells, or a worker death whose
    # retry is pending) shows as an instant at its start.
    for index, opens in open_slices.items():
        for worker, start in opens.items():
            instant(f"{experiment}[{index}] in-flight", start["t"],
                    worker_tid(worker),
                    args={"attempt": start.get("attempt", 0)})

    # Pool lifecycle inside (a pad around) the sweep's window.
    lo = base - POOL_WINDOW_PAD
    hi = base + wall + POOL_WINDOW_PAD
    for event in pool_events:
        if not lo <= event["t"] <= hi:
            continue
        wid = event.get("worker")
        tid = worker_tid(wid) if wid is not None else 0
        trace_events.append({
            "ph": "i", "name": event["kind"], "pid": pid, "tid": tid,
            "ts": _us(event["t"]), "s": "t",
            "args": {k: v for k, v in event.items()
                     if k not in ("t", "kind", "detail")},
        })

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "sweep": sweep_id,
            "trace": trace_id,
            "experiment": experiment,
            "state": state,
        },
    }
