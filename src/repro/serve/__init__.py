"""Simulation-as-a-service: a sweep scheduler with a durable store.

``repro serve`` turns the batch experiment engine into a long-running
service — the paper's latency-tolerance argument applied to our own
pipeline.  A persistent worker pool (:mod:`~repro.serve.scheduler`)
executes sweep cells with straggler backup tasks and worker-failure
recovery; a content-addressed SQLite store (:mod:`~repro.serve.store`)
answers repeat sweeps without simulating; a stdlib asyncio HTTP front
end (:mod:`~repro.serve.server`) and client (:mod:`~repro.serve.client`)
carry the JSON protocol (:mod:`~repro.serve.protocol`).

See ``docs/SERVICE.md`` for the API reference and deployment notes.
"""

from .client import ServeClient, ServeError, remote_suite
from .protocol import DEFAULT_PORT, FlightRecorder, ProtocolError, SweepRequest
from .scheduler import SweepScheduler
from .server import ServerThread, run_server
from .store import SqliteStore, default_store_path, open_store
from .trace import sweep_trace

__all__ = [
    "DEFAULT_PORT",
    "FlightRecorder",
    "ProtocolError",
    "ServeClient",
    "ServeError",
    "ServerThread",
    "SqliteStore",
    "SweepRequest",
    "SweepScheduler",
    "default_store_path",
    "open_store",
    "remote_suite",
    "run_server",
    "sweep_trace",
]
