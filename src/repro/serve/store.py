"""The durable content-addressed result store behind ``repro serve``.

A *store* maps ``(experiment, key)`` — where ``key`` is the existing
:func:`repro.exp.cache.config_key` content hash of (experiment, config,
code-version) — to a finished run value.  Two backends implement one
interface:

* :class:`SqliteStore` — a single SQLite file with persistent hit
  counters and timestamps; the service backend.  One writer at a time
  (WAL mode), safe across threads behind an internal lock.  Designed to
  hold millions of cached experiment cells: lookups are a primary-key
  probe, and maintenance (``stats`` / ``prune`` / ``clear``) runs as SQL
  aggregates, never a directory walk.
* :class:`~repro.exp.cache.ResultCache` (re-exported as ``DirStore``) —
  the legacy one-JSON-file-per-entry layout at ``benchmarks/.expcache``.

Both satisfy the duck type :func:`repro.exp.engine.run_experiment`
accepts as ``cache=``, so the batch engine and the sweep service answer
repeat queries from the same entries.  :func:`open_store` picks the
backend from a path (an existing legacy directory stays a ``DirStore``;
anything else becomes SQLite), and :func:`default_store_path` resolves
``$REPRO_STORE`` falling back to ``~/.cache/repro``.

Byte-compatibility: values round-trip through the same canonical JSON
(``sort_keys`` + ``default=repr``) the directory cache uses, so a sweep
served from either backend assembles a byte-identical table.
"""

import json
import os
import sqlite3
import threading
import time

from ..exp.cache import ResultCache as DirStore

__all__ = ["DirStore", "SqliteStore", "default_store_path", "open_store"]

#: Name of the SQLite file created inside a store *directory*.
STORE_FILENAME = "store.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    experiment   TEXT NOT NULL,
    key          TEXT NOT NULL,
    config       TEXT NOT NULL,
    code_version TEXT,
    value        TEXT NOT NULL,
    created      REAL NOT NULL,
    hits         INTEGER NOT NULL DEFAULT 0,
    last_hit     REAL,
    PRIMARY KEY (experiment, key)
);
"""


def default_store_path():
    """The store location: ``$REPRO_STORE`` or ``~/.cache/repro``."""
    env = os.environ.get("REPRO_STORE")
    if env:
        return os.path.abspath(env)
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def _looks_like_dir_cache(path):
    """True when ``path`` is an existing legacy ``.expcache`` layout:
    per-experiment subdirectories holding ``<key>.json`` entries."""
    if not os.path.isdir(path):
        return False
    if os.path.isfile(os.path.join(path, STORE_FILENAME)):
        return False
    for name in os.listdir(path):
        child = os.path.join(path, name)
        if os.path.isdir(child):
            if any(f.endswith(".json") for f in os.listdir(child)):
                return True
    return False


def open_store(path=None):
    """Open the store at ``path`` (default :func:`default_store_path`).

    An existing legacy directory cache opens as a :class:`DirStore`;
    a ``*.sqlite``/``*.db`` path, or any other directory, opens as a
    :class:`SqliteStore` (``<dir>/store.sqlite`` for directories).
    """
    path = os.path.abspath(path or default_store_path())
    if path.endswith((".sqlite", ".db")) or os.path.isfile(path):
        return SqliteStore(path)
    if _looks_like_dir_cache(path):
        return DirStore(path)
    return SqliteStore(os.path.join(path, STORE_FILENAME))


class SqliteStore:
    """SQLite-backed content-addressed result store."""

    def __init__(self, path):
        self.path = os.path.abspath(path)
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._db = sqlite3.connect(self.path, check_same_thread=False)
        with self._lock:
            self._db.execute("PRAGMA journal_mode=WAL")
            self._db.execute(_SCHEMA)
            self._db.commit()

    # -- the engine cache interface ------------------------------------
    def get(self, experiment_name, key):
        """(found, value) with persistent hit accounting."""
        with self._lock:
            row = self._db.execute(
                "SELECT value FROM results WHERE experiment=? AND key=?",
                (experiment_name, key)).fetchone()
            if row is None:
                self.misses += 1
                return False, None
            self._db.execute(
                "UPDATE results SET hits=hits+1, last_hit=? "
                "WHERE experiment=? AND key=?",
                (time.time(), experiment_name, key))
            self._db.commit()
        self.hits += 1
        return True, json.loads(row[0])

    def put(self, experiment_name, key, config, code_version, value):
        """Persist one successful run value (idempotent upsert)."""
        blob = json.dumps(value, sort_keys=True, default=repr)
        config_blob = json.dumps(config, sort_keys=True, default=repr)
        with self._lock:
            self._db.execute(
                "INSERT INTO results (experiment, key, config, "
                "code_version, value, created) VALUES (?, ?, ?, ?, ?, ?) "
                "ON CONFLICT(experiment, key) DO UPDATE SET value=?",
                (experiment_name, key, config_blob, code_version, blob,
                 time.time(), blob))
            self._db.commit()

    # -- maintenance (the `repro cache` surface) -----------------------
    def stats(self):
        """Aggregate store statistics, including persistent hit counts."""
        with self._lock:
            total, total_bytes, total_hits, oldest = self._db.execute(
                "SELECT COUNT(*), COALESCE(SUM(LENGTH(value)), 0), "
                "COALESCE(SUM(hits), 0), MIN(created) FROM results"
            ).fetchone()
            per_experiment = {
                name: {"entries": entries, "bytes": size, "hits": hits}
                for name, entries, size, hits in self._db.execute(
                    "SELECT experiment, COUNT(*), SUM(LENGTH(value)), "
                    "SUM(hits) FROM results GROUP BY experiment "
                    "ORDER BY experiment")
            }
        return {
            "backend": "sqlite",
            "root": self.path,
            "entries": total,
            "bytes": total_bytes,
            "hits": total_hits,
            "experiments": per_experiment,
            # Clamped at zero: a backwards clock step between write and
            # stat must not report a negative age.
            "oldest_age_seconds": (None if oldest is None
                                   else round(max(0.0, time.time() - oldest),
                                              1)),
            "session": {"hits": self.hits, "misses": self.misses},
        }

    def prune(self, older_than_seconds):
        """Delete entries created before the cutoff; returns rows removed.

        ``older_than_seconds`` must be non-negative — a negative window
        (e.g. a mis-parsed ``--older-than``) would place the cutoff in
        the future and delete entries written this instant.  The cutoff
        is additionally clamped to *now*, so a row whose ``created``
        stamp lies in the future (the wall clock stepped backwards since
        the write) has its age treated as zero, never as prunable.
        """
        if not older_than_seconds >= 0:
            raise ValueError(
                f"older_than_seconds must be >= 0, got {older_than_seconds!r}")
        now = time.time()
        cutoff = min(now - older_than_seconds, now)
        with self._lock:
            cursor = self._db.execute(
                "DELETE FROM results WHERE created < ?", (cutoff,))
            self._db.commit()
        return cursor.rowcount

    def clear(self):
        """Delete every entry; returns rows removed."""
        with self._lock:
            cursor = self._db.execute("DELETE FROM results")
            self._db.commit()
        return cursor.rowcount

    def ingest_dir(self, root):
        """Import a legacy directory cache (``benchmarks/.expcache``
        layout) into this store; returns entries imported.  Existing
        keys are left untouched (the directory entry is not newer)."""
        imported = 0
        for experiment, key, path, _mtime, _size in DirStore(root).entries():
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    entry = json.load(fh)
            except (OSError, ValueError):
                continue
            with self._lock:
                cursor = self._db.execute(
                    "INSERT OR IGNORE INTO results (experiment, key, "
                    "config, code_version, value, created) "
                    "VALUES (?, ?, ?, ?, ?, ?)",
                    (experiment, key,
                     json.dumps(entry.get("config"), sort_keys=True,
                                default=repr),
                     entry.get("code_version"),
                     json.dumps(entry.get("value"), sort_keys=True,
                                default=repr),
                     time.time()))
            imported += cursor.rowcount
        with self._lock:
            self._db.commit()
        return imported

    def close(self):
        with self._lock:
            self._db.close()
