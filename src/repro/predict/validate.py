"""Fit-vs-simulation validation and the documented error bounds.

``repro predict --validate`` (and CI's ``predict-gate`` job, and the
committed ``e21_predict`` benchmark table) all flow through
:func:`validate_machine`: re-simulate the fit grid, answer every point
from the *committed* artifact, and summarize the relative error of the
predicted run time.  The bounds below are the acceptance contract — a
fit whose median error exceeds 10% or whose p95 exceeds 25% over its
own e01/e07/e10-derived grid fails validation loudly.
"""

from .artifacts import error_stats, load_fit
from .grids import machine_specs
from .model import feature_vector, predict_buckets

__all__ = ["MEDIAN_REL_BOUND", "P95_REL_BOUND", "validate_machine",
           "validate_all"]

#: Documented acceptance bounds on fit-vs-simulation relative error.
MEDIAN_REL_BOUND = 0.10
P95_REL_BOUND = 0.25


def validate_machine(machine, fits_dir):
    """Error report for one machine's committed artifact.

    Returns ``{"machine", "workloads": {name: stats}, "overall": stats,
    "bounds": {...}, "ok": bool}``; raises ``ValueError`` when no
    artifact exists.
    """
    payload = load_fit(fits_dir, machine)
    if payload is None:
        raise ValueError(
            f"no fit artifact for {machine!r} in {fits_dir} "
            "(run `repro predict --fit`)")
    specs = machine_specs(machine)
    per_workload = {}
    all_errors = []
    for name in sorted(payload["workloads"]):
        fit = payload["workloads"][name]
        spec = specs[name]
        errors = []
        for config in spec.grid:
            full = spec.fill(config)
            measured = sum(spec.simulate(full).bucket_means().values())
            features = feature_vector(*spec.scales(full))
            predicted = sum(predict_buckets(fit["theta"], features).values())
            errors.append(abs(predicted - measured) / measured if measured
                          else abs(predicted))
        per_workload[name] = error_stats(errors)
        all_errors.extend(errors)
    overall = error_stats(all_errors)
    ok = (overall["median_rel"] <= MEDIAN_REL_BOUND
          and overall["p95_rel"] <= P95_REL_BOUND)
    return {
        "machine": machine,
        "workloads": per_workload,
        "overall": overall,
        "bounds": {"median_rel": MEDIAN_REL_BOUND, "p95_rel": P95_REL_BOUND},
        "ok": ok,
    }


def validate_all(machines, fits_dir):
    """Reports for several machines plus an aggregate ``ok``."""
    reports = [validate_machine(machine, fits_dir) for machine in machines]
    return {"machines": reports, "ok": all(r["ok"] for r in reports)}
