"""Which machines the surrogate covers, and the grids it is fitted on.

Each :class:`WorkloadSpec` names the tunable knobs of one
(machine, workload) pair, how a knob config becomes a simulator run
(through the machine registry — the same path ``repro machine`` and the
benchmarks use), and how the config reduces to the three physical
scales of the Amdahl/queueing basis in :mod:`.model`:

* **work** ``W`` — operations the workload must execute (``n^3`` for
  matmul, ``n^2`` for wavefront, the interval / iteration count for the
  loop workloads);
* **procs** ``N`` — the machine's processor-count knob (PEs, HEP
  contexts, C.mmp processors);
* **latency** ``L`` — the machine's dominant latency knob (network
  latency, HEP memory latency, C.mmp memory time).

The fit grids echo the committed experiment grids so the surrogate is
validated exactly where the paper's claims were reproduced: the
latency axes are e01's ``LATENCIES``, the PE axes are e10's
``PE_COUNTS``, and the trapezoid size axis is e07's ``INTERVALS`` —
each axis swept around the defaults of the corresponding experiment.
"""

import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple

__all__ = ["WorkloadSpec", "machine_specs", "fitted_machines"]

#: e01 LATENCIES / e10 PE_COUNTS / e07 INTERVALS, reused as fit axes.
E01_LATENCIES = (1, 2, 5, 10, 20, 50, 100)
E10_PE_COUNTS = (1, 2, 4, 8, 16)
E07_INTERVALS = (4, 8, 16, 32, 64, 128)


@dataclass(frozen=True)
class WorkloadSpec:
    """One (machine, workload) surface the surrogate is fitted over."""

    machine: str
    name: str
    #: knob -> default value; the knob set is closed (unknown keys in a
    #: query are an error, missing ones take these defaults).
    defaults: Dict[str, Any]
    #: knob -> which committed experiment the axis echoes (provenance).
    axes: Dict[str, str]
    #: full knob configs the fit runs (deduplicated, deterministic order).
    grid: Tuple[Dict[str, Any], ...]
    simulate: Callable[[Dict[str, Any]], Any]
    #: config -> (work, procs, latency) for :func:`.model.feature_vector`.
    scales: Callable[[Dict[str, Any]], Tuple[float, float, float]]

    def fill(self, config):
        """Defaults + ``config``; rejects knobs outside the closed set."""
        unknown = sorted(set(config) - set(self.defaults))
        if unknown:
            raise ValueError(
                f"{self.machine}/{self.name} has no knob(s) "
                f"{', '.join(unknown)} (knobs: "
                f"{', '.join(sorted(self.defaults))})")
        full = dict(self.defaults)
        full.update(config)
        for knob, value in full.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(
                    f"{self.machine}/{self.name} knob {knob!r} must be "
                    f"numeric, got {value!r}")
        return full

    def region(self):
        """Per-knob [min, max] box spanned by the fit grid."""
        return {
            knob: [min(cfg[knob] for cfg in self.grid),
                   max(cfg[knob] for cfg in self.grid)]
            for knob in self.defaults
        }


def _axes(defaults, **sweeps):
    """Grid = each axis swept one at a time around the defaults
    (deduplicated — the default point appears on every axis)."""
    seen = set()
    out = []
    for knob, values in sweeps.items():
        for value in values:
            config = dict(defaults)
            config[knob] = value
            key = json.dumps(config, sort_keys=True)
            if key not in seen:
                seen.add(key)
                out.append(config)
    return tuple(out)


def _ttda_spec(workload, defaults, axes, grid, work):
    from ..machines import registry

    def simulate(config):
        model = registry.create("ttda", n_pes=config["n_pes"],
                                network_latency=config["network_latency"],
                                mapping="hash")
        if workload == "trapezoid":
            n = config["intervals"]
            args = (0.0, 1.0, n, 1.0 / n)
        else:
            args = (config["n"],)
        return model.run(workload=workload, args=args)

    def scales(config):
        return (work(config), config["n_pes"], config["network_latency"])

    return WorkloadSpec(machine="ttda", name=workload, defaults=defaults,
                        axes=axes, grid=grid, simulate=simulate,
                        scales=scales)


def _build_ttda():
    matmul_defaults = {"n": 5, "n_pes": 4, "network_latency": 4.0}
    wavefront_defaults = {"n": 7, "n_pes": 4, "network_latency": 4.0}
    trapezoid_defaults = {"intervals": 32, "n_pes": 4,
                          "network_latency": 4.0}
    return {
        "matmul": _ttda_spec(
            "matmul", matmul_defaults,
            axes={"n_pes": "e10_ttda_scaling",
                  "network_latency": "e01_latency_tolerance",
                  "n": "e10_ttda_scaling (workload size)"},
            grid=_axes(matmul_defaults,
                       n_pes=E10_PE_COUNTS,
                       network_latency=E01_LATENCIES,
                       n=(3, 4, 6)),
            work=lambda cfg: float(cfg["n"]) ** 3),
        "wavefront": _ttda_spec(
            "wavefront", wavefront_defaults,
            axes={"n_pes": "e10_ttda_scaling",
                  "network_latency": "e01_latency_tolerance",
                  "n": "e10_ttda_scaling (workload size)"},
            grid=_axes(wavefront_defaults,
                       n_pes=E10_PE_COUNTS,
                       network_latency=(1, 5, 20, 100),
                       n=(5, 9)),
            work=lambda cfg: float(cfg["n"]) ** 2),
        "trapezoid": _ttda_spec(
            "trapezoid", trapezoid_defaults,
            axes={"intervals": "e07_trapezoid",
                  "n_pes": "e10_ttda_scaling",
                  "network_latency": "e01_latency_tolerance"},
            grid=_axes(trapezoid_defaults,
                       intervals=E07_INTERVALS,
                       n_pes=(1, 2, 8, 16),
                       network_latency=(1, 10, 50)),
            work=lambda cfg: float(cfg["intervals"])),
    }


def _build_hep():
    from ..machines import registry

    defaults = {"contexts": 8, "latency": 8.0, "iterations": 16}

    def simulate(config):
        model = registry.create("hep", contexts=config["contexts"],
                                latency=config["latency"])
        return model.run(workload="compute_loop",
                         iterations=config["iterations"])

    def scales(config):
        # HEP runs the loop once per context, so total work scales with
        # the context count; the latency scale is the *round trip* a
        # reference pays (request + response + rendezvous — the same
        # 2L+const form e01's von Neumann utilization model uses), which
        # puts the latency_excess kink where the machine saturates:
        # interleaving hides a round trip iff it fits in one context
        # rotation.
        return (float(config["iterations"]) * config["contexts"],
                config["contexts"],
                2.0 * config["latency"] + 2.0)

    return {
        "compute_loop": WorkloadSpec(
            machine="hep", name="compute_loop", defaults=defaults,
            axes={"contexts": "e09_context_depth",
                  "latency": "e01_latency_tolerance",
                  "iterations": "e09_context_depth (workload size)"},
            grid=_axes(defaults,
                       contexts=E10_PE_COUNTS,
                       latency=E01_LATENCIES,
                       iterations=(8, 32, 64)),
            simulate=simulate, scales=scales),
    }


def _build_cmmp():
    from ..machines import registry

    defaults = {"n_procs": 16, "memory_time": 3.0, "iterations": 40}

    def simulate(config):
        model = registry.create("cmmp", n_procs=config["n_procs"],
                                memory_time=config["memory_time"])
        return model.run(workload="array_sum",
                         iterations=config["iterations"])

    def scales(config):
        return (float(config["iterations"]), config["n_procs"],
                config["memory_time"])

    return {
        "array_sum": WorkloadSpec(
            machine="cmmp", name="array_sum", defaults=defaults,
            axes={"n_procs": "e13_cmmp_crossbar",
                  "memory_time": "e01_latency_tolerance",
                  "iterations": "e13_cmmp_crossbar (workload size)"},
            grid=_axes(defaults,
                       n_procs=E10_PE_COUNTS,
                       memory_time=(1, 2, 5, 8),
                       iterations=(10, 20, 80)),
            simulate=simulate, scales=scales),
    }


_BUILDERS = {"ttda": _build_ttda, "hep": _build_hep, "cmmp": _build_cmmp}


def fitted_machines():
    """Machines the surrogate covers, in deterministic order."""
    return tuple(sorted(_BUILDERS))


def machine_specs(machine):
    """``{workload_name: WorkloadSpec}`` for one machine."""
    try:
        builder = _BUILDERS[machine]
    except KeyError:
        raise ValueError(
            f"no surrogate is defined for machine {machine!r} "
            f"(fitted machines: {', '.join(fitted_machines())})"
        ) from None
    return builder()
