"""Experiment-cell surrogates: predicting whole sweep rows.

The machine surrogate answers "how long would this run take"; serve's
predict-mode sweeps need more — the full *row value* a grid cell would
produce (e07's ``[n, value, reference, error, instructions,
critical_path, avg_parallelism]``).  For experiments whose grid sweeps
one numeric axis, each output column is fitted independently over the
committed grid:

* constant columns are stored verbatim (exact);
* columns that are exactly the ratio of two other columns (e07's
  ``avg parallelism = instructions / critical path``) are stored as the
  column-index pair and recomputed from the fitted numerator and
  denominator;
* integer columns get a polynomial fit plus rounding (exact as long as
  the fit lands within 0.5 — the fitter refuses otherwise);
* float columns get the polynomial fit directly.

The basis ``[1, x, x^2, 1/x, 1/x^2, 1/x^4]`` matches both growth
(instruction counts, linear-ish in the axis) and quadrature convergence
(e07's error column shrinks as ``1/n^2`` with an ``1/n^4``
Euler–Maclaurin tail); with e07's six grid points it is a square system
— exact interpolation, so the predicted table matches simulation to
:data:`CELL_TOLERANCE_REL`, the documented tolerance the CI serve leg
asserts.  The fitter *enforces* that bound on the training grid and
refuses to write an artifact that violates it.
"""

import importlib
import json
import os
import sys

from .model import least_squares, round_sig

__all__ = ["CELL_EXPERIMENTS", "CELL_TOLERANCE_ABS", "CELL_TOLERANCE_REL",
           "CellSurrogate", "cells_path", "fit_cells", "load_cells",
           "write_cells"]

FORMAT = 1

#: Experiments with committed cell surrogates.
CELL_EXPERIMENTS = ("e07_trapezoid",)

#: The documented accuracy of a predicted row against simulation; the
#: fitter refuses to write an artifact whose training error exceeds it,
#: and the CI serve leg compares a predict-mode table against the
#: simulated baseline with exactly these tolerances.
CELL_TOLERANCE_REL = 1e-6
CELL_TOLERANCE_ABS = 1e-9

#: Basis feature names over the single numeric axis value ``x``.
CELL_BASIS = ("1", "x", "x^2", "1/x", "1/x^2", "1/x^4")


def _cell_features(x):
    x = float(x)
    return [1.0, x, x * x, 1.0 / x, 1.0 / (x * x), 1.0 / (x ** 4)]


def cells_path(fits_dir, experiment):
    return os.path.join(fits_dir, f"exp_{experiment}.json")


def resolve_benchmark(name, bench_dir=None):
    """The registered sweep :class:`~repro.exp.Experiment` for a
    ``run_all.EXPERIMENTS`` table name (the path ``repro bench`` uses)."""
    from ..exp.bench import build_experiment, find_bench_dir

    bench_dir = find_bench_dir(bench_dir)
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    run_all = importlib.import_module("run_all")
    for module_name, runners in run_all.EXPERIMENTS:
        for fn_name, out_name in runners:
            if out_name == name:
                module = importlib.import_module(module_name)
                experiment, is_sweep = build_experiment(
                    module, fn_name, out_name)
                if not is_sweep:
                    raise ValueError(
                        f"experiment {name!r} is not a sweep — no grid "
                        "axis to fit a cell surrogate over")
                return experiment
    raise ValueError(f"no benchmark table named {name!r} in run_all")


def _is_int(value):
    return isinstance(value, int) and not isinstance(value, bool)


def _is_num(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _rel_err(predicted, actual):
    scale = max(abs(actual), CELL_TOLERANCE_ABS / CELL_TOLERANCE_REL)
    return abs(predicted - actual) / scale


def fit_cells(experiment):
    """Fit the cell surrogate payload for a single-axis sweep experiment.

    Runs the grid inline (the engine-free path) and fits every output
    column; raises ``ValueError`` when the experiment's shape is not
    coverable (multi-axis grid, non-list values, a non-constant
    non-numeric column) or when any training-point error exceeds the
    documented tolerance.
    """
    keys = {tuple(sorted(config)) for config in experiment.grid}
    if len(keys) != 1:
        raise ValueError(f"{experiment.name!r}: grid configs disagree on "
                         "their key sets")
    varying = [key for key in keys.pop()
               if len({json.dumps(cfg[key]) for cfg in experiment.grid}) > 1]
    if len(varying) != 1:
        raise ValueError(
            f"{experiment.name!r}: cell surrogates cover exactly one "
            f"numeric grid axis, found {varying!r}")
    axis = varying[0]
    xs = [config[axis] for config in experiment.grid]
    if not all(_is_num(x) for x in xs):
        raise ValueError(f"{experiment.name!r}: axis {axis!r} is not numeric")
    constants = {key: experiment.grid[0][key] for key in experiment.grid[0]
                 if key != axis}

    values = experiment.run_inline()
    if not all(isinstance(v, (list, tuple)) for v in values):
        raise ValueError(
            f"{experiment.name!r}: cell values are not rows (lists)")
    width = {len(v) for v in values}
    if len(width) != 1:
        raise ValueError(f"{experiment.name!r}: ragged cell rows")
    n_cols = width.pop()
    table = [list(v) for v in values]

    all_features = [_cell_features(x) for x in xs]
    if len(xs) < len(CELL_BASIS):
        all_features = [f[:len(xs)] for f in all_features]

    columns = []
    worst = 0.0
    pending = []  # columns whose direct poly fit missed tolerance
    for j in range(n_cols):
        col = [row[j] for row in table]
        if all(v == col[0] for v in col):
            columns.append({"kind": "const", "value": col[0]})
            continue
        if not all(_is_num(v) for v in col):
            raise ValueError(
                f"{experiment.name!r}: column {j} is neither constant "
                "nor numeric — not coverable by a surrogate")
        coef = least_squares(all_features, [float(v) for v in col])
        kind = "int" if all(_is_int(v) for v in col) else "float"
        error = None
        if coef is not None:
            coef = [round_sig(c) for c in coef]
            error = 0.0
            for feats, actual in zip(all_features, col):
                predicted = sum(c * f for c, f in zip(coef, feats))
                if kind == "int":
                    predicted = round(predicted)
                error = max(error, _rel_err(predicted, actual))
        if coef is None or error > CELL_TOLERANCE_REL:
            columns.append(None)
            pending.append((j, kind, error))
            continue
        worst = max(worst, error)
        columns.append({"kind": kind, "coef": coef})

    # Fallback pass: a column the polynomial basis cannot reach (e07's
    # avg parallelism — a ratio of two fitted quantities) may be the
    # exact ratio of two *directly fitted* columns; it is then served by
    # recomputing that ratio from the fitted numerator and denominator.
    for j, kind, poly_error in pending:
        ratio = _find_ratio(table, j, n_cols,
                            usable=[i for i, c in enumerate(columns)
                                    if c is not None
                                    and c["kind"] != "ratio"])
        if ratio is None:
            detail = ("singular" if poly_error is None
                      else f"relative error {poly_error:.3g}")
            raise ValueError(
                f"{experiment.name!r}: column {j} ({kind}) trains to "
                f"{detail}, beyond the documented tolerance "
                f"{CELL_TOLERANCE_REL:g}, and is no ratio of fitted "
                "columns — surrogate refused")
        columns[j] = {"kind": "ratio", "num": ratio[0], "den": ratio[1]}
        for row_idx, feats in enumerate(all_features):
            row = _eval_row(columns, feats)
            error = _rel_err(row[j], table[row_idx][j])
            worst = max(worst, error)
            if error > CELL_TOLERANCE_REL:
                raise ValueError(
                    f"{experiment.name!r}: ratio column {j} reproduces to "
                    f"relative error {error:.3g}, beyond "
                    f"{CELL_TOLERANCE_REL:g} — surrogate refused")

    return {
        "format": FORMAT,
        "experiment": experiment.name,
        "axis": axis,
        "constants": constants,
        "region": [min(xs), max(xs)],
        "basis": list(CELL_BASIS),
        "columns": columns,
        "tolerance": {"rel": CELL_TOLERANCE_REL, "abs": CELL_TOLERANCE_ABS},
        "train_error": {"max_rel": round_sig(worst),
                        "points": len(xs)},
    }


def _find_ratio(table, j, n_cols, usable=None):
    """A column pair (num, den) whose exact ratio reproduces column j."""
    candidates = range(n_cols) if usable is None else usable
    for num in candidates:
        for den in candidates:
            if num == j or den == j or num == den:
                continue
            if not all(_is_num(row[num]) and _is_num(row[den])
                       and row[den] != 0 for row in table):
                continue
            if all(_rel_err(row[num] / row[den], row[j]) <= 1e-12
                   for row in table):
                return (num, den)
    return None


def _eval_row(columns, features):
    row = [None] * len(columns)
    for j, column in enumerate(columns):
        kind = column["kind"]
        if kind == "const":
            row[j] = column["value"]
        elif kind in ("int", "float"):
            value = sum(c * f for c, f in zip(column["coef"], features))
            row[j] = round(value) if kind == "int" else value
    for j, column in enumerate(columns):
        if column["kind"] == "ratio":
            row[j] = row[column["num"]] / row[column["den"]]
    return row


class CellSurrogate:
    """Serve one experiment's fitted rows."""

    def __init__(self, payload):
        self.experiment = payload["experiment"]
        self.axis = payload["axis"]
        self.constants = payload.get("constants", {})
        self.region = payload["region"]
        self.columns = payload["columns"]

    def value(self, config):
        """The predicted row for a grid config, or None when the config
        is outside the fitted region (or sets unexpected keys)."""
        config = dict(config)
        if self.axis not in config:
            return None
        x = config.pop(self.axis)
        if not _is_num(x):
            return None
        for key, expected in self.constants.items():
            if config.pop(key, expected) != expected:
                return None
        if config:
            return None
        low, high = self.region
        if not low <= x <= high:
            return None
        return _eval_row(self.columns, _cell_features(x))


def write_cells(payload, fits_dir):
    from .artifacts import render

    os.makedirs(fits_dir, exist_ok=True)
    path = cells_path(fits_dir, payload["experiment"])
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render(payload))
    return path


def load_cells(fits_dir, experiment):
    """Parsed surrogate for an experiment, or None when not fitted."""
    path = cells_path(fits_dir, experiment)
    if not os.path.isfile(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") != FORMAT:
        raise ValueError(
            f"cell surrogate {path} has format {payload.get('format')!r}, "
            f"this build reads format {FORMAT}")
    return CellSurrogate(payload)
