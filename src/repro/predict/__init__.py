"""``repro.predict`` — the analytic prediction plane.

An Amdahl/queueing surrogate per (machine, workload), fitted by
non-negative least squares from the profiler's cycle-accounting buckets
over the committed e01/e07/e10 experiment grids, persisted as canonical
JSON artifacts under ``benchmarks/fits/``, and served three ways:

* ``repro predict <machine> key=val ...`` — one config query answered
  in microseconds from the fit (refusing out-of-region queries);
* ``POST /predict`` on ``repro serve`` — the same query over HTTP;
* ``"predict": true`` sweep mode — in-region grid cells answered from
  the experiment-cell surrogates (:mod:`.cells`) instead of the worker
  pool.

See ``docs/PREDICT.md`` for the model form, fit procedure, and the
measured error bounds.
"""

from .artifacts import (available_machines, default_fits_dir, fit_machine,
                        fit_path, load_fit, render, write_fit)
from .cells import (CELL_EXPERIMENTS, CELL_TOLERANCE_ABS,
                    CELL_TOLERANCE_REL, CellSurrogate, cells_path,
                    fit_cells, load_cells, resolve_benchmark, write_cells)
from .grids import WorkloadSpec, fitted_machines, machine_specs
from .model import (FEATURES, feature_vector, least_squares, nnls,
                    solve_linear)
from .plane import OutOfRegionError, PredictError, PredictPlane, Predictor
from .validate import (MEDIAN_REL_BOUND, P95_REL_BOUND, validate_all,
                       validate_machine)

__all__ = [
    "CELL_EXPERIMENTS", "CELL_TOLERANCE_ABS", "CELL_TOLERANCE_REL",
    "CellSurrogate", "FEATURES", "MEDIAN_REL_BOUND", "OutOfRegionError",
    "P95_REL_BOUND", "PredictError", "PredictPlane", "Predictor",
    "WorkloadSpec", "available_machines", "cells_path",
    "default_fits_dir", "feature_vector", "fit_cells", "fit_machine",
    "fit_path", "fitted_machines", "least_squares", "load_cells",
    "load_fit", "machine_specs", "nnls", "render", "resolve_benchmark",
    "solve_linear", "validate_all", "validate_machine", "write_cells",
    "write_fit",
]
