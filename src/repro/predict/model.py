"""The analytic surrogate: an Amdahl/queueing feature basis per bucket.

The paper's argument is that two physical quantities — memory latency
(Issue 1) and waits for synchronization (Issue 2) — bound how well a
von Neumann multiprocessor scales.  The profiler (PR 3) measures exactly
those quantities per run as cycle-accounting buckets with an exact-sum
invariant: every unit-cycle of a run is attributed to one of
``compute / memory_stall / sync_wait / network_queue / idle`` and the
per-unit bucket means sum to the run's time.  That invariant is what
makes the surrogate well-posed: fit each bucket's per-unit mean
separately, sum the five fits, and the predicted run time decomposes the
same way the measured one does.

Model form, per (machine, workload).  A config is reduced to three
physical scales — work ``W`` (operations the workload must execute),
processors ``N``, and latency ``L`` (the machine's dominant latency
knob) — and each bucket mean is a non-negative linear combination of::

    1                      fixed per-run overhead
    W                      serial work (the Amdahl ``(1-P)`` share)
    W/N                    perfectly parallel work (the ``P/N`` share)
    L                      per-run latency cost
    L*W/N                  latency paid per unit of parallel work
    W*(N-1)/N              shared-resource crossings: the fraction of
                           references that leave the local unit grows as
                           ``(N-1)/N`` — the M/M/1-flavored contention
                           load of the UMA formulation (SNIPPETS.md
                           snippet 1)
    L*W*(N-1)/N            those crossings, each paying the latency
    W*max(0, L-N)/N        unhidden latency: N-way interleaving (HEP
                           contexts, TTDA PEs) hides up to N cycles of
                           a reference's round trip; the excess stalls
                           the pipe — the paper's Issue 1 kink

Every feature is non-negative for ``W, L >= 0`` and ``N >= 1``, and the
coefficients are constrained non-negative (NNLS), so predictions are
non-negative and monotone non-decreasing in ``L`` — the property test in
``tests/test_predict.py`` checks exactly that.

The solver is deliberately hand-rolled (scaled normal equations + a
tiny ridge + Gaussian elimination, with an active-set loop dropping
negative coefficients): pure-Python float arithmetic with a fixed
operation order is bit-reproducible across hosts, which is what lets CI
refit from scratch and ``diff`` the artifacts against the committed
ones.  ``numpy.linalg.lstsq`` would hand that determinism to whatever
LAPACK build is installed.
"""

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["FEATURES", "feature_vector", "nnls", "round_sig",
           "solve_linear", "least_squares", "BucketModel", "predict_buckets"]

#: Feature names, in the order :func:`feature_vector` emits them.
FEATURES = (
    "const",
    "work",
    "work_per_pe",
    "latency",
    "latency_work_per_pe",
    "contention",
    "latency_contention",
    "latency_excess",
)

#: Significant digits coefficients (and recorded errors) are rounded to
#: before an artifact is written.  Round-tripping through ``repr`` keeps
#: the JSON byte-identical across refits.
ARTIFACT_DIGITS = 12


def feature_vector(work, procs, latency):
    """The 7 basis values for one config's (W, N, L) scales."""
    n = max(1.0, float(procs))
    w = float(work)
    lat = float(latency)
    crossing = w * (n - 1.0) / n
    return [1.0, w, w / n, lat, lat * w / n, crossing, lat * crossing,
            w * max(0.0, lat - n) / n]


def round_sig(value, digits=ARTIFACT_DIGITS):
    """Round to ``digits`` significant digits (artifact stability)."""
    if value == 0:
        return 0.0
    return float(f"{value:.{digits}g}")


def solve_linear(matrix, rhs):
    """Solve a square system by Gaussian elimination, partial pivoting.

    Returns None when the system is (numerically) singular — callers
    drop a column and retry rather than accepting garbage.
    """
    k = len(rhs)
    # Work on copies; the augmented form keeps the operation order fixed.
    rows = [list(matrix[i]) + [rhs[i]] for i in range(k)]
    for col in range(k):
        pivot_row = max(range(col, k), key=lambda r: abs(rows[r][col]))
        if abs(rows[pivot_row][col]) < 1e-300:
            return None
        if pivot_row != col:
            rows[col], rows[pivot_row] = rows[pivot_row], rows[col]
        pivot = rows[col][col]
        for r in range(col + 1, k):
            factor = rows[r][col] / pivot
            if factor == 0.0:
                continue
            for c in range(col, k + 1):
                rows[r][c] -= factor * rows[col][c]
    out = [0.0] * k
    for col in range(k - 1, -1, -1):
        acc = rows[col][k]
        for c in range(col + 1, k):
            acc -= rows[col][c] * out[c]
        out[col] = acc / rows[col][col]
    return out


def least_squares(design, targets, ridge=1e-9):
    """min ||A x - y|| via scaled normal equations with a tiny ridge.

    Columns are scaled to unit max-abs before forming ``A^T A`` so the
    mixed-magnitude Amdahl features (1 vs ``L*W``) don't wreck the
    conditioning; the ridge keeps collinear columns (small fit grids)
    solvable and deterministic.  When the system is square the raw
    equations are solved directly (exact interpolation, no squared
    condition number).  Returns a coefficient list, or None if singular.
    """
    n_rows = len(design)
    n_cols = len(design[0]) if n_rows else 0
    if n_rows == 0 or n_cols == 0:
        return None
    scales = []
    for c in range(n_cols):
        largest = max(abs(design[r][c]) for r in range(n_rows))
        scales.append(largest if largest > 0 else 1.0)
    scaled = [[design[r][c] / scales[c] for c in range(n_cols)]
              for r in range(n_rows)]
    if n_rows == n_cols:
        solution = solve_linear(scaled, list(targets))
        if solution is None:
            return None
        return [solution[c] / scales[c] for c in range(n_cols)]
    normal = [[0.0] * n_cols for _ in range(n_cols)]
    moment = [0.0] * n_cols
    for r in range(n_rows):
        row = scaled[r]
        y = targets[r]
        for i in range(n_cols):
            moment[i] += row[i] * y
            for j in range(n_cols):
                normal[i][j] += row[i] * row[j]
    trace = sum(normal[i][i] for i in range(n_cols))
    damp = ridge * (trace / n_cols if trace > 0 else 1.0)
    for i in range(n_cols):
        normal[i][i] += damp
    solution = solve_linear(normal, moment)
    if solution is None:
        return None
    return [solution[c] / scales[c] for c in range(n_cols)]


def nnls(design, targets):
    """Non-negative least squares by a deterministic active-set loop.

    Solve unconstrained; while any coefficient is negative, zero the
    most negative one out of the active set and re-solve.  At most one
    column leaves per iteration, so the loop terminates in ``n_cols``
    steps and, unlike projected-gradient NNLS, is exactly reproducible.
    Returns a full-length coefficient list (inactive columns are 0.0).
    """
    n_cols = len(design[0]) if design else 0
    active = list(range(n_cols))
    while active:
        sub = [[row[c] for c in active] for row in design]
        solution = least_squares(sub, targets)
        if solution is None:
            # Numerically singular even with the ridge: drop the last
            # (most composite) active column and retry.
            active.pop()
            continue
        worst = min(range(len(active)), key=lambda i: solution[i])
        if solution[worst] >= -1e-12:
            out = [0.0] * n_cols
            for pos, col in enumerate(active):
                out[col] = max(0.0, solution[pos])
            return out
        active.pop(worst)
    return [0.0] * n_cols


@dataclass
class BucketModel:
    """Fitted coefficients for one (machine, workload): one non-negative
    coefficient vector per accounting bucket, over :data:`FEATURES`."""

    buckets: Tuple[str, ...]
    theta: Dict[str, List[float]]

    def bucket_means(self, features):
        """Predicted per-unit mean cycles for each bucket."""
        return {
            bucket: sum(t * f for t, f in zip(self.theta[bucket], features))
            for bucket in self.buckets
        }

    def time(self, features):
        """Predicted run time: the sum of the bucket means (the same
        exact-sum identity the profiler guarantees for measurements)."""
        return sum(self.bucket_means(features).values())


def predict_buckets(theta_by_bucket, features):
    """Free-function form of :meth:`BucketModel.bucket_means`."""
    return {bucket: sum(t * f for t, f in zip(theta, features))
            for bucket, theta in theta_by_bucket.items()}
