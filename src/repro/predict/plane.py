"""The query surface over committed fit artifacts.

:class:`Predictor` answers one machine-config query from a loaded
artifact in microseconds (no simulator, no I/O after the first load).
:class:`PredictPlane` wraps it (plus the experiment-cell surrogates of
:mod:`.cells`) behind a lazy, thread-safe cache for the serve tier.
"""

import threading

from .artifacts import available_machines, default_fits_dir, load_fit
from .model import feature_vector, predict_buckets

__all__ = ["OutOfRegionError", "PredictError", "PredictPlane", "Predictor"]


class PredictError(ValueError):
    """No fit for the requested machine/workload (or a bad knob)."""


class OutOfRegionError(PredictError):
    """The query lies outside the fitted region.

    ``repro predict`` refuses these with a nonzero exit instead of
    silently extrapolating; the serve tier falls back to the worker
    pool.  ``.region`` carries the fitted per-knob box for the message.
    """

    def __init__(self, message, region=None):
        super().__init__(message)
        self.region = region or {}


class Predictor:
    """Query one machine's fit artifact."""

    def __init__(self, payload):
        self.machine = payload["machine"]
        self.buckets = tuple(payload["buckets"])
        self._workloads = payload["workloads"]

    def workloads(self):
        return sorted(self._workloads)

    def _workload(self, name):
        try:
            return self._workloads[name]
        except KeyError:
            raise PredictError(
                f"machine {self.machine!r} has no fitted workload "
                f"{name!r} (fitted: {', '.join(self.workloads())})"
            ) from None

    def region(self, workload):
        return dict(self._workload(workload)["region"])

    def query(self, config, extrapolate=False):
        """Predict one config; raises :class:`OutOfRegionError` unless
        ``extrapolate`` is set.  ``config`` holds an optional
        ``workload`` key plus knob overrides (defaults fill the rest).
        """
        config = dict(config)
        workload = config.pop("workload", None)
        if workload is None:
            names = self.workloads()
            if len(names) != 1:
                raise PredictError(
                    f"machine {self.machine!r} has several fitted "
                    f"workloads ({', '.join(names)}); pass workload=...")
            workload = names[0]
        fit = self._workload(workload)
        full = dict(fit["defaults"])
        unknown = sorted(set(config) - set(full))
        if unknown:
            raise PredictError(
                f"{self.machine}/{workload} has no knob(s) "
                f"{', '.join(unknown)} (knobs: {', '.join(sorted(full))})")
        full.update(config)
        outside = {}
        for knob, (low, high) in fit["region"].items():
            value = full[knob]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise PredictError(
                    f"{self.machine}/{workload} knob {knob!r} must be "
                    f"numeric, got {value!r}")
            if not low <= value <= high:
                outside[knob] = [low, high]
        in_region = not outside
        if outside and not extrapolate:
            box = ", ".join(f"{knob}∈[{low}, {high}]"
                            for knob, (low, high) in sorted(outside.items()))
            raise OutOfRegionError(
                f"{self.machine}/{workload} query is outside the fitted "
                f"region ({box}); pass --extrapolate to answer anyway",
                region=dict(fit["region"]))

        from .grids import machine_specs

        spec = machine_specs(self.machine)[workload]
        features = feature_vector(*spec.scales(full))
        buckets = predict_buckets(fit["theta"], features)
        return {
            "machine": self.machine,
            "workload": workload,
            "config": full,
            "time": sum(buckets.values()),
            "buckets": buckets,
            "in_region": in_region,
            "train_error": dict(fit["train_error"]),
        }


class PredictPlane:
    """Lazy artifact cache: the serve tier's prediction surface."""

    def __init__(self, fits_dir=None, bench_dir=None):
        self._fits_dir = fits_dir
        self._bench_dir = bench_dir
        self._lock = threading.Lock()
        self._predictors = {}
        self._cells = {}

    @property
    def fits_dir(self):
        if self._fits_dir is None:
            self._fits_dir = default_fits_dir(self._bench_dir)
        return self._fits_dir

    def machines(self):
        return available_machines(self.fits_dir)

    def predictor(self, machine):
        """Cached :class:`Predictor`; raises PredictError when unfitted."""
        with self._lock:
            predictor = self._predictors.get(machine)
            if predictor is None:
                payload = load_fit(self.fits_dir, machine)
                if payload is None:
                    raise PredictError(
                        f"no fit artifact for machine {machine!r} in "
                        f"{self.fits_dir} (run `repro predict --fit`)")
                predictor = Predictor(payload)
                self._predictors[machine] = predictor
        return predictor

    def query(self, machine, config, extrapolate=False):
        return self.predictor(machine).query(config, extrapolate=extrapolate)

    def cell_surrogate(self, experiment):
        """Cached :class:`.cells.CellSurrogate` or None when unfitted."""
        from .cells import load_cells

        with self._lock:
            if experiment not in self._cells:
                self._cells[experiment] = load_cells(self.fits_dir,
                                                     experiment)
            return self._cells[experiment]

    def cell_value(self, experiment, config):
        """Predicted cell value for a sweep config, or None when the
        experiment has no surrogate or the config is out of region."""
        surrogate = self.cell_surrogate(experiment)
        if surrogate is None:
            return None
        return surrogate.value(config)

    def describe(self):
        out = {}
        for machine in self.machines():
            predictor = self.predictor(machine)
            out[machine] = {
                workload: predictor.region(workload)
                for workload in predictor.workloads()
            }
        return {"fits_dir": self.fits_dir, "machines": out}
