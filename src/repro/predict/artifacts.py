"""Fitting and the on-disk fit artifacts under ``benchmarks/fits/``.

One JSON file per machine, canonical serialization (sorted keys, fixed
indent, coefficients rounded to 12 significant digits), so that a refit
on any host is byte-identical to the committed artifact — CI's
``predict-gate`` job refits from scratch and ``git diff``s the result.
"""

import json
import os

from ..obs.analysis.accounting import BUCKETS
from .grids import fitted_machines, machine_specs
from .model import (ARTIFACT_DIGITS, FEATURES, feature_vector, nnls,
                    round_sig)

__all__ = ["FORMAT", "default_fits_dir", "error_stats", "fit_machine",
           "fit_path", "load_fit", "render", "write_fit"]

FORMAT = 1


def default_fits_dir(bench_dir=None):
    """``<benchmarks>/fits`` (honors ``REPRO_BENCH_DIR`` via find_bench_dir)."""
    from ..exp.bench import find_bench_dir

    return os.path.join(find_bench_dir(bench_dir), "fits")


def fit_path(fits_dir, machine):
    return os.path.join(fits_dir, f"{machine}.json")


def error_stats(errors):
    """Deterministic median / p95 / max of a list of relative errors."""
    ordered = sorted(errors)
    count = len(ordered)
    if count == 0:
        return {"median_rel": 0.0, "p95_rel": 0.0, "max_rel": 0.0,
                "points": 0}

    def quantile(q):
        # Nearest-rank on the sorted sample: rank ceil(q*n), 1-based.
        rank = max(1, -(-int(q * 1000) * count // 1000))
        return ordered[min(count, rank) - 1]

    return {
        "median_rel": round_sig(quantile(0.5)),
        "p95_rel": round_sig(quantile(0.95)),
        "max_rel": round_sig(ordered[-1]),
        "points": count,
    }


def fit_workload(spec):
    """Fit one (machine, workload): simulate the grid, NNLS per bucket.

    Returns ``(payload, errors)`` — the artifact fragment and the
    per-point relative errors of the summed prediction against the
    measured run time.
    """
    rows = []
    for config in spec.grid:
        full = spec.fill(config)
        result = spec.simulate(full)
        means = result.bucket_means()
        rows.append((full, feature_vector(*spec.scales(full)), means))

    theta = {}
    for bucket in BUCKETS:
        design = [features for _cfg, features, _means in rows]
        targets = [means[bucket] for _cfg, _features, means in rows]
        theta[bucket] = [round_sig(t) for t in nnls(design, targets)]

    errors = []
    for _config, features, means in rows:
        measured = sum(means.values())
        predicted = sum(
            sum(t * f for t, f in zip(theta[bucket], features))
            for bucket in BUCKETS)
        errors.append(abs(predicted - measured) / measured if measured
                      else abs(predicted))

    payload = {
        "axes": dict(spec.axes),
        "defaults": dict(spec.defaults),
        "region": spec.region(),
        "theta": theta,
        "train_error": error_stats(errors),
    }
    return payload, errors


def fit_machine(machine):
    """The full fit artifact payload for one machine."""
    workloads = {}
    for name, spec in sorted(machine_specs(machine).items()):
        workloads[name], _errors = fit_workload(spec)
    return {
        "format": FORMAT,
        "machine": machine,
        "buckets": list(BUCKETS),
        "features": list(FEATURES),
        "digits": ARTIFACT_DIGITS,
        "workloads": workloads,
    }


def render(payload):
    """Canonical bytes of a fit artifact (the byte-stability contract)."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_fit(payload, fits_dir):
    os.makedirs(fits_dir, exist_ok=True)
    path = fit_path(fits_dir, payload["machine"])
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render(payload))
    return path


def load_fit(fits_dir, machine):
    """Parsed artifact for ``machine``, or None when not fitted."""
    path = fit_path(fits_dir, machine)
    if not os.path.isfile(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") != FORMAT:
        raise ValueError(
            f"fit artifact {path} has format {payload.get('format')!r}, "
            f"this build reads format {FORMAT}")
    return payload


def available_machines(fits_dir):
    """Machines with an artifact on disk (sorted)."""
    if not os.path.isdir(fits_dir):
        return []
    return sorted(
        name[:-5] for name in os.listdir(fits_dir)
        if name.endswith(".json") and not name.startswith("exp_")
        and name[:-5] in fitted_machines())
