"""Result tables — the experiment harness's output format.

Every benchmark renders its rows through :class:`Table` so EXPERIMENTS.md
and the bench logs share one look: fixed-width aligned columns, a title
line naming the experiment and the paper anchor, and optional notes.
"""

__all__ = ["Table"]


class Table:
    """A titled, column-aligned results table."""

    def __init__(self, title, columns, notes=None):
        self.title = title
        self.columns = list(columns)
        self.rows = []
        self.notes = list(notes) if notes else []

    def add_row(self, *values):
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append([self._format(v) for v in values])
        return self

    def note(self, text):
        self.notes.append(text)
        return self

    @staticmethod
    def _format(value):
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            if value != value:  # NaN
                return "-"
            if abs(value) >= 1000 or (value != 0 and abs(value) < 0.01):
                return f"{value:.3g}"
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return str(value)

    def __str__(self):
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(
            column.ljust(widths[index])
            for index, column in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
            )
        for note in self.notes:
            lines.append(f"  * {note}")
        return "\n".join(lines)

    def to_csv(self):
        out = [",".join(self.columns)]
        out.extend(",".join(row) for row in self.rows)
        return "\n".join(out)

    def column(self, name):
        """Raw (formatted) cells of one column, for assertions in tests."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]
