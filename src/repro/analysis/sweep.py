"""Parameter sweeps: the loop every experiment runs."""

__all__ = ["sweep", "geometric_range", "crossover_point"]


def sweep(values, run_fn):
    """Run ``run_fn(value)`` for each value; returns [(value, result)]."""
    return [(value, run_fn(value)) for value in values]


def geometric_range(start, stop, factor=2):
    """start, start*factor, ... up to and including the last <= stop."""
    out = []
    value = start
    while value <= stop:
        out.append(value)
        value *= factor
    return out


def crossover_point(pairs_a, pairs_b):
    """First x at which series B overtakes series A.

    Both arguments are [(x, y)] with identical, ascending x.  Returns the
    first x where ``y_b >= y_a``, or None if B never catches up — used to
    locate the crossovers the paper's qualitative claims predict.
    """
    for (xa, ya), (xb, yb) in zip(pairs_a, pairs_b):
        if xa != xb:
            raise ValueError("series have mismatched x values")
        if yb >= ya:
            return xa
    return None
