"""Measurement, analytic models and reporting (S12 in DESIGN.md)."""

from .metrics import (
    contexts_needed,
    efficiency,
    harmonic_mean,
    multithreaded_utilization,
    speedup,
    von_neumann_utilization,
)
from .report import Table
from .scaling import latency_study, scaling_study
from .sweep import crossover_point, geometric_range, sweep

__all__ = [
    "Table",
    "contexts_needed",
    "crossover_point",
    "efficiency",
    "geometric_range",
    "harmonic_mean",
    "latency_study",
    "scaling_study",
    "multithreaded_utilization",
    "speedup",
    "sweep",
    "von_neumann_utilization",
]
