"""Analytic models and derived metrics used to interpret simulations.

These closed forms are the paper's implicit arithmetic: they predict what
the simulators should show, and the benchmarks print measured-vs-model
columns so divergence is visible.
"""

__all__ = [
    "von_neumann_utilization",
    "multithreaded_utilization",
    "contexts_needed",
    "speedup",
    "efficiency",
    "harmonic_mean",
]


def von_neumann_utilization(cpu_cycles_per_reference, round_trip_latency):
    """Expected utilization of a single-context processor (Issue 1).

    A processor that does ``r`` cycles of useful work per memory reference
    and then stalls ``L`` cycles for it achieves ``r / (r + L)``.  As the
    machine scales and L grows, utilization collapses — the paper's core
    quantitative claim about von Neumann multiprocessors.
    """
    r = cpu_cycles_per_reference
    return r / (r + round_trip_latency) if (r + round_trip_latency) > 0 else 0.0


def multithreaded_utilization(n_contexts, cpu_cycles_per_reference,
                              round_trip_latency):
    """Expected utilization with K hardware contexts.

    With K contexts each following the r-work / L-stall pattern, the
    pipeline saturates once K * r >= r + L; below that it is K times the
    single-context figure.  This is why "the number of low-level contexts
    ... will have to increase to match the increase in memory latency"
    (§1.1).
    """
    single = von_neumann_utilization(cpu_cycles_per_reference,
                                     round_trip_latency)
    return min(1.0, n_contexts * single)


def contexts_needed(cpu_cycles_per_reference, round_trip_latency,
                    target_utilization=0.9):
    """Smallest K reaching ``target_utilization`` — grows linearly in L."""
    import math

    single = von_neumann_utilization(cpu_cycles_per_reference,
                                     round_trip_latency)
    if single <= 0:
        return float("inf")
    return max(1, math.ceil(target_utilization / single))


def speedup(serial_time, parallel_time):
    return serial_time / parallel_time if parallel_time > 0 else float("inf")


def efficiency(serial_time, parallel_time, n_processors):
    return speedup(serial_time, parallel_time) / n_processors


def harmonic_mean(values):
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return len(values) / sum(1.0 / v for v in values)
