"""Prepackaged studies: PE-count and latency sweeps as one-call tables.

These wrap the patterns every experiment repeats — run the same program
while varying one machine parameter, and report time / speedup /
utilization — so examples and downstream users don't re-write the loop.
"""

from .metrics import speedup
from .report import Table

__all__ = ["scaling_study", "latency_study"]


def scaling_study(program, args, pe_counts, mapping="hash", title=None,
                  **config_kwargs):
    """Sweep the PE count; returns a :class:`Table`.

    ``mapping`` is "hash" or "context" (see
    :mod:`repro.dataflow.mapping`).  Extra keyword arguments flow into
    :class:`~repro.dataflow.machine.MachineConfig`.
    """
    from ..dataflow import ByContextMapping, MachineConfig, TaggedTokenMachine

    table = Table(
        title or "Tagged-token machine scaling study",
        ["PEs", "time", "speedup", "efficiency", "mean ALU util",
         "network tokens"],
        notes=[f"args = {args!r}, mapping = {mapping}"],
    )
    base_time = None
    expected = None
    for n_pes in pe_counts:
        config = MachineConfig(n_pes=n_pes, **config_kwargs)
        if mapping == "context":
            config.mapping_factory = lambda n: ByContextMapping(n)
        machine = TaggedTokenMachine(program, config)
        result = machine.run(*args)
        if expected is None:
            expected = result.value
        elif result.value != expected:
            raise AssertionError(
                f"nondeterministic result at {n_pes} PEs: "
                f"{result.value!r} != {expected!r}"
            )
        if base_time is None:
            base_time = result.time
        s = speedup(base_time, result.time)
        table.add_row(
            n_pes, result.time, s, s / n_pes, result.mean_alu_utilization,
            result.counters.get("tokens_network", 0),
        )
    return table


def latency_study(program, args, latencies, n_pes=4, title=None,
                  **config_kwargs):
    """Sweep the network latency at a fixed PE count."""
    from ..dataflow import MachineConfig, TaggedTokenMachine

    table = Table(
        title or "Latency tolerance study",
        ["latency", "time", "slowdown", "mean ALU util"],
        notes=[f"args = {args!r}, {n_pes} PEs"],
    )
    base_time = None
    for latency in latencies:
        config = MachineConfig(n_pes=n_pes, network_latency=latency,
                               **config_kwargs)
        result = TaggedTokenMachine(program, config).run(*args)
        if base_time is None:
            base_time = result.time
        table.add_row(latency, result.time, result.time / base_time,
                      result.mean_alu_utilization)
    return table
