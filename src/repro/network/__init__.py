"""Interconnection networks (S7 in DESIGN.md).

Topologies from the paper's survey and proposal: an ideal fixed-latency
network (control arm), a C.mmp-style crossbar, a Cm*-style cluster
hierarchy, the NYU Ultracomputer's combining omega network, and the
emulation facility's hypercube with table-based routing, fault tolerance
and static partitioning.
"""

from .base import Network
from .crossbar import CrossbarNetwork
from .hierarchy import HierarchicalNetwork
from .hypercube import HypercubeNetwork
from .ideal import IdealNetwork
from .omega import CombiningOmegaNetwork, FetchAddRequest, MemoryRequest
from .packet import Packet
from .routing import (
    build_shortest_path_table,
    emulated_neighbors,
    gray_code,
    grid_embedding,
    ring_embedding,
)

__all__ = [
    "CombiningOmegaNetwork",
    "CrossbarNetwork",
    "FetchAddRequest",
    "HierarchicalNetwork",
    "HypercubeNetwork",
    "IdealNetwork",
    "MemoryRequest",
    "Network",
    "Packet",
    "build_shortest_path_table",
    "emulated_neighbors",
    "gray_code",
    "grid_embedding",
    "ring_embedding",
]
