"""An Omega (multistage shuffle-exchange) network with combining switches.

This is the NYU Ultracomputer's interconnect (§1.2.3): "a synchronous
packet communication network which connects n processors to an n-port
memory", whose switches combine FETCH-AND-ADD packets addressed to the
same cell: "If two packets collide, say FETCH-AND-ADD(A,x) and
FETCH-AND-ADD(A,y), the switch extracts the values x and y, forms a new
packet (FETCH-AND-ADD(A,x+y)), forwards it to the memory, and stores the
value of x temporarily.  When the memory returns the old value of location
A, the switch returns two values ((A) and (A)+x).  Hence, one memory
reference may involve as many as log2(n) additions, and implies
substantial hardware complexity."

The forward path is fully contended (FIFO queue per switch output rail);
the return path retraces the forward route at a fixed per-hop delay and
performs the splits.  Combining can be switched off to measure the
hot-spot serialization it prevents (experiment E5).
"""

from dataclasses import dataclass
from typing import Optional

from ..common.errors import NetworkError
from ..common.stats import Counter, Histogram, UtilizationTracker

__all__ = ["CombiningOmegaNetwork", "FetchAddRequest", "MemoryRequest"]


@dataclass
class FetchAddRequest:
    """FETCH-AND-ADD(address, value): combinable in the switches."""

    address: int
    value: object

    @property
    def combine_key(self):
        return ("faa", self.address)


@dataclass
class MemoryRequest:
    """A plain (non-combinable) LOAD or STORE."""

    address: int
    op: str = "load"  # "load" or "store"
    value: Optional[object] = None

    @property
    def combine_key(self):
        return None


class _FlightRecord:
    """Network-side state of one request packet."""

    __slots__ = ("src", "payload", "trace", "injected_at", "pid")
    _next_pid = 0

    def __init__(self, src, payload, now):
        self.src = src
        self.payload = payload
        self.trace = []  # (stage, rail) switch outputs visited
        self.injected_at = now
        self.pid = _FlightRecord._next_pid
        _FlightRecord._next_pid += 1


class _SwitchOutput:
    """One output rail of one 2x2 switch: a FIFO with combining."""

    def __init__(self, net, stage, rail):
        self.net = net
        self.stage = stage
        self.rail = rail
        self.queue = []
        self.busy = False
        self.utilization = UtilizationTracker()

    def submit(self, record):
        if self.net.combining:
            key = record.payload.combine_key
            if key is not None:
                for index, waiting in enumerate(self.queue):
                    if waiting.payload.combine_key == key:
                        del self.queue[index]
                        self._combine(waiting, record)
                        return
        self.queue.append(record)
        self._kick()

    def _combine(self, first, second):
        x = first.payload.value
        merged = FetchAddRequest(first.payload.address, x + second.payload.value)
        combined = _FlightRecord(None, merged, self.net.sim.now)
        combined.trace = [(self.stage, self.rail)]
        self.net._wait_buffers[(self.stage, self.rail, combined.pid)] = (first, second, x)
        self.net.counters.add("combines")
        if self.net._bus is not None and self.net._bus.enabled:
            self.net._bus.emit(
                self.net.sim.now, self.net._bus_source, "net_combine",
                f"A={merged.address}", stage=self.stage, rail=self.rail,
            )
        self.queue.append(combined)
        self._kick()

    def _kick(self):
        if not self.busy and self.queue:
            self.busy = True
            self.utilization.begin(self.net.sim.now)
            record = self.queue.pop(0)
            delay = self.net.switch_time
            faults = self.net.faults
            if faults is not None:
                delay += faults.net_delay(
                    self.net.sim, f"{self.net.name}.s{self.stage}", record)
            self.net.sim.post(delay, self._advance, record)

    def _advance(self, record):
        self.busy = False
        self.utilization.end(self.net.sim.now)
        self.net._forward(record, self.stage + 1, self.rail)
        self._kick()


class CombiningOmegaNetwork:
    """n = 2**stages processors to n memory ports through 2x2 switches."""

    def __init__(self, sim, stages, switch_time=1.0, return_hop_time=1.0,
                 combining=True, name="omega"):
        if stages < 1:
            raise NetworkError("omega network needs at least one stage")
        self.sim = sim
        self.stages = stages
        self.n_ports = 2**stages
        self.switch_time = switch_time
        self.return_hop_time = return_hop_time
        self.combining = combining
        self.name = name
        self._switches = {
            (stage, rail): _SwitchOutput(self, stage, rail)
            for stage in range(stages)
            for rail in range(self.n_ports)
        }
        self._wait_buffers = {}
        self._memory_handlers = [None] * self.n_ports
        self._processor_handlers = [None] * self.n_ports
        self.counters = Counter()
        self.round_trip_latency = Histogram()
        self._bus = None
        self._bus_source = name
        #: Optional :class:`repro.faults.FaultInjector`; latency spikes
        #: land on the switch rails (the synchronous network's clock is
        #: exactly what a glitch would slip).
        self.faults = None

    # ------------------------------------------------------------------
    def attach_bus(self, bus, source=None):
        """Publish combine/split/delivery events to a TraceBus."""
        self._bus = bus
        if source is not None:
            self._bus_source = source
        return bus

    def register_metrics(self, registry, prefix=None):
        """Register the omega network's instruments under ``prefix``."""
        prefix = prefix if prefix is not None else self.name
        registry.register(prefix, self.counters)
        registry.register(f"{prefix}.round_trip", self.round_trip_latency)
        return registry

    # ------------------------------------------------------------------
    def attach_memory(self, port, handler):
        """``handler(record, payload)`` runs when a request reaches memory
        port ``port``; the machine must eventually call :meth:`reply`."""
        self._memory_handlers[port] = handler

    def attach_processor(self, port, handler):
        """``handler(payload, value)`` runs when a reply reaches the
        processor at ``port``."""
        self._processor_handlers[port] = handler

    def memory_port_of(self, address):
        """Address interleaving across the n memory ports."""
        return address % self.n_ports

    # ------------------------------------------------------------------
    def request(self, src, payload):
        """Inject a memory request from processor port ``src``."""
        if not 0 <= src < self.n_ports:
            raise NetworkError(f"{self.name}: bad source port {src}")
        record = _FlightRecord(src, payload, self.sim.now)
        self.counters.add("requests")
        self._forward(record, 0, src)
        return record

    def _forward(self, record, stage, rail):
        if stage == self.stages:
            port = self.memory_port_of(record.payload.address)
            handler = self._memory_handlers[port]
            if handler is None:
                raise NetworkError(f"{self.name}: no memory at port {port}")
            self.counters.add("memory_arrivals")
            handler(record, record.payload)
            return
        dst = self.memory_port_of(record.payload.address)
        dst_bit = (dst >> (self.stages - 1 - stage)) & 1
        next_rail = ((rail << 1) & (self.n_ports - 1)) | dst_bit
        record.trace.append((stage, next_rail))
        self._switches[(stage, next_rail)].submit(record)

    # ------------------------------------------------------------------
    def reply(self, record, value):
        """Send ``value`` back toward the requester, splitting combined
        packets at the switches that combined them."""
        self._return_hop(record, value, len(record.trace) - 1)

    def _return_hop(self, record, value, index):
        if index < 0:
            self._deliver_reply(record, value)
            return
        self.sim.post(
            self.return_hop_time, self._return_arrive, record, value, index
        )

    def _return_arrive(self, record, value, index):
        stage, rail = record.trace[index]
        buffered = self._wait_buffers.pop((stage, rail, record.pid), None)
        if buffered is not None:
            first, second, x = buffered
            self.counters.add("splits")
            if self._bus is not None and self._bus.enabled:
                self._bus.emit(self.sim.now, self._bus_source, "net_split",
                               f"A={record.payload.address}", stage=stage,
                               rail=rail)
            # first receives (A); second receives (A) + x.
            self._return_hop(first, value, len(first.trace) - 2)
            self._return_hop(second, value + x, len(second.trace) - 2)
            return
        self._return_hop(record, value, index - 1)

    def _deliver_reply(self, record, value):
        if record.src is None:
            raise NetworkError(
                f"{self.name}: combined packet {record.pid} reached a "
                "processor port without being split"
            )
        handler = self._processor_handlers[record.src]
        if handler is None:
            raise NetworkError(f"{self.name}: no processor at port {record.src}")
        self.counters.add("replies")
        self.round_trip_latency.observe(self.sim.now - record.injected_at)
        handler(record.payload, value)

    def __repr__(self):
        return (
            f"<CombiningOmegaNetwork n={self.n_ports} "
            f"combining={self.combining} combines={self.counters['combines']}>"
        )
