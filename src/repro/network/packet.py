"""Packets: the unit of communication in every network model."""

import itertools
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Packet"]

_packet_ids = itertools.count()


@dataclass
class Packet:
    """One message in flight from ``src`` port to ``dst`` port.

    ``size`` is in flits (link transfer units); a link with per-flit time
    ``t`` occupies the wire for ``size * t`` cycles.  ``payload`` is opaque
    to the network (a dataflow token, a memory request, ...).
    """

    src: int
    dst: int
    payload: object
    size: int = 1
    injected_at: Optional[float] = None
    hops: int = 0
    pid: int = field(default_factory=lambda: next(_packet_ids))
    # Provenance: eid of the latest network event in this packet's
    # history (net_inject, then net_deliver); None outside profiling.
    cause: Optional[int] = None
    # Fault injection: True once this packet has had its delivery-spike
    # draw, so a delayed packet is not re-drawn when it re-arrives.
    fault_checked: bool = False

    def __repr__(self):
        return (
            f"<Packet #{self.pid} {self.src}->{self.dst} hops={self.hops} "
            f"{self.payload!r}>"
        )
