"""A Cm*-style hierarchical (cluster) network (§1.2.2).

Cm* interconnected "a number of microprocessors, each with its own memory"
through a hierarchy: references within a cluster go through the cluster's
Kmap controller; references between clusters additionally cross an
intercluster bus.  "Because of the hierarchical structure, this meant that
greater interprocessor distances translated into longer memory reference
times and decreased processor utilization."

The model: each cluster has one Kmap FIFO server, and one global
intercluster bus connects them.  A packet between clusters queues at the
source Kmap, the intercluster bus, and the destination Kmap in turn, so
both the *latency* hierarchy and the *contention* hierarchy are present.
"""

from ..common.errors import NetworkError
from ..common.queueing import FifoServer
from .base import Network

__all__ = ["HierarchicalNetwork"]


class HierarchicalNetwork(Network):
    """``n_clusters`` clusters of ``cluster_size`` nodes each."""

    def __init__(self, sim, n_clusters, cluster_size, kmap_time=3.0,
                 intercluster_time=9.0, local_time=1.0, node_map=None,
                 name="cmstar"):
        if n_clusters < 1 or cluster_size < 1:
            raise NetworkError("need at least one cluster of one node")
        n_ports = len(node_map) if node_map is not None else (
            n_clusters * cluster_size
        )
        super().__init__(sim, n_ports, name=name)
        self.n_clusters = n_clusters
        self.cluster_size = cluster_size
        self.local_time = local_time
        #: Optional port -> (cluster, member) affinity.  Lets a processor
        #: port and its local memory-module port share one computer module:
        #: traffic between ports with identical affinity is a *local*
        #: reference and bypasses the Kmap entirely.
        self.node_map = list(node_map) if node_map is not None else None
        self.kmaps = [
            FifoServer(sim, kmap_time, name=f"{name}.kmap{i}")
            for i in range(n_clusters)
        ]
        self.intercluster_bus = FifoServer(
            sim, intercluster_time, name=f"{name}.global"
        )

    def cluster_of(self, node):
        self._check_port(node)
        if self.node_map is not None:
            return self.node_map[node][0]
        return node // self.cluster_size

    def _same_module(self, src, dst):
        if src == dst:
            return True
        if self.node_map is not None:
            return self.node_map[src] == self.node_map[dst]
        return False

    # ------------------------------------------------------------------
    def _route(self, packet):
        src_cluster = self.cluster_of(packet.src)
        dst_cluster = self.cluster_of(packet.dst)
        if self._same_module(packet.src, packet.dst):
            packet.hops = 0
            self.counters.add("local")
            self.sim.post(self.local_time, self._deliver, packet)
        elif src_cluster == dst_cluster:
            packet.hops = 1
            self.counters.add("intra_cluster")
            self.kmaps[src_cluster].submit(packet, self._deliver)
        else:
            packet.hops = 3
            self.counters.add("inter_cluster")
            self.kmaps[src_cluster].submit(
                packet, lambda p: self._to_global(p, dst_cluster)
            )

    def _to_global(self, packet, dst_cluster):
        self.intercluster_bus.submit(
            packet, lambda p: self.kmaps[dst_cluster].submit(p, self._deliver)
        )

    # ------------------------------------------------------------------
    def kmap_utilization(self):
        now = self.sim.now
        return [k.utilization.utilization(now) for k in self.kmaps]

    def bus_utilization(self):
        return self.intercluster_bus.utilization.utilization(self.sim.now)
