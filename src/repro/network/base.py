"""Common interface and accounting for all interconnection networks.

The abstract multiprocessor of Figure 1-1 interconnects processing and
memory elements through "a number of *ports*, each with a bounded
*bandwidth*".  Every concrete topology here exposes the same surface:
``attach`` a handler per port, ``send`` packets between ports, and read
back latency/hop/utilization statistics afterwards.
"""

from ..common.errors import NetworkError
from ..common.stats import Counter, Histogram
from .packet import Packet

__all__ = ["Network"]


class Network:
    """Base class: port bookkeeping plus delivery statistics."""

    def __init__(self, sim, n_ports, name="net"):
        if n_ports < 1:
            raise NetworkError(f"network needs at least one port, got {n_ports}")
        self.sim = sim
        self.n_ports = n_ports
        self.name = name
        self._handlers = [None] * n_ports
        self._owners = [None] * n_ports
        self.counters = Counter()
        self.latency = Histogram()
        self.hop_counts = Histogram()
        self._bus = None
        self._bus_source = name
        #: Optional :class:`repro.faults.FaultInjector`; None keeps the
        #: delivery path at a single attribute check.
        self.faults = None

    # ------------------------------------------------------------------
    def attach_bus(self, bus, source=None):
        """Publish per-packet events (``net_inject``/``net_deliver``) to
        a :class:`repro.obs.TraceBus` under track ``source``."""
        self._bus = bus
        if source is not None:
            self._bus_source = source
        return bus

    def register_metrics(self, registry, prefix=None):
        """Register this network's instruments under ``prefix``."""
        prefix = prefix if prefix is not None else self.name
        registry.register(prefix, self.counters)
        registry.register(f"{prefix}.latency", self.latency)
        registry.register(f"{prefix}.hops", self.hop_counts)
        return registry

    # ------------------------------------------------------------------
    def attach(self, port, handler, owner=None):
        """Register ``handler(packet)`` to receive deliveries at ``port``.

        ``owner`` names the simulation object that owns the port for the
        sharded kernel's routing (see :meth:`ShardedSimulator.post_to`);
        delivery events then execute on the owner's shard.  Serial
        kernels ignore it.
        """
        self._check_port(port)
        self._handlers[port] = handler
        self._owners[port] = owner

    def _post_delivery(self, packet, delay):
        """Schedule ``_deliver`` on the destination port's owner shard
        (a plain local post when no owner was declared)."""
        owner = self._owners[packet.dst]
        if owner is None:
            self.sim.post(delay, self._deliver, packet)
        else:
            self.sim.post_to(owner, delay, self._deliver, packet)

    def send(self, src, dst, payload, size=1, cause=None):
        """Inject a packet; returns the :class:`Packet` for tracing.

        ``cause`` is the provenance eid of the event that produced the
        payload; the injection event links to it and the packet carries
        the chain forward to delivery.
        """
        self._check_port(src)
        self._check_port(dst)
        packet = Packet(src=src, dst=dst, payload=payload, size=size,
                        injected_at=self.sim.now)
        self.counters.add("injected")
        bus = self._bus
        if bus is not None and bus.enabled:
            eid = bus.emit_id(self.sim.now, self._bus_source, "net_inject",
                              f"{src}->{dst}", size=size, parent=cause)
            packet.cause = eid if eid is not None else cause
        else:
            packet.cause = cause
        self._route(packet)
        return packet

    def _route(self, packet):
        raise NotImplementedError

    def _deliver(self, packet):
        faults = self.faults
        if faults is not None and not packet.fault_checked:
            # One spike draw per packet, at the moment it would have
            # arrived.  A hit re-queues delivery, which also reorders
            # the packet against anything injected in the meantime.
            packet.fault_checked = True
            extra = faults.net_delay(self.sim, self._bus_source, packet)
            if extra > 0.0:
                self.counters.add("fault_delays")
                self.sim.post(extra, self._deliver, packet)
                return
        handler = self._handlers[packet.dst]
        if handler is None:
            raise NetworkError(
                f"{self.name}: no handler attached at port {packet.dst}"
            )
        self.counters.add("delivered")
        latency = self.sim.now - packet.injected_at
        self.latency.observe(latency)
        self.hop_counts.observe(packet.hops)
        bus = self._bus
        if bus is not None and bus.enabled:
            eid = bus.emit_id(self.sim.now, self._bus_source, "net_deliver",
                              f"{packet.src}->{packet.dst}", latency=latency,
                              hops=packet.hops, parent=packet.cause,
                              dur=latency)
            if eid is not None:
                packet.cause = eid
        handler(packet)

    def _check_port(self, port):
        if not 0 <= port < self.n_ports:
            raise NetworkError(
                f"{self.name}: port {port} out of range [0, {self.n_ports})"
            )

    # ------------------------------------------------------------------
    @property
    def in_flight(self):
        """Packets injected but not yet delivered."""
        return self.counters["injected"] - self.counters["delivered"]

    def mean_latency(self):
        return self.latency.mean

    def __repr__(self):
        return (
            f"<{type(self).__name__} {self.name!r} ports={self.n_ports} "
            f"delivered={self.counters['delivered']}>"
        )
