"""Topology embeddings and routing-table construction for the hypercube.

The emulation facility's switches hold "a routing table which allows the
experimenter to specify any *emulated* topology which can be mapped onto
the hypercube" (§3).  These helpers build such tables: Gray-code ring and
grid embeddings, and a generic shortest-path table over the live links of
a (possibly faulty) cube, computed with networkx.
"""

import networkx as nx

from ..common.errors import NetworkError

__all__ = [
    "gray_code",
    "ring_embedding",
    "grid_embedding",
    "build_shortest_path_table",
    "emulated_neighbors",
]


def gray_code(i):
    """The i-th binary-reflected Gray code."""
    return i ^ (i >> 1)


def ring_embedding(dimensions):
    """Map ring position -> hypercube node so neighbors are 1 hop apart."""
    n = 2**dimensions
    return [gray_code(i) for i in range(n)]


def grid_embedding(rows_log2, cols_log2):
    """Embed a 2^rows x 2^cols end-around grid into a hypercube.

    Returns a dict (row, col) -> node of a (rows_log2 + cols_log2)-cube.
    Row neighbors and column neighbors are each exactly one hop apart
    (Gray code per axis), so an Illiac IV style grid maps with dilation 1.
    """
    rows = 2**rows_log2
    cols = 2**cols_log2
    return {
        (r, c): (gray_code(r) << cols_log2) | gray_code(c)
        for r in range(rows)
        for c in range(cols)
    }


def _live_cube_graph(network):
    graph = nx.DiGraph()
    graph.add_nodes_from(range(network.n_ports))
    for (a, b) in network.links:
        if network.link_alive(a, b):
            graph.add_edge(a, b)
    return graph


def build_shortest_path_table(network, pairs=None):
    """Build a (node, dst) -> next_hop table over the cube's live links.

    ``pairs`` restricts the table to specific (src, dst) pairs; by default
    every ordered pair gets an entry.  Raises :class:`NetworkError` when a
    requested destination is unreachable (the cube is partitioned by
    faults).
    """
    graph = _live_cube_graph(network)
    table = {}
    if pairs is None:
        pairs = [
            (src, dst)
            for src in range(network.n_ports)
            for dst in range(network.n_ports)
            if src != dst
        ]
    wanted_dsts = {dst for _, dst in pairs}
    paths_to = {}
    for dst in wanted_dsts:
        # Predecessor search on the reversed graph gives next-hops to dst.
        paths_to[dst] = nx.shortest_path(graph.reverse(copy=False), source=dst)
    for src, dst in pairs:
        if src == dst:
            continue
        path = paths_to[dst].get(src)
        if path is None:
            raise NetworkError(f"no live route from {src} to {dst}")
        # path is dst -> ... -> src on the reversed graph.
        for i in range(len(path) - 1, 0, -1):
            table[(path[i], dst)] = path[i - 1]
    return table


def emulated_neighbors(embedding, topology="ring"):
    """Adjacent (node, node) pairs of an emulated topology.

    For ``ring`` embeddings (a list), consecutive positions (end-around).
    For ``grid`` embeddings (a dict keyed by (row, col)), the four NEWS
    neighbors with end-around connections, as in Illiac IV.
    """
    pairs = []
    if topology == "ring":
        n = len(embedding)
        for i in range(n):
            pairs.append((embedding[i], embedding[(i + 1) % n]))
    elif topology == "grid":
        rows = 1 + max(r for r, _ in embedding)
        cols = 1 + max(c for _, c in embedding)
        for (r, c), node in embedding.items():
            pairs.append((node, embedding[((r + 1) % rows, c)]))
            pairs.append((node, embedding[(r, (c + 1) % cols)]))
    else:
        raise NetworkError(f"unknown emulated topology {topology!r}")
    return pairs
