"""A binary hypercube packet network — the emulation facility's topology.

Section 3 of the paper describes "a seven dimensional hypercube with each
connection implemented as a 4 megabyte per second bit-serial link", chosen
"for its flexibility": a routing table per switch lets the experimenter
map "any *emulated* topology which can be mapped onto the hypercube", the
redundancy of the cube is exploited "for message routing and for fault
tolerance", and table-based routing "allows the facility to be statically
partitioned into two or more smaller emulation machines".

All four properties are implemented here: dimension-order routing by
default, per-(node, destination) routing tables, adaptive detours around
failed links, and static partitions that refuse traffic across partition
boundaries.
"""

from ..common.errors import NetworkError
from ..common.queueing import FifoServer
from .base import Network

__all__ = ["HypercubeNetwork"]


class HypercubeNetwork(Network):
    """2**dimensions nodes; one FIFO bit-serial link per directed edge."""

    def __init__(self, sim, dimensions, flit_time=1.0, wire_latency=1.0,
                 name="hypercube"):
        if dimensions < 1:
            raise NetworkError("hypercube needs at least one dimension")
        super().__init__(sim, 2**dimensions, name=name)
        self.dimensions = dimensions
        self.flit_time = flit_time
        self.wire_latency = wire_latency
        self.links = {}
        for node in range(self.n_ports):
            for dim in range(dimensions):
                neighbor = node ^ (1 << dim)
                self.links[(node, neighbor)] = FifoServer(
                    sim, flit_time, name=f"{name}.link{node}->{neighbor}"
                )
        self._dead_links = set()
        self._routing_table = None
        self._partition_of = None

    # ------------------------------------------------------------------
    # Configuration: faults, tables, partitions
    # ------------------------------------------------------------------
    def fail_link(self, a, b, bidirectional=True):
        """Mark the link a->b (and b->a) as failed."""
        self._check_link(a, b)
        self._dead_links.add((a, b))
        if bidirectional:
            self._dead_links.add((b, a))

    def repair_link(self, a, b, bidirectional=True):
        self._dead_links.discard((a, b))
        if bidirectional:
            self._dead_links.discard((b, a))

    def link_alive(self, a, b):
        self._check_link(a, b)
        return (a, b) not in self._dead_links

    def load_routing_table(self, table):
        """Install explicit routing: ``table[(node, dst)] = next_node``.

        Destinations absent from the table fall back to dimension-order
        routing, so a table only needs entries where it wants to override.
        """
        for (node, dst), nxt in table.items():
            self._check_port(node)
            self._check_port(dst)
            self._check_link(node, nxt)
        self._routing_table = dict(table)

    def clear_routing_table(self):
        self._routing_table = None

    def set_partitions(self, partitions):
        """Statically split the cube; traffic may not cross partitions."""
        partition_of = {}
        for index, nodes in enumerate(partitions):
            for node in nodes:
                self._check_port(node)
                if node in partition_of:
                    raise NetworkError(f"node {node} in two partitions")
                partition_of[node] = index
        self._partition_of = partition_of

    def clear_partitions(self):
        self._partition_of = None

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route(self, packet):
        if self._partition_of is not None:
            src_part = self._partition_of.get(packet.src)
            dst_part = self._partition_of.get(packet.dst)
            if src_part is None or dst_part is None or src_part != dst_part:
                raise NetworkError(
                    f"{self.name}: packet {packet.src}->{packet.dst} crosses "
                    "a static partition boundary"
                )
        self._hop(packet, packet.src)

    def _hop(self, packet, node):
        if node == packet.dst:
            self._deliver(packet)
            return
        if packet.hops > 4 * self.dimensions:
            raise NetworkError(
                f"{self.name}: packet {packet!r} exceeded TTL; link failures "
                "have disconnected its destination"
            )
        nxt = self._next_hop(node, packet.dst)
        link = self.links[(node, nxt)]
        link.submit(
            packet,
            lambda p, _n=nxt: self.sim.post(self.wire_latency, self._advance, p, _n),
            service_time=packet.size * self.flit_time,
        )

    def _advance(self, packet, node):
        packet.hops += 1
        self._hop(packet, node)

    def _next_hop(self, node, dst):
        if self._routing_table is not None:
            override = self._routing_table.get((node, dst))
            if override is not None:
                if not self.link_alive(node, override):
                    raise NetworkError(
                        f"{self.name}: routing table uses dead link "
                        f"{node}->{override}"
                    )
                return override
        # Dimension-order routing over live links.
        differing = node ^ dst
        for dim in range(self.dimensions):
            if differing & (1 << dim):
                candidate = node ^ (1 << dim)
                if self.link_alive(node, candidate):
                    return candidate
        # All productive links dead: detour through any live link.
        for dim in range(self.dimensions):
            candidate = node ^ (1 << dim)
            if self.link_alive(node, candidate):
                return candidate
        raise NetworkError(f"{self.name}: node {node} is completely cut off")

    def _check_link(self, a, b):
        if (a, b) not in self.links:
            raise NetworkError(f"{self.name}: {a}->{b} is not a hypercube edge")

    # ------------------------------------------------------------------
    def link_utilization(self):
        """Mean utilization across all live links at the current time."""
        now = self.sim.now
        values = [
            server.utilization.utilization(now)
            for key, server in self.links.items()
            if key not in self._dead_links
        ]
        return sum(values) / len(values) if values else 0.0

    @staticmethod
    def minimum_hops(a, b):
        """Hamming distance — the conflict-free hop count."""
        return bin(a ^ b).count("1")
