"""An ideal network: fixed latency, unbounded bandwidth.

Useful as the control arm of latency experiments — it lets a machine model
dial memory/communication latency directly (the independent variable of
Issue 1) without any contention effects mixed in.
"""

from .base import Network

__all__ = ["IdealNetwork"]


class IdealNetwork(Network):
    """Delivers every packet exactly ``latency`` cycles after injection."""

    def __init__(self, sim, n_ports, latency=1.0, name="ideal"):
        super().__init__(sim, n_ports, name=name)
        self.latency_cycles = latency

    def _route(self, packet):
        packet.hops = 0 if packet.src == packet.dst else 1
        self._post_delivery(packet, self.latency_cycles)
