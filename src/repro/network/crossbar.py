"""A crossbar switch in the style of C.mmp (§1.2.1).

Every input can reach every output in one switch transit; contention only
arises when two packets want the same *output* port, which is modelled as
a FIFO server per output.  The paper's complaint is not the latency — "the
switch speed was comparable to the speed of a local memory reference" —
but the *cost*: "the cost of building a larger switch which maintains the
same performance level grows at least quadratically".  The cost model is
exposed as :meth:`crosspoint_count` and exercised by experiment E13.
"""

from ..common.queueing import FifoServer
from .base import Network

__all__ = ["CrossbarNetwork"]


class CrossbarNetwork(Network):
    """An n-port crossbar with per-output FIFO queues."""

    def __init__(self, sim, n_ports, switch_latency=1.0, port_service_time=1.0,
                 name="crossbar"):
        super().__init__(sim, n_ports, name=name)
        self.switch_latency = switch_latency
        self.output_ports = [
            FifoServer(sim, port_service_time, name=f"{name}.out{i}")
            for i in range(n_ports)
        ]

    def _route(self, packet):
        packet.hops = 1
        # Transit the switch fabric, then queue for the output port.
        self.sim.post(self.switch_latency, self._enqueue_output, packet)

    def _enqueue_output(self, packet):
        server = self.output_ports[packet.dst]
        server.submit(packet, self._deliver, service_time=packet.size * server.service_time)

    # ------------------------------------------------------------------
    def register_metrics(self, registry, prefix=None):
        prefix = prefix if prefix is not None else self.name
        super().register_metrics(registry, prefix=prefix)
        for index, port in enumerate(self.output_ports):
            registry.register(f"{prefix}.out{index}", port)
        return registry

    @staticmethod
    def crosspoint_count(n_ports):
        """Hardware cost of the switch: one crosspoint per (input, output)
        pair, i.e. quadratic growth — the scaling barrier of C.mmp."""
        return n_ports * n_ports

    def output_utilization(self):
        """Per-output-port utilization at the current simulated time."""
        now = self.sim.now
        return [port.utilization.utilization(now) for port in self.output_ports]
