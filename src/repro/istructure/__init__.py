"""I-structure storage (S6 in DESIGN.md): presence bits, deferred read
lists, the single-assignment discipline, and the timed memory controller.

This is the paper's answer to Issue 2 — "synchronization can be achieved
with no loss of parallelism" (§1.1) — by synchronizing at the granularity
of a single memory element.
"""

from .controller import IStructureController, ReadRequest, WriteRequest
from .heap import Allocator, StructureRef, interleave_home
from .presence import Presence
from .store import DEFERRED, IStructureModule

__all__ = [
    "Allocator",
    "DEFERRED",
    "IStructureController",
    "IStructureModule",
    "Presence",
    "ReadRequest",
    "StructureRef",
    "WriteRequest",
    "interleave_home",
]
