"""The functional core of an I-structure storage module (§2.1, Fig 2-1).

This class implements exactly the discipline the paper describes:

* a **read** of a PRESENT cell returns the value immediately;
* a **read** of an EMPTY/WAITING cell is *deferred* — the request is put
  aside on the cell's deferred read list ("the memory module must maintain
  a list of deferred read requests as there may be more than one read of a
  particular address before the corresponding write");
* a **write** stores the value, sets the presence bits, and satisfies every
  deferred read; a second write to the same cell violates the
  single-assignment discipline and raises :class:`IStructureError`.

Timing (service cycles, the 2x write penalty from presence-bit prefetch)
belongs to :class:`repro.istructure.controller.IStructureController`; this
module is untimed so the reference interpreter can share it.

Reply handles are opaque to the store: the dataflow machine passes the
(tag, port) a satisfied read should produce a token for; the von Neumann
comparison models pass whatever they need.
"""

from ..common.errors import IStructureError
from ..common.stats import Counter, Histogram
from .presence import Presence

__all__ = ["IStructureModule", "DEFERRED"]

#: Sentinel returned by :meth:`IStructureModule.read` for deferred reads.
DEFERRED = object()


class _Cell:
    __slots__ = ("state", "value", "deferred")

    def __init__(self):
        self.state = Presence.EMPTY
        self.value = None
        self.deferred = []


class IStructureModule:
    """One I-structure memory module: cells keyed by (structure id, index)."""

    def __init__(self, name="istructure"):
        self.name = name
        self._cells = {}
        self.counters = Counter()
        #: Length of the deferred list each time a write drains it.
        self.deferred_list_lengths = Histogram()

    # ------------------------------------------------------------------
    def _cell(self, key):
        cell = self._cells.get(key)
        if cell is None:
            cell = self._cells[key] = _Cell()
        return cell

    def read(self, key, reply):
        """Attempt to read cell ``key`` on behalf of ``reply``.

        Returns the stored value if the cell is PRESENT, otherwise defers
        the request and returns the :data:`DEFERRED` sentinel.
        """
        cell = self._cell(key)
        if cell.state is Presence.PRESENT:
            self.counters.add("reads_immediate")
            return cell.value
        cell.deferred.append(reply)
        cell.state = Presence.WAITING
        self.counters.add("reads_deferred")
        return DEFERRED

    def write(self, key, value):
        """Write cell ``key`` and return the drained deferred replies.

        The return value is a list of the reply handles whose reads are now
        satisfied (each should be delivered ``value``).  Raises
        :class:`IStructureError` on a repeated write, enforcing the
        single-assignment rule that makes the scheme race-free.
        """
        cell = self._cell(key)
        if cell.state is Presence.PRESENT:
            raise IStructureError(
                f"{self.name}: second write to I-structure cell {key!r} "
                f"(old={cell.value!r}, new={value!r})"
            )
        drained = cell.deferred
        cell.deferred = []
        cell.value = value
        cell.state = Presence.PRESENT
        self.counters.add("writes")
        self.deferred_list_lengths.observe(len(drained))
        return drained

    # ------------------------------------------------------------------
    def presence(self, key):
        """Presence bits of ``key`` (EMPTY if never touched)."""
        cell = self._cells.get(key)
        return cell.state if cell is not None else Presence.EMPTY

    def value(self, key):
        """Value of a PRESENT cell; raises if the cell is unwritten."""
        cell = self._cells.get(key)
        if cell is None or cell.state is not Presence.PRESENT:
            raise IStructureError(f"{self.name}: cell {key!r} is not present")
        return cell.value

    def pending_reads(self):
        """Number of read requests still deferred across all cells."""
        return sum(len(c.deferred) for c in self._cells.values())

    def pending_cells(self):
        """Keys of cells that have deferred readers (for deadlock reports)."""
        return [k for k, c in self._cells.items() if c.deferred]

    @property
    def cells_written(self):
        return self.counters.get("writes")

    def __len__(self):
        return len(self._cells)

    def __repr__(self):
        return (
            f"<IStructureModule {self.name!r} cells={len(self._cells)} "
            f"pending={self.pending_reads()}>"
        )
