"""The timed I-structure memory controller.

Wraps the untimed :class:`~repro.istructure.store.IStructureModule` with a
single-server queue and the service costs the paper states (§2.1): "A read
operation is as efficient as in a traditional memory.  Write operations
take twice as long, however, due to the prefetching of presence bits."

Satisfied reads (immediate or deferred) are handed to a ``deliver``
callback; in the dataflow machine that callback injects the d=0 result
token into the network back toward the requesting PE.
"""

from ..common.stats import Counter, TimeWeighted, UtilizationTracker
from .store import DEFERRED, IStructureModule

__all__ = ["IStructureController", "ReadRequest", "WriteRequest"]


class ReadRequest:
    """A d=1 FETCH token's payload: read ``key``, answer to ``reply``."""

    __slots__ = ("key", "reply", "cause")

    def __init__(self, key, reply, cause=None):
        self.key = key
        self.reply = reply
        self.cause = cause  # provenance eid of the requesting event


class WriteRequest:
    """A d=1 STORE token's payload: write ``value`` into ``key``."""

    __slots__ = ("key", "value", "cause")

    def __init__(self, key, value, cause=None):
        self.key = key
        self.value = value
        self.cause = cause  # provenance eid of the requesting event


class IStructureController:
    """One controller serving one I-structure module, FIFO, one request at
    a time."""

    def __init__(
        self,
        sim,
        deliver,
        name="isc",
        read_cycles=1,
        write_cycles=2,
        drain_cycles_per_deferred=1,
        module=None,
        trace=None,
        bus=None,
    ):
        self.sim = sim
        self.deliver = deliver
        self.name = name
        self.read_cycles = read_cycles
        self.write_cycles = write_cycles
        self.drain_cycles_per_deferred = drain_cycles_per_deferred
        self.module = module if module is not None else IStructureModule(name)
        self._queue = []
        self._busy = False
        self.counters = Counter()
        self.queue_depth = TimeWeighted()
        self.utilization = UtilizationTracker()
        #: Optional ``trace(kind, detail, **fields)`` observability hook;
        #: None (the default) keeps the controller's hot path free of any
        #: per-event work beyond this attribute check.  ``bus`` is only
        #: consulted for its ``enabled`` flag, so detail strings are not
        #: built while no sink is listening.  The hook returns the event's
        #: provenance eid (or None).
        self._trace = trace
        self._bus = bus
        #: Provenance eid to attach to the token built by the very next
        #: ``deliver`` call; set synchronously right before each delivery.
        self.reply_cause = None
        self._deferred_causes = {}

    # ------------------------------------------------------------------
    def submit(self, request):
        """Accept a read or write request (arrival of a d=1 token)."""
        self._queue.append(request)
        self.queue_depth.update(self.sim.now, len(self._queue))
        self.counters.add("requests")
        if not self._busy:
            self._start_next()

    def _start_next(self):
        if not self._queue:
            return
        request = self._queue.pop(0)
        self.queue_depth.update(self.sim.now, len(self._queue))
        self._busy = True
        self.utilization.begin(self.sim.now)
        if isinstance(request, ReadRequest):
            service = self.read_cycles
        else:
            service = self.write_cycles
        self.sim.post(service, self._complete, request)

    def _complete(self, request):
        extra = 0.0
        tracing = self._trace is not None and (
            self._bus is None or self._bus.enabled
        )
        if isinstance(request, ReadRequest):
            # A deferred read costs nothing extra now; it pays its
            # processing cycle when the write drains the list.
            value = self.module.read(request.key, request.reply)
            if value is DEFERRED:
                self.counters.add("reads_deferred")
                if tracing:
                    eid = self._trace("is_defer", repr(request.key),
                                      parent=request.cause)
                    if eid is not None:
                        self._deferred_causes[request.reply] = eid
            else:
                self.counters.add("reads")
                self.reply_cause = None
                if tracing:
                    self.reply_cause = self._trace(
                        "is_read", repr(request.key), parent=request.cause,
                        dur=self.read_cycles,
                    )
                self.deliver(request.reply, value)
        else:
            drained = self.module.write(request.key, request.value)
            extra = self.drain_cycles_per_deferred * len(drained)
            self.counters.add("writes")
            if drained:
                self.counters.add("reads_drained", len(drained))
            eid = None
            if tracing:
                # The write joins the deferred reads it drains, so the
                # read-side chains stay connected through the DAG.
                joins = [
                    self._deferred_causes.pop(reply)
                    for reply in drained
                    if reply in self._deferred_causes
                ] or None
                eid = self._trace("is_write", repr(request.key),
                                  drained=len(drained),
                                  parent=request.cause, joins=joins,
                                  dur=self.write_cycles)
            for reply in drained:
                self.reply_cause = eid
                self.deliver(reply, request.value)
        if extra > 0:
            self.sim.post(extra, self._finish_drain)
        else:
            self._finish_drain()

    def _finish_drain(self):
        self.utilization.end(self.sim.now)
        self._busy = False
        self._start_next()

    # ------------------------------------------------------------------
    @property
    def pending_reads(self):
        return self.module.pending_reads()

    @property
    def queued(self):
        return len(self._queue)

    def __repr__(self):
        return (
            f"<IStructureController {self.name!r} queued={self.queued} "
            f"busy={self._busy} pending_reads={self.pending_reads}>"
        )
