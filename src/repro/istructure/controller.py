"""The timed I-structure memory controller.

Wraps the untimed :class:`~repro.istructure.store.IStructureModule` with a
single-server queue and the service costs the paper states (§2.1): "A read
operation is as efficient as in a traditional memory.  Write operations
take twice as long, however, due to the prefetching of presence bits."

Satisfied reads (immediate or deferred) are handed to a ``deliver``
callback; in the dataflow machine that callback injects the d=0 result
token into the network back toward the requesting PE.
"""

from ..common.stats import Counter, TimeWeighted, UtilizationTracker
from .store import DEFERRED, IStructureModule

__all__ = ["IStructureController", "IStructureBatchKind", "ReadRequest", "WriteRequest"]


class ReadRequest:
    """A d=1 FETCH token's payload: read ``key``, answer to ``reply``."""

    __slots__ = ("key", "reply", "cause", "retries", "fault_delay")

    def __init__(self, key, reply, cause=None):
        self.key = key
        self.reply = reply
        self.cause = cause  # provenance eid of the requesting event
        self.retries = 0  # injected transient failures survived so far
        self.fault_delay = 0.0  # injected extra reply latency (slow bank)


class WriteRequest:
    """A d=1 STORE token's payload: write ``value`` into ``key``."""

    __slots__ = ("key", "value", "cause", "retries", "fault_delay")

    def __init__(self, key, value, cause=None):
        self.key = key
        self.value = value
        self.cause = cause  # provenance eid of the requesting event
        self.retries = 0  # injected transient failures survived so far
        self.fault_delay = 0.0  # injected extra reply latency (slow bank)


class IStructureController:
    """One controller serving one I-structure module, FIFO, one request at
    a time."""

    def __init__(
        self,
        sim,
        deliver,
        name="isc",
        read_cycles=1,
        write_cycles=2,
        drain_cycles_per_deferred=1,
        module=None,
        trace=None,
        bus=None,
        faults=None,
    ):
        self.sim = sim
        self.deliver = deliver
        self.name = name
        self.read_cycles = read_cycles
        self.write_cycles = write_cycles
        self.drain_cycles_per_deferred = drain_cycles_per_deferred
        self.module = module if module is not None else IStructureModule(name)
        self._queue = []
        self._busy = False
        self.counters = Counter()
        self.queue_depth = TimeWeighted()
        self.utilization = UtilizationTracker()
        #: Optional ``trace(kind, detail, **fields)`` observability hook;
        #: None (the default) keeps the controller's hot path free of any
        #: per-event work beyond this attribute check.  ``bus`` is only
        #: consulted for its ``enabled`` flag, so detail strings are not
        #: built while no sink is listening.  The hook returns the event's
        #: provenance eid (or None).
        self._trace = trace
        self._bus = bus
        #: Optional :class:`repro.faults.FaultInjector`; None keeps the
        #: service path at one attribute check.
        self.faults = faults
        #: Provenance eid to attach to the token built by the very next
        #: ``deliver`` call; set synchronously right before each delivery.
        self.reply_cause = None
        self._deferred_causes = {}

    # ------------------------------------------------------------------
    def submit(self, request):
        """Accept a read or write request (arrival of a d=1 token)."""
        self._queue.append(request)
        self.queue_depth.update(self.sim.now, len(self._queue))
        self.counters.add("requests")
        if not self._busy:
            self._start_next()

    def _start_next(self):
        if not self._queue:
            return
        request = self._queue.pop(0)
        self.queue_depth.update(self.sim.now, len(self._queue))
        if isinstance(request, ReadRequest):
            service = self.read_cycles
        else:
            service = self.write_cycles
        faults = self.faults
        if faults is not None:
            verdict = faults.memory_fault(self.sim, self.name,
                                          retries=request.retries,
                                          cause=request.cause)
            if verdict is not None:
                kind, cycles = verdict
                if kind == "fail":
                    # Transient bank failure: nothing is applied; the
                    # controller itself retries the request after a
                    # growing backoff (the machine-layer recovery
                    # policy) and meanwhile serves the next one.
                    request.retries += 1
                    self.counters.add("fault_retries")
                    self.sim.post(cycles, self.submit, request)
                    self._start_next()
                    return
                # Slow bank: latency-shaped — the op applies on schedule
                # and the controller stays available, but the reply (and
                # any reads this write drains) lands ``cycles`` late.
                # This is the fault a split-phase machine can overlap.
                request.fault_delay = cycles
        self._busy = True
        self.utilization.begin(self.sim.now)
        self.sim.post(service, self._complete, request)

    def _complete(self, request):
        extra = 0.0
        tracing = self._trace is not None and (
            self._bus is None or self._bus.enabled
        )
        if isinstance(request, ReadRequest):
            # A deferred read costs nothing extra now; it pays its
            # processing cycle when the write drains the list.
            value = self.module.read(request.key, request.reply)
            if value is DEFERRED:
                self.counters.add("reads_deferred")
                if tracing:
                    eid = self._trace("is_defer", repr(request.key),
                                      parent=request.cause)
                    if eid is not None:
                        self._deferred_causes[request.reply] = eid
            else:
                self.counters.add("reads")
                self.reply_cause = None
                if tracing:
                    self.reply_cause = self._trace(
                        "is_read", repr(request.key), parent=request.cause,
                        dur=self.read_cycles,
                    )
                if request.fault_delay:
                    self.sim.post(request.fault_delay, self._deliver_delayed,
                                  request.reply, value, self.reply_cause)
                else:
                    self.deliver(request.reply, value)
        else:
            drained = self.module.write(request.key, request.value)
            extra = self.drain_cycles_per_deferred * len(drained)
            self.counters.add("writes")
            if drained:
                self.counters.add("reads_drained", len(drained))
            eid = None
            if tracing:
                # The write joins the deferred reads it drains, so the
                # read-side chains stay connected through the DAG.
                joins = [
                    self._deferred_causes.pop(reply)
                    for reply in drained
                    if reply in self._deferred_causes
                ] or None
                eid = self._trace("is_write", repr(request.key),
                                  drained=len(drained),
                                  parent=request.cause, joins=joins,
                                  dur=self.write_cycles)
            for reply in drained:
                if request.fault_delay:
                    self.sim.post(request.fault_delay, self._deliver_delayed,
                                  reply, request.value, eid)
                else:
                    self.reply_cause = eid
                    self.deliver(reply, request.value)
        if extra > 0:
            self.sim.post(extra, self._finish_drain)
        else:
            self._finish_drain()

    def _deliver_delayed(self, reply, value, cause):
        # Slow-bank fault delivery: reply_cause is consumed synchronously
        # by the deliver callback, so setting it here is race-free.
        self.reply_cause = cause
        self.deliver(reply, value)

    def _finish_drain(self):
        self.utilization.end(self.sim.now)
        self._busy = False
        self._start_next()

    # ------------------------------------------------------------------
    @property
    def pending_reads(self):
        return self.module.pending_reads()

    @property
    def queued(self):
        return len(self._queue)

    def __repr__(self):
        return (
            f"<IStructureController {self.name!r} queued={self.queued} "
            f"busy={self._busy} pending_reads={self.pending_reads}>"
        )


class IStructureBatchKind:
    """Batched presence-bit operations (``exec_mode="batch"``).

    A run holds at most one completion per controller (each is busy until
    ``_finish_drain``), so the pre-pass can prefetch every request's cell
    and classify the presence bits for the whole run at once — the batch
    analogue of the §2.1 presence-bit prefetch — before replaying each
    completion's exact side effects in bucket order.  Registered only
    when no fault injector or trace hook needs per-event interposition,
    so the replay below mirrors ``_complete`` with ``faults is None`` and
    ``tracing`` false.
    """

    name = "istructure"
    min_run = 8

    def __init__(self, sim):
        from ..common.batch import np

        self.sim = sim
        self._np = np

    def apply_run(self, bucket, start, end):
        from .presence import Presence
        from .store import _Cell

        width = end - start
        requests = [None] * width
        cells = [None] * width
        # Presence prefetch: 0 = absent/EMPTY/WAITING, 1 = PRESENT,
        # 2 = write.  One classification pass over the run before any
        # side effect lands.
        codes = [0] * width
        present = Presence.PRESENT
        for j in range(width):
            fn, (request,) = bucket[start + j]
            requests[j] = request
            if isinstance(request, ReadRequest):
                cell = fn.__self__.module._cells.get(request.key)
                cells[j] = cell
                if cell is not None and cell.state is present:
                    codes[j] = 1
            else:
                codes[j] = 2
        waiting = Presence.WAITING
        now = self.sim._now
        for j in range(width):
            controller = bucket[start + j][0].__self__
            request = requests[j]
            module = controller.module
            code = codes[j]
            extra = 0.0
            if code == 1:
                module.counters.add("reads_immediate")
                controller.counters.add("reads")
                controller.reply_cause = None
                controller.deliver(request.reply, cells[j].value)
            elif code == 0:
                cell = cells[j]
                if cell is None:
                    cell = module._cells[request.key] = _Cell()
                cell.deferred.append(request.reply)
                cell.state = waiting
                module.counters.add("reads_deferred")
                controller.counters.add("reads_deferred")
            else:
                drained = module.write(request.key, request.value)
                extra = controller.drain_cycles_per_deferred * len(drained)
                controller.counters.add("writes")
                if drained:
                    controller.counters.add("reads_drained", len(drained))
                for reply in drained:
                    controller.reply_cause = None
                    controller.deliver(reply, request.value)
            if extra > 0:
                controller.sim.post(extra, controller._finish_drain)
            else:
                controller.utilization.end(now)
                controller._busy = False
                controller._start_next()
