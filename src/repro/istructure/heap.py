"""Structure references and machine-wide allocation.

Tokens "carry only pointers to the structure" (§2.2.4); the pointer type is
:class:`StructureRef`.  Allocation hands out machine-unique structure ids;
placement of the elements onto I-structure modules is the machine's
business (see :func:`interleave_home`).
"""

import itertools
from dataclasses import dataclass

from ..common.errors import IStructureError

__all__ = ["StructureRef", "Allocator", "interleave_home"]


@dataclass(frozen=True)
class StructureRef:
    """A pointer to an allocated I-structure (carried on tokens)."""

    sid: int
    size: int

    def check_index(self, index):
        """Bounds-check ``index``; returns it for chaining."""
        if not isinstance(index, int) or isinstance(index, bool):
            raise IStructureError(
                f"I-structure index must be an integer, got {index!r}"
            )
        if not 0 <= index < self.size:
            raise IStructureError(
                f"index {index} out of bounds for structure {self.sid} "
                f"of size {self.size}"
            )
        return index

    def __repr__(self):
        return f"IS#{self.sid}[{self.size}]"


class Allocator:
    """Hands out machine-unique structure ids."""

    def __init__(self):
        self._ids = itertools.count(1)
        self.allocated = 0
        self.cells_allocated = 0

    def allocate(self, size):
        if not isinstance(size, int) or isinstance(size, bool) or size < 0:
            raise IStructureError(f"invalid I-structure size {size!r}")
        self.allocated += 1
        self.cells_allocated += size
        return StructureRef(next(self._ids), size)


def interleave_home(ref, index, n_modules):
    """Module number holding element ``index`` of ``ref``.

    Elements are interleaved across modules so that a producer writing
    sequentially and a consumer reading sequentially spread their traffic
    over the whole machine instead of hammering one controller.
    """
    return (ref.sid + index) % n_modules
