"""Presence bits — the per-cell state of I-structure storage (§2.1).

Each memory cell carries flags "which indicate the memory cell's status -
written or unwritten"; a cell that is unwritten but has outstanding read
requests is additionally marked so the controller knows to consult the
deferred read list on the eventual write.
"""

import enum

__all__ = ["Presence"]


class Presence(enum.Enum):
    """The three observable states of an I-structure cell."""

    #: Never written, no readers waiting.
    EMPTY = "empty"
    #: Never written, one or more read requests deferred (Fig 2-1).
    WAITING = "waiting"
    #: Written exactly once; reads are served immediately.
    PRESENT = "present"
