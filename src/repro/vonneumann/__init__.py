"""Von Neumann multiprocessor baselines (S8/S9 in DESIGN.md).

The machines the paper critiques, built to be measured: a RISC-like ISA
and assembler, in-order processors that stall on memory, private caches
with snoopy MSI coherence over an atomic bus, interleaved memory modules
behind a packet network, atomic TEST-AND-SET / FETCH-AND-ADD, HEP-style
full/empty bits with busy-wait retry, and a multithreaded (fixed-context)
processor for the low-level context-switching discussion of §1.1.
"""

from .assembler import assemble
from .cache import Cache, CacheConfig, CacheState
from .coherence import SnoopyBusSystem
from .idl_compiler import RESULT_ADDR, compile_to_assembly, run_sequential
from .isa import ALU_OPS, BRANCH_OPS, Instr, MEMORY_OPS, Op
from .machine import VNMachine, VNResult
from .memory import DancehallMemorySystem, MemRequest, MemoryModule, RETRY
from .multithreaded import HardwareContext, MultithreadedProcessor
from .processor import Processor
from . import programs, sync

__all__ = [
    "ALU_OPS",
    "BRANCH_OPS",
    "Cache",
    "CacheConfig",
    "CacheState",
    "DancehallMemorySystem",
    "HardwareContext",
    "Instr",
    "MEMORY_OPS",
    "MemRequest",
    "MemoryModule",
    "MultithreadedProcessor",
    "Op",
    "Processor",
    "RESULT_ADDR",
    "RETRY",
    "SnoopyBusSystem",
    "VNMachine",
    "VNResult",
    "assemble",
    "compile_to_assembly",
    "run_sequential",
    "programs",
    "sync",
]
