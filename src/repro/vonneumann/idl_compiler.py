"""A sequential (von Neumann) backend for the Id-like language.

The experiments compare architectures on "the same program"; this
compiler makes that literal: the *same source file* that the dataflow
front end turns into a token graph is compiled here into assembly for
the stalling in-order processor.  Loops become branches around a program
counter, variables become registers, arrays become plain memory through a
bump allocator — the von Neumann idiom the paper describes, with none of
the dataflow machinery (no presence bits: sequential execution orders
every read after its write by construction).

Supported: arithmetic/comparison/boolean expressions, ``let``,
``if/then/else``, ``for``/``while`` loops with ``new`` updates and
element stores, indexing, ``array(n)``, ``abs``/``min``/``max``/``floor``
builtins, and *non-recursive* procedure calls (inlined).  Unsupported —
by the nature of the target, not an accident: recursion (no stack on this
simple machine) and the floating-point transcendentals.  ``%``, ``/`` and
comparisons follow the integer semantics of the ISA.

Conventions: entry parameters arrive in registers r2, r3, ...; the result
is stored to memory address :data:`RESULT_ADDR`; the heap pointer lives
in a compiler-managed register.
"""

import itertools

from ..common.errors import CompileError
from ..lang.ast_nodes import (
    ArrayAlloc,
    BinOp,
    Call,
    If,
    Index,
    Let,
    Literal,
    Loop,
    UnOp,
    Var,
)
from ..lang.parser import parse

__all__ = ["compile_to_assembly", "RESULT_ADDR", "HEAP_BASE"]

#: The entry procedure's result is stored here before HALT.
RESULT_ADDR = 1
#: First address handed out by the bump allocator.
HEAP_BASE = 4096

_BINOP_OPS = {
    "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod",
    "<": "slt", "<=": "sle", ">": None, ">=": None, "==": "seq",
    "!=": "sne", "and": "and", "or": "or",
}

_UNSUPPORTED_BUILTINS = frozenset(
    {"sqrt", "exp", "log", "sin", "cos", "ceil"}
)


class _Emitter:
    def __init__(self):
        self.lines = []
        self._labels = itertools.count()

    def emit(self, text):
        self.lines.append(f"    {text}")

    def label(self, name):
        self.lines.append(f"{name}:")

    def fresh(self, stem):
        return f"{stem}_{next(self._labels)}"

    def text(self):
        return "\n".join(self.lines) + "\n"


class _Registers:
    """A bump allocator over the register file (no spilling)."""

    def __init__(self, first=2, limit=250):
        self.next = first
        self.limit = limit

    def take(self):
        if self.next >= self.limit:
            raise CompileError(
                "expression too deep for the sequential backend's "
                "register file"
            )
        reg = self.next
        self.next += 1
        return reg

    def mark(self):
        return self.next

    def release_to(self, mark):
        self.next = mark


class _SeqCompiler:
    def __init__(self, ast_program, entry):
        self.defs = {d.name: d for d in ast_program.defs}
        if entry not in self.defs:
            raise CompileError(f"no definition named {entry!r}")
        self.entry = entry
        self.out = _Emitter()
        self.regs = _Registers()
        self._call_stack = []
        self.heap_reg = None

    # ------------------------------------------------------------------
    def compile(self):
        definition = self.defs[self.entry]
        env = {}
        for param in definition.params:
            env[param] = self.regs.take()  # r2, r3, ... by convention
        self.heap_reg = self.regs.take()
        self.out.emit(f"movi r{self.heap_reg}, {HEAP_BASE}")
        result = self._expr(definition.body, env)
        address = self.regs.take()
        self.out.emit(f"movi r{address}, {RESULT_ADDR}")
        self.out.emit(f"store r{result}, r{address}, 0")
        self.out.emit("halt")
        return self.out.text()

    # ------------------------------------------------------------------
    def _expr(self, node, env):
        """Compile ``node``; returns the register holding its value."""
        if isinstance(node, Literal):
            reg = self.regs.take()
            value = node.value
            if isinstance(value, bool):
                value = int(value)
            if not isinstance(value, int):
                raise CompileError(
                    f"the sequential backend is integer-only, got {value!r}",
                    line=node.line,
                )
            self.out.emit(f"movi r{reg}, {value}")
            return reg
        if isinstance(node, Var):
            if node.name not in env:
                raise CompileError(f"undefined variable {node.name!r}",
                                   line=node.line)
            return env[node.name]
        if isinstance(node, BinOp):
            return self._binop(node, env)
        if isinstance(node, UnOp):
            return self._unop(node, env)
        if isinstance(node, If):
            return self._if(node, env)
        if isinstance(node, Let):
            inner = dict(env)
            for name, expr in node.bindings:
                inner[name] = self._expr(expr, inner)
            return self._expr(node.body, inner)
        if isinstance(node, Call):
            return self._call(node, env)
        if isinstance(node, ArrayAlloc):
            return self._alloc(node, env)
        if isinstance(node, Index):
            return self._index(node, env)
        if isinstance(node, Loop):
            return self._loop(node, env)
        raise CompileError(f"cannot compile {node!r}", line=node.line)

    def _binop(self, node, env):
        op = node.op
        left = self._expr(node.left, env)
        right = self._expr(node.right, env)
        reg = self.regs.take()
        if op == ">":
            self.out.emit(f"slt r{reg}, r{right}, r{left}")
        elif op == ">=":
            self.out.emit(f"sle r{reg}, r{right}, r{left}")
        elif op == "**":
            raise CompileError("'**' unsupported on the sequential backend",
                               line=node.line)
        else:
            mnemonic = _BINOP_OPS.get(op)
            if mnemonic is None:
                raise CompileError(f"unknown operator {op!r}", line=node.line)
            self.out.emit(f"{mnemonic} r{reg}, r{left}, r{right}")
        return reg

    def _unop(self, node, env):
        value = self._expr(node.operand, env)
        reg = self.regs.take()
        if node.op == "-":
            zero = self.regs.take()
            self.out.emit(f"movi r{zero}, 0")
            self.out.emit(f"sub r{reg}, r{zero}, r{value}")
        else:  # not: compare against a known zero
            zero = self.regs.take()
            self.out.emit(f"movi r{zero}, 0")
            self.out.emit(f"seq r{reg}, r{value}, r{zero}")
        return reg

    def _if(self, node, env):
        cond = self._expr(node.cond, env)
        reg = self.regs.take()
        else_label = self.out.fresh("else")
        end_label = self.out.fresh("endif")
        self.out.emit(f"beqz r{cond}, {else_label}")
        mark = self.regs.mark()
        then_value = self._expr(node.then, env)
        self.out.emit(f"mov r{reg}, r{then_value}")
        self.out.emit(f"jmp {end_label}")
        self.regs.release_to(mark)
        self.out.label(else_label)
        else_value = self._expr(node.orelse, env)
        self.out.emit(f"mov r{reg}, r{else_value}")
        self.regs.release_to(mark)
        self.out.label(end_label)
        return reg

    def _call(self, node, env):
        name = node.func
        if name in self.defs:
            if name in self._call_stack:
                raise CompileError(
                    f"recursive call to {name!r}: the sequential backend "
                    "has no call stack (use a loop)",
                    line=node.line,
                )
            definition = self.defs[name]
            if len(node.args) != len(definition.params):
                raise CompileError(
                    f"{name} takes {len(definition.params)} args",
                    line=node.line,
                )
            inner_env = {}
            for param, arg in zip(definition.params, node.args):
                value = self._expr(arg, env)
                # Copy into a fresh register so the callee body cannot
                # clobber a shared register through rebinding.
                reg = self.regs.take()
                self.out.emit(f"mov r{reg}, r{value}")
                inner_env[param] = reg
            self._call_stack.append(name)
            result = self._expr(definition.body, inner_env)
            self._call_stack.pop()
            return result
        if name in ("min", "max"):
            if len(node.args) != 2:
                raise CompileError(f"{name} takes 2 arguments",
                                   line=node.line)
            a = self._expr(node.args[0], env)
            b = self._expr(node.args[1], env)
            reg = self.regs.take()
            keep_a = self.out.fresh(f"{name}_a")
            done = self.out.fresh(f"{name}_done")
            branch = "blt" if name == "min" else "bge"
            self.out.emit(f"{branch} r{a}, r{b}, {keep_a}")
            self.out.emit(f"mov r{reg}, r{b}")
            self.out.emit(f"jmp {done}")
            self.out.label(keep_a)
            self.out.emit(f"mov r{reg}, r{a}")
            self.out.label(done)
            return reg
        if name == "abs":
            value = self._expr(node.args[0], env)
            reg = self.regs.take()
            positive = self.out.fresh("abs_pos")
            self.out.emit(f"mov r{reg}, r{value}")
            zero = self.regs.take()
            self.out.emit(f"movi r{zero}, 0")
            self.out.emit(f"bge r{reg}, r{zero}, {positive}")
            self.out.emit(f"sub r{reg}, r{zero}, r{value}")
            self.out.label(positive)
            return reg
        if name == "floor":
            return self._expr(node.args[0], env)  # integers already
        if name in _UNSUPPORTED_BUILTINS:
            raise CompileError(
                f"{name} unsupported on the integer sequential backend",
                line=node.line,
            )
        raise CompileError(f"unknown function {name!r}", line=node.line)

    def _alloc(self, node, env):
        size = self._expr(node.size, env)
        reg = self.regs.take()
        self.out.emit(f"mov r{reg}, r{self.heap_reg}")
        self.out.emit(f"add r{self.heap_reg}, r{self.heap_reg}, r{size}")
        return reg

    def _index(self, node, env):
        base = self._expr(node.array, env)
        index = self._expr(node.index, env)
        address = self.regs.take()
        self.out.emit(f"add r{address}, r{base}, r{index}")
        reg = self.regs.take()
        self.out.emit(f"load r{reg}, r{address}, 0")
        return reg

    def _loop(self, node, env):
        bindings = list(node.initial)
        updates = dict(node.updates)
        if node.index is not None:
            bindings.insert(0, (node.index, node.lo))
            hi_reg = self._expr(node.hi, env)
        # Circulating variables get stable registers.
        loop_env = dict(env)
        var_regs = {}
        for name, expr in bindings:
            value = self._expr(expr, env)
            reg = self.regs.take()
            self.out.emit(f"mov r{reg}, r{value}")
            var_regs[name] = reg
            loop_env[name] = reg

        top = self.out.fresh("loop")
        exit_label = self.out.fresh("exit")
        self.out.label(top)
        mark = self.regs.mark()
        if node.index is not None:
            index_reg = var_regs[node.index]
            # for-form: continue while index <= hi
            cond = self.regs.take()
            self.out.emit(f"sle r{cond}, r{index_reg}, r{hi_reg}")
        else:
            cond = self._expr(node.cond, loop_env)
        self.out.emit(f"beqz r{cond}, {exit_label}")

        # Element stores (use current values).
        for store in node.stores:
            base = self._expr(store.array, loop_env)
            index = self._expr(store.index, loop_env)
            value = self._expr(store.value, loop_env)
            address = self.regs.take()
            self.out.emit(f"add r{address}, r{base}, r{index}")
            self.out.emit(f"store r{value}, r{address}, 0")

        # Parallel 'new' semantics: compute all nexts into temporaries,
        # then commit — a bare variable reference must be *copied*, or an
        # earlier commit would clobber it (new a <- b; new b <- a).
        staged = []
        for name, expr in updates.items():
            value = self._expr(expr, loop_env)
            tmp = self.regs.take()
            self.out.emit(f"mov r{tmp}, r{value}")
            staged.append((name, tmp))
        if node.index is not None and node.index not in updates:
            one = self.regs.take()
            self.out.emit(f"movi r{one}, 1")
            nxt = self.regs.take()
            self.out.emit(f"add r{nxt}, r{var_regs[node.index]}, r{one}")
            staged.append((node.index, nxt))
        for name, reg in staged:
            self.out.emit(f"mov r{var_regs[name]}, r{reg}")
        self.regs.release_to(mark)
        self.out.emit(f"jmp {top}")
        self.out.label(exit_label)
        result = self._expr(node.result, loop_env)
        return result


def run_sequential(source, args, entry=None, latency=1.0, memory_time=1.0,
                   cpu_time=1.0, trace_bus=None, return_machine=False,
                   exec_mode=None):
    """Compile and execute on a single stalling processor.

    Returns ``(value, VNResult)`` — the fair von Neumann comparator for a
    dataflow run of the same source.  ``trace_bus`` forwards to
    :class:`VNMachine` for structured observability.  With
    ``return_machine`` the tuple gains the :class:`VNMachine` itself, so
    profilers can read per-processor cycle accounting after the run.
    """
    from .machine import VNMachine

    text, param_regs = compile_to_assembly(source, entry=entry)
    if len(args) != len(param_regs):
        raise CompileError(
            f"entry takes {len(param_regs)} arguments, got {len(args)}"
        )
    machine = VNMachine(1, memory="dancehall", latency=latency,
                        memory_time=memory_time, cpu_time=cpu_time,
                        trace_bus=trace_bus, exec_mode=exec_mode)
    processor = machine.add_processor(text, regs=dict(zip(param_regs, args)))
    # Expression-deep programs need a wider register file than the
    # architectural 32; the simulator indulges us.
    processor.regs = processor.regs + [0] * (256 - len(processor.regs))
    processor.set_regs(dict(zip(param_regs, args)))
    result = machine.run()
    if return_machine:
        return machine.peek(RESULT_ADDR), result, machine
    return machine.peek(RESULT_ADDR), result


def compile_to_assembly(source, entry=None):
    """Compile Id-like ``source`` to assembly for the stalling processor.

    Returns ``(assembly_text, param_registers)`` — the runner must place
    the entry arguments in ``param_registers`` (r2, r3, ... by
    convention) and will find the result at memory ``RESULT_ADDR``.
    """
    ast_program = parse(source)
    entry_name = entry if entry is not None else ast_program.defs[0].name
    compiler = _SeqCompiler(ast_program, entry_name)
    text = compiler.compile()
    n_params = len(compiler.defs[entry_name].params)
    return text, list(range(2, 2 + n_params))
