"""A two-pass assembler for the von Neumann baseline processors.

Syntax, one instruction per line::

    ; comments run to end of line
    start:  movi r1, 0          ; labels end with ':'
    loop:   addi r1, r1, 1
            load r2, r3, 8      ; r2 <- mem[r3 + 8]
            store r2, r3, 0     ; mem[r3 + 0] <- r2
            faa  r2, r4, r5     ; r2 <- mem[r4]; mem[r4] += r5   (atomic)
            blt  r1, r6, loop
            halt

Register operands are ``rN``; immediates are decimal integers; branch
targets are labels.
"""

import re

from ..common.errors import CompileError
from .isa import Instr, Op

__all__ = ["assemble"]

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)\s*:\s*(.*)$")
_REG_RE = re.compile(r"^r(\d+)$")

# operand signatures per op: r = register, i = immediate, l = label
_SIGNATURES = {
    Op.MOVI: "ri",
    Op.MOV: "rr",
    Op.ADD: "rrr", Op.SUB: "rrr", Op.MUL: "rrr", Op.DIV: "rrr",
    Op.MOD: "rrr", Op.AND: "rrr", Op.OR: "rrr", Op.XOR: "rrr",
    Op.SLT: "rrr", Op.SLE: "rrr", Op.SEQ: "rrr", Op.SNE: "rrr",
    Op.ADDI: "rri", Op.SUBI: "rri", Op.MULI: "rri",
    Op.LOAD: "rri", Op.STORE: "rri",
    Op.TESTSET: "rri", Op.FAA: "rrr",
    Op.READF: "rri", Op.WRITEF: "rri",
    Op.BEQZ: "rl", Op.BNEZ: "rl",
    Op.BLT: "rrl", Op.BGE: "rrl", Op.BEQ: "rrl", Op.BNE: "rrl",
    Op.JMP: "l",
    Op.NOP: "", Op.HALT: "",
}


def assemble(source):
    """Assemble ``source`` text into a list of :class:`Instr`."""
    lines = source.splitlines()
    statements = []  # (line_no, op, operand_strings)
    labels = {}
    for line_no, raw in enumerate(lines, start=1):
        text = raw.split(";", 1)[0].strip()
        while text:
            match = _LABEL_RE.match(text)
            if match:
                label, text = match.group(1), match.group(2).strip()
                if label in labels:
                    raise CompileError(f"duplicate label {label!r}", line=line_no)
                labels[label] = len(statements)
                continue
            break
        if not text:
            continue
        parts = text.split(None, 1)
        mnemonic = parts[0].lower()
        try:
            op = Op(mnemonic)
        except ValueError:
            raise CompileError(f"unknown mnemonic {mnemonic!r}", line=line_no)
        operands = []
        if len(parts) > 1:
            operands = [token.strip() for token in parts[1].split(",")]
        statements.append((line_no, op, operands))

    program = []
    for index, (line_no, op, operands) in enumerate(statements):
        signature = _SIGNATURES[op]
        if len(operands) != len(signature):
            raise CompileError(
                f"{op.value} expects {len(signature)} operands, "
                f"got {len(operands)}",
                line=line_no,
            )
        regs = []
        imm = None
        label = None
        for kind, text in zip(signature, operands):
            if kind == "r":
                match = _REG_RE.match(text)
                if not match:
                    raise CompileError(
                        f"expected register, got {text!r}", line=line_no
                    )
                regs.append(int(match.group(1)))
            elif kind == "i":
                try:
                    imm = int(text, 0)
                except ValueError:
                    raise CompileError(
                        f"expected immediate, got {text!r}", line=line_no
                    ) from None
            else:  # label
                label = text
        target = None
        if label is not None:
            if label not in labels:
                raise CompileError(f"undefined label {label!r}", line=line_no)
            target = labels[label]
        instr = _build(op, regs, imm, target, label)
        program.append(instr)
    return program


def _build(op, regs, imm, target, label):
    rd = ra = rb = None
    if op in (Op.BEQZ, Op.BNEZ):
        ra = regs[0]
    elif op in (Op.BLT, Op.BGE, Op.BEQ, Op.BNE):
        ra, rb = regs
    elif op is Op.STORE or op is Op.WRITEF:
        # store rS, rA, off : value register first, then address base
        rd, ra = regs
    elif op is Op.FAA:
        rd, ra, rb = regs
    elif len(regs) == 3:
        rd, ra, rb = regs
    elif len(regs) == 2:
        rd, ra = regs
    elif len(regs) == 1:
        rd = regs[0]
    return Instr(op=op, rd=rd, ra=ra, rb=rb, imm=imm, target=target, label=label)
