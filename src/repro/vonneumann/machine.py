"""Assembly of complete von Neumann multiprocessor systems.

``VNMachine`` wires processors (single-context or multithreaded) to a
memory system (snoopy bus or dancehall network) and runs the simulation to
completion, reporting the measurements the experiments need: makespan,
per-processor utilization, bus/network statistics, retry traffic.
"""

from dataclasses import dataclass, field

from ..common.batch import BatchPlane, FusedKind, resolve_exec_mode
from ..common.batch import np as batch_np
from ..common.errors import MachineError
from ..common.simulator import CalendarSimulator, Simulator
from ..faults import coerce_plan
from .assembler import assemble
from .coherence import SnoopyBusSystem
from .memory import DancehallMemorySystem
from .multithreaded import MultithreadedProcessor
from .processor import Processor

__all__ = ["VNMachine", "VNResult"]


@dataclass
class VNResult:
    """Outcome of one run."""

    time: float
    utilizations: list
    instructions: int
    counters: dict = field(default_factory=dict)

    @property
    def mean_utilization(self):
        if not self.utilizations:
            return 0.0
        return sum(self.utilizations) / len(self.utilizations)


class VNMachine:
    """A shared-memory multiprocessor built to order.

    ``memory`` selects the organization:

    * ``"bus"`` — private (optional) caches and a snoopy bus
      (:class:`SnoopyBusSystem`); pass ``cache_config=None`` for the
      uncached C.mmp configuration.
    * ``"dancehall"`` — processors and interleaved memory modules on
      opposite sides of a packet network
      (:class:`DancehallMemorySystem`); ``latency`` sets the one-way
      network latency, the Issue 1 knob.
    """

    def __init__(self, n_procs, memory="bus", cache_config=None,
                 memory_time=10.0, bus_time=2.0, latency=4.0, n_modules=None,
                 network_factory=None, cpu_time=1.0, retry_backoff=0.0,
                 contexts=None, switch_time=0.0, placement="interleaved",
                 block_size=1024, write_policy="write_back", trace_bus=None,
                 faults=None, sim_kernel=None, sim_shards=None,
                 exec_mode=None):
        self.sim = Simulator(kernel=sim_kernel, shards=sim_shards)
        self.bus = trace_bus
        if trace_bus is not None:
            self.sim.attach_bus(trace_bus)
        self.n_procs = n_procs
        self.cpu_time = cpu_time
        self.retry_backoff = retry_backoff
        self.contexts_per_proc = contexts
        self.switch_time = switch_time
        if memory == "bus":
            self.memory = SnoopyBusSystem(
                self.sim, n_procs, cache_config=cache_config,
                memory_time=memory_time, bus_time=bus_time,
                write_policy=write_policy,
            )
        elif memory == "dancehall":
            self.memory = DancehallMemorySystem(
                self.sim, n_procs, n_modules=n_modules,
                memory_time=memory_time, network_factory=network_factory,
                latency=latency, placement=placement, block_size=block_size,
            )
        else:
            raise MachineError(f"unknown memory organization {memory!r}")
        if trace_bus is not None:
            network = getattr(self.memory, "network", None)
            attach = getattr(network, "attach_bus", None)
            if attach is not None:
                attach(trace_bus, source="net")
        # Fault injection: one shared injector threaded into the memory
        # modules (slow banks / transient failures — the processors' RETRY
        # path recovers) and the interconnect (latency spikes).
        plan = coerce_plan(faults)
        self.faults = (
            plan.injector(bus=trace_bus)
            if plan is not None and plan.enabled else None
        )
        if self.faults is not None:
            network = getattr(self.memory, "network", None)
            if network is not None and hasattr(network, "faults"):
                network.faults = self.faults
            for module in getattr(self.memory, "modules", ()):
                module.faults = self.faults
        # Batch execution mode: attach the plane whenever batch was
        # requested on the calendar kernel (so kernel_stats reports the
        # mode honestly), but register kinds only when no fault injector
        # or trace bus needs per-event interposition.  The bus memory
        # system does its own timing inside bus transactions, so only the
        # dancehall banks have a batchable completion.
        self.exec_mode = resolve_exec_mode(exec_mode)
        self._plane = None
        self._step_kind = None
        if (self.exec_mode == "batch" and batch_np is not None
                and isinstance(self.sim, CalendarSimulator)):
            self._plane = self.sim.attach_batch_plane(BatchPlane())
            if trace_bus is None and self.faults is None:
                self._step_kind = FusedKind()
                if isinstance(self.memory, DancehallMemorySystem):
                    for fn, kind in self.memory.batch_kinds().items():
                        self._plane.register(fn, kind)
                    # Request/response waves crossing the dancehall
                    # network at one instant fuse into dispatch runs.
                    self._plane.register(
                        self.memory.network._deliver, self._step_kind)
        self.processors = []
        self._halted = 0

    # ------------------------------------------------------------------
    def add_processor(self, source, regs=None):
        """Add a single-context processor running ``source`` (assembly
        text or a pre-assembled instruction list)."""
        program = assemble(source) if isinstance(source, str) else source
        proc = Processor(
            self.sim, len(self.processors), program, self.memory,
            cpu_time=self.cpu_time, retry_backoff=self.retry_backoff,
            on_halt=self._on_halt,
        )
        if regs:
            proc.set_regs(regs)
        proc.bus = self.bus
        if self._step_kind is not None:
            # Instruction steps batch as fused runs: same bodies, one
            # tight loop per instant instead of one dispatch per step.
            for fn in proc.batch_fns():
                self._plane.register(fn, self._step_kind)
        self.memory.attach_processor(proc.proc_id)
        self.processors.append(proc)
        return proc

    def add_multithreaded_processor(self, sources_and_regs):
        """Add a multithreaded processor; ``sources_and_regs`` is a list of
        (source, regs) pairs, one per hardware context."""
        proc = MultithreadedProcessor(
            self.sim, len(self.processors), self.memory,
            cpu_time=self.cpu_time, switch_time=self.switch_time,
            retry_backoff=self.retry_backoff, on_halt=self._on_halt,
        )
        for source, regs in sources_and_regs:
            program = assemble(source) if isinstance(source, str) else source
            proc.add_context(program, regs=regs)
        proc.bus = self.bus
        if self._step_kind is not None:
            for fn in proc.batch_fns():
                self._plane.register(fn, self._step_kind)
        self.memory.attach_processor(proc.proc_id)
        self.processors.append(proc)
        return proc

    def load_spmd(self, source, regs_of=None):
        """One copy of ``source`` per processor.  ``regs_of(pid)`` supplies
        initial registers (default: r1 = processor id)."""
        program = assemble(source) if isinstance(source, str) else source
        for pid in range(self.n_procs):
            regs = regs_of(pid) if regs_of is not None else {1: pid}
            self.add_processor(list(program), regs=regs)
        return self

    def _on_halt(self, proc):
        self._halted += 1

    # ------------------------------------------------------------------
    def run(self, max_events=None):
        if not self.processors:
            raise MachineError("no processors loaded")
        for proc in self.processors:
            proc.start()
        self.sim.run(max_events=max_events)
        if self._halted < len(self.processors):
            stuck = [p.proc_id for p in self.processors
                     if getattr(p, "halted", False) is False
                     and getattr(p, "finish_time", None) is None]
            raise MachineError(
                f"machine quiesced with processors still running: {stuck} "
                "(lost memory response or livelocked spin loop?)"
            )
        end = max(p.finish_time for p in self.processors)
        return VNResult(
            time=end,
            utilizations=[p.utilization(now=end) for p in self.processors],
            instructions=sum(
                p.counters["instructions"] for p in self.processors
            ),
            counters=self._merged_counters(),
        )

    def metrics_registry(self):
        """Every instrument of this multiprocessor under hierarchical
        names (``proc0.instructions``, ``memory.*``, ``net.latency``)."""
        from ..obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.register("sim.events_fired", lambda: self.sim.events_fired)
        registry.register("sim.time", lambda: self.sim.now)
        for proc in self.processors:
            prefix = f"proc{proc.proc_id}"
            registry.register(prefix, proc.counters)
            registry.register(f"{prefix}.busy_cycles",
                              lambda p=proc: p.busy_cycles)
            registry.register(f"{prefix}.utilization",
                              lambda p=proc: p.utilization())
        memory_counters = getattr(self.memory, "counters", None)
        if memory_counters is not None:
            registry.register("memory", memory_counters)
        network = getattr(self.memory, "network", None)
        register_net = getattr(network, "register_metrics", None)
        if register_net is not None:
            register_net(registry, prefix="net")
        return registry

    def metrics_snapshot(self):
        """One flat dict of every metric at the current simulated time."""
        return self.metrics_registry().snapshot(now=self.sim.now)

    def _merged_counters(self):
        merged = {}
        for proc in self.processors:
            for key, value in proc.counters.as_dict().items():
                merged[key] = merged.get(key, 0) + value
        memory_counters = getattr(self.memory, "counters", None)
        if memory_counters is not None:
            for key, value in memory_counters.as_dict().items():
                merged[f"memory_{key}"] = value
        if self.faults is not None:
            for key, value in self.faults.counters.as_dict().items():
                merged[key] = merged.get(key, 0) + value
            merged["fault_retries"] = sum(
                m.counters["fault_retries"]
                for m in getattr(self.memory, "modules", ())
            )
        return merged

    # ------------------------------------------------------------------
    def peek(self, address):
        return self.memory.peek(address)

    def poke(self, address, value, full=False):
        self.memory.poke(address, value, full=full)
