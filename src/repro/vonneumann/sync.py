"""Synchronization idioms as assembly fragments.

These are the software conventions the surveyed machines used: Hydra-style
spinlock semaphores over TEST-AND-SET (C.mmp), FETCH-AND-ADD coordination
(NYU Ultracomputer), and sense-reversing barriers.  Each helper returns a
string of assembly; register usage is documented per helper so kernels can
compose them.
"""

__all__ = [
    "spinlock_acquire",
    "spinlock_release",
    "faa_ticket_lock",
    "counter_barrier",
    "LOCK_COST_NOTE",
]

#: Why locks matter for the paper's argument (§1.2.1): "It is clear that
#: the performance cost of this relative to, say, an ALU operation is
#: rather high unless some potential parallelism is traded away."
LOCK_COST_NOTE = "each acquire is >= 1 bus/network round trip; contended acquires spin"


def spinlock_acquire(lock_reg, scratch_reg, label_prefix="acq"):
    """Spin on TEST-AND-SET until the lock at address ``r<lock_reg>`` is 0.

    Clobbers ``r<scratch_reg>``.
    """
    return f"""
{label_prefix}_spin:
    testset r{scratch_reg}, r{lock_reg}, 0
    bnez    r{scratch_reg}, {label_prefix}_spin
"""


def spinlock_release(lock_reg, zero_reg):
    """Release: store 0 (from ``r<zero_reg>``, which must hold 0)."""
    return f"""
    store   r{zero_reg}, r{lock_reg}, 0
"""


def faa_ticket_lock(counter_reg, my_reg, one_reg, turn_reg, label_prefix="tkt"):
    """FETCH-AND-ADD ticket lock: take a ticket, spin until it is served.

    ``r<counter_reg>`` holds the ticket-counter address; the now-serving
    word lives at counter+1.  ``r<one_reg>`` must hold 1.  Clobbers
    ``r<my_reg>`` (my ticket) and ``r<turn_reg>``.
    """
    return f"""
    faa     r{my_reg}, r{counter_reg}, r{one_reg}
{label_prefix}_wait:
    load    r{turn_reg}, r{counter_reg}, 1
    bne     r{turn_reg}, r{my_reg}, {label_prefix}_wait
"""


def counter_barrier(barrier_reg, n_reg, one_reg, scratch_reg, label_prefix="bar"):
    """All-arrive barrier: FETCH-AND-ADD a counter, spin until it reaches n.

    ``r<barrier_reg>`` holds the barrier counter's address; ``r<n_reg>``
    the participant count; ``r<one_reg>`` must hold 1.  Clobbers
    ``r<scratch_reg>``.  (Single-use barrier; reuse needs a second phase.)
    """
    return f"""
    faa     r{scratch_reg}, r{barrier_reg}, r{one_reg}
{label_prefix}_wait:
    load    r{scratch_reg}, r{barrier_reg}, 0
    blt     r{scratch_reg}, r{n_reg}, {label_prefix}_wait
"""
