"""A small RISC-like instruction set for the von Neumann baselines.

The survey machines of §1.2 are built from "von Neumann style
uniprocessors"; this ISA is the least machinery needed to express their
behaviour faithfully for the paper's two issues:

* ordinary loads/stores that the processor must *wait* for (Issue 1);
* the synchronization primitives the surveyed machines rely on —
  TEST-AND-SET spinlocks (C.mmp/Hydra semaphores), the Ultracomputer's
  FETCH-AND-ADD, and the HEP's full/empty-bit memory operations with
  busy-waiting retry (footnote 2).

Programs are written in a tiny assembly dialect (see
:mod:`repro.vonneumann.assembler`).
"""

import enum
from dataclasses import dataclass
from typing import Optional

__all__ = ["Op", "Instr", "MEMORY_OPS", "ALU_OPS", "BRANCH_OPS"]


class Op(enum.Enum):
    """Every operation the processors execute."""

    # register / ALU
    MOVI = "movi"  # rd <- imm
    MOV = "mov"  # rd <- ra
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLT = "slt"  # rd <- (ra < rb)
    SLE = "sle"
    SEQ = "seq"
    SNE = "sne"
    ADDI = "addi"  # rd <- ra + imm
    SUBI = "subi"
    MULI = "muli"
    # memory (address = ra + imm)
    LOAD = "load"
    STORE = "store"
    # atomic read-modify-write (address = ra + imm)
    TESTSET = "testset"  # rd <- mem; mem <- 1
    FAA = "faa"  # rd <- mem; mem <- mem + rb
    # full/empty-bit operations (HEP style; unsatisfied => busy-wait retry)
    READF = "readf"  # wait until full, rd <- mem
    WRITEF = "writef"  # mem <- rd, set full
    # control
    BEQZ = "beqz"
    BNEZ = "bnez"
    BLT = "blt"  # branch if ra < rb
    BGE = "bge"
    BEQ = "beq"
    BNE = "bne"
    JMP = "jmp"
    NOP = "nop"
    HALT = "halt"


#: Operations that issue a request to the memory system.
MEMORY_OPS = frozenset(
    {Op.LOAD, Op.STORE, Op.TESTSET, Op.FAA, Op.READF, Op.WRITEF}
)

#: Pure register-to-register work (one cpu cycle each).
ALU_OPS = frozenset(
    {
        Op.MOVI, Op.MOV, Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.AND,
        Op.OR, Op.XOR, Op.SLT, Op.SLE, Op.SEQ, Op.SNE, Op.ADDI, Op.SUBI,
        Op.MULI, Op.NOP,
    }
)

BRANCH_OPS = frozenset({Op.BEQZ, Op.BNEZ, Op.BLT, Op.BGE, Op.BEQ, Op.BNE, Op.JMP})


@dataclass(frozen=True)
class Instr:
    """One decoded instruction."""

    op: Op
    rd: Optional[int] = None
    ra: Optional[int] = None
    rb: Optional[int] = None
    imm: Optional[int] = None
    target: Optional[int] = None  # branch target (resolved statement index)
    label: Optional[str] = None  # original label text, for error messages

    def __repr__(self):
        parts = [self.op.value]
        for name in ("rd", "ra", "rb"):
            value = getattr(self, name)
            if value is not None:
                parts.append(f"r{value}")
        if self.imm is not None:
            parts.append(str(self.imm))
        if self.target is not None:
            parts.append(f"@{self.target}")
        return " ".join(parts)
