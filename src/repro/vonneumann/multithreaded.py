"""A multithreaded (HEP-style) von Neumann processor.

Section 1.1 discusses "performing context switching at a very low level"
to tolerate memory latency: "while one computation waits for the memory to
respond, the processor resumes another, parallel computation ... This is
done by duplicating programmer-visible registers."  The paper's objection
is that the number of contexts is *fixed* by the hardware, while a scaled
machine needs ever more: "As memory elements are added, the depth of the
communication network will grow.  Hence, the number of low-level contexts
to be maintained will also have to increase to match the increase in
memory latency time."

This class makes the trade-off measurable (experiment E9): K hardware
contexts, barrel-style round-robin issue, a context parking on every
memory reference and resuming on the response.  When every context is
parked, the processor idles — exactly the regime where K is too small for
the latency.
"""

from ..common.errors import MachineError
from ..common.stats import Counter
from .isa import ALU_OPS, BRANCH_OPS, MEMORY_OPS, Op
from .memory import RETRY
from .processor import Processor

__all__ = ["MultithreadedProcessor", "HardwareContext"]


class HardwareContext:
    """One replicated register set + program counter."""

    READY = "ready"
    STALLED = "stalled"
    HALTED = "halted"

    def __init__(self, index, program, n_regs=32):
        self.index = index
        self.program = program
        self.regs = [0] * n_regs
        self.pc = 0
        self.state = self.READY
        self.instructions = 0
        self.last_eid = None  # provenance: previous event of this context

    def set_regs(self, values):
        for reg, value in values.items():
            self.regs[reg] = value


class _ContextView(Processor):
    """Adapter: reuse Processor's ALU/branch/request semantics on a
    context's register file without its event-loop machinery."""

    def __init__(self, owner, context):
        # Deliberately not calling super().__init__: this is a stateless
        # view that borrows Processor._alu/_branch_taken/_memory_request.
        self.sim = owner.sim
        self.proc_id = owner.proc_id
        self.memory = owner.memory
        self.regs = context.regs
        self.counters = owner.counters


class MultithreadedProcessor:
    """K contexts multiplexed over one issue pipeline."""

    def __init__(self, sim, proc_id, memory, cpu_time=1.0, switch_time=0.0,
                 retry_backoff=0.0, on_halt=None):
        self.sim = sim
        self.proc_id = proc_id
        self.memory = memory
        self.cpu_time = cpu_time
        self.switch_time = switch_time
        self.retry_backoff = retry_backoff
        self.on_halt = on_halt
        self.contexts = []
        self._rr = 0
        self._running = False
        self._idle = False
        self.busy_cycles = 0.0
        self.switch_cycles = 0.0
        # Cycle accounting: whole-pipeline idle windows (every context
        # parked), classified by whether a full/empty RETRY arrived while
        # idle (Issue 2) or all contexts sat on plain references — the
        # too-few-contexts-for-the-latency regime of §1.1 (Issue 1).
        self.stall_idle_cycles = 0.0
        self.sync_idle_cycles = 0.0
        self.halt_overcount = 0.0
        self._idle_since = None
        self._retry_during_idle = False
        self.start_time = None
        self.finish_time = None
        self.counters = Counter()
        self._last_context = None
        self.bus = None  # optional repro.obs.TraceBus (set by VNMachine)
        self._src = f"proc{proc_id}"  # trace track name

    # ------------------------------------------------------------------
    def add_context(self, program, regs=None, n_regs=32):
        context = HardwareContext(len(self.contexts), program, n_regs=n_regs)
        if regs:
            context.set_regs(regs)
        self.contexts.append(context)
        return context

    @property
    def n_contexts(self):
        return len(self.contexts)

    def start(self, delay=0.0):
        if not self.contexts:
            raise MachineError(f"proc {self.proc_id}: no contexts loaded")
        self.start_time = self.sim.now + delay
        self._running = True
        self.sim.post(delay, self._dispatch)

    # ------------------------------------------------------------------
    def _pick_ready(self):
        n = len(self.contexts)
        for offset in range(n):
            candidate = self.contexts[(self._rr + offset) % n]
            if candidate.state == HardwareContext.READY:
                self._rr = (candidate.index + 1) % n
                return candidate
        return None

    def batch_fns(self):
        """Posted callbacks eligible for fused batching under
        ``exec_mode="batch"``: the barrel's context pick and the issue
        slot.  Both are self-contained per processor, so a fused run
        replays them bit-for-bit."""
        return (self._dispatch, self._execute)

    def _dispatch(self):
        if not self._running:
            return
        context = self._pick_ready()
        if context is None:
            if all(c.state == HardwareContext.HALTED for c in self.contexts):
                self._halt()
            else:
                self._idle = True  # resumed by a memory completion
                self._idle_since = self.sim.now
                self._retry_during_idle = False
            return
        overhead = 0.0
        if self._last_context is not context and self._last_context is not None:
            overhead = self.switch_time
            self.switch_cycles += overhead
            self.counters.add("context_switches")
            bus = self.bus
            if bus is not None and bus.enabled:
                eid = bus.emit_id(self.sim.now, self._src, "vn_switch",
                                  f"ctx{context.index}", ctx=context.index,
                                  parent=context.last_eid)
                if eid is not None:
                    context.last_eid = eid
        self._last_context = context
        self.sim.post(overhead, self._execute, context)

    def _execute(self, context):
        if not 0 <= context.pc < len(context.program):
            context.state = HardwareContext.HALTED
            self._dispatch()
            return
        sim = self.sim
        instr = context.program[context.pc]
        op = instr.op
        self.counters.add("instructions")
        context.instructions += 1
        cpu_time = self.cpu_time
        self.busy_cycles += cpu_time
        bus = self.bus
        if bus is not None and bus.enabled:
            eid = bus.emit_id(sim._now, self._src, "vn_exec", op.name,
                              op=op.name, ctx=context.index, pc=context.pc,
                              parent=context.last_eid)
            if eid is not None:
                context.last_eid = eid
        view = _ContextView(self, context)

        if op in ALU_OPS:
            value = view._alu(instr)
            if instr.rd is not None:  # NOP has no destination
                context.regs[instr.rd] = value
            context.pc += 1
            sim.post(cpu_time, self._dispatch)
        elif op in BRANCH_OPS:
            context.pc = (
                instr.target if view._branch_taken(instr) else context.pc + 1
            )
            sim.post(cpu_time, self._dispatch)
        elif op in MEMORY_OPS:
            self.counters.add("memory_ops")
            context.state = HardwareContext.STALLED
            request = view._memory_request(instr)
            sim.post(cpu_time, self._issue, context, instr, request)
            sim.post(cpu_time, self._dispatch)
        elif op is Op.HALT:
            # HALT charged cpu_time to busy above but consumes no
            # simulated time; remember the overcount for exact accounting.
            self.halt_overcount += self.cpu_time
            context.state = HardwareContext.HALTED
            self._dispatch()
        else:
            raise MachineError(f"proc {self.proc_id}: cannot execute {instr!r}")

    def _issue(self, context, instr, request):
        self.memory.access(
            self.proc_id,
            request,
            lambda response: self._memory_done(context, instr, request, response),
        )

    def _memory_done(self, context, instr, request, response):
        bus = self.bus
        if response is RETRY:
            self.counters.add("retries")
            if self._idle:
                self._retry_during_idle = True
            if bus is not None and bus.enabled:
                eid = bus.emit_id(self.sim.now, self._src, "vn_retry",
                                  instr.op.name, ctx=context.index,
                                  address=request.address,
                                  parent=context.last_eid)
                if eid is not None:
                    context.last_eid = eid
            self.sim.post(self.retry_backoff, self._issue, context, instr, request)
            return
        if instr.op in (Op.LOAD, Op.TESTSET, Op.FAA, Op.READF):
            context.regs[instr.rd] = response
        context.pc += 1
        context.state = HardwareContext.READY
        if self._idle:
            # The whole pipeline waited from _idle_since until now.
            window = self.sim.now - self._idle_since
            if self._retry_during_idle:
                self.sync_idle_cycles += window
            else:
                self.stall_idle_cycles += window
            self._idle = False
            self._idle_since = None
            self.sim.post(0, self._dispatch)

    def _halt(self):
        self._running = False
        self.finish_time = self.sim.now
        bus = self.bus
        if bus is not None and bus.enabled:
            bus.emit(self.sim.now, self._src, "vn_halt", "",
                     instructions=self.counters["instructions"])
        if self.on_halt is not None:
            self.on_halt(self)

    # ------------------------------------------------------------------
    def utilization(self, now=None):
        """Fraction of elapsed time the issue pipeline executed
        instructions (context-switch overhead does not count as useful)."""
        if self.start_time is None:
            return 0.0
        end = self.finish_time if self.finish_time is not None else (
            now if now is not None else self.sim.now
        )
        window = end - self.start_time
        if window <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / window)

    def __repr__(self):
        states = "".join(c.state[0] for c in self.contexts)
        return f"<MultithreadedProcessor {self.proc_id} contexts={states}>"
