"""A set-associative cache model (state and replacement only).

The cache holds *coherence state*, not data — data values live in the
memory image and the protocol merely times and counts transactions.  This
is the standard trace-simulator simplification; every quantity the paper
argues about (hit rates, invalidation traffic, bus occupancy) is
preserved.

States follow the MSI write-invalidate protocol, the "mechanism which,
upon the occurrence of a write to location x, invalidates all other cached
copies of location x wherever they may occur" that §1.1 says is logically
required — and whose cost E3 measures.
"""

import enum

from ..common.stats import Counter

__all__ = ["CacheState", "CacheConfig", "Cache"]


class CacheState(enum.Enum):
    INVALID = "I"
    SHARED = "S"
    MODIFIED = "M"


class CacheConfig:
    """Geometry of one private cache."""

    def __init__(self, n_sets=64, assoc=2, line_words=4, hit_time=1.0):
        self.n_sets = n_sets
        self.assoc = assoc
        self.line_words = line_words
        self.hit_time = hit_time

    @property
    def capacity_words(self):
        return self.n_sets * self.assoc * self.line_words

    def __repr__(self):
        return (
            f"CacheConfig(sets={self.n_sets}, assoc={self.assoc}, "
            f"line={self.line_words}w)"
        )


class _Line:
    __slots__ = ("tag", "state", "stamp")

    def __init__(self, tag, state, stamp):
        self.tag = tag
        self.state = state
        self.stamp = stamp


class Cache:
    """One processor's private cache: lookup, fill, invalidate, LRU."""

    def __init__(self, config, name="cache"):
        self.config = config
        self.name = name
        self._sets = [[] for _ in range(config.n_sets)]
        self._clock = 0
        self.counters = Counter()

    # ------------------------------------------------------------------
    def line_address(self, address):
        return address // self.config.line_words

    def _place(self, address):
        line = self.line_address(address)
        return self._sets[line % self.config.n_sets], line

    def _tick(self):
        self._clock += 1
        return self._clock

    # ------------------------------------------------------------------
    def lookup(self, address):
        """Current state of the line holding ``address`` (INVALID if absent),
        touching LRU on a hit."""
        bucket, tag = self._place(address)
        for line in bucket:
            if line.tag == tag:
                line.stamp = self._tick()
                return line.state
        return CacheState.INVALID

    def peek_state(self, address):
        """State without touching LRU (snooping path)."""
        bucket, tag = self._place(address)
        for line in bucket:
            if line.tag == tag:
                return line.state
        return CacheState.INVALID

    def fill(self, address, state):
        """Install ``address``'s line in ``state``.

        Returns the state of the victim line when a dirty line had to be
        evicted (so the caller can charge a write-back), else None.
        """
        bucket, tag = self._place(address)
        for line in bucket:
            if line.tag == tag:
                line.state = state
                line.stamp = self._tick()
                return None
        victim_state = None
        if len(bucket) >= self.config.assoc:
            victim = min(bucket, key=lambda entry: entry.stamp)
            bucket.remove(victim)
            self.counters.add("evictions")
            if victim.state is CacheState.MODIFIED:
                victim_state = victim.state
                self.counters.add("writebacks")
        bucket.append(_Line(tag, state, self._tick()))
        return victim_state

    def set_state(self, address, state):
        bucket, tag = self._place(address)
        for line in bucket:
            if line.tag == tag:
                if state is CacheState.INVALID:
                    bucket.remove(line)
                else:
                    line.state = state
                return True
        return False

    def invalidate(self, address):
        """Drop the line (snooped BusRdX); True if it was present."""
        present = self.set_state(address, CacheState.INVALID)
        if present:
            self.counters.add("invalidations_received")
        return present

    # ------------------------------------------------------------------
    @property
    def lines_valid(self):
        return sum(len(bucket) for bucket in self._sets)

    def __repr__(self):
        return f"<Cache {self.name!r} valid_lines={self.lines_valid}>"
