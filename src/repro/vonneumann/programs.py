"""Assembly kernels for the von Neumann side of the experiments.

Each function returns assembly text (see :mod:`repro.vonneumann.assembler`)
plus documents its register conventions.  These kernels are the baselines
the paper's machines would run; the dataflow counterparts live in
:mod:`repro.workloads`.
"""

__all__ = [
    "array_sum",
    "compute_loop",
    "shared_counter_spinlock",
    "shared_counter_faa",
    "producer_whole_array",
    "consumer_whole_array",
    "producer_per_element",
    "consumer_per_element",
]


def array_sum(base, n, alu_ops_per_load=0):
    """Sum ``n`` memory words starting at ``base``.

    ``alu_ops_per_load`` inserts extra register-only work per element,
    setting the compute-to-memory ratio that Issue 1's utilization model
    depends on.  Result is left in r4.  Clobbers r2-r6.
    """
    filler = "\n".join(
        "    addi r6, r6, 1" for _ in range(alu_ops_per_load)
    )
    return f"""
    movi r2, {base}        ; cursor
    movi r3, {n}           ; remaining
    movi r4, 0             ; sum
    movi r6, 0             ; filler accumulator
loop:
    beqz r3, done
    load r5, r2, 0
    add  r4, r4, r5
{filler}
    addi r2, r2, 1
    subi r3, r3, 1
    jmp  loop
done:
    store r4, r2, 0        ; publish the sum just past the array
    halt
"""


def compute_loop(iterations, loads_per_iter=1, alu_ops_per_iter=4, base=0):
    """A generic latency-tolerance kernel: each iteration issues
    ``loads_per_iter`` loads and ``alu_ops_per_iter`` ALU operations.
    Clobbers r2-r7."""
    loads = "\n".join(
        f"    load r5, r2, {k}" for k in range(loads_per_iter)
    )
    alu = "\n".join("    addi r6, r6, 1" for _ in range(alu_ops_per_iter))
    return f"""
    movi r2, {base}
    movi r3, {iterations}
    movi r6, 0
loop:
    beqz r3, done
{loads}
{alu}
    addi r2, r2, 1
    subi r3, r3, 1
    jmp  loop
done:
    halt
"""


def shared_counter_spinlock(lock_addr, counter_addr, increments):
    """Each processor adds 1 to a shared counter ``increments`` times,
    guarded by a TEST-AND-SET spinlock.  Clobbers r2-r9."""
    return f"""
    movi r2, {lock_addr}
    movi r3, {counter_addr}
    movi r4, {increments}
    movi r9, 0
loop:
    beqz r4, done
acq_spin:
    testset r5, r2, 0
    bnez    r5, acq_spin
    load r6, r3, 0
    addi r6, r6, 1
    store r6, r3, 0
    store r9, r2, 0        ; release
    subi r4, r4, 1
    jmp  loop
done:
    halt
"""


def shared_counter_faa(counter_addr, increments):
    """The Ultracomputer way: FETCH-AND-ADD, no lock.  Clobbers r2-r6."""
    return f"""
    movi r2, {counter_addr}
    movi r3, {increments}
    movi r5, 1
loop:
    beqz r3, done
    faa  r6, r2, r5
    subi r3, r3, 1
    jmp  loop
done:
    halt
"""


def producer_whole_array(base, n, flag_addr, work_per_element=2):
    """Write a[k] = k*k for k in [0,n), then raise the done flag.

    The whole-array discipline of §1.1: "allow the *entire* array to be
    written prior to allowing the consumer routine to begin processing."
    Clobbers r2-r7."""
    work = "\n".join("    addi r7, r7, 1" for _ in range(work_per_element))
    return f"""
    movi r2, {base}
    movi r3, 0             ; k
    movi r4, {n}
    movi r7, 0
loop:
    beq  r3, r4, done
    mul  r5, r3, r3
{work}
    store r5, r2, 0
    addi r2, r2, 1
    addi r3, r3, 1
    jmp  loop
done:
    movi r6, {flag_addr}
    movi r5, 1
    writef r5, r6, 0       ; publish completion
    halt
"""


def consumer_whole_array(base, n, flag_addr, result_addr, work_per_element=2):
    """Wait for the flag, then sum the array.  Clobbers r2-r8."""
    work = "\n".join("    addi r8, r8, 1" for _ in range(work_per_element))
    return f"""
    movi r6, {flag_addr}
    readf r5, r6, 0        ; busy-waits until the producer is done
    movi r2, {base}
    movi r3, 0
    movi r4, {n}
    movi r7, 0             ; sum
    movi r8, 0
loop:
    beq  r3, r4, done
    load r5, r2, 0
    add  r7, r7, r5
{work}
    addi r2, r2, 1
    addi r3, r3, 1
    jmp  loop
done:
    movi r2, {result_addr}
    store r7, r2, 0
    halt
"""


def producer_per_element(base, n, work_per_element=2):
    """Write a[k] = k*k with a full/empty bit per element (HEP style).
    Clobbers r2-r7."""
    work = "\n".join("    addi r7, r7, 1" for _ in range(work_per_element))
    return f"""
    movi r2, {base}
    movi r3, 0
    movi r4, {n}
    movi r7, 0
loop:
    beq  r3, r4, done
    mul  r5, r3, r3
{work}
    writef r5, r2, 0
    addi r2, r2, 1
    addi r3, r3, 1
    jmp  loop
done:
    halt
"""


def consumer_per_element(base, n, result_addr, work_per_element=2):
    """Sum the array, busy-waiting per element on its full bit.
    Clobbers r2-r8."""
    work = "\n".join("    addi r8, r8, 1" for _ in range(work_per_element))
    return f"""
    movi r2, {base}
    movi r3, 0
    movi r4, {n}
    movi r7, 0
    movi r8, 0
loop:
    beq  r3, r4, done
    readf r5, r2, 0        ; busy-waits until this element is written
    add  r7, r7, r5
{work}
    addi r2, r2, 1
    addi r3, r3, 1
    jmp  loop
done:
    movi r2, {result_addr}
    store r7, r2, 0
    halt
"""
