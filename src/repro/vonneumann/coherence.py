"""A snoopy write-invalidate bus memory system.

Implements the coherent-memory requirement of Censier & Feautrier as
quoted in §1.1 — "the value returned on a LOAD instruction is always the
value given by the latest STORE instruction with the same address" — with
the classic atomic-bus MSI protocol.  The costs the paper points at are
all first-class measurables here:

* every coherence transaction holds the single bus for its full duration,
  so bus utilization is the scaling bottleneck;
* writes to shared lines broadcast invalidations ("invalidates all other
  cached copies of location x wherever they may occur"), counted per run;
* atomic synchronization operations bypass the caches and lock the bus,
  making the cost of a semaphore "high relative to, say, an ALU
  operation" (§1.2.1) directly visible.

Caches can be disabled entirely (every access is a bus transaction) to
model C.mmp as actually built — "only one processor in the machine was
ever fitted with [a cache] ... the reason is, quite simply, the cache
coherence problem."
"""

from ..common.queueing import FifoServer
from ..common.stats import Counter
from .cache import Cache, CacheState
from .isa import Op
from .memory import MemoryModule, MemRequest, RETRY  # noqa: F401 (re-export)

__all__ = ["SnoopyBusSystem"]


class SnoopyBusSystem:
    """Private MSI caches over one shared bus and one memory image."""

    def __init__(self, sim, n_procs, cache_config=None, memory_time=10.0,
                 bus_time=2.0, write_policy="write_back", name="bus"):
        if write_policy not in ("write_back", "write_through"):
            raise ValueError(f"unknown write policy {write_policy!r}")
        self.sim = sim
        self.n_procs = n_procs
        self.name = name
        self.memory = MemoryModule(sim, memory_time, name=f"{name}.dram")
        self.memory_time = memory_time
        self.bus = FifoServer(sim, bus_time, name=f"{name}.bus")
        self.bus_time = bus_time
        #: "Using a store-through design instead of a store-in design does
        #: not completely solve the problem either" (§1.1): write_through
        #: sends *every* store over the bus (and still must invalidate
        #: remote copies), trading silent dirty lines for bus traffic.
        self.write_policy = write_policy
        self.caches = None
        if cache_config is not None:
            self.caches = [
                Cache(cache_config, name=f"{name}.c{i}") for i in range(n_procs)
            ]
        self.counters = Counter()

    # ------------------------------------------------------------------
    def attach_processor(self, proc):
        """Bus systems need no per-processor wiring; kept for interface
        symmetry with the dancehall system."""

    def access(self, proc, request, on_complete):
        self.counters.add("accesses")
        op = request.op
        if self.caches is None or op not in (Op.LOAD, Op.STORE):
            # Uncached access / atomic: a full bus + memory transaction.
            self._bus_transaction(proc, request, on_complete,
                                  kind="atomic" if op not in (Op.LOAD, Op.STORE)
                                  else "uncached")
            return
        cache = self.caches[proc]
        state = cache.lookup(request.address)
        if op is Op.LOAD and state is not CacheState.INVALID:
            self.counters.add("load_hits")
            value = self.memory.data.get(request.address, 0)
            self.sim.post(cache.config.hit_time, on_complete, value)
            return
        if op is Op.STORE and self.write_policy == "write_through":
            # Every store goes to memory over the bus, hit or not.
            self._bus_transaction(proc, request, on_complete,
                                  kind="write_through")
            return
        if op is Op.STORE and state is CacheState.MODIFIED:
            self.counters.add("store_hits")
            self.memory.data[request.address] = request.value
            self.sim.post(cache.config.hit_time, on_complete, None)
            return
        kind = "read_miss" if op is Op.LOAD else (
            "upgrade" if state is CacheState.SHARED else "write_miss"
        )
        self._bus_transaction(proc, request, on_complete, kind=kind)

    # ------------------------------------------------------------------
    def _bus_transaction(self, proc, request, on_complete, kind):
        self.counters.add(f"bus_{kind}")
        service = self._transaction_time(proc, request, kind)
        self.bus.submit(
            (proc, request, on_complete, kind),
            self._bus_complete,
            service_time=service,
        )

    def _transaction_time(self, proc, request, kind):
        """Bus occupancy of this transaction.

        An upgrade (invalidate-only) needs just the bus; anything touching
        memory holds the bus for the memory access as well (atomic bus).
        A dirty remote copy adds a write-back before the memory read.
        """
        time = self.bus_time
        if kind != "upgrade":
            time += self.memory_time
        if self.caches is not None:
            for other, cache in enumerate(self.caches):
                if other != proc and (
                    cache.peek_state(request.address) is CacheState.MODIFIED
                ):
                    time += self.memory_time  # write-back of the dirty copy
                    self.counters.add("dirty_transfers")
                    break
        return time

    def _bus_complete(self, work):
        proc, request, on_complete, kind = work
        address = request.address
        if self.caches is not None:
            invalidating = request.op is not Op.LOAD
            for other, cache in enumerate(self.caches):
                if other == proc:
                    continue
                if invalidating:
                    if cache.invalidate(address):
                        self.counters.add("invalidations")
                else:
                    # A read demotes remote MODIFIED copies to SHARED.
                    if cache.peek_state(address) is CacheState.MODIFIED:
                        cache.set_state(address, CacheState.SHARED)
            mine = self.caches[proc]
            if request.op is Op.LOAD:
                if mine.fill(address, CacheState.SHARED) is not None:
                    self.counters.add("eviction_writebacks")
            elif request.op is Op.STORE:
                # Write-through lines stay SHARED (memory is always
                # current); write-back takes ownership.
                new_state = (
                    CacheState.SHARED
                    if self.write_policy == "write_through"
                    else CacheState.MODIFIED
                )
                if mine.fill(address, new_state) is not None:
                    self.counters.add("eviction_writebacks")
            else:
                # Atomics leave nobody caching the line.
                mine.invalidate(address)
        response = self.memory.apply(request)
        on_complete(response)

    # ------------------------------------------------------------------
    def bus_utilization(self):
        return self.bus.utilization.utilization(self.sim.now)

    def peek(self, address):
        return self.memory.peek(address)

    def poke(self, address, value, full=False):
        self.memory.poke(address, value, full=full)

    def total_retries(self):
        return self.memory.counters["readf_retries"]
