"""The in-order von Neumann processor.

The defining property (and the paper's complaint): a memory reference
*stalls* the processor until the response arrives.  "Any processor making
a nonlocal memory reference would idle until the reference was completed"
(§1.2.2, of Cm*); the same sequential control — "the most troublesome
aspect of von Neumann architecture ... the program counter" (§2.2) —
means at most one memory request is ever outstanding.

Full/empty RETRY responses are re-issued after ``retry_backoff`` cycles,
modelling the busy-waiting loop of footnote 2.
"""

from ..common.errors import MachineError
from ..common.stats import Counter
from .isa import ALU_OPS, BRANCH_OPS, MEMORY_OPS, Op
from .memory import MemRequest, RETRY

__all__ = ["Processor"]


class Processor:
    """One single-context in-order processor."""

    def __init__(self, sim, proc_id, program, memory, cpu_time=1.0,
                 retry_backoff=0.0, n_regs=32, on_halt=None):
        self.sim = sim
        self.proc_id = proc_id
        self.program = program
        self.memory = memory
        self.cpu_time = cpu_time
        self.retry_backoff = retry_backoff
        self.regs = [0] * n_regs
        self.pc = 0
        self.halted = False
        self.on_halt = on_halt
        self.busy_cycles = 0.0
        # Cycle accounting: plain memory round-trips (Issue 1) vs waits
        # that drew at least one full/empty RETRY (Issue 2, the busy-wait
        # loop of footnote 2).  ``halt_overcount`` corrects for HALT
        # charging ``cpu_time`` to busy_cycles in zero simulated time.
        self.stall_cycles = 0.0
        self.sync_cycles = 0.0
        self.halt_overcount = 0.0
        self.start_time = None
        self.finish_time = None
        self.counters = Counter()
        self.bus = None  # optional repro.obs.TraceBus (set by VNMachine)
        self._src = f"proc{proc_id}"  # trace track name
        self._mem_issued_at = None
        self._mem_retried = False
        self._last_eid = None  # provenance: previous event on this track

    # ------------------------------------------------------------------
    def set_regs(self, values):
        """Preload registers from a {number: value} mapping."""
        for reg, value in values.items():
            self.regs[reg] = value

    def start(self, delay=0.0):
        self.start_time = self.sim.now + delay
        self.sim.post(delay, self._step)

    # ------------------------------------------------------------------
    def batch_fns(self):
        """Posted callbacks eligible for fused batching under
        ``exec_mode="batch"``: the per-instruction step.  Memory
        completions are batched on the bank side (the full/empty RETRY
        classification in :meth:`_memory_done` consumes the responses the
        bank kernel computed vectorized)."""
        return (self._step,)

    def _step(self):
        if self.halted:
            return
        if not 0 <= self.pc < len(self.program):
            self._halt()
            return
        sim = self.sim
        instr = self.program[self.pc]
        op = instr.op
        counters = self.counters
        counters.add("instructions")
        cpu_time = self.cpu_time
        self.busy_cycles += cpu_time
        bus = self.bus
        if bus is not None and bus.enabled:
            eid = bus.emit_id(sim._now, self._src, "vn_exec", op.name,
                              op=op.name, pc=self.pc,
                              parent=self._last_eid)
            if eid is not None:
                self._last_eid = eid

        if op in ALU_OPS:
            counters.add("alu_ops")
            value = self._alu(instr)
            if instr.rd is not None:  # NOP has no destination
                self.regs[instr.rd] = value
            self.pc += 1
            sim.post(cpu_time, self._step)
        elif op in BRANCH_OPS:
            counters.add("branches")
            self.pc = instr.target if self._branch_taken(instr) else self.pc + 1
            sim.post(cpu_time, self._step)
        elif op in MEMORY_OPS:
            counters.add("memory_ops")
            request = self._memory_request(instr)
            self._mem_issued_at = sim._now
            self._mem_retried = False
            sim.post(cpu_time, self._issue, instr, request)
        elif op is Op.HALT:
            # HALT charged cpu_time to busy above but consumes no
            # simulated time; remember the overcount so accounting can
            # tile the timeline exactly.
            self.halt_overcount += self.cpu_time
            self._halt()
        else:
            raise MachineError(f"proc {self.proc_id}: cannot execute {instr!r}")

    def _issue(self, instr, request):
        self.memory.access(
            self.proc_id,
            request,
            lambda response: self._memory_done(instr, request, response),
        )

    def _memory_done(self, instr, request, response):
        bus = self.bus
        sim = self.sim
        now = sim._now
        if response is RETRY:
            self.counters.add("retries")
            self._mem_retried = True
            if bus is not None and bus.enabled:
                eid = bus.emit_id(now, self._src, "vn_retry",
                                  instr.op.name, address=request.address,
                                  parent=self._last_eid)
                if eid is not None:
                    self._last_eid = eid
            sim.post(self.retry_backoff, self._issue, instr, request)
            return
        # The wait beyond the issue slot: round-trip for a plain
        # reference (Issue 1), busy-wait if any RETRY came back (Issue 2).
        waited = now - self._mem_issued_at - self.cpu_time
        if self._mem_retried:
            self.sync_cycles += waited
        else:
            self.stall_cycles += waited
        if bus is not None and bus.enabled:
            # The stall slice: issue to response, the §1.2.2 idle time.
            eid = bus.emit_id(now, self._src, "vn_stall",
                              instr.op.name, dur=waited,
                              address=request.address,
                              parent=self._last_eid)
            if eid is not None:
                self._last_eid = eid
        if instr.op in (Op.LOAD, Op.TESTSET, Op.FAA, Op.READF):
            self.regs[instr.rd] = response
        self.pc += 1
        sim.post(0, self._step)

    def _halt(self):
        self.halted = True
        self.finish_time = self.sim.now
        bus = self.bus
        if bus is not None and bus.enabled:
            bus.emit(self.sim.now, self._src, "vn_halt", "",
                     instructions=self.counters["instructions"],
                     parent=self._last_eid)
        if self.on_halt is not None:
            self.on_halt(self)

    # ------------------------------------------------------------------
    def _alu(self, instr):
        op = instr.op
        regs = self.regs
        if op is Op.MOVI:
            return instr.imm
        if op is Op.MOV:
            return regs[instr.ra]
        if op is Op.NOP:
            return regs[instr.rd] if instr.rd is not None else 0
        if op is Op.ADDI:
            return regs[instr.ra] + instr.imm
        if op is Op.SUBI:
            return regs[instr.ra] - instr.imm
        if op is Op.MULI:
            return regs[instr.ra] * instr.imm
        a, b = regs[instr.ra], regs[instr.rb]
        if op is Op.ADD:
            return a + b
        if op is Op.SUB:
            return a - b
        if op is Op.MUL:
            return a * b
        if op is Op.DIV:
            if b == 0:
                raise MachineError(f"proc {self.proc_id}: division by zero")
            return a // b if isinstance(a, int) and isinstance(b, int) else a / b
        if op is Op.MOD:
            return a % b
        if op is Op.AND:
            return a & b
        if op is Op.OR:
            return a | b
        if op is Op.XOR:
            return a ^ b
        if op is Op.SLT:
            return int(a < b)
        if op is Op.SLE:
            return int(a <= b)
        if op is Op.SEQ:
            return int(a == b)
        if op is Op.SNE:
            return int(a != b)
        raise MachineError(f"proc {self.proc_id}: not an ALU op {op}")

    def _branch_taken(self, instr):
        op = instr.op
        regs = self.regs
        if op is Op.JMP:
            return True
        if op is Op.BEQZ:
            return regs[instr.ra] == 0
        if op is Op.BNEZ:
            return regs[instr.ra] != 0
        a, b = regs[instr.ra], regs[instr.rb]
        if op is Op.BLT:
            return a < b
        if op is Op.BGE:
            return a >= b
        if op is Op.BEQ:
            return a == b
        if op is Op.BNE:
            return a != b
        raise MachineError(f"proc {self.proc_id}: not a branch {op}")

    def _memory_request(self, instr):
        op = instr.op
        if op is Op.FAA:
            address = self.regs[instr.ra]
            value = self.regs[instr.rb]
        else:
            address = self.regs[instr.ra] + (instr.imm or 0)
            value = self.regs[instr.rd] if op in (Op.STORE, Op.WRITEF) else None
        return MemRequest(op=op, address=address, value=value, proc=self.proc_id)

    # ------------------------------------------------------------------
    def utilization(self, now=None):
        """Fraction of elapsed time spent executing (not stalled)."""
        if self.start_time is None:
            return 0.0
        end = self.finish_time if self.finish_time is not None else (
            now if now is not None else self.sim.now
        )
        window = end - self.start_time
        if window <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / window)

    def __repr__(self):
        return (
            f"<Processor {self.proc_id} pc={self.pc} halted={self.halted} "
            f"instructions={self.counters['instructions']}>"
        )
