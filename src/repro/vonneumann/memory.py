"""Memory modules and the dancehall memory system.

A :class:`MemoryModule` is a FIFO-served word-addressed store that also
implements the atomic read-modify-write operations (TEST-AND-SET,
FETCH-AND-ADD) and HEP-style full/empty bits.  Per footnote 2 of the
paper, an unsatisfiable full/empty request does *not* join a deferred
list — "there is no such thing as a deferred read list" — it is bounced
back to the processor as :data:`RETRY`, producing the busy-waiting traffic
experiment E6 measures.

:class:`DancehallMemorySystem` places all processors on one side of a
packet network and all memory modules on the other (the Figure 1-1
organization), which makes memory latency a directly controllable
parameter — the independent variable of Issue 1.
"""

from dataclasses import dataclass
from typing import Optional

from ..common.errors import MachineError
from ..common.queueing import FifoServer
from ..common.stats import Counter
from ..network.ideal import IdealNetwork
from .isa import Op

__all__ = ["MemRequest", "MemoryModule", "DancehallMemorySystem", "RETRY"]

#: Response meaning "condition not met, try again" (full/empty busy-wait).
RETRY = object()


@dataclass
class MemRequest:
    """One memory operation in flight."""

    op: Op
    address: int
    value: Optional[object] = None
    proc: Optional[int] = None
    #: Injected transient failures this request has survived (fault
    #: injection only; legitimate full/empty RETRYs are not counted).
    fault_retries: int = 0


class MemoryModule:
    """One word-addressed memory bank with atomic ops and full/empty bits."""

    def __init__(self, sim, service_time=1.0, name="mem"):
        self.sim = sim
        self.name = name
        self.server = FifoServer(sim, service_time, name=name)
        self.data = {}
        self.full_bits = set()
        self.counters = Counter()
        #: Optional :class:`repro.faults.FaultInjector`; None keeps the
        #: serve path at one attribute check.
        self.faults = None

    def submit(self, request, on_done):
        """Serve ``request``; call ``on_done(response)`` when finished."""
        self.server.submit((request, on_done), self._serve)

    def _serve(self, work):
        request, on_done = work
        faults = self.faults
        if faults is not None:
            verdict = faults.memory_fault(self.sim, self.name,
                                          retries=request.fault_retries)
            if verdict is not None:
                kind, cycles = verdict
                if kind == "fail":
                    # Transient failure: the operation is NOT applied
                    # (safe for the non-idempotent atomics) and the
                    # processor's existing RETRY machinery — footnote
                    # 2's busy-wait path — re-issues it after backoff.
                    request.fault_retries += 1
                    self.counters.add("fault_retries")
                    on_done(RETRY)
                    return
                # Slow bank: the op applies in FIFO order now, but the
                # response reaches the requester ``cycles`` late.
                self.counters.add("fault_slow")
                self.sim.post(cycles, on_done, self.apply(request))
                return
        on_done(self.apply(request))

    def apply(self, request):
        """The untimed semantics of one operation (shared with the bus
        system, which does its own timing)."""
        op, address = request.op, request.address
        self.counters.add(op.value)
        if op is Op.LOAD:
            return self.data.get(address, 0)
        if op is Op.STORE:
            self.data[address] = request.value
            return None
        if op is Op.TESTSET:
            old = self.data.get(address, 0)
            self.data[address] = 1
            return old
        if op is Op.FAA:
            old = self.data.get(address, 0)
            self.data[address] = old + request.value
            return old
        if op is Op.READF:
            if address in self.full_bits:
                return self.data.get(address, 0)
            self.counters.add("readf_retries")
            return RETRY
        if op is Op.WRITEF:
            if address in self.full_bits:
                self.counters.add("writef_overwrites")
            self.data[address] = request.value
            self.full_bits.add(address)
            return None
        raise MachineError(f"{self.name}: not a memory op: {op}")

    def poke(self, address, value, full=False):
        """Preload a memory word (test/workload setup)."""
        self.data[address] = value
        if full:
            self.full_bits.add(address)

    def peek(self, address):
        return self.data.get(address, 0)


class DancehallMemorySystem:
    """Processors and memory modules on opposite sides of a network.

    Ports 0..n_procs-1 are processors; ports n_procs.. are modules.
    Addresses interleave across modules word by word.
    """

    def __init__(self, sim, n_procs, n_modules=None, memory_time=1.0,
                 network_factory=None, latency=1.0, placement="interleaved",
                 block_size=1024):
        self.sim = sim
        self.n_procs = n_procs
        self.n_modules = n_modules if n_modules is not None else n_procs
        if placement not in ("interleaved", "blocked"):
            raise MachineError(f"unknown placement {placement!r}")
        self.placement = placement
        self.block_size = block_size
        n_ports = n_procs + self.n_modules
        if network_factory is not None:
            self.network = network_factory(sim, n_ports)
        else:
            self.network = IdealNetwork(sim, n_ports, latency=latency)
        self.modules = [
            MemoryModule(sim, memory_time, name=f"mem{i}")
            for i in range(self.n_modules)
        ]
        for index in range(self.n_modules):
            port = n_procs + index
            self.network.attach(port, self._module_arrival)
        self._proc_handlers = {}
        self.counters = Counter()

    # ------------------------------------------------------------------
    def module_of(self, address):
        if self.placement == "blocked":
            return (address // self.block_size) % self.n_modules
        return address % self.n_modules

    def module_port(self, address):
        return self.n_procs + self.module_of(address)

    def attach_processor(self, proc):
        """Register processor ``proc`` (its port number is its id)."""
        self.network.attach(proc, self._proc_arrival)

    def access(self, proc, request, on_complete):
        """Issue ``request`` from processor ``proc``."""
        self.counters.add("accesses")
        self.network.send(
            proc, self.module_port(request.address), ("req", request, on_complete)
        )

    # ------------------------------------------------------------------
    def _module_arrival(self, packet):
        kind, request, on_complete = packet.payload
        module = self.modules[packet.dst - self.n_procs]
        module.submit(
            request,
            lambda response: self.network.send(
                packet.dst, request.proc, ("resp", response, on_complete)
            ),
        )

    def _proc_arrival(self, packet):
        kind, response, on_complete = packet.payload
        on_complete(response)

    # ------------------------------------------------------------------
    def batch_kinds(self):
        """Prepare the dancehall banks for batch mode: share one
        :class:`FullBitPlane` across the modules (addresses are disjoint,
        so membership is unchanged) and return the posted-callback ->
        kind mapping for the plane to register.  Called at machine
        construction, before any workload pokes memory."""
        full = FullBitPlane()
        for module in self.modules:
            for address in module.full_bits:
                full.add(address)
            module.full_bits = full
        kind = BankServeKind(self.sim, full)
        return {module.server._complete: kind for module in self.modules}

    # ------------------------------------------------------------------
    def peek(self, address):
        return self.modules[self.module_of(address)].peek(address)

    def poke(self, address, value, full=False):
        self.modules[self.module_of(address)].poke(address, value, full=full)

    def total_retries(self):
        return sum(m.counters["readf_retries"] for m in self.modules)


# ----------------------------------------------------------------------
# Batch execution mode (exec_mode="batch")
# ----------------------------------------------------------------------

class FullBitPlane:
    """Full/empty bits as a dense numpy bool plane with a spill set.

    Set-compatible (``in`` / ``add``) so it drops in for the per-module
    ``full_bits`` set — word addresses are disjoint across modules, so
    one plane serves a whole memory system and the batch bank kernel can
    gather a run's full/empty bits in one vectorized indexing operation.
    Non-int or out-of-range addresses spill to a plain set.
    """

    #: Addresses at or above this spill to the set (bounds the array).
    DENSE_LIMIT = 1 << 22

    __slots__ = ("bits", "spill")

    def __init__(self, capacity=1024):
        from ..common.batch import np

        self.bits = np.zeros(capacity, dtype=bool)
        self.spill = set()

    def __contains__(self, address):
        if type(address) is int and 0 <= address:
            if address < len(self.bits):
                return bool(self.bits[address])
        return address in self.spill

    def add(self, address):
        if type(address) is int and 0 <= address < self.DENSE_LIMIT:
            bits = self.bits
            if address >= len(bits):
                from ..common.batch import np

                grown = np.zeros(
                    max(address + 1, 2 * len(bits)), dtype=bool)
                grown[: len(bits)] = bits
                self.bits = bits = grown
            bits[address] = True
        else:
            self.spill.add(address)

    def __len__(self):
        return int(self.bits.sum()) + len(self.spill)

    def __iter__(self):
        from ..common.batch import np

        yield from (int(a) for a in np.flatnonzero(self.bits))
        yield from self.spill


class BankServeKind:
    """Batched memory-bank request service.

    A run holds at most one completion per bank (each
    :class:`~repro.common.queueing.FifoServer` is busy until its
    ``_complete`` fires), so addresses within a run are distinct and the
    pre-pass can classify every request's opcode and gather the run's
    full/empty bits from the shared :class:`FullBitPlane` in one
    vectorized pass.  The replay then applies each request's exact
    ``FifoServer._complete`` + ``MemoryModule._serve`` body in bucket
    order.  Registered only when no fault injector is attached, so the
    replay mirrors ``_serve`` with ``faults is None``.
    """

    name = "bank"
    min_run = 8

    def __init__(self, sim, full_bits):
        from ..common.batch import np

        self.sim = sim
        self.full_bits = full_bits
        self._np = np

    def apply_run(self, bucket, start, end):
        np = self._np
        full_bits = self.full_bits
        dense = full_bits.bits
        limit = len(dense)
        readf, writef = Op.READF, Op.WRITEF
        # Prefetch pass: dense-range full/empty addresses of the run's
        # READF/WRITEF requests, gathered from the bit plane in one
        # vectorized indexing op and extracted back to python bools
        # wholesale (tolist), so the replay never touches numpy scalars.
        # Spilled/odd addresses fall back to scalar membership (None).
        flags = {}
        fe_j = []
        fe_addrs = []
        for j in range(start, end):
            request = bucket[j][1][0][0]
            op = request.op
            if op is readf or op is writef:
                address = request.address
                if type(address) is int and 0 <= address < limit:
                    fe_j.append(j)
                    fe_addrs.append(address)
                else:
                    flags[j] = None
        if fe_j:
            for j, full in zip(
                    fe_j, dense[np.array(fe_addrs, dtype=np.int64)].tolist()):
                flags[j] = full
        now = self.sim._now
        for j in range(start, end):
            fn, ((request, on_done), serve) = bucket[j]
            server = fn.__self__
            server.utilization.end(now)
            server._busy = False
            server.items_served += 1
            module = serve.__self__
            op = request.op
            address = request.address
            data = module.data
            module.counters.add(op.value)
            if op is Op.LOAD:
                response = data.get(address, 0)
            elif op is Op.STORE:
                data[address] = request.value
                response = None
            elif op is readf:
                full = flags[j]
                if full is None:
                    full = address in full_bits
                if full:
                    response = data.get(address, 0)
                else:
                    module.counters.add("readf_retries")
                    response = RETRY
            elif op is writef:
                full = flags[j]
                if full is None:
                    full = address in full_bits
                if full:
                    module.counters.add("writef_overwrites")
                data[address] = request.value
                full_bits.add(address)
                response = None
            elif op is Op.TESTSET:
                response = data.get(address, 0)
                data[address] = 1
            elif op is Op.FAA:
                response = data.get(address, 0)
                data[address] = response + request.value
            else:
                raise MachineError(f"{module.name}: not a memory op: {op}")
            on_done(response)
            if not server._busy:
                server._start_next()
