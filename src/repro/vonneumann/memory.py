"""Memory modules and the dancehall memory system.

A :class:`MemoryModule` is a FIFO-served word-addressed store that also
implements the atomic read-modify-write operations (TEST-AND-SET,
FETCH-AND-ADD) and HEP-style full/empty bits.  Per footnote 2 of the
paper, an unsatisfiable full/empty request does *not* join a deferred
list — "there is no such thing as a deferred read list" — it is bounced
back to the processor as :data:`RETRY`, producing the busy-waiting traffic
experiment E6 measures.

:class:`DancehallMemorySystem` places all processors on one side of a
packet network and all memory modules on the other (the Figure 1-1
organization), which makes memory latency a directly controllable
parameter — the independent variable of Issue 1.
"""

from dataclasses import dataclass
from typing import Optional

from ..common.errors import MachineError
from ..common.queueing import FifoServer
from ..common.stats import Counter
from ..network.ideal import IdealNetwork
from .isa import Op

__all__ = ["MemRequest", "MemoryModule", "DancehallMemorySystem", "RETRY"]

#: Response meaning "condition not met, try again" (full/empty busy-wait).
RETRY = object()


@dataclass
class MemRequest:
    """One memory operation in flight."""

    op: Op
    address: int
    value: Optional[object] = None
    proc: Optional[int] = None
    #: Injected transient failures this request has survived (fault
    #: injection only; legitimate full/empty RETRYs are not counted).
    fault_retries: int = 0


class MemoryModule:
    """One word-addressed memory bank with atomic ops and full/empty bits."""

    def __init__(self, sim, service_time=1.0, name="mem"):
        self.sim = sim
        self.name = name
        self.server = FifoServer(sim, service_time, name=name)
        self.data = {}
        self.full_bits = set()
        self.counters = Counter()
        #: Optional :class:`repro.faults.FaultInjector`; None keeps the
        #: serve path at one attribute check.
        self.faults = None

    def submit(self, request, on_done):
        """Serve ``request``; call ``on_done(response)`` when finished."""
        self.server.submit((request, on_done), self._serve)

    def _serve(self, work):
        request, on_done = work
        faults = self.faults
        if faults is not None:
            verdict = faults.memory_fault(self.sim, self.name,
                                          retries=request.fault_retries)
            if verdict is not None:
                kind, cycles = verdict
                if kind == "fail":
                    # Transient failure: the operation is NOT applied
                    # (safe for the non-idempotent atomics) and the
                    # processor's existing RETRY machinery — footnote
                    # 2's busy-wait path — re-issues it after backoff.
                    request.fault_retries += 1
                    self.counters.add("fault_retries")
                    on_done(RETRY)
                    return
                # Slow bank: the op applies in FIFO order now, but the
                # response reaches the requester ``cycles`` late.
                self.counters.add("fault_slow")
                self.sim.post(cycles, on_done, self.apply(request))
                return
        on_done(self.apply(request))

    def apply(self, request):
        """The untimed semantics of one operation (shared with the bus
        system, which does its own timing)."""
        op, address = request.op, request.address
        self.counters.add(op.value)
        if op is Op.LOAD:
            return self.data.get(address, 0)
        if op is Op.STORE:
            self.data[address] = request.value
            return None
        if op is Op.TESTSET:
            old = self.data.get(address, 0)
            self.data[address] = 1
            return old
        if op is Op.FAA:
            old = self.data.get(address, 0)
            self.data[address] = old + request.value
            return old
        if op is Op.READF:
            if address in self.full_bits:
                return self.data.get(address, 0)
            self.counters.add("readf_retries")
            return RETRY
        if op is Op.WRITEF:
            if address in self.full_bits:
                self.counters.add("writef_overwrites")
            self.data[address] = request.value
            self.full_bits.add(address)
            return None
        raise MachineError(f"{self.name}: not a memory op: {op}")

    def poke(self, address, value, full=False):
        """Preload a memory word (test/workload setup)."""
        self.data[address] = value
        if full:
            self.full_bits.add(address)

    def peek(self, address):
        return self.data.get(address, 0)


class DancehallMemorySystem:
    """Processors and memory modules on opposite sides of a network.

    Ports 0..n_procs-1 are processors; ports n_procs.. are modules.
    Addresses interleave across modules word by word.
    """

    def __init__(self, sim, n_procs, n_modules=None, memory_time=1.0,
                 network_factory=None, latency=1.0, placement="interleaved",
                 block_size=1024):
        self.sim = sim
        self.n_procs = n_procs
        self.n_modules = n_modules if n_modules is not None else n_procs
        if placement not in ("interleaved", "blocked"):
            raise MachineError(f"unknown placement {placement!r}")
        self.placement = placement
        self.block_size = block_size
        n_ports = n_procs + self.n_modules
        if network_factory is not None:
            self.network = network_factory(sim, n_ports)
        else:
            self.network = IdealNetwork(sim, n_ports, latency=latency)
        self.modules = [
            MemoryModule(sim, memory_time, name=f"mem{i}")
            for i in range(self.n_modules)
        ]
        for index in range(self.n_modules):
            port = n_procs + index
            self.network.attach(port, self._module_arrival)
        self._proc_handlers = {}
        self.counters = Counter()

    # ------------------------------------------------------------------
    def module_of(self, address):
        if self.placement == "blocked":
            return (address // self.block_size) % self.n_modules
        return address % self.n_modules

    def module_port(self, address):
        return self.n_procs + self.module_of(address)

    def attach_processor(self, proc):
        """Register processor ``proc`` (its port number is its id)."""
        self.network.attach(proc, self._proc_arrival)

    def access(self, proc, request, on_complete):
        """Issue ``request`` from processor ``proc``."""
        self.counters.add("accesses")
        self.network.send(
            proc, self.module_port(request.address), ("req", request, on_complete)
        )

    # ------------------------------------------------------------------
    def _module_arrival(self, packet):
        kind, request, on_complete = packet.payload
        module = self.modules[packet.dst - self.n_procs]
        module.submit(
            request,
            lambda response: self.network.send(
                packet.dst, request.proc, ("resp", response, on_complete)
            ),
        )

    def _proc_arrival(self, packet):
        kind, response, on_complete = packet.payload
        on_complete(response)

    # ------------------------------------------------------------------
    def peek(self, address):
        return self.modules[self.module_of(address)].peek(address)

    def poke(self, address, value, full=False):
        self.modules[self.module_of(address)].poke(address, value, full=full)

    def total_retries(self):
        return sum(m.counters["readf_retries"] for m in self.modules)
