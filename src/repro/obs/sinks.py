"""Event sinks: in-memory ring, JSONL stream, Chrome ``trace_event`` JSON.

All three consume :class:`~repro.obs.events.TraceEvent` records from a
:class:`~repro.obs.bus.TraceBus`:

* :class:`RingSink` — a bounded ring buffer, the back-compat store behind
  the legacy ``repro.dataflow.TraceLog`` API;
* :class:`JsonlSink` — one JSON object per line, written as events arrive;
  byte-identical across identical runs (the determinism tests rely on it);
* :class:`ChromeTraceSink` — accumulates events in the Chrome
  ``trace_event`` format (JSON Object Format, ``{"traceEvents": [...]}``)
  so a run opens directly in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing`` as a per-PE timeline.  Events carrying a ``dur``
  field become complete ("X") duration slices; everything else becomes a
  thread-scoped instant ("i").

Simulated cycles are exported as microseconds (1 cycle = 1 us) — trace
viewers need a time unit and cycles are what the models measure.
"""

import json
from collections import deque

__all__ = [
    "RingSink",
    "JsonlSink",
    "ChromeTraceSink",
    "validate_chrome_trace",
]


class RingSink:
    """Keeps the last ``limit`` events; counts everything it ever saw.

    ``limit=None`` means unbounded; ``limit=0`` is a valid configuration
    that stores nothing and counts every event as dropped (the
    ``deque(maxlen=0)`` edge case the original ring buffer mishandled:
    ``dropped`` is now *derived* — recorded minus retained — so it is
    exact for every limit, including 0 and None).
    """

    def __init__(self, limit=100_000):
        if limit is not None and limit < 0:
            raise ValueError(f"ring limit must be >= 0 or None, got {limit}")
        self.limit = limit
        self._events = deque(maxlen=limit)
        self.recorded = 0

    def handle(self, event):
        self.recorded += 1
        if self.limit != 0:
            self._events.append(event)

    @property
    def dropped(self):
        return self.recorded - len(self._events)

    @property
    def events(self):
        return list(self._events)

    def __len__(self):
        return len(self._events)

    def __repr__(self):
        return f"<RingSink events={len(self._events)} dropped={self.dropped}>"


class JsonlSink:
    """Serializes each event as one sorted-key JSON line, immediately.

    Pass an open file-like object (kept open) or a path (opened and owned;
    :meth:`close` closes it).
    """

    def __init__(self, target):
        if hasattr(target, "write"):
            self._fh = target
            self._owns = False
        else:
            self._fh = open(target, "w", encoding="utf-8")
            self._owns = True
        self.written = 0

    def handle(self, event):
        self._fh.write(json.dumps(event.to_json_dict(), sort_keys=True,
                                  default=repr))
        self._fh.write("\n")
        self.written += 1

    def close(self):
        self._fh.flush()
        if self._owns:
            self._fh.close()

    def __repr__(self):
        return f"<JsonlSink written={self.written}>"


class ChromeTraceSink:
    """Accumulates Chrome ``trace_event`` records; ``write()`` emits JSON.

    Each distinct event source becomes one track (thread): PE numbers map
    to ``pe<N>`` tracks, string sources (``"net"``, ``"sim"``, ``"-"``)
    keep their names.  Track ids are assigned in first-seen order, which
    is deterministic because the simulation kernel is.
    """

    PROCESS_NAME = "repro"

    def __init__(self, cycle_us=1.0):
        self.cycle_us = cycle_us
        self._trace_events = []
        self._tids = {}

    def _tid(self, source):
        tid = self._tids.get(source)
        if tid is None:
            tid = len(self._tids) + 1
            self._tids[source] = tid
            self._trace_events.append({
                "ph": "M", "pid": 0, "tid": tid, "name": "thread_name",
                "args": {"name": self.track_name(source)},
            })
        return tid

    @staticmethod
    def track_name(source):
        return f"pe{source}" if isinstance(source, int) else str(source)

    def tid_of(self, source):
        """The track id assigned to ``source`` (allocating if unseen).

        Public so overlays (e.g. the critical-path flow events of
        :mod:`repro.obs.analysis.critical_path`) can target the same
        tracks the timeline events landed on.
        """
        return self._tid(source)

    def handle(self, event):
        record = {
            "name": event.kind,
            "cat": "repro",
            "pid": 0,
            "tid": self._tid(event.source),
            "ts": event.time * self.cycle_us,
            "args": {"detail": event.detail},
        }
        fields = event.fields
        if fields:
            dur = fields.get("dur")
            for key, value in fields.items():
                if key != "dur":
                    record["args"][key] = value
        else:
            dur = None
        if dur is not None:
            record["ph"] = "X"
            record["dur"] = dur * self.cycle_us
            # The machines report completion times; Chrome wants starts.
            record["ts"] -= record["dur"]
        else:
            record["ph"] = "i"
            record["s"] = "t"
        self._trace_events.append(record)

    def extend(self, records):
        """Append pre-built trace_event records (overlays such as the
        critical-path flow arrows, which are computed after the run)."""
        self._trace_events.extend(records)

    # ------------------------------------------------------------------
    def to_json(self, meta=None):
        events = [{
            "ph": "M", "pid": 0, "tid": 0, "name": "process_name",
            "args": {"name": self.PROCESS_NAME},
        }]
        events.extend(self._trace_events)
        payload = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
        }
        if meta:
            payload["otherData"] = dict(meta)
        return payload

    def write(self, path, meta=None):
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json(meta=meta), fh, default=repr)
        return path

    def __len__(self):
        return len(self._trace_events)

    def __repr__(self):
        return (
            f"<ChromeTraceSink events={len(self._trace_events)} "
            f"tracks={len(self._tids)}>"
        )


_REQUIRED_BY_PHASE = {
    "X": ("name", "pid", "tid", "ts", "dur"),
    "i": ("name", "pid", "tid", "ts"),
    "M": ("name", "pid"),
    # Flow events (arrows in Perfetto): start / step / finish share an id.
    "s": ("name", "pid", "tid", "ts", "id"),
    "t": ("name", "pid", "tid", "ts", "id"),
    "f": ("name", "pid", "tid", "ts", "id"),
}


def validate_chrome_trace(payload):
    """Check ``payload`` against the Chrome trace_event JSON Object Format.

    Returns the list of non-metadata events; raises ``ValueError`` with a
    precise message on the first violation.  Used by the tests and the CI
    smoke job to assert that exported traces will actually load.
    """
    if not isinstance(payload, dict):
        raise ValueError("trace must be a JSON object (Object Format)")
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents must be a non-empty list")
    data_events = []
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{index}] is not an object")
        phase = event.get("ph")
        required = _REQUIRED_BY_PHASE.get(phase)
        if required is None:
            raise ValueError(
                f"traceEvents[{index}] has unsupported phase {phase!r}"
            )
        for key in required:
            if key not in event:
                raise ValueError(
                    f"traceEvents[{index}] (ph={phase}) missing {key!r}"
                )
        if phase != "M":
            data_events.append(event)
    if not data_events:
        raise ValueError("trace contains only metadata events")
    return data_events
