"""A hierarchical registry over the existing measurement primitives.

Every machine model already records measurements with the
:mod:`repro.common.stats` primitives — ``Counter`` bundles, per-unit
``UtilizationTracker``/``TimeWeighted`` instances inside ``FifoServer``,
latency ``Histogram``s inside networks.  What was missing is one place
that knows where they all live.  ``MetricsRegistry`` holds *references*
to live instruments under hierarchical dotted names (``pe0.alu``,
``net.latency``, ``proc3``) and renders them all with a single
:meth:`snapshot` call into a flat, JSON-ready, deterministically ordered
dict — no instrument is copied or wrapped, so registering costs nothing
during the simulation itself.

Machines expose a ``metrics_registry()`` method that builds one of these
on demand; see docs/OBSERVABILITY.md for the full name catalogue.
"""

from ..common.queueing import FifoServer
from ..common.stats import Counter, Histogram, TimeWeighted, UtilizationTracker

__all__ = ["MetricsRegistry"]


class MetricsRegistry:
    """Dotted-name catalogue of live instruments with one ``snapshot()``."""

    def __init__(self):
        self._entries = {}

    # ------------------------------------------------------------------
    def register(self, name, instrument):
        """Attach ``instrument`` under ``name``.  Duplicate names are an
        error — a registry describes one machine, and one unit cannot be
        two things."""
        if name in self._entries:
            raise ValueError(f"metric name {name!r} already registered")
        self._entries[name] = instrument
        return instrument

    def register_counters(self, prefix, counter):
        """Sugar for the ubiquitous ``Counter`` bundles."""
        return self.register(prefix, counter)

    def names(self):
        return sorted(self._entries)

    def __contains__(self, name):
        return name in self._entries

    def __len__(self):
        return len(self._entries)

    # ------------------------------------------------------------------
    def snapshot(self, now=None):
        """Flatten every registered instrument into ``{name: value}``.

        ``now`` supplies the observation instant that utilization and
        time-weighted means need; instruments that do not use it ignore
        it.  Keys are emitted sorted, so two identical runs produce
        identical snapshots (dict equality *and* iteration order).
        """
        flat = {}
        for name in sorted(self._entries):
            self._render(flat, name, self._entries[name], now)
        # Sub-keys (.count/.mean/...) are appended in render order; sort
        # the whole mapping so iteration order is reproducible too.
        return dict(sorted(flat.items()))

    def _render(self, flat, name, instrument, now):
        if isinstance(instrument, Counter):
            for key, value in sorted(instrument.as_dict().items()):
                flat[f"{name}.{key}"] = value
        elif isinstance(instrument, Histogram):
            flat[f"{name}.count"] = instrument.count
            flat[f"{name}.mean"] = instrument.mean
            flat[f"{name}.min"] = instrument.min
            flat[f"{name}.max"] = instrument.max
        elif isinstance(instrument, TimeWeighted):
            flat[f"{name}.mean"] = instrument.mean(end_time=now)
            flat[f"{name}.max"] = instrument.max
            flat[f"{name}.current"] = instrument.current
        elif isinstance(instrument, UtilizationTracker):
            flat[f"{name}.operations"] = instrument.operations
            flat[f"{name}.busy"] = instrument.busy_time(now)
            if now is not None:
                flat[f"{name}.utilization"] = instrument.utilization(now)
        elif isinstance(instrument, FifoServer):
            flat[f"{name}.served"] = instrument.items_served
            flat[f"{name}.queue_mean"] = instrument.queue_depth.mean(
                end_time=now
            )
            flat[f"{name}.queue_max"] = instrument.queue_depth.max
            flat[f"{name}.busy"] = instrument.utilization.busy_time(now)
            if now is not None:
                flat[f"{name}.utilization"] = (
                    instrument.utilization.utilization(now)
                )
        elif callable(instrument):
            flat[name] = instrument()
        else:
            flat[name] = instrument

    def __repr__(self):
        return f"<MetricsRegistry entries={len(self._entries)}>"
