"""The structured event record every observability sink consumes.

An event is the smallest unit of "something happened in the machine":
a token matched, an instruction fired, a packet was delivered, a read
deferred on a presence bit.  The fields mirror the tuple the original
``TraceLog`` ring buffer stored — ``(time, source, kind, detail)`` —
plus an open ``fields`` dict for typed measurements (service durations,
latencies, queue depths) that the Chrome-trace exporter turns into
duration events and the JSONL sink serializes verbatim.

``source`` identifies the hardware unit: a PE number (int) for the
dataflow machine, a processor id for the von Neumann models, or a short
string (``"net"``, ``"sim"``, ``"-"``) for shared components.
"""

__all__ = ["TraceEvent", "KINDS"]

#: The event taxonomy (documented in docs/OBSERVABILITY.md).  Emitters are
#: not restricted to this set, but everything the built-in instrumentation
#: produces is listed here so sinks and tests can rely on the names.
KINDS = (
    # Tagged-token dataflow machine
    "exec",        # instruction fired in a PE's ALU (dur = ALU service time)
    "match",       # waiting-matching store completed an activity
    "park",        # token parked awaiting its partner
    "alloc",       # PE controller allocated an I-structure
    "route",       # output section handed a token to the interconnect
    "result",      # RETURN consumed the halt continuation
    # I-structure controller
    "is_read",     # read satisfied immediately
    "is_defer",    # read deferred on an unset presence bit
    "is_write",    # write performed (fields: drained = readers released)
    # Packet networks
    "net_inject",  # packet entered the network
    "net_deliver", # packet delivered (fields: latency, hops)
    "net_combine", # omega switch combined two FETCH-AND-ADD packets
    "net_split",   # omega switch split a combined reply
    # von Neumann processors
    "vn_exec",     # instruction issued (fields: op)
    "vn_stall",    # memory reference completed (fields: dur = stall cycles)
    "vn_retry",    # full/empty RETRY response, busy-wait re-issue
    "vn_switch",   # multithreaded processor switched hardware contexts
    "vn_halt",     # processor halted
    # Kernel
    "run_begin",   # Simulator.run() entered (fields: pending)
    "quiescent",   # event queue drained; quiescence hooks consulted
    "run_end",     # Simulator.run() returned (fields: events)
    # Fault injector (repro.faults; source = "faults")
    "fault_net_delay",  # packet delivery delayed (fields: dur)
    "fault_mem_slow",   # memory bank served a response late (fields: dur)
    "fault_mem_fail",   # transient bank failure; requester retries
                        # (fields: backoff)
    "fault_pe_stall",   # PE held its enabled instruction (fields: dur)
    "fault_pe_crash",   # PE dropped its instruction; re-fired after
                        # backoff (fields: backoff)
    # Sweep engine (repro.exp; time = wall seconds since sweep start)
    "sweep_begin", # a parameter sweep started (fields: configs, jobs)
    "sweep_task",  # one grid point finished (fields: index, status,
                   # attempts, cached, wall)
    "sweep_end",   # sweep finished (fields: ok, failed, cached, wall)
    # Sweep service (repro.serve; source = "serve", time = wall seconds
    # since the scheduler started)
    "serve_request",      # a sweep request was accepted (fields: sweep,
                          # experiment, cells)
    "serve_store_hit",    # a cell was answered from the durable store
                          # (fields: sweep, index)
    "serve_predict_hit",  # a cell was answered by the analytic surrogate
                          # (repro.predict; fields: sweep, index)
    "serve_assign",       # a cell was handed to a worker (fields: sweep,
                          # index, worker, attempt, backup)
    "serve_backup",       # a straggler cell was re-issued to an idle
                          # worker (fields: sweep, index, worker)
    "serve_requeue",      # an in-flight cell went back on the queue
                          # (fields: sweep, index, attempt, reason)
    "serve_worker_spawn", # a pool worker process started (fields: worker)
    "serve_worker_exit",  # a pool worker died or was terminated
                          # (fields: worker, reason)
    "serve_sweep_done",   # every cell of a sweep completed (fields:
                          # sweep, ok, failed, cached, executed, wall)
    # Worker flight recorder (repro.serve.protocol; source =
    # "worker<N>", time = wall seconds since the task began; every
    # event carries the sweep's trace id)
    "flight_begin",    # a task arrived (fields: trace, sweep, index,
                       # attempt, backup task flag when set)
    "flight_resolve",  # the run function resolved (import/memo)
    "flight_run",      # the run function was entered
    "flight_done",     # the run returned a value
    "flight_error",    # the run raised (detail = last traceback line)
    "flight_fatal",    # the run hit an operator interrupt / resource
                       # exhaustion (never retried; the worker exits)
)


class TraceEvent:
    """One structured observation at a simulated instant."""

    __slots__ = ("time", "source", "kind", "detail", "fields")

    def __init__(self, time, source, kind, detail="", fields=None):
        self.time = time
        self.source = source
        self.kind = kind
        self.detail = detail
        self.fields = fields

    def as_tuple(self):
        """The legacy ``TraceLog`` record shape."""
        return (self.time, self.source, self.kind, self.detail)

    def to_json_dict(self):
        """A flat, JSON-serializable dict (stable key order via sort)."""
        record = {
            "t": self.time,
            "src": self.source,
            "kind": self.kind,
            "detail": self.detail,
        }
        if self.fields:
            record.update(self.fields)
        return record

    def __repr__(self):
        return (
            f"TraceEvent(t={self.time}, src={self.source!r}, "
            f"kind={self.kind!r}, detail={self.detail!r})"
        )
