"""Observability: structured trace bus, metrics registry, trace export.

The paper's entire argument is carried by observables — ALU utilization
and idle time (§1.2), waiting-matching occupancy, token and message
counts (§2.2) — so this package makes every timed model emit them in one
uniform way:

* :class:`TraceBus` + sinks (:class:`RingSink`, :class:`JsonlSink`,
  :class:`ChromeTraceSink`) — typed per-event telemetry; a Chrome-format
  export opens in Perfetto as a per-PE timeline;
* :class:`MetricsRegistry` — the existing ``repro.common.stats``
  primitives under hierarchical names with one ``snapshot()`` call;
* :class:`LiveMetrics` — thread-safe process-lifetime counters, gauges,
  and histograms rendered in the Prometheus text format; the telemetry
  plane behind ``repro serve``'s ``GET /metrics`` and ``repro top``.

Everything is opt-in and near-zero-cost when off: machines guard each
emission on a single ``is not None`` check.  See docs/OBSERVABILITY.md.
"""

from .bus import TraceBus
from .events import KINDS, TraceEvent
from .live import LiveMetrics, parse_prometheus
from .registry import MetricsRegistry
from .sinks import ChromeTraceSink, JsonlSink, RingSink, validate_chrome_trace

__all__ = [
    "KINDS",
    "ChromeTraceSink",
    "JsonlSink",
    "LiveMetrics",
    "MetricsRegistry",
    "RingSink",
    "TraceBus",
    "TraceEvent",
    "parse_prometheus",
    "validate_chrome_trace",
]
