"""The ``repro profile`` report: accounting + critical path + slack.

Everything here is deterministic — the report contains simulated cycles
only (never wall-clock), so two runs of the same configuration render
byte-identical reports.  That property is load-bearing: the tests and
the acceptance criteria diff reports across runs.
"""

from .accounting import BUCKET_ISSUES, BUCKETS
from .causal import CausalGraph
from .critical_path import compute_slack, extract_critical_path

__all__ = ["ProfileReport", "build_profile"]


class ProfileReport:
    """One run's profile: cycle accounting plus the causal analysis."""

    def __init__(self, meta, accounting, graph=None, path=None, slack=None):
        self.meta = dict(meta or {})
        self.accounting = accounting
        self.graph = graph
        self.path = path
        self.slack = slack or {}

    # ------------------------------------------------------------------
    def slack_summary(self):
        """(zero-slack events, mean slack, max slack) off the path."""
        if not self.slack:
            return {"events": 0, "zero_slack": 0, "mean": 0.0, "max": 0.0}
        values = sorted(self.slack.values())
        zero = sum(1 for v in values if v == 0.0)
        return {
            "events": len(values),
            "zero_slack": zero,
            "mean": sum(values) / len(values),
            "max": values[-1],
        }

    # ------------------------------------------------------------------
    def format(self, max_path_nodes=12):
        lines = []
        meta = self.meta
        title = meta.get("source", meta.get("machine", "run"))
        engine = meta.get("engine", "")
        lines.append(f"profile: {title}" + (f" [{engine}]" if engine else ""))
        for key in ("result", "time_cycles", "instructions"):
            if key in meta:
                lines.append(f"  {key}: {meta[key]}")

        acct = self.accounting
        if acct is not None:
            totals = acct.totals()
            lines.append("")
            lines.append(
                f"cycle accounting: window {acct.window:g} cycles x "
                f"{acct.n_units} units = {acct.total_unit_cycles:g} "
                "unit-cycles"
            )
            fractions = acct.fractions()
            for bucket in BUCKETS:
                issue = BUCKET_ISSUES.get(bucket)
                note = f"   <- {issue}" if issue else ""
                lines.append(
                    f"  {bucket:<14} {totals[bucket]:>14g}  "
                    f"{100.0 * fractions[bucket]:6.2f}%{note}"
                )
            residual = acct.check()
            lines.append(
                "  invariant: buckets sum to cycles x units "
                + ("[exact]" if acct.exact()
                   else f"[max unit residual {residual:g}]")
            )

        if self.path is not None:
            lines.append("")
            lines.append(self.path.format(max_nodes=max_path_nodes))
            breakdown = self.path.kind_breakdown()
            total = self.path.cycles
            if total > 0:
                parts = ", ".join(
                    f"{kind} {100.0 * span / total:.1f}%"
                    for kind, span in sorted(breakdown.items(),
                                             key=lambda kv: (-kv[1], kv[0]))
                )
                lines.append(f"  path composition: {parts}")
            summary = self.slack_summary()
            if summary["events"]:
                lines.append(
                    f"  slack: {summary['zero_slack']}/{summary['events']} "
                    f"events at zero slack, mean {summary['mean']:g}, "
                    f"max {summary['max']:g} cycles"
                )
        return "\n".join(lines)

    def as_dict(self):
        payload = {"meta": dict(self.meta)}
        if self.accounting is not None:
            payload["accounting"] = self.accounting.as_dict()
            payload["totals"] = self.accounting.totals()
            payload["fractions"] = self.accounting.fractions()
        if self.path is not None:
            payload["critical_path"] = self.path.as_dict()
            payload["slack"] = self.slack_summary()
        if self.graph is not None:
            payload["causal_events"] = len(self.graph)
        return payload

    def __repr__(self):
        return (
            f"<ProfileReport units="
            f"{0 if self.accounting is None else self.accounting.n_units} "
            f"path={0 if self.path is None else len(self.path)}>"
        )


def build_profile(events, accounting, meta=None):
    """Assemble a :class:`ProfileReport` from a provenance trace.

    ``events`` is any iterable of TraceEvents (a RingSink's ``events``);
    ``accounting`` a :class:`CycleAccounting` or None.  When the trace
    carries no provenance the causal sections are simply omitted.
    """
    graph = CausalGraph.from_events(events)
    path = None
    slack = None
    if len(graph):
        path = extract_critical_path(graph)
        slack = compute_slack(graph)
    return ProfileReport(meta=meta, accounting=accounting, graph=graph,
                         path=path, slack=slack)
