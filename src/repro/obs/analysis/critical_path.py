"""Critical-path extraction and per-activity slack over a causal DAG.

The *simulated critical path* is the time-maximal causal chain from a
root event (an injected token, a processor start) to the terminal event
(the program's ``result``): the sequence of activities that actually
gated the makespan.  Anything off the path had *slack* — it could have
run later (on fewer units, or behind a longer latency) without slowing
the answer.  This is the machine-level analogue of the interpreter's
ideal critical path, but measured on the timed machine with real
service times, queueing and network latency included.

The path exports as Chrome trace_event **flow events** ("s"/"t"/"f"
records sharing one id) so Perfetto draws the chain as arrows across
the per-PE tracks of the existing timeline.
"""

__all__ = [
    "CriticalPath",
    "extract_critical_path",
    "compute_slack",
    "chrome_flow_events",
]


class CriticalPath:
    """The extracted path: a list of :class:`CausalNode`, root first."""

    def __init__(self, nodes):
        if not nodes:
            raise ValueError("critical path needs at least one node")
        self.nodes = nodes

    # ------------------------------------------------------------------
    @property
    def root(self):
        return self.nodes[0]

    @property
    def terminal(self):
        return self.nodes[-1]

    @property
    def cycles(self):
        """Path length in cycles: terminal completion minus root start."""
        return self.terminal.time - self.root.start

    def __len__(self):
        return len(self.nodes)

    def kind_breakdown(self):
        """Cycles on the path attributed to each event kind.

        Each path node owns the interval from its predecessor's
        completion to its own completion (service + the queueing in
        front of it); the root owns its own duration.
        """
        breakdown = {}
        previous = self.root.start
        for node in self.nodes:
            span = node.time - previous
            breakdown[node.event.kind] = (
                breakdown.get(node.event.kind, 0.0) + span
            )
            previous = node.time
        return breakdown

    # ------------------------------------------------------------------
    def format(self, max_nodes=None):
        """Deterministic text rendering (byte-identical across runs)."""
        lines = [
            f"critical path: {len(self.nodes)} events, "
            f"{self.cycles:g} cycles"
        ]
        show = range(len(self.nodes))
        elide_from = elide_to = None
        if max_nodes is not None and len(self.nodes) > max_nodes:
            head = max_nodes // 2
            elide_from = head
            elide_to = len(self.nodes) - (max_nodes - head)
            show = list(range(head)) + list(range(elide_to, len(self.nodes)))
        for index in show:
            if index == elide_to and elide_from is not None:
                lines.append(
                    f"  ... {elide_to - elide_from} events elided ..."
                )
            node = self.nodes[index]
            previous = (self.nodes[index - 1].time if index > 0
                        else self.root.start)
            span = node.time - previous
            lines.append(
                f"  t={node.time:<10g} +{span:<8g} {node.label()}"
            )
        return "\n".join(lines)

    def as_dict(self):
        return {
            "cycles": self.cycles,
            "events": len(self.nodes),
            "kind_breakdown": self.kind_breakdown(),
            "path": [
                {"eid": node.eid, "t": node.time, "kind": node.event.kind,
                 "src": node.event.source, "detail": node.event.detail}
                for node in self.nodes
            ],
        }

    def __repr__(self):
        return f"<CriticalPath events={len(self.nodes)} cycles={self.cycles:g}>"


def extract_critical_path(graph, terminal=None):
    """Walk binding predecessors from the terminal back to a root.

    At each node the *binding* parent is the one that finished last —
    the activity the node actually waited for.  Ties break on the larger
    eid (the later emission), which is deterministic because eids are.
    """
    if not len(graph):
        raise ValueError(
            "empty causal graph — was the trace recorded with "
            "TraceBus(provenance=True)?"
        )
    node = graph.terminal() if terminal is None else terminal
    path = [node]
    while True:
        binding = None
        for parent_eid in node.parents:
            parent = graph.nodes.get(parent_eid)
            if parent is None:
                continue
            if binding is None or (parent.time, parent.eid) > (
                    binding.time, binding.eid):
                binding = parent
        if binding is None:
            break
        path.append(binding)
        node = binding
    path.reverse()
    return CriticalPath(path)


def compute_slack(graph, terminal=None):
    """Per-activity slack: how late each event could have finished.

    ``required_by(n) = min over children c of (required_by(c) - dur(c))``
    with the terminal required at its own completion; slack is
    ``required_by(n) - n.time``.  Events on the critical path have zero
    (or near-zero) slack; large slack marks activities the machine could
    have deferred — the per-activity answer to "would more latency here
    have mattered?".  Leaves other than the terminal are required only
    by the makespan.  Returns ``{eid: slack}``.
    """
    if not len(graph):
        return {}
    terminal = graph.terminal() if terminal is None else terminal
    end_time = terminal.time
    required = {}
    # Reverse-eid order is reverse-topological (parents have smaller eids).
    for eid in sorted(graph.nodes, reverse=True):
        node = graph.nodes[eid]
        if eid == terminal.eid:
            required[eid] = node.time
            continue
        need = end_time
        for child_eid in node.children:
            child = graph.nodes[child_eid]
            need = min(need, required[child_eid] - child.dur)
        required[eid] = need
    return {eid: max(0.0, required[eid] - graph.nodes[eid].time)
            for eid in graph.nodes}


def chrome_flow_events(path, tid_of, cycle_us=1.0, flow_id=1,
                       name="critical_path"):
    """Chrome trace_event flow records for a :class:`CriticalPath`.

    ``tid_of(source)`` maps an event source to the track id the timeline
    used (pass :meth:`ChromeTraceSink.tid_of`).  Append the records to
    the sink's payload and Perfetto draws the path as arrows.
    """
    records = []
    last = len(path.nodes) - 1
    for index, node in enumerate(path.nodes):
        record = {
            "name": name,
            "cat": "repro.flow",
            "ph": "s" if index == 0 else ("f" if index == last else "t"),
            "pid": 0,
            "tid": tid_of(node.event.source),
            "ts": node.time * cycle_us,
            "id": flow_id,
        }
        if index == last:
            record["bp"] = "e"  # bind to the enclosing slice
        records.append(record)
    return records
