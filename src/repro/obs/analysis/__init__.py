"""Causal profiling and cycle accounting over ``repro.obs`` traces.

The paper's argument is that multiprocessor cycles are lost to two
causes — memory latency (Issue 1) and waits for synchronization events
(Issue 2).  This subpackage turns the deterministic event streams the
rest of :mod:`repro.obs` produces into *attribution*:

* :mod:`~repro.obs.analysis.accounting` — per-unit cycle accounting:
  every unit-cycle of a run lands in exactly one of five buckets
  (compute / memory_stall / sync_wait / network_queue / idle), with the
  invariant that the buckets sum to ``cycles x units``;
* :mod:`~repro.obs.analysis.causal` — reconstructs the causal DAG from
  a provenance-enabled trace (``TraceBus(provenance=True)``);
* :mod:`~repro.obs.analysis.critical_path` — extracts the simulated
  critical path and per-activity slack, and exports the path as Chrome
  trace_event *flow events* so Perfetto draws it over the timeline;
* :mod:`~repro.obs.analysis.report` — assembles everything into the
  deterministic report behind ``repro profile``;
* :mod:`~repro.obs.analysis.regress` — the benchmark regression gate
  behind ``repro bench --check``.
"""

from .accounting import (
    BUCKET_ISSUES,
    BUCKETS,
    CycleAccounting,
    UnitAccount,
    ttda_accounting,
    ultra_accounting,
    unit_account,
    vn_accounting,
)
from .causal import CausalGraph, CausalNode
from .critical_path import (
    CriticalPath,
    chrome_flow_events,
    compute_slack,
    extract_critical_path,
)
from .report import ProfileReport, build_profile
from .regress import (
    baseline_path,
    check_suite,
    compare_entry,
    format_report,
    make_baseline,
    write_baselines,
)

__all__ = [
    "BUCKET_ISSUES",
    "BUCKETS",
    "baseline_path",
    "make_baseline",
    "CausalGraph",
    "CausalNode",
    "CriticalPath",
    "CycleAccounting",
    "ProfileReport",
    "UnitAccount",
    "build_profile",
    "check_suite",
    "chrome_flow_events",
    "compare_entry",
    "compute_slack",
    "extract_critical_path",
    "format_report",
    "ttda_accounting",
    "ultra_accounting",
    "unit_account",
    "vn_accounting",
    "write_baselines",
]
