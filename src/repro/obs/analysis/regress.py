"""The benchmark regression gate behind ``repro bench --check``.

A *baseline* is a committed JSON snapshot of one experiment's sweep
table (``benchmarks/baselines/<experiment>.json``).  The gate re-runs
the sweep and compares every cell against the baseline with per-metric
tolerances: simulated metrics are deterministic, so the default
tolerance is essentially exact; wall-clock columns are ignored
entirely (they measure the host, not the machines).

``check_suite`` returns a structured result the CLI renders and turns
into an exit code, so CI fails loudly on any drift — a changed cycle
count, a lost row, a renamed column.
"""

import json
import math
import os

__all__ = [
    "DEFAULT_ABS_TOL",
    "DEFAULT_REL_TOL",
    "baseline_path",
    "check_suite",
    "compare_entry",
    "format_report",
    "make_baseline",
    "write_baselines",
]

DEFAULT_REL_TOL = 1e-9
DEFAULT_ABS_TOL = 1e-12

#: Column-name substrings that mark host-dependent metrics.
_IGNORED_MARKERS = ("wall",)


def _ignored(column):
    lowered = column.lower()
    return any(marker in lowered for marker in _IGNORED_MARKERS)


def baseline_path(baseline_dir, experiment):
    return os.path.join(baseline_dir, f"{experiment}.json")


def _entry_rows(entry):
    """The entry's data as lists in column order.

    The bench runner ships rows as ``{column: value}`` dicts
    (:func:`repro.exp.tables.table_rows`); plain sequences pass through.
    """
    columns = list(entry["columns"])
    rows = []
    for row in entry["data"]:
        if isinstance(row, dict):
            rows.append([row.get(column) for column in columns])
        else:
            rows.append(list(row))
    return rows


def make_baseline(entry, rel_tol=DEFAULT_REL_TOL, abs_tol=DEFAULT_ABS_TOL):
    """Baseline payload for one telemetry entry from the bench runner."""
    return {
        "experiment": entry["experiment"],
        "columns": list(entry["columns"]),
        "rows": _entry_rows(entry),
        "tolerances": {"rel": rel_tol, "abs": abs_tol},
    }


def write_baselines(aggregate, baseline_dir, rel_tol=DEFAULT_REL_TOL,
                    abs_tol=DEFAULT_ABS_TOL):
    """Write one baseline file per entry; returns the paths written."""
    os.makedirs(baseline_dir, exist_ok=True)
    paths = []
    for entry in aggregate:
        path = baseline_path(baseline_dir, entry["experiment"])
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(make_baseline(entry, rel_tol, abs_tol), handle,
                      indent=2, sort_keys=True)
            handle.write("\n")
        paths.append(path)
    return paths


def _values_match(fresh, base, rel_tol, abs_tol):
    if isinstance(fresh, (int, float)) and not isinstance(fresh, bool) \
            and isinstance(base, (int, float)) and not isinstance(base, bool):
        # Non-finite cells get exact semantics, never tolerance
        # arithmetic: a table "-" parses to NaN (tables.parse_cell), so
        # NaN vs NaN compares clean and NaN vs a number is a drift; inf
        # vs inf of the same sign is equal (the naive |a-b| <= tol path
        # computes inf-inf = NaN and would flag two identical "infx"
        # cells as drift), inf vs anything else is a drift.
        if math.isnan(fresh) or math.isnan(base):
            return math.isnan(fresh) and math.isnan(base)
        if math.isinf(fresh) or math.isinf(base):
            return fresh == base
        return abs(fresh - base) <= abs_tol + rel_tol * max(abs(fresh),
                                                            abs(base))
    return fresh == base


def compare_entry(entry, baseline, rel_tol=None, abs_tol=None):
    """Compare one fresh telemetry entry against its baseline.

    Returns a list of diff dicts (empty means clean).  Tolerances
    default to the ones recorded in the baseline file.
    """
    tolerances = baseline.get("tolerances", {})
    rel = tolerances.get("rel", DEFAULT_REL_TOL) if rel_tol is None else rel_tol
    abs_ = tolerances.get("abs", DEFAULT_ABS_TOL) if abs_tol is None else abs_tol

    diffs = []
    columns = list(entry["columns"])
    base_columns = list(baseline["columns"])
    if columns != base_columns:
        diffs.append({
            "experiment": entry["experiment"], "kind": "columns",
            "fresh": columns, "baseline": base_columns,
        })
        return diffs

    rows = _entry_rows(entry)
    base_rows = baseline["rows"]
    if len(rows) != len(base_rows):
        diffs.append({
            "experiment": entry["experiment"], "kind": "rows",
            "fresh": len(rows), "baseline": len(base_rows),
        })
        return diffs

    for index, (row, base_row) in enumerate(zip(rows, base_rows)):
        for column, fresh, base in zip(columns, row, base_row):
            if _ignored(column):
                continue
            if not _values_match(fresh, base, rel, abs_):
                diffs.append({
                    "experiment": entry["experiment"], "kind": "cell",
                    "row": index, "column": column,
                    "fresh": fresh, "baseline": base,
                })
    return diffs


def check_suite(aggregate, baseline_dir, rel_tol=None, abs_tol=None):
    """Check every entry with a committed baseline.

    Returns ``{"checked", "missing", "diffs", "ok"}`` — ``missing``
    lists experiments that ran but have no baseline file (not a
    failure: new experiments land before their baselines do).
    """
    checked = []
    missing = []
    diffs = []
    for entry in aggregate:
        path = baseline_path(baseline_dir, entry["experiment"])
        if not os.path.exists(path):
            missing.append(entry["experiment"])
            continue
        with open(path, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        checked.append(entry["experiment"])
        diffs.extend(compare_entry(entry, baseline, rel_tol, abs_tol))
    return {"checked": checked, "missing": missing, "diffs": diffs,
            "ok": not diffs}


def format_report(result):
    """Human-readable rendering of a :func:`check_suite` result."""
    lines = []
    status = "OK" if result["ok"] else "REGRESSION"
    lines.append(
        f"bench check: {status} — {len(result['checked'])} experiment(s) "
        f"checked, {len(result['missing'])} without baselines, "
        f"{len(result['diffs'])} diff(s)"
    )
    for name in result["missing"]:
        lines.append(f"  [no baseline] {name}")
    for diff in result["diffs"]:
        if diff["kind"] == "cell":
            lines.append(
                f"  [diff] {diff['experiment']} row {diff['row']} "
                f"{diff['column']!r}: fresh {diff['fresh']!r} != "
                f"baseline {diff['baseline']!r}"
            )
        elif diff["kind"] == "rows":
            lines.append(
                f"  [diff] {diff['experiment']}: {diff['fresh']} row(s), "
                f"baseline has {diff['baseline']}"
            )
        else:
            lines.append(
                f"  [diff] {diff['experiment']}: columns changed — fresh "
                f"{diff['fresh']!r} vs baseline {diff['baseline']!r}"
            )
    return "\n".join(lines)
