"""Cycle accounting: where every unit-cycle of a run went.

The decomposition follows the paper's taxonomy of losses:

* ``compute`` — the unit did the work it exists for (ALU slices,
  instruction issue, fetch);
* ``memory_stall`` — **Issue 1**, "memory latency": cycles a unit spent
  waiting on (or servicing) memory references;
* ``sync_wait`` — **Issue 2**, "waits for synchronization events":
  matching-store residency, full/empty busy-wait retries, context-switch
  overhead, semaphore spins;
* ``network_queue`` — cycles attributable to the interconnect (output
  sections, switch rails, round-trip queueing);
* ``idle`` — nothing to do (insufficient exposed parallelism, or the
  unit finished early and waited for the makespan).

Accounting is *per unit*: a unit is one hardware resource with its own
clock — a pipeline stage, a processor, a memory port, a switch rail.
For every unit the five buckets sum **exactly** to the run's window
(total cycles), so across the machine they sum to ``cycles x units``.
The invariant is structural: :func:`unit_account` computes ``idle`` as
the residual of the other four buckets in a fixed accumulation order,
and :meth:`CycleAccounting.check` re-verifies the sum (and that no
bucket went negative, which would mean an instrumentation bug).
"""

__all__ = [
    "BUCKETS",
    "UnitAccount",
    "CycleAccounting",
    "unit_account",
    "ttda_accounting",
    "vn_accounting",
    "ultra_accounting",
]

#: Canonical bucket order.  Sums iterate in this order so the exactness
#: of the idle-as-residual construction survives float accumulation.
BUCKETS = ("compute", "memory_stall", "sync_wait", "network_queue", "idle")

#: Which paper issue each loss bucket measures (docs + reports).
BUCKET_ISSUES = {
    "memory_stall": "Issue 1 (memory latency)",
    "sync_wait": "Issue 2 (synchronization waits)",
}


class UnitAccount:
    """One unit's cycles, decomposed into the five buckets."""

    __slots__ = ("unit", "window", "buckets")

    def __init__(self, unit, window, buckets):
        self.unit = unit
        self.window = window
        self.buckets = buckets

    def total(self):
        total = 0.0
        for bucket in BUCKETS:
            total += self.buckets[bucket]
        return total

    def as_dict(self):
        return {"unit": self.unit, "window": self.window,
                "buckets": dict(self.buckets)}

    @classmethod
    def from_dict(cls, payload):
        return cls(payload["unit"], payload["window"],
                   dict(payload["buckets"]))

    def __repr__(self):
        parts = " ".join(f"{b}={self.buckets[b]:g}" for b in BUCKETS)
        return f"<UnitAccount {self.unit!r} window={self.window:g} {parts}>"


def unit_account(unit, window, compute=0.0, memory_stall=0.0,
                 sync_wait=0.0, network_queue=0.0):
    """Build a :class:`UnitAccount` with ``idle`` as the exact residual."""
    partial = 0.0
    for value in (compute, memory_stall, sync_wait, network_queue):
        partial += value
    return UnitAccount(unit, window, {
        "compute": compute,
        "memory_stall": memory_stall,
        "sync_wait": sync_wait,
        "network_queue": network_queue,
        "idle": window - partial,
    })


class CycleAccounting:
    """The full decomposition of one run: a window and its units."""

    def __init__(self, machine, window, units):
        self.machine = machine
        self.window = window
        self.units = list(units)

    # ------------------------------------------------------------------
    @property
    def n_units(self):
        return len(self.units)

    @property
    def total_unit_cycles(self):
        """``cycles x units`` — what the buckets must sum to."""
        return self.window * self.n_units

    def totals(self):
        """Bucket sums across all units, in canonical order."""
        totals = {bucket: 0.0 for bucket in BUCKETS}
        for unit in self.units:
            for bucket in BUCKETS:
                totals[bucket] += unit.buckets[bucket]
        return totals

    def fractions(self):
        """Bucket totals as fractions of ``cycles x units``."""
        denom = self.total_unit_cycles
        if denom <= 0:
            return {bucket: 0.0 for bucket in BUCKETS}
        return {bucket: value / denom
                for bucket, value in self.totals().items()}

    # ------------------------------------------------------------------
    def check(self, tol=1e-9):
        """Verify the invariant; returns the worst per-unit residual.

        Raises ``ValueError`` if any unit's buckets fail to sum to the
        window (relative tolerance ``tol``) or a non-idle bucket is
        negative.  ``idle`` may be (tiny) negative only within ``tol``
        — a real negative means some unit was double-counted.
        """
        worst = 0.0
        for unit in self.units:
            scale = max(1.0, abs(unit.window))
            residual = unit.total() - unit.window
            worst = max(worst, abs(residual))
            if abs(residual) > tol * scale:
                raise ValueError(
                    f"accounting violated for unit {unit.unit!r}: buckets "
                    f"sum to {unit.total()!r}, window is {unit.window!r}"
                )
            for bucket in BUCKETS:
                if unit.buckets[bucket] < -tol * scale:
                    raise ValueError(
                        f"negative {bucket} ({unit.buckets[bucket]!r}) "
                        f"for unit {unit.unit!r}"
                    )
        return worst

    def exact(self):
        """True when every unit's buckets sum *bit-for-bit* to the window."""
        return all(unit.total() == unit.window for unit in self.units)

    # ------------------------------------------------------------------
    def as_dict(self):
        return {
            "machine": self.machine,
            "window": self.window,
            "units": [unit.as_dict() for unit in self.units],
        }

    @classmethod
    def from_dict(cls, payload):
        return cls(
            machine=payload["machine"],
            window=payload["window"],
            units=[UnitAccount.from_dict(u) for u in payload["units"]],
        )

    def __repr__(self):
        return (
            f"<CycleAccounting {self.machine!r} window={self.window:g} "
            f"units={self.n_units}>"
        )


# ---------------------------------------------------------------------------
# Builders: one per machine family.  Each knows which hardware resource
# maps to which bucket; the paper's Issues 1 and 2 are the two loss rows.
# ---------------------------------------------------------------------------

#: TTDA pipeline stages -> bucket of their *busy* time.  The
#: waiting-matching section is the synchronization hardware (Issue 2 made
#: explicit in silicon); the I-structure controller and the PE controller
#: are the memory system (Issue 1); the output section feeds the network.
_TTDA_STAGE_BUCKETS = (
    ("wm", "waiting_matching", "sync_wait"),
    ("fetch", "fetch", "compute"),
    ("alu", "alu", "compute"),
    ("out", "output", "network_queue"),
    ("ctrl", "controller", "memory_stall"),
)


def ttda_accounting(machine, window=None):
    """Accounting for a finished :class:`TaggedTokenMachine` run.

    Units are the pipeline stages of every PE (wm, fetch, alu, out,
    ctrl, isc): each is a FIFO server whose busy time lands in the
    stage's bucket and whose remaining cycles are idle.  The window is
    the drain time (``machine.sim.now`` after quiescence).
    """
    now = machine.sim.now if window is None else window
    units = []
    for pe in machine.pes:
        for suffix, attr, bucket in _TTDA_STAGE_BUCKETS:
            server = getattr(pe, attr)
            busy = server.utilization.busy_time(now)
            units.append(unit_account(f"pe{pe.pe}.{suffix}", now,
                                      **{bucket: busy}))
        isc_busy = pe.istructure.utilization.busy_time(now)
        units.append(unit_account(f"pe{pe.pe}.isc", now,
                                  memory_stall=isc_busy))
    return CycleAccounting("ttda", now, units)


def vn_accounting(machine, result, name=None):
    """Accounting for a finished :class:`VNMachine` run.

    Units are the processors.  Single-context processors split their
    non-busy time into ``memory_stall`` (plain reference round-trips,
    Issue 1) and ``sync_wait`` (references that drew at least one
    full/empty RETRY, Issue 2 — the busy-waiting loop of footnote 2).
    Multithreaded processors charge context-switch overhead and
    retry-classified whole-pipeline idle windows to ``sync_wait``, and
    latency-classified idle windows (all contexts parked on plain
    references, the too-few-contexts regime of §1.1) to
    ``memory_stall``; trailing wait for the makespan is ``idle``.
    """
    window = result.time
    units = []
    for proc in machine.processors:
        compute = proc.busy_cycles - getattr(proc, "halt_overcount", 0.0)
        if hasattr(proc, "contexts"):  # MultithreadedProcessor
            sync = proc.switch_cycles + proc.sync_idle_cycles
            stall = proc.stall_idle_cycles
        else:
            sync = proc.sync_cycles
            stall = proc.stall_cycles
        units.append(unit_account(
            f"proc{proc.proc_id}", window,
            compute=compute, memory_stall=stall, sync_wait=sync,
        ))
    return CycleAccounting(name or "vn", window, units)


def ultra_accounting(net, servers, window, name="ultracomputer"):
    """Accounting for an Ultracomputer hot-spot run.

    Units are the memory-port servers (busy time = memory service,
    Issue 1) and the omega switch output rails (busy time = network
    forwarding; their queueing is what combining exists to bound).
    """
    units = []
    for server in servers:
        busy = server.utilization.busy_time(window)
        units.append(unit_account(server.name, window, memory_stall=busy))
    for (stage, rail), switch in sorted(net._switches.items()):
        busy = switch.utilization.busy_time(window)
        units.append(unit_account(f"{net.name}.s{stage}r{rail}", window,
                                  network_queue=busy))
    return CycleAccounting(name, window, units)
