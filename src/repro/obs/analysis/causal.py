"""Reconstruct the causal DAG from a provenance-enabled trace.

With ``TraceBus(provenance=True)`` every event carries a monotone
``eid``, and the instrumented emitters link effects to causes:

* ``parent`` — the single event that directly enabled this one (a
  token's ``exec`` points at the ``match`` that enabled the activity,
  a ``net_deliver`` at its ``net_inject``, ...);
* ``joins`` — additional parents for many-to-one joins (a ``match``
  joins the ``park`` events of the operands that arrived earlier).

Because the bus assigns eids in emission order and the simulation kernel
is deterministic, eids are topologically ordered: every parent has a
smaller eid than its children.  The graph algorithms below exploit that
(reverse-eid iteration is reverse-topological).
"""

__all__ = ["CausalNode", "CausalGraph"]


class CausalNode:
    """One event in the causal DAG."""

    __slots__ = ("eid", "event", "parents", "children")

    def __init__(self, eid, event):
        self.eid = eid
        self.event = event
        self.parents = []   # eids (may include dangling refs if the
        self.children = []  # trace was truncated by a bounded ring)

    @property
    def time(self):
        """Completion time of the activity."""
        return self.event.time

    @property
    def start(self):
        """Start time: completion minus service duration, if recorded."""
        fields = self.event.fields or {}
        dur = fields.get("dur")
        return self.event.time - dur if dur else self.event.time

    @property
    def dur(self):
        fields = self.event.fields or {}
        return fields.get("dur") or 0.0

    def label(self):
        event = self.event
        source = f"pe{event.source}" if isinstance(event.source, int) \
            else str(event.source)
        return f"{source} {event.kind} {event.detail}".rstrip()

    def __repr__(self):
        return f"<CausalNode #{self.eid} t={self.time} {self.event.kind}>"


class CausalGraph:
    """The DAG of one run's events, indexed by eid."""

    def __init__(self, nodes):
        self.nodes = nodes  # {eid: CausalNode}

    @classmethod
    def from_events(cls, events):
        """Build the graph from any iterable of :class:`TraceEvent`.

        Events without an ``eid`` (non-provenance traces) are skipped;
        parent references to events outside the iterable (e.g. dropped
        by a bounded ring) dangle harmlessly.
        """
        nodes = {}
        for event in events:
            fields = event.fields or {}
            eid = fields.get("eid")
            if eid is None:
                continue
            node = CausalNode(eid, event)
            parent = fields.get("parent")
            if parent is not None:
                node.parents.append(parent)
            for join in fields.get("joins") or ():
                node.parents.append(join)
            nodes[eid] = node
        for node in nodes.values():
            for parent in node.parents:
                parent_node = nodes.get(parent)
                if parent_node is not None:
                    parent_node.children.append(node.eid)
        return cls(nodes)

    # ------------------------------------------------------------------
    def __len__(self):
        return len(self.nodes)

    def node(self, eid):
        return self.nodes[eid]

    def roots(self):
        """Nodes with no (resolvable) parents, in eid order."""
        return [node for eid, node in sorted(self.nodes.items())
                if not any(p in self.nodes for p in node.parents)]

    def terminal(self):
        """The node the critical path ends at.

        Prefer the program's ``result`` event (the answer popping out);
        then the latest event with a resolvable parent (bookkeeping roots
        like the kernel's ``run_end`` carry no provenance and would yield
        a one-node path); finally the latest event overall.  Ties break
        on eid, which is deterministic.
        """
        best = None
        for eid in sorted(self.nodes):
            node = self.nodes[eid]
            if node.event.kind == "result":
                if best is None or (node.time, node.eid) > (best.time, best.eid):
                    best = node
        if best is not None:
            return best
        for eid in sorted(self.nodes):
            node = self.nodes[eid]
            if not any(p in self.nodes for p in node.parents):
                continue
            if best is None or (node.time, node.eid) > (best.time, best.eid):
                best = node
        if best is not None:
            return best
        for eid in sorted(self.nodes):
            node = self.nodes[eid]
            if best is None or (node.time, node.eid) > (best.time, best.eid):
                best = node
        return best

    def edges(self):
        """(parent_eid, child_eid) pairs, resolvable ones only."""
        out = []
        for eid in sorted(self.nodes):
            for parent in self.nodes[eid].parents:
                if parent in self.nodes:
                    out.append((parent, eid))
        return out

    def __repr__(self):
        return f"<CausalGraph nodes={len(self.nodes)}>"
