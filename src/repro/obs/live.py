"""Runtime telemetry for long-lived processes: the ``LiveMetrics`` layer.

The :class:`~repro.obs.registry.MetricsRegistry` describes one *machine*
— references to simulation-time instruments, snapshotted after a run.
``repro serve`` needs the complementary thing: process-lifetime counters
and gauges that several threads update concurrently (the HTTP transport,
the scheduler loop, worker-watching code) and that one endpoint renders
in the Prometheus text exposition format.  ``LiveMetrics`` is that
layer:

* **counters** — monotonically increasing totals (``inc``);
* **gauges** — set-to-current values (``set``), or *callable* gauges
  evaluated at render time (``gauge_fn``) for values that already live
  somewhere else, e.g. the content store's entry count or a
  ``MetricsRegistry.snapshot()``;
* **histograms** — fixed-bucket distributions (``observe``), rendered
  with the cumulative ``_bucket``/``_sum``/``_count`` series Prometheus
  expects.

Every instrument supports label sets (passed as a dict; stored sorted),
every update takes one lock, and :meth:`render` emits families and
label sets in sorted order so two renders of the same state are
byte-identical.  :func:`parse_prometheus` is the matching reader used by
``repro top`` and the tests — stdlib-only, like everything here.
"""

import threading

__all__ = ["LiveMetrics", "parse_prometheus", "DEFAULT_BUCKETS"]

#: Default latency buckets (seconds) — tuned for a local service where
#: requests are either instant or waiting on a long-poll/sweep.
DEFAULT_BUCKETS = (0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10.0, 60.0)


def _labels_key(labels):
    """Canonical, hashable form of a label dict (sorted tuple)."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _labels_text(key):
    if not key:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in key)
    return "{" + inner + "}"


def _format_value(value):
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


class _Family:
    __slots__ = ("name", "kind", "help", "series", "buckets", "fn")

    def __init__(self, name, kind, help_text, buckets=None, fn=None):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.series = {}  # labels_key -> value | _HistogramSeries
        self.buckets = buckets
        self.fn = fn


class _HistogramSeries:
    __slots__ = ("counts", "total", "count")

    def __init__(self, nbuckets):
        self.counts = [0] * nbuckets  # non-cumulative per-bucket counts
        self.total = 0.0
        self.count = 0


class LiveMetrics:
    """Thread-safe labeled counters/gauges/histograms with one
    deterministic Prometheus-text :meth:`render`."""

    def __init__(self, namespace="repro"):
        self.namespace = namespace
        self._lock = threading.Lock()
        self._families = {}  # full name -> _Family

    # ------------------------------------------------------------------
    # Declaration
    # ------------------------------------------------------------------
    def _declare(self, name, kind, help_text, buckets=None, fn=None):
        full = f"{self.namespace}_{name}" if self.namespace else name
        with self._lock:
            family = self._families.get(full)
            if family is not None:
                if family.kind != kind:
                    raise ValueError(
                        f"metric {full!r} already declared as {family.kind}"
                    )
                return family
            family = _Family(full, kind, help_text, buckets=buckets, fn=fn)
            self._families[full] = family
            return family

    def counter(self, name, help_text=""):
        """Declare a counter family (idempotent); returns ``self``."""
        self._declare(name, "counter", help_text)
        return self

    def gauge(self, name, help_text=""):
        """Declare a gauge family (idempotent); returns ``self``."""
        self._declare(name, "gauge", help_text)
        return self

    def gauge_fn(self, name, help_text, fn):
        """Declare a callable gauge: ``fn()`` is evaluated at render time
        and must return a number or a ``{labels_dict_as_tuple: value}``
        mapping (plain number covers the common case)."""
        self._declare(name, "gauge", help_text, fn=fn)
        return self

    def histogram(self, name, help_text="", buckets=DEFAULT_BUCKETS):
        """Declare a histogram family with fixed ``buckets`` (upper
        bounds, seconds by convention); returns ``self``."""
        self._declare(name, "histogram", help_text,
                      buckets=tuple(sorted(buckets)))
        return self

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def inc(self, name, amount=1, **labels):
        """Add ``amount`` to a counter (declares it on first use)."""
        family = self._declare(name, "counter", "")
        key = _labels_key(labels)
        with self._lock:
            family.series[key] = family.series.get(key, 0) + amount

    def set(self, name, value, **labels):
        """Set a gauge to ``value`` (declares it on first use)."""
        family = self._declare(name, "gauge", "")
        key = _labels_key(labels)
        with self._lock:
            family.series[key] = value

    def observe(self, name, value, **labels):
        """Record one observation in a histogram."""
        family = self._declare(name, "histogram", "")
        if family.buckets is None:
            family.buckets = DEFAULT_BUCKETS
        key = _labels_key(labels)
        with self._lock:
            series = family.series.get(key)
            if series is None:
                series = family.series[key] = _HistogramSeries(
                    len(family.buckets)
                )
            for i, bound in enumerate(family.buckets):
                if value <= bound:
                    series.counts[i] += 1
                    break
            series.total += value
            series.count += 1

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def value(self, name, **labels):
        """Current value of a counter/gauge series (0 when unset)."""
        full = f"{self.namespace}_{name}" if self.namespace else name
        key = _labels_key(labels)
        with self._lock:
            family = self._families.get(full)
            fn = family.fn if family is not None else None
            if family is None:
                return 0
            if fn is None:
                return family.series.get(key, 0)
        return fn()  # outside the lock — see render()

    def snapshot(self):
        """Flat ``{name{labels}: value}`` dict of every counter/gauge
        series (histograms appear as ``name_count``/``name_sum``),
        sorted — the test-friendly view of :meth:`render`."""
        flat = {}
        for line in self.render().splitlines():
            if not line or line.startswith("#"):
                continue
            text, _, value = line.rpartition(" ")
            flat[text] = float(value)
        return dict(sorted(flat.items()))

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------
    def render(self):
        """The Prometheus text exposition (version 0.0.4) of every
        family, families and label sets sorted.

        Series state is copied under the lock but callable gauges run
        *outside* it — a gauge that reads a scheduler under that
        component's own lock must never nest inside ours, or a
        concurrent updater (component lock held, waiting on ours) would
        deadlock."""
        with self._lock:
            plan = []
            for name, family in sorted(self._families.items()):
                if family.kind == "histogram":
                    series = {
                        k: (list(s.counts), s.total, s.count)
                        for k, s in family.series.items()
                    }
                else:
                    series = dict(family.series)
                plan.append((name, family.kind, family.help,
                             family.buckets, family.fn, series))
        lines = []
        for name, kind, help_text, buckets, fn, series in plan:
            lines.append(f"# HELP {name} {help_text}".rstrip())
            lines.append(f"# TYPE {name} {kind}")
            if fn is not None:
                try:
                    value = fn()
                except Exception:
                    value = float("nan")
                if isinstance(value, dict):
                    resolved = {
                        (_labels_key(k) if isinstance(k, dict) else
                         tuple(k)): v
                        for k, v in value.items()
                    }
                    for lkey in sorted(resolved):
                        lines.append(
                            f"{name}{_labels_text(lkey)} "
                            f"{_format_value(resolved[lkey])}"
                        )
                else:
                    lines.append(f"{name} {_format_value(value)}")
                continue
            if kind == "histogram":
                for lkey in sorted(series):
                    counts, total, count = series[lkey]
                    cumulative = 0
                    for bound, bucket_count in zip(buckets, counts):
                        cumulative += bucket_count
                        lines.append(
                            f"{name}_bucket{_bucket_labels(lkey, bound)} "
                            f"{cumulative}"
                        )
                    lines.append(
                        f"{name}_bucket{_bucket_labels(lkey, None)} "
                        f"{count}"
                    )
                    lines.append(
                        f"{name}_sum{_labels_text(lkey)} "
                        f"{_format_value(total)}"
                    )
                    lines.append(
                        f"{name}_count{_labels_text(lkey)} {count}"
                    )
                continue
            for lkey in sorted(series):
                lines.append(
                    f"{name}{_labels_text(lkey)} "
                    f"{_format_value(series[lkey])}"
                )
        return "\n".join(lines) + "\n"

    def __repr__(self):
        return f"<LiveMetrics families={len(self._families)}>"


def _bucket_labels(lkey, bound):
    le = "+Inf" if bound is None else _format_value(float(bound))
    return _labels_text(tuple(lkey) + (("le", le),))


def parse_prometheus(text):
    """Parse a Prometheus text exposition into
    ``{(name, labels_tuple): value}``.

    ``labels_tuple`` is the sorted ``((key, value), ...)`` form used by
    :class:`LiveMetrics` internally; samples without labels use ``()``.
    Raises ``ValueError`` on malformed sample lines so the metrics-smoke
    CI job can use it as a format validator.
    """
    samples = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        body, _, raw_value = line.rpartition(" ")
        if not body:
            raise ValueError(f"line {lineno}: no value in {line!r}")
        labels = ()
        name = body
        if "{" in body:
            if not body.endswith("}"):
                raise ValueError(f"line {lineno}: unterminated labels")
            name, _, inner = body.partition("{")
            inner = inner[:-1]
            pairs = []
            for part in filter(None, _split_labels(inner)):
                key, eq, value = part.partition("=")
                if not eq or not (
                    value.startswith('"') and value.endswith('"')
                ):
                    raise ValueError(
                        f"line {lineno}: bad label {part!r}"
                    )
                pairs.append((key.strip(), value[1:-1]))
            labels = tuple(sorted(pairs))
        if not name or not all(
            c.isalnum() or c in "_:" for c in name
        ) or name[0].isdigit():
            raise ValueError(f"line {lineno}: bad metric name {name!r}")
        try:
            value = float(raw_value)
        except ValueError:
            raise ValueError(
                f"line {lineno}: bad sample value {raw_value!r}"
            ) from None
        samples[(name, labels)] = value
    return samples


def _split_labels(inner):
    """Split ``a="x",b="y,z"`` on commas outside quotes."""
    parts = []
    depth_quote = False
    current = []
    for ch in inner:
        if ch == '"':
            depth_quote = not depth_quote
            current.append(ch)
        elif ch == "," and not depth_quote:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return parts
