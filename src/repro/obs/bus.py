"""The trace bus: one emit call, any number of pluggable sinks.

Machine models hold an optional bus reference and guard every emission
with ``if bus is not None`` (and, for emissions whose *arguments* are
expensive to build, ``bus.enabled``), so a machine constructed without
observability pays one attribute load per potential event and nothing
more.  With a bus attached, each event is materialized once and handed
to every sink in registration order — the order is part of the
determinism contract (two identical runs feed identical event sequences
to identical sinks).
"""

from .events import TraceEvent

__all__ = ["TraceBus"]


class TraceBus:
    """Dispatches :class:`TraceEvent` records to registered sinks."""

    __slots__ = ("_sinks",)

    def __init__(self, *sinks):
        self._sinks = []
        for sink in sinks:
            self.add_sink(sink)

    # ------------------------------------------------------------------
    @property
    def enabled(self):
        """True when at least one sink will observe emissions."""
        return bool(self._sinks)

    @property
    def sinks(self):
        return list(self._sinks)

    def add_sink(self, sink):
        """Register ``sink`` (anything with ``handle(event)``)."""
        self._sinks.append(sink)
        return sink

    def remove_sink(self, sink):
        self._sinks.remove(sink)

    def close(self):
        """Close every sink that supports it (file sinks flush here)."""
        for sink in self._sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()

    # ------------------------------------------------------------------
    def emit(self, time, source, kind, detail="", **fields):
        """Publish one event to every sink.  No-op with no sinks."""
        if not self._sinks:
            return None
        event = TraceEvent(time, source, kind, detail, fields or None)
        for sink in self._sinks:
            sink.handle(event)
        return event

    def __repr__(self):
        return f"<TraceBus sinks={len(self._sinks)}>"
