"""The trace bus: one emit call, any number of pluggable sinks.

Machine models hold an optional bus reference and guard every emission
with ``if bus is not None and bus.enabled`` (the second check matters
for emissions whose *arguments* are expensive to build — detail strings,
reprs, queue scans), so a machine constructed without observability pays
one or two attribute loads per potential event and nothing more.  With a
bus attached, each event is materialized once and handed to every sink
in registration order — the order is part of the determinism contract
(two identical runs feed identical event sequences to identical sinks).

**Provenance mode** (``TraceBus(provenance=True)``) numbers every event
with a monotone ``eid`` field so emitters can link effects to causes:
an emitter passes ``parent=<eid>`` (and optionally ``joins=[<eid>...]``
for many-to-one joins such as a token match) and the resulting trace
reconstructs into a causal DAG (see :mod:`repro.obs.analysis.causal`).
Provenance is opt-in because the extra per-event field changes the
serialized trace; the default bus emits byte-identical streams to the
pre-provenance format.  ``parent``/``joins`` that are ``None`` are
dropped from the event, so emitters can pass them unconditionally.
"""

from .events import TraceEvent

__all__ = ["TraceBus"]


class TraceBus:
    """Dispatches :class:`TraceEvent` records to registered sinks."""

    __slots__ = ("_sinks", "enabled", "provenance", "_next_eid")

    def __init__(self, *sinks, provenance=False):
        self._sinks = []
        #: True when at least one sink will observe emissions.  A plain
        #: attribute (not a property) so hot emit sites can guard the
        #: construction of detail strings with one attribute load.
        self.enabled = False
        #: True when events carry ``eid`` linkage numbers.
        self.provenance = provenance
        self._next_eid = 0
        for sink in sinks:
            self.add_sink(sink)

    # ------------------------------------------------------------------
    @property
    def sinks(self):
        return list(self._sinks)

    def add_sink(self, sink):
        """Register ``sink`` (anything with ``handle(event)``)."""
        self._sinks.append(sink)
        self.enabled = True
        return sink

    def remove_sink(self, sink):
        self._sinks.remove(sink)
        self.enabled = bool(self._sinks)

    def close(self):
        """Close every sink that supports it (file sinks flush here)."""
        for sink in self._sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()

    # ------------------------------------------------------------------
    def emit(self, time, source, kind, detail="", **fields):
        """Publish one event to every sink.  No-op with no sinks."""
        if not self._sinks:
            return None
        if fields:
            # Emitters pass parent/joins unconditionally; absent causal
            # links (plain runs, provenance off) must not serialize.
            if fields.get("parent") is None:
                fields.pop("parent", None)
            if fields.get("joins") is None:
                fields.pop("joins", None)
        if self.provenance:
            eid = self._next_eid
            self._next_eid = eid + 1
            fields["eid"] = eid
        event = TraceEvent(time, source, kind, detail, fields or None)
        for sink in self._sinks:
            sink.handle(event)
        return event

    def emit_id(self, time, source, kind, detail="", **fields):
        """Like :meth:`emit` but returns the event's ``eid`` (or None).

        The return value is what instrumented emitters thread through a
        machine as the *cause* of downstream work; with provenance off
        it is always None and the causal chain simply stays empty.
        """
        event = self.emit(time, source, kind, detail, **fields)
        if event is None or event.fields is None:
            return None
        return event.fields.get("eid")

    def __repr__(self):
        return f"<TraceBus sinks={len(self._sinks)}>"
