"""A small fluent API for constructing dataflow graphs by hand.

The Id front end (:mod:`repro.lang`) produces graphs through this builder,
and tests use it directly to write micro-graphs.  It is deliberately
low-level: one :meth:`BlockBuilder.emit` per vertex, one
:meth:`BlockBuilder.wire` per arc.
"""

from ..common.errors import GraphError
from .codeblock import CodeBlock, Program
from .instruction import Destination, Instruction
from .opcodes import Opcode

__all__ = ["BlockBuilder", "ProgramBuilder"]


class BlockBuilder:
    """Builds one :class:`~repro.graph.codeblock.CodeBlock`."""

    def __init__(self, name, kind=CodeBlock.PROCEDURE, parent_block=None):
        self.block = CodeBlock(name, kind=kind, parent_block=parent_block)

    @property
    def name(self):
        return self.block.name

    # ------------------------------------------------------------------
    def emit(self, opcode, **kwargs):
        """Append an instruction; returns its statement number."""
        if not isinstance(opcode, Opcode):
            raise GraphError(f"expected an Opcode, got {opcode!r}")
        instruction = Instruction(opcode, **kwargs)
        return self.block.add(instruction)

    def wire(self, src, dst, port=0, side="true"):
        """Add an arc from statement ``src`` to ``dst`` at ``port``.

        ``side`` selects the true/false destination list and is only
        meaningful when ``src`` is a ``SWITCH``.
        """
        instruction = self.block.instruction(src)
        dest = Destination(dst, port)
        if side == "true":
            instruction.dests = instruction.dests + (dest,)
        elif side == "false":
            if instruction.opcode is not Opcode.SWITCH:
                raise GraphError(
                    f"false-side arc from non-SWITCH statement {src}"
                )
            instruction.dests_false = instruction.dests_false + (dest,)
        else:
            raise GraphError(f"unknown switch side {side!r}")
        return self

    def param(self, *targets):
        """Declare the next parameter; targets are (statement, port) pairs."""
        return self.block.add_param(
            [t if isinstance(t, Destination) else Destination(*t) for t in targets]
        )

    def exit(self, *dests):
        """Declare the next loop result (loop blocks only)."""
        return self.block.add_exit(
            [d if isinstance(d, Destination) else Destination(*d) for d in dests]
        )

    def instruction(self, statement):
        return self.block.instruction(statement)


class ProgramBuilder:
    """Accumulates blocks into a validated :class:`Program`."""

    def __init__(self, entry=None):
        self._program = Program(entry=entry)
        self._builders = {}

    def procedure(self, name):
        """Start (and register) a new procedure block builder."""
        builder = BlockBuilder(name, kind=CodeBlock.PROCEDURE)
        self._register(builder)
        return builder

    def loop(self, name, parent_block):
        """Start (and register) a new loop block builder."""
        builder = BlockBuilder(name, kind=CodeBlock.LOOP, parent_block=parent_block)
        self._register(builder)
        return builder

    def _register(self, builder):
        self._program.add_block(builder.block)
        self._builders[builder.name] = builder

    def builder(self, name):
        return self._builders[name]

    def build(self, validate=True):
        """Return the finished program, validated unless told otherwise."""
        if validate:
            from .validate import validate_program

            validate_program(self._program)
        return self._program
