"""The instruction set of the tagged-token dataflow machine.

The paper (§2.2.1) divides the operators of a compiled graph into

* arithmetic / relational / conditional instructions "whose function should
  be self-evident",
* the *tag-manipulation* instructions ``D``, ``D⁻¹``, ``L`` and ``L⁻¹``
  which "provide proper entry, iteration, and exit by manipulating
  context-identifying information", and
* structure references, where "a SELECT operation becomes a FETCH
  instruction while an APPEND operation becomes a STORE instruction"
  (§2.2.4) directed at I-structure storage.

This module enumerates all opcodes, classifies them, and provides the pure
value semantics for the arithmetic/relational/logical group.  The impure
opcodes (tag manipulation, structure access, apply/return) are interpreted
by :mod:`repro.dataflow.exec_core`, which is shared by the untimed
reference interpreter and the timed machine.
"""

import enum
import math

from ..common.errors import GraphError

__all__ = [
    "Opcode",
    "OpcodeClass",
    "OPCODE_CLASS",
    "PURE_BINARY",
    "PURE_UNARY",
    "arity_of",
    "is_pure",
]


class Opcode(enum.Enum):
    """Every instruction the machine knows how to execute."""

    # -- pure binary arithmetic ---------------------------------------
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    POW = "pow"
    MIN = "min"
    MAX = "max"
    # -- pure binary relational ---------------------------------------
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    EQ = "eq"
    NE = "ne"
    # -- pure binary logical ------------------------------------------
    AND = "and"
    OR = "or"
    XOR = "xor"
    # -- pure unary -----------------------------------------------------
    NEG = "neg"
    NOT = "not"
    ABS = "abs"
    FLOOR = "floor"
    CEIL = "ceil"
    SQRT = "sqrt"
    EXP = "exp"
    LOG = "log"
    SIN = "sin"
    COS = "cos"
    IDENT = "ident"
    # -- control ---------------------------------------------------------
    CONSTANT = "constant"  # emits its literal when triggered (port 0)
    SWITCH = "switch"  # port 0 = data, port 1 = boolean control
    GATE = "gate"  # emits port 0 once port 1 (the trigger) arrives
    SINK = "sink"  # absorbs a token (explicitly discarded value)
    # -- tag manipulation (loop schema, Fig 2-2) -------------------------
    L = "l"  # loop entry: new loop context, iteration := 1
    D = "d"  # loop back edge: iteration := iteration + 1
    D_INV = "d_inv"  # canonicalize: iteration := 1
    L_INV = "l_inv"  # loop exit: restore the enclosing context
    # -- procedure linkage ------------------------------------------------
    CALL = "call"  # apply: new context, send args + continuation
    RETURN = "return"  # port 0 = result, port 1 = continuation
    # -- I-structure access (§2.1, §2.2.4) --------------------------------
    I_ALLOC = "i_alloc"  # port 0 = size -> structure reference
    I_FETCH = "i_fetch"  # port 0 = ref, port 1 = index (SELECT)
    I_STORE = "i_store"  # ports = ref, index, value (APPEND)


class OpcodeClass(enum.Enum):
    """Coarse classification used by the machine's dispatch and by stats."""

    PURE = "pure"  # value in, value out; executed entirely in the ALU
    CONTROL = "control"  # switch / gate / sink / constant
    TAG = "tag"  # D, D_INV, L, L_INV
    LINKAGE = "linkage"  # call / return
    STRUCTURE = "structure"  # I-structure traffic (d=1 tokens)


def _safe_div(a, b):
    if isinstance(a, int) and isinstance(b, int) and b != 0 and a % b == 0:
        return a // b
    return a / b


#: Value semantics for the two-operand pure opcodes.
PURE_BINARY = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.DIV: _safe_div,
    Opcode.MOD: lambda a, b: a % b,
    Opcode.POW: lambda a, b: a**b,
    Opcode.MIN: min,
    Opcode.MAX: max,
    Opcode.LT: lambda a, b: a < b,
    Opcode.LE: lambda a, b: a <= b,
    Opcode.GT: lambda a, b: a > b,
    Opcode.GE: lambda a, b: a >= b,
    Opcode.EQ: lambda a, b: a == b,
    Opcode.NE: lambda a, b: a != b,
    Opcode.AND: lambda a, b: bool(a) and bool(b),
    Opcode.OR: lambda a, b: bool(a) or bool(b),
    Opcode.XOR: lambda a, b: bool(a) != bool(b),
}

#: Value semantics for the one-operand pure opcodes.
PURE_UNARY = {
    Opcode.NEG: lambda a: -a,
    Opcode.NOT: lambda a: not a,
    Opcode.ABS: abs,
    Opcode.FLOOR: math.floor,
    Opcode.CEIL: math.ceil,
    Opcode.SQRT: math.sqrt,
    Opcode.EXP: math.exp,
    Opcode.LOG: math.log,
    Opcode.SIN: math.sin,
    Opcode.COS: math.cos,
    Opcode.IDENT: lambda a: a,
}

#: Natural operand count for each opcode, before immediate substitution.
_ARITY = {}
_ARITY.update({op: 2 for op in PURE_BINARY})
_ARITY.update({op: 1 for op in PURE_UNARY})
_ARITY.update(
    {
        Opcode.CONSTANT: 1,  # the trigger
        Opcode.SWITCH: 2,
        Opcode.GATE: 2,
        Opcode.SINK: 1,
        Opcode.L: 1,
        Opcode.D: 1,
        Opcode.D_INV: 1,
        Opcode.L_INV: 1,
        # CALL arity is the argument count and is instruction-specific.
        Opcode.RETURN: 2,
        Opcode.I_ALLOC: 1,
        Opcode.I_FETCH: 2,
        Opcode.I_STORE: 3,
    }
)

OPCODE_CLASS = {}
OPCODE_CLASS.update({op: OpcodeClass.PURE for op in PURE_BINARY})
OPCODE_CLASS.update({op: OpcodeClass.PURE for op in PURE_UNARY})
OPCODE_CLASS.update(
    {
        Opcode.CONSTANT: OpcodeClass.CONTROL,
        Opcode.SWITCH: OpcodeClass.CONTROL,
        Opcode.GATE: OpcodeClass.CONTROL,
        Opcode.SINK: OpcodeClass.CONTROL,
        Opcode.L: OpcodeClass.TAG,
        Opcode.D: OpcodeClass.TAG,
        Opcode.D_INV: OpcodeClass.TAG,
        Opcode.L_INV: OpcodeClass.TAG,
        Opcode.CALL: OpcodeClass.LINKAGE,
        Opcode.RETURN: OpcodeClass.LINKAGE,
        Opcode.I_ALLOC: OpcodeClass.STRUCTURE,
        Opcode.I_FETCH: OpcodeClass.STRUCTURE,
        Opcode.I_STORE: OpcodeClass.STRUCTURE,
    }
)


def arity_of(opcode):
    """Natural operand count of ``opcode``.

    ``CALL`` has no fixed arity (one port per argument); asking for it is a
    programming error caught here.
    """
    if opcode is Opcode.CALL:
        raise GraphError("CALL arity is per-instruction (one port per argument)")
    return _ARITY[opcode]


def is_pure(opcode):
    """True when the opcode's result depends only on its operand values."""
    return OPCODE_CLASS[opcode] is OpcodeClass.PURE
