"""Static instruction and arc (destination) representation.

A compiled code block is a numbered list of :class:`Instruction` objects;
the arcs of the dataflow graph are stored forward, as each instruction's
destination list, exactly as an instruction-fetch unit would hold them in
program memory (§2.2.3: "we build this output token by computing a new tag,
using the old tag along with information stored in the instruction
itself").
"""

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..common.errors import GraphError
from .opcodes import Opcode, arity_of

__all__ = ["Destination", "Instruction"]


@dataclass(frozen=True)
class Destination:
    """A forward arc: deliver the result to ``statement`` at ``port``."""

    statement: int
    port: int = 0

    def __post_init__(self):
        if self.statement < 0:
            raise GraphError(f"negative destination statement {self.statement}")
        if self.port < 0:
            raise GraphError(f"negative destination port {self.port}")

    def __repr__(self):
        return f"->{self.statement}.{self.port}"


@dataclass
class Instruction:
    """One vertex of the dataflow graph.

    Attributes
    ----------
    opcode:
        What the instruction does.
    dests:
        Forward arcs for the (single) result value.  For ``SWITCH`` these
        are the *true*-side arcs and :attr:`dests_false` holds the
        *false*-side arcs.
    nt:
        Number of tokens required to enable the instruction (the ``nt``
        field carried on every token, §2.2.2).  Derived from the opcode's
        natural arity minus any immediate operand.
    constant / constant_port:
        Optional immediate operand folded into the instruction, the usual
        trick for avoiding a CONSTANT vertex and trigger arc per literal.
    literal:
        The value emitted by a ``CONSTANT`` instruction.
    target_block / site / arg_count:
        Linkage fields.  ``CALL`` uses ``target_block`` (or, when ``None``,
        takes the callee name from operand port 0) and ``arg_count``;
        ``L`` uses ``target_block`` (the loop body block) and ``site`` (the
        loop-site id shared by every L of one loop so they derive the same
        loop context).
    name:
        Optional human-readable label used by the pretty-printer and error
        messages (e.g. the source variable the value belongs to).
    """

    opcode: Opcode
    dests: Tuple[Destination, ...] = ()
    dests_false: Tuple[Destination, ...] = ()
    constant: Optional[object] = None
    constant_port: Optional[int] = None
    literal: Optional[object] = None
    target_block: Optional[str] = None
    site: Optional[int] = None
    arg_count: int = 0
    param_index: Optional[int] = None
    name: str = ""
    statement: int = field(default=-1)  # assigned when added to a code block

    def __post_init__(self):
        self.dests = tuple(self.dests)
        self.dests_false = tuple(self.dests_false)
        if self.dests_false and self.opcode is not Opcode.SWITCH:
            raise GraphError(f"{self.opcode} cannot have false-side destinations")
        if (self.constant is None) != (self.constant_port is None):
            raise GraphError("constant and constant_port must be set together")

    # ------------------------------------------------------------------
    @property
    def nt(self):
        """Tokens required to enable this instruction."""
        if self.opcode is Opcode.CALL:
            base = self.arg_count + (0 if self.target_block else 1)
        else:
            base = arity_of(self.opcode)
        if self.constant_port is not None:
            base -= 1
        if base < 1:
            raise GraphError(
                f"instruction {self.statement} ({self.opcode.value}) needs at "
                "least one token to be enabled"
            )
        return base

    @property
    def natural_arity(self):
        """Operand count including any immediate."""
        if self.opcode is Opcode.CALL:
            return self.arg_count + (0 if self.target_block else 1)
        return arity_of(self.opcode)

    def input_ports(self):
        """The ports that must be fed by tokens (immediate port excluded)."""
        return tuple(
            port
            for port in range(self.natural_arity)
            if port != self.constant_port
        )

    def all_destinations(self):
        """Every forward arc, regardless of switch side."""
        return self.dests + self.dests_false

    def __repr__(self):
        label = f" {self.name!r}" if self.name else ""
        extra = ""
        if self.constant_port is not None:
            extra = f" const[{self.constant_port}]={self.constant!r}"
        if self.literal is not None:
            extra += f" literal={self.literal!r}"
        if self.target_block is not None:
            extra += f" ->block {self.target_block!r}"
        dests = ",".join(map(repr, self.dests)) or "-"
        if self.opcode is Opcode.SWITCH:
            dests = (
                "T:" + (",".join(map(repr, self.dests)) or "-")
                + " F:" + (",".join(map(repr, self.dests_false)) or "-")
            )
        return (
            f"<{self.statement}: {self.opcode.value}{label}{extra} {dests}>"
        )
