"""Code blocks and whole programs.

"Each procedure and each loop has a unique code block name" (§2.2.2).  A
:class:`CodeBlock` is the unit the machine's program memory is loaded with;
a :class:`Program` is a named collection of code blocks with a designated
entry procedure.

Two kinds of block exist, mirroring the paper's loop schema (Fig 2-2):

* **procedure** blocks receive their arguments from a ``CALL`` instruction
  and deliver their result through a single ``RETURN`` instruction (all
  conditional arms merge into it — merging is free in dataflow).
* **loop** blocks are instantiated at exactly one textual site inside their
  parent block.  ``L`` instructions in the parent inject the circulating
  variables with a fresh loop context and iteration 1; ``D`` advances the
  iteration number around the back edge; ``D⁻¹`` canonicalizes it to 1 on
  the way out; ``L⁻¹`` restores the parent context and delivers the loop's
  results to fixed destinations in the parent block.
"""

from ..common.errors import GraphError
from .instruction import Destination, Instruction
from .opcodes import Opcode

__all__ = ["CodeBlock", "Program"]


class CodeBlock:
    """A numbered list of instructions plus its linkage interface."""

    PROCEDURE = "procedure"
    LOOP = "loop"

    def __init__(self, name, kind=PROCEDURE, parent_block=None):
        if kind not in (self.PROCEDURE, self.LOOP):
            raise GraphError(f"unknown code block kind {kind!r}")
        if kind == self.LOOP and parent_block is None:
            raise GraphError(f"loop block {name!r} must name its parent block")
        self.name = name
        self.kind = kind
        self.parent_block = parent_block
        self.instructions = []
        #: For procedures: param_targets[j] is the arc list argument j is
        #: delivered to by CALL.  For loops: the arcs circulating variable j
        #: is delivered to, both by L (entry) and by D (back edge, done via
        #: D's own dests which must match).
        self.param_targets = []
        #: Loop blocks only: exit_dests[j] are arcs *in the parent block*
        #: that receive loop result j via L⁻¹.
        self.exit_dests = []
        #: Procedure blocks only: the statement index of the RETURN
        #: instruction (continuations are routed to its port 1).
        self.return_statement = None

    # ------------------------------------------------------------------
    def add(self, instruction):
        """Append ``instruction``, assigning it its statement number."""
        if not isinstance(instruction, Instruction):
            raise GraphError(f"expected Instruction, got {type(instruction)!r}")
        instruction.statement = len(self.instructions)
        self.instructions.append(instruction)
        if instruction.opcode is Opcode.RETURN:
            if self.return_statement is not None:
                raise GraphError(
                    f"code block {self.name!r} has more than one RETURN; "
                    "merge conditional arms into a single RETURN instead"
                )
            self.return_statement = instruction.statement
        return instruction.statement

    def add_param(self, targets):
        """Declare the next parameter, delivered to the ``targets`` arcs."""
        targets = tuple(
            t if isinstance(t, Destination) else Destination(*t) for t in targets
        )
        if not targets:
            raise GraphError(f"parameter of {self.name!r} with no targets")
        self.param_targets.append(targets)
        return len(self.param_targets) - 1

    def add_exit(self, dests):
        """Declare the next loop result, delivered to parent-block arcs."""
        if self.kind != self.LOOP:
            raise GraphError(f"{self.name!r} is not a loop block")
        dests = tuple(
            d if isinstance(d, Destination) else Destination(*d) for d in dests
        )
        self.exit_dests.append(dests)
        return len(self.exit_dests) - 1

    # ------------------------------------------------------------------
    @property
    def num_params(self):
        return len(self.param_targets)

    def instruction(self, statement):
        try:
            return self.instructions[statement]
        except IndexError:
            raise GraphError(
                f"code block {self.name!r} has no statement {statement}"
            ) from None

    def __len__(self):
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def __repr__(self):
        return (
            f"<CodeBlock {self.name!r} kind={self.kind} "
            f"instructions={len(self.instructions)} params={self.num_params}>"
        )


class Program:
    """A collection of code blocks with a designated entry procedure."""

    def __init__(self, entry=None):
        self.blocks = {}
        self.entry = entry

    def add_block(self, block):
        if block.name in self.blocks:
            raise GraphError(f"duplicate code block name {block.name!r}")
        self.blocks[block.name] = block
        if self.entry is None and block.kind == CodeBlock.PROCEDURE:
            self.entry = block.name
        return block

    def block(self, name):
        try:
            return self.blocks[name]
        except KeyError:
            raise GraphError(f"no code block named {name!r}") from None

    def entry_block(self):
        if self.entry is None:
            raise GraphError("program has no entry block")
        return self.block(self.entry)

    def instruction(self, block_name, statement):
        return self.block(block_name).instruction(statement)

    @property
    def total_instructions(self):
        return sum(len(b) for b in self.blocks.values())

    def __contains__(self, name):
        return name in self.blocks

    def __repr__(self):
        return (
            f"<Program entry={self.entry!r} blocks={len(self.blocks)} "
            f"instructions={self.total_instructions}>"
        )
