"""Peephole optimization of compiled dataflow graphs.

The front end deliberately emits naive graphs (one IDENT landing pad per
parameter, one CONSTANT vertex per literal that could not be folded at
parse time).  These passes clean them up the way the MIT compiler
literature describes, without changing program meaning:

* **constant folding** — a CONSTANT vertex whose every consumer is a
  two-input operator with a free immediate slot (and no merge on that
  port) disappears into the consumers' immediate fields;
* **IDENT collapsing** — pass-through vertices are removed by rewiring
  their producers straight to their consumers (parameter landing pads,
  loop entry pads);
* **dead code removal** — side-effect-free instructions whose output
  feeds nothing are deleted, iterated to a fixpoint (an unused CONSTANT's
  trigger arc disappears, possibly freeing its producer, and so on).

``optimize_program`` clones the input; the original is never mutated.
Every pass maintains the well-formedness invariants, and the result is
re-validated before being returned.  Semantics preservation is checked
property-style in ``tests/test_optimize.py`` (optimized and original
programs must agree on random inputs).
"""

import copy

from .codeblock import CodeBlock, Program
from .instruction import Destination
from .opcodes import Opcode, OpcodeClass, OPCODE_CLASS, PURE_BINARY
from .validate import validate_program

__all__ = ["optimize_program", "fold_constants", "collapse_idents",
           "remove_dead_code"]

#: Opcodes that must never be deleted even when their output is unused.
_EFFECTFUL = frozenset(
    {
        Opcode.RETURN,  # delivers the result
        Opcode.I_STORE,  # writes memory
        Opcode.I_ALLOC,  # allocates (result may feed stores via others)
        Opcode.L,  # starts loop activity in another block
        Opcode.L_INV,  # delivers across blocks
        Opcode.CALL,  # the callee may have effects
        Opcode.D,  # loop back edge
        Opcode.D_INV,
    }
)


def _clone(program):
    cloned = Program(entry=program.entry)
    for block in program.blocks.values():
        cloned.add_block(copy.deepcopy(block))
    return cloned


def optimize_program(program, passes=("fold", "idents", "dead")):
    """Run the requested passes (in order, then iterate to fixpoint)."""
    program = _clone(program)
    table = {
        "fold": fold_constants,
        "idents": collapse_idents,
        "dead": remove_dead_code,
    }
    changed = True
    while changed:
        changed = False
        for name in passes:
            changed = table[name](program) or changed
    validate_program(program)
    return program


# ---------------------------------------------------------------------------
# Shared plumbing
# ---------------------------------------------------------------------------

def _port_feeders(program, block):
    """Map (statement, port) -> list of feeder descriptors.

    A feeder is ("inst", src_block_name, src_statement, side) for an
    instruction arc, or ("ext", kind) for arcs originating outside any
    instruction (parameter deliveries, loop exits, continuations).
    """
    feeders = {}

    def feed(dest, feeder):
        feeders.setdefault((dest.statement, dest.port), []).append(feeder)

    for targets in block.param_targets:
        for dest in targets:
            feed(dest, ("ext", "param"))
    if block.return_statement is not None:
        feeders.setdefault((block.return_statement, 1), []).append(
            ("ext", "continuation")
        )
    for other in program.blocks.values():
        if other.kind == CodeBlock.LOOP and other.parent_block == block.name:
            for dests in other.exit_dests:
                for dest in dests:
                    feed(dest, ("ext", "loop-exit"))
    for instruction in block:
        if instruction.opcode in (Opcode.L, Opcode.L_INV):
            continue
        for dest in instruction.dests:
            feed(dest, ("inst", block.name, instruction.statement, "true"))
        for dest in instruction.dests_false:
            feed(dest, ("inst", block.name, instruction.statement, "false"))
    return feeders


def _replace_arcs(block_like_dests, old_statement, new_dests, port_filter=None):
    """Replace every arc to ``old_statement`` in a dest tuple."""
    out = []
    changed = False
    for dest in block_like_dests:
        if dest.statement == old_statement and (
            port_filter is None or dest.port == port_filter
        ):
            out.extend(new_dests)
            changed = True
        else:
            out.append(dest)
    return tuple(out), changed


def _rewire_into(program, block, old_statement, new_dests, port_filter=None):
    """Redirect every arc targeting ``old_statement`` to ``new_dests``."""
    for instruction in block:
        instruction.dests, _ = _replace_arcs(
            instruction.dests, old_statement, new_dests, port_filter
        )
        instruction.dests_false, _ = _replace_arcs(
            instruction.dests_false, old_statement, new_dests, port_filter
        )
    block.param_targets = [
        _replace_arcs(targets, old_statement, new_dests, port_filter)[0]
        for targets in block.param_targets
    ]
    for other in program.blocks.values():
        if other.kind == CodeBlock.LOOP and other.parent_block == block.name:
            other.exit_dests = [
                _replace_arcs(dests, old_statement, new_dests, port_filter)[0]
                for dests in other.exit_dests
            ]


def _delete_statements(program, block, doomed):
    """Remove ``doomed`` statements from ``block``, renumbering everything."""
    if not doomed:
        return
    doomed = set(doomed)
    mapping = {}
    new_instructions = []
    for instruction in block.instructions:
        if instruction.statement in doomed:
            continue
        mapping[instruction.statement] = len(new_instructions)
        new_instructions.append(instruction)

    def remap(dests):
        return tuple(
            Destination(mapping[d.statement], d.port)
            for d in dests
            if d.statement not in doomed
        )

    for instruction in new_instructions:
        instruction.dests = remap(instruction.dests)
        instruction.dests_false = remap(instruction.dests_false)
    for index, instruction in enumerate(new_instructions):
        instruction.statement = index
    block.instructions = new_instructions
    block.param_targets = [remap(t) for t in block.param_targets]
    if block.return_statement is not None:
        block.return_statement = mapping.get(block.return_statement)
    for other in program.blocks.values():
        if other.kind == CodeBlock.LOOP and other.parent_block == block.name:
            other.exit_dests = [remap(d) for d in other.exit_dests]


# ---------------------------------------------------------------------------
# Pass 1: fold CONSTANT vertices into consumer immediates
# ---------------------------------------------------------------------------

def fold_constants(program):
    """Fold CONSTANT vertices into their consumers' immediate slots."""
    changed = False
    for block in program.blocks.values():
        feeders = _port_feeders(program, block)
        for instruction in list(block):
            if instruction.opcode is not Opcode.CONSTANT:
                continue
            if instruction.dests_false:
                continue
            consumers = instruction.dests
            if not consumers:
                continue
            # One immediate slot per consumer: a constant feeding two
            # ports of the same instruction cannot fold.
            if len({d.statement for d in consumers}) != len(consumers):
                continue
            if not all(
                _can_absorb_immediate(block, feeders, dest)
                for dest in consumers
            ):
                continue
            for dest in consumers:
                consumer = block.instruction(dest.statement)
                consumer.constant = instruction.literal
                consumer.constant_port = dest.port
            instruction.dests = ()
            changed = True
    return changed


def _can_absorb_immediate(block, feeders, dest):
    consumer = block.instruction(dest.statement)
    if consumer.opcode not in PURE_BINARY:
        return False
    if consumer.constant_port is not None:
        return False
    # The port must be fed only by this constant (no merge).
    return len(feeders.get((dest.statement, dest.port), [])) == 1


# ---------------------------------------------------------------------------
# Pass 2: collapse IDENT pass-throughs
# ---------------------------------------------------------------------------

def collapse_idents(program):
    """Remove IDENT vertices by rewiring producers to their consumers."""
    changed = False
    for block in program.blocks.values():
        doomed = []
        for instruction in list(block):
            if instruction.opcode is not Opcode.IDENT:
                continue
            _rewire_into(program, block, instruction.statement,
                         instruction.dests, port_filter=0)
            instruction.dests = ()
            doomed.append(instruction.statement)
        if doomed:
            _delete_statements(program, block, doomed)
            changed = True
    return changed


# ---------------------------------------------------------------------------
# Pass 3: dead code elimination
# ---------------------------------------------------------------------------

def remove_dead_code(program):
    """Delete effect-free instructions whose output feeds nothing."""
    changed = False
    for block in program.blocks.values():
        while True:
            doomed = [
                instruction.statement
                for instruction in block
                if _is_dead(instruction)
            ]
            if not doomed:
                break
            # Drop arcs into the doomed statements, then delete them.
            for statement in doomed:
                _rewire_into(program, block, statement, ())
            _delete_statements(program, block, doomed)
            changed = True
    return changed


def _is_dead(instruction):
    if instruction.opcode in _EFFECTFUL:
        return False
    if instruction.dests or instruction.dests_false:
        return False
    if instruction.opcode is Opcode.SWITCH:
        return True  # both sides empty: pure routing to nowhere
    return OPCODE_CLASS[instruction.opcode] in (
        OpcodeClass.PURE, OpcodeClass.CONTROL,
    )


# I_FETCH with no consumers is also removable (reads have no effect), but
# only when its request would never deadlock-diagnose anything; we keep it
# conservative and leave structure reads in place.
