"""Export compiled programs as graphs (networkx / Graphviz DOT).

Vertices are instructions (one graph node per (block, statement)); edges
are data arcs, including cross-block linkage: loop entry (L to the loop's
param targets), loop exit (L⁻¹ to the parent's consumers), procedure
argument and return arcs for statically-bound CALLs.  Useful for eyeball
comparison with the paper's figures and for structural analysis
(fan-out distributions, depth, connectivity) with networkx.
"""

import networkx as nx

from .codeblock import CodeBlock
from .opcodes import OPCODE_CLASS, Opcode

__all__ = ["to_networkx", "to_dot", "graph_statistics"]

_EDGE_LOCAL = "data"
_EDGE_SWITCH_FALSE = "switch-false"
_EDGE_LOOP_ENTRY = "loop-entry"
_EDGE_LOOP_EXIT = "loop-exit"
_EDGE_CALL = "call"
_EDGE_RETURN = "return"


def _node(block_name, statement):
    return (block_name, statement)


def to_networkx(program):
    """Build a :class:`networkx.MultiDiGraph` of the whole program."""
    graph = nx.MultiDiGraph()
    for block in program.blocks.values():
        for instruction in block:
            graph.add_node(
                _node(block.name, instruction.statement),
                opcode=instruction.opcode.value,
                opclass=OPCODE_CLASS[instruction.opcode].value,
                label=instruction.name or instruction.opcode.value,
                block=block.name,
            )
    for block in program.blocks.values():
        for instruction in block:
            src = _node(block.name, instruction.statement)
            opcode = instruction.opcode
            if opcode is Opcode.L:
                loop = program.block(instruction.target_block)
                for dest in loop.param_targets[instruction.param_index]:
                    graph.add_edge(src, _node(loop.name, dest.statement),
                                   kind=_EDGE_LOOP_ENTRY, port=dest.port)
                continue
            if opcode is Opcode.L_INV:
                for dest in block.exit_dests[instruction.param_index]:
                    graph.add_edge(src, _node(block.parent_block,
                                              dest.statement),
                                   kind=_EDGE_LOOP_EXIT, port=dest.port)
                continue
            if opcode is Opcode.CALL and instruction.target_block is not None:
                callee = program.block(instruction.target_block)
                for index in range(instruction.arg_count):
                    for dest in callee.param_targets[index]:
                        graph.add_edge(src, _node(callee.name, dest.statement),
                                       kind=_EDGE_CALL, port=dest.port)
                graph.add_edge(
                    _node(callee.name, callee.return_statement), src,
                    kind=_EDGE_RETURN, port=0,
                )
            for dest in instruction.dests:
                graph.add_edge(src, _node(block.name, dest.statement),
                               kind=_EDGE_LOCAL, port=dest.port)
            for dest in instruction.dests_false:
                graph.add_edge(src, _node(block.name, dest.statement),
                               kind=_EDGE_SWITCH_FALSE, port=dest.port)
    return graph


_CLASS_COLORS = {
    "pure": "lightblue",
    "control": "khaki",
    "tag": "lightsalmon",
    "linkage": "plum",
    "structure": "palegreen",
}

_EDGE_STYLES = {
    _EDGE_LOCAL: 'color="black"',
    _EDGE_SWITCH_FALSE: 'color="red" style="dashed" label="F"',
    _EDGE_LOOP_ENTRY: 'color="blue" label="L"',
    _EDGE_LOOP_EXIT: 'color="blue" style="dashed" label="L⁻¹"',
    _EDGE_CALL: 'color="purple" label="arg"',
    _EDGE_RETURN: 'color="purple" style="dashed" label="ret"',
}


def to_dot(program, title=None):
    """Render the program as Graphviz DOT text, clustered by code block."""
    graph = to_networkx(program)
    lines = ["digraph dataflow {", '  rankdir="TB";', "  node [shape=box];"]
    if title:
        lines.append(f'  label="{title}";')
    for block_name, block in sorted(program.blocks.items()):
        safe = block_name.replace("$", "_")
        lines.append(f"  subgraph cluster_{safe} {{")
        kind = "loop" if block.kind == CodeBlock.LOOP else "procedure"
        lines.append(f'    label="{kind} {block_name}";')
        for node, attrs in graph.nodes(data=True):
            if attrs["block"] != block_name:
                continue
            name = f'"{node[0]}:{node[1]}"'
            color = _CLASS_COLORS.get(attrs["opclass"], "white")
            lines.append(
                f"    {name} [label=\"{node[1]}: {attrs['label']}\" "
                f'style="filled" fillcolor="{color}"];'
            )
        lines.append("  }")
    for src, dst, attrs in graph.edges(data=True):
        style = _EDGE_STYLES.get(attrs.get("kind", _EDGE_LOCAL), "")
        lines.append(
            f'  "{src[0]}:{src[1]}" -> "{dst[0]}:{dst[1]}" [{style}];'
        )
    lines.append("}")
    return "\n".join(lines)


def graph_statistics(program):
    """Structural statistics of a compiled program.

    Returns a dict with instruction counts by opcode class, arc counts,
    fan-out extremes, and the static depth (longest acyclic path) —
    the compile-time counterpart of the interpreter's dynamic critical
    path.
    """
    graph = to_networkx(program)
    by_class = {}
    for _, attrs in graph.nodes(data=True):
        by_class[attrs["opclass"]] = by_class.get(attrs["opclass"], 0) + 1
    fan_outs = [graph.out_degree(node) for node in graph.nodes]
    condensed = nx.condensation(nx.DiGraph(graph))
    depth = nx.dag_longest_path_length(condensed) + 1 if condensed else 0
    return {
        "instructions": graph.number_of_nodes(),
        "arcs": graph.number_of_edges(),
        "by_class": by_class,
        "max_fan_out": max(fan_outs) if fan_outs else 0,
        "mean_fan_out": (sum(fan_outs) / len(fan_outs)) if fan_outs else 0.0,
        "static_depth": depth,
        "blocks": len(program.blocks),
    }
