"""Human-readable dumps of compiled dataflow graphs.

``format_program`` renders a program the way Figure 2-2 of the paper is
drawn: one line per vertex with its operator, immediates and arcs, grouped
by code block, with the loop schema operators (L, D, D⁻¹, L⁻¹) labelled.
"""

from .codeblock import CodeBlock
from .opcodes import Opcode

__all__ = ["format_program", "format_block"]

_TAG_GLYPHS = {
    Opcode.L: "L",
    Opcode.L_INV: "L⁻¹",
    Opcode.D: "D",
    Opcode.D_INV: "D⁻¹",
}


def format_block(block):
    """Render one code block as an indented text listing."""
    lines = []
    header = f"{block.kind} {block.name}"
    if block.kind == CodeBlock.LOOP:
        header += f" (in {block.parent_block})"
    lines.append(header + ":")
    for index, targets in enumerate(block.param_targets):
        arcs = ", ".join(f"{d.statement}.{d.port}" for d in targets)
        lines.append(f"  param[{index}] -> {arcs}")
    for instruction in block:
        lines.append("  " + _format_instruction(block, instruction))
    for index, dests in enumerate(block.exit_dests):
        arcs = ", ".join(f"{d.statement}.{d.port}" for d in dests)
        lines.append(f"  exit[{index}] -> parent {arcs}")
    return "\n".join(lines)


def format_program(program):
    """Render every block of the program, entry block first."""
    ordering = [program.entry] + sorted(
        name for name in program.blocks if name != program.entry
    )
    return "\n\n".join(format_block(program.block(name)) for name in ordering)


def _format_instruction(block, instruction):
    opcode = instruction.opcode
    mnemonic = _TAG_GLYPHS.get(opcode, opcode.value.upper())
    parts = [f"{instruction.statement:>3}: {mnemonic}"]
    if instruction.name:
        parts.append(f"({instruction.name})")
    if instruction.literal is not None:
        parts.append(f"#{instruction.literal!r}")
    if instruction.constant_port is not None:
        parts.append(f"imm[{instruction.constant_port}]={instruction.constant!r}")
    if instruction.target_block:
        parts.append(f"=> {instruction.target_block}")
    if instruction.param_index is not None:
        parts.append(f"var[{instruction.param_index}]")
    if opcode is Opcode.SWITCH:
        true_side = ", ".join(f"{d.statement}.{d.port}" for d in instruction.dests)
        false_side = ", ".join(
            f"{d.statement}.{d.port}" for d in instruction.dests_false
        )
        parts.append(f"T->[{true_side or '-'}] F->[{false_side or '-'}]")
    elif instruction.dests:
        arcs = ", ".join(f"{d.statement}.{d.port}" for d in instruction.dests)
        parts.append(f"-> {arcs}")
    return " ".join(parts)
