"""Static dataflow-graph representation (S2 in DESIGN.md).

Programs are collections of code blocks; code blocks are numbered lists of
instructions whose forward arcs encode the graph.  See
:mod:`repro.graph.opcodes` for the instruction set and
:mod:`repro.graph.validate` for the well-formedness rules.
"""

from .builder import BlockBuilder, ProgramBuilder
from .codeblock import CodeBlock, Program
from .export import graph_statistics, to_dot, to_networkx
from .optimize import optimize_program
from .instruction import Destination, Instruction
from .opcodes import (
    OPCODE_CLASS,
    PURE_BINARY,
    PURE_UNARY,
    Opcode,
    OpcodeClass,
    arity_of,
    is_pure,
)
from .pretty import format_block, format_program
from .validate import validate_block, validate_program

__all__ = [
    "BlockBuilder",
    "CodeBlock",
    "Destination",
    "Instruction",
    "OPCODE_CLASS",
    "Opcode",
    "OpcodeClass",
    "PURE_BINARY",
    "PURE_UNARY",
    "Program",
    "ProgramBuilder",
    "arity_of",
    "format_block",
    "format_program",
    "graph_statistics",
    "is_pure",
    "optimize_program",
    "to_dot",
    "to_networkx",
    "validate_block",
    "validate_program",
]
