"""Well-formedness checks for compiled programs.

A malformed graph fails here at load time rather than as a hung simulation
("a program terminates when no enabled instructions are left" makes missing
arcs indistinguishable from termination at run time, so we reject them
statically).
"""

from ..common.errors import GraphError
from .codeblock import CodeBlock
from .opcodes import Opcode

__all__ = ["validate_program", "validate_block"]


def validate_program(program):
    """Raise :class:`GraphError` unless ``program`` is well formed."""
    entry = program.entry_block()
    if entry.kind != CodeBlock.PROCEDURE:
        raise GraphError(f"entry block {entry.name!r} must be a procedure")
    loop_sites = {}
    for block in program.blocks.values():
        validate_block(program, block, loop_sites)
    _check_indegrees(program)
    return program


def validate_block(program, block, loop_sites=None):
    """Structural checks local to one code block."""
    if loop_sites is None:
        loop_sites = {}
    if block.kind == CodeBlock.PROCEDURE and block.return_statement is None:
        raise GraphError(f"procedure block {block.name!r} has no RETURN")
    if block.kind == CodeBlock.LOOP:
        if block.parent_block not in program:
            raise GraphError(
                f"loop block {block.name!r} names unknown parent "
                f"{block.parent_block!r}"
            )
        parent = program.block(block.parent_block)
        for result_index, dests in enumerate(block.exit_dests):
            for dest in dests:
                _check_dest(parent, dest, f"{block.name!r} exit {result_index}")
    for targets in block.param_targets:
        for dest in targets:
            _check_dest(block, dest, f"{block.name!r} parameter")

    for instruction in block:
        _validate_instruction(program, block, instruction, loop_sites)


def _validate_instruction(program, block, instruction, loop_sites):
    where = f"{block.name!r} statement {instruction.statement}"
    opcode = instruction.opcode

    if instruction.constant_port is not None:
        if instruction.constant_port >= instruction.natural_arity:
            raise GraphError(f"{where}: immediate port out of range")
        if opcode in (Opcode.L, Opcode.L_INV, Opcode.CALL, Opcode.RETURN):
            raise GraphError(f"{where}: {opcode.value} cannot take an immediate")

    if opcode is Opcode.CONSTANT and instruction.literal is None:
        raise GraphError(f"{where}: CONSTANT without a literal")

    if opcode is Opcode.L:
        _validate_loop_entry(program, block, instruction, loop_sites, where)
    elif opcode is Opcode.L_INV:
        _validate_loop_exit(program, block, instruction, where)
    elif opcode in (Opcode.D, Opcode.D_INV):
        if block.kind != CodeBlock.LOOP:
            raise GraphError(f"{where}: {opcode.value} outside a loop block")
        _check_local_dests(block, instruction, where)
    elif opcode is Opcode.CALL:
        _validate_call(program, instruction, where)
        _check_local_dests(block, instruction, where)
    elif opcode is Opcode.RETURN:
        if instruction.dests or instruction.dests_false:
            raise GraphError(f"{where}: RETURN routes via its continuation, "
                             "it cannot have static destinations")
    else:
        _check_local_dests(block, instruction, where)

    if opcode is not Opcode.SWITCH and instruction.dests_false:
        raise GraphError(f"{where}: false-side arcs on non-SWITCH")


def _validate_loop_entry(program, block, instruction, loop_sites, where):
    if instruction.target_block is None or instruction.site is None:
        raise GraphError(f"{where}: L needs target_block and site")
    if instruction.param_index is None:
        raise GraphError(f"{where}: L needs param_index")
    if instruction.dests or instruction.dests_false:
        raise GraphError(f"{where}: L delivers via the loop's param targets, "
                         "it cannot have static destinations")
    loop = program.block(instruction.target_block)
    if loop.kind != CodeBlock.LOOP:
        raise GraphError(f"{where}: L target {loop.name!r} is not a loop block")
    if loop.parent_block != block.name:
        raise GraphError(
            f"{where}: loop {loop.name!r} belongs to {loop.parent_block!r}, "
            f"not {block.name!r}"
        )
    if not 0 <= instruction.param_index < loop.num_params:
        raise GraphError(f"{where}: loop parameter index out of range")
    key = (block.name, instruction.site)
    bound = loop_sites.setdefault(key, loop.name)
    if bound != loop.name:
        raise GraphError(
            f"{where}: loop site {instruction.site} already bound to "
            f"{bound!r}, cannot also enter {loop.name!r}"
        )


def _validate_loop_exit(program, block, instruction, where):
    if block.kind != CodeBlock.LOOP:
        raise GraphError(f"{where}: L_INV outside a loop block")
    if instruction.param_index is None:
        raise GraphError(f"{where}: L_INV needs param_index (result index)")
    if not 0 <= instruction.param_index < len(block.exit_dests):
        raise GraphError(f"{where}: loop result index out of range")
    if instruction.dests or instruction.dests_false:
        raise GraphError(f"{where}: L_INV delivers via the loop's exit_dests, "
                         "it cannot have static destinations")


def _validate_call(program, instruction, where):
    if instruction.arg_count < 1:
        raise GraphError(f"{where}: CALL needs at least one argument")
    if instruction.target_block is not None:
        callee = program.block(instruction.target_block)
        if callee.kind != CodeBlock.PROCEDURE:
            raise GraphError(f"{where}: CALL target {callee.name!r} is a loop")
        if callee.num_params != instruction.arg_count:
            raise GraphError(
                f"{where}: CALL passes {instruction.arg_count} args but "
                f"{callee.name!r} takes {callee.num_params}"
            )
        if callee.return_statement is None:
            raise GraphError(f"{where}: CALL target {callee.name!r} lacks RETURN")


def _check_local_dests(block, instruction, where):
    for dest in instruction.all_destinations():
        _check_dest(block, dest, where)


def _check_dest(block, dest, where):
    if dest.statement >= len(block):
        raise GraphError(
            f"{where}: arc to nonexistent statement {dest.statement} of "
            f"{block.name!r}"
        )
    target = block.instruction(dest.statement)
    if dest.port >= target.natural_arity:
        raise GraphError(
            f"{where}: arc to {block.name!r}:{dest.statement} port {dest.port} "
            f"but {target.opcode.value} has arity {target.natural_arity}"
        )
    if dest.port == target.constant_port:
        raise GraphError(
            f"{where}: arc to {block.name!r}:{dest.statement} port {dest.port} "
            "collides with an immediate operand"
        )


def _check_indegrees(program):
    """Every token-fed input port must have at least one incoming arc."""
    indegree = {
        (block.name, instruction.statement, port): 0
        for block in program.blocks.values()
        for instruction in block
        for port in instruction.input_ports()
    }

    def feed(block_name, dest):
        key = (block_name, dest.statement, dest.port)
        if key in indegree:
            indegree[key] += 1

    for block in program.blocks.values():
        for targets in block.param_targets:
            for dest in targets:
                feed(block.name, dest)
        if block.kind == CodeBlock.LOOP:
            parent = block.parent_block
            for dests in block.exit_dests:
                for dest in dests:
                    feed(parent, dest)
        if block.return_statement is not None:
            # CALL routes the continuation to RETURN port 1.
            key = (block.name, block.return_statement, 1)
            if key in indegree:
                indegree[key] += 1
        for instruction in block:
            if instruction.opcode in (Opcode.L, Opcode.L_INV):
                continue  # delivered through param_targets / exit_dests
            for dest in instruction.all_destinations():
                feed(block.name, dest)

    starved = [key for key, count in indegree.items() if count == 0]
    if starved:
        sample = ", ".join(
            f"{name}:{stmt}.{port}" for name, stmt, port in sorted(starved)[:8]
        )
        raise GraphError(
            f"{len(starved)} input port(s) have no incoming arc and could "
            f"never fire: {sample}"
        )
