"""The Id-like language front end (S3 in DESIGN.md).

``compile_source`` takes programs in the paper's ID style — loop
expressions with ``initial``/``for``/``new``/``return``, conditionals,
procedure calls, I-structure arrays — and produces validated tagged-token
dataflow graphs runnable on either execution engine.
"""

from .ast_nodes import (
    ArrayAlloc,
    BinOp,
    Call,
    Def,
    If,
    Index,
    Let,
    Literal,
    Loop,
    Program,
    StoreStmt,
    UnOp,
    Var,
    free_vars,
)
from .compiler import BUILTIN_BINARY, BUILTIN_UNARY, compile_program, compile_source
from .lexer import Token, tokenize
from .parser import parse, parse_expression

__all__ = [
    "ArrayAlloc",
    "BUILTIN_BINARY",
    "BUILTIN_UNARY",
    "BinOp",
    "Call",
    "Def",
    "If",
    "Index",
    "Let",
    "Literal",
    "Loop",
    "Program",
    "StoreStmt",
    "Token",
    "UnOp",
    "Var",
    "compile_program",
    "compile_source",
    "free_vars",
    "parse",
    "parse_expression",
    "tokenize",
]
