"""Compile Id-like programs to tagged-token dataflow graphs.

"Data flow compilers translate high-level programs into directed graphs;
vertices in the graph correspond to machine instructions, and edges
correspond to the data dependencies which exist between the instructions"
(§2.2.1).  This compiler produces exactly the paper's shapes:

* each ``def`` becomes a procedure code block ending in one RETURN;
* each loop expression becomes its own loop code block entered through
  ``L``, iterated through ``D``, exited through ``D⁻¹``/``L⁻¹`` — the
  schema of Figure 2-2 — with loop-invariant free variables circulated
  alongside the explicit loop variables;
* conditionals route values through SWITCH vertices (one per live
  variable per conditional) and merge arms by wiring both to the same
  consumer port (merging is free in dataflow);
* literals fold into instruction immediates where possible and become
  triggered CONSTANT vertices elsewhere;
* ``array``/indexing/element assignment become I_ALLOC / I_FETCH /
  I_STORE on I-structure storage.

The compiler is deliberately non-optimizing beyond immediate folding: the
graphs it emits are meant to be *read* against the paper's figures.
"""

import itertools

from ..common.errors import CompileError
from ..graph.builder import ProgramBuilder
from ..graph.instruction import Destination
from ..graph.opcodes import Opcode
from .ast_nodes import (
    ArrayAlloc,
    BinOp,
    Call,
    If,
    Index,
    Let,
    Literal,
    Loop,
    Program,
    UnOp,
    Var,
    free_vars,
)
from .parser import parse

__all__ = ["compile_program", "compile_source", "BUILTIN_UNARY", "BUILTIN_BINARY"]

_BINOPS = {
    "+": Opcode.ADD, "-": Opcode.SUB, "*": Opcode.MUL, "/": Opcode.DIV,
    "%": Opcode.MOD, "**": Opcode.POW,
    "<": Opcode.LT, "<=": Opcode.LE, ">": Opcode.GT, ">=": Opcode.GE,
    "==": Opcode.EQ, "!=": Opcode.NE, "and": Opcode.AND, "or": Opcode.OR,
}

_UNOPS = {"-": Opcode.NEG, "not": Opcode.NOT}

BUILTIN_UNARY = {
    "sqrt": Opcode.SQRT, "exp": Opcode.EXP, "log": Opcode.LOG,
    "sin": Opcode.SIN, "cos": Opcode.COS, "abs": Opcode.ABS,
    "floor": Opcode.FLOOR, "ceil": Opcode.CEIL,
}
BUILTIN_BINARY = {"min": Opcode.MIN, "max": Opcode.MAX}

_FOLDABLE = {
    "+": lambda a, b: a + b, "-": lambda a, b: a - b,
    "*": lambda a, b: a * b, "%": lambda a, b: a % b,
    "**": lambda a, b: a**b,
    "<": lambda a, b: a < b, "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b, ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b, "!=": lambda a, b: a != b,
}


class _Value:
    """A compiled expression: one or more alternative token sources.

    Multiple sources arise from conditionals (the two arms) — exactly one
    fires per activity, so wiring all of them to a consumer port is the
    free dataflow merge.
    """

    def __init__(self, sources):
        self.sources = list(sources)


class _NodeSource:
    """Output of statement ``stmt`` (switch ``side`` if applicable)."""

    def __init__(self, builder, stmt, side="true"):
        self.builder = builder
        self.stmt = stmt
        self.side = side

    def wire_to(self, builder, stmt, port):
        if builder is not self.builder:
            raise CompileError(
                "internal: cross-block wiring outside loop linkage"
            )
        builder.wire(self.stmt, stmt, port, side=self.side)


class _ExitSource:
    """Result 0 of a loop block, delivered into the parent block."""

    def __init__(self, loop_block):
        self.loop_block = loop_block

    def wire_to(self, builder, stmt, port):
        self.loop_block.exit_dests[0] = self.loop_block.exit_dests[0] + (
            Destination(stmt, port),
        )


class _Scope:
    """Name -> value environment plus the scope's constant trigger."""

    def __init__(self, parent=None, trigger=None):
        self.parent = parent
        self.vars = {}
        self._trigger = trigger

    def define(self, name, value):
        self.vars[name] = value

    def lookup(self, name, line=0):
        if name in self.vars:
            return self.vars[name]
        if self.parent is not None:
            # Virtual dispatch: an _ArmScope parent must route the lookup
            # through its conditional's switches.
            return self.parent.lookup(name, line)
        raise CompileError(f"undefined variable {name!r}", line=line)

    def trigger(self):
        if self._trigger is not None:
            return self._trigger
        if self.parent is not None:
            return self.parent.trigger()
        raise CompileError("internal: scope without a constant trigger")


class _BranchGroup:
    """The SWITCH set of one conditional: one switch per live variable,
    shared by both arms."""

    def __init__(self, compiler, builder, outer_scope, cond_value):
        self.compiler = compiler
        self.builder = builder
        self.outer = outer_scope
        self.cond = cond_value
        self._switches = {}
        self._trigger_stmt = None

    def switch_for(self, name, line=0):
        if name not in self._switches:
            value = self.outer.lookup(name, line)
            stmt = self.builder.emit(Opcode.SWITCH, name=f"route {name}")
            self.compiler.wire(self.builder, value, stmt, 0)
            self.compiler.wire(self.builder, self.cond, stmt, 1)
            self._switches[name] = stmt
        return self._switches[name]

    def trigger_stmt(self):
        """A switch on the condition itself, for arm-local constants."""
        if self._trigger_stmt is None:
            stmt = self.builder.emit(Opcode.SWITCH, name="arm trigger")
            self.compiler.wire(self.builder, self.cond, stmt, 0)
            self.compiler.wire(self.builder, self.cond, stmt, 1)
            self._trigger_stmt = stmt
        return self._trigger_stmt


class _ArmScope(_Scope):
    """Variable view inside one arm of a conditional.

    Lookups that miss locally are routed through the conditional's shared
    switch set (never the raw outer scope — a value entering an arm must
    be gated by the condition), and constants are triggered by the arm's
    side of the condition switch.
    """

    def __init__(self, group, side):
        super().__init__(parent=None)
        self.group = group
        self.side = side
        self._trigger = None  # computed lazily via the group

    def lookup(self, name, line=0):
        if name in self.vars:
            return self.vars[name]
        stmt = self.group.switch_for(name, line)
        return _Value([_NodeSource(self.group.builder, stmt, self.side)])

    def trigger(self):
        stmt = self.group.trigger_stmt()
        return _Value([_NodeSource(self.group.builder, stmt, self.side)])


class _Compiler:
    def __init__(self, ast_program, entry=None):
        self.ast = ast_program
        self.defs = {d.name: d for d in ast_program.defs}
        self.entry = entry if entry is not None else ast_program.defs[0].name
        self.pb = ProgramBuilder(entry=self.entry)
        self._sites = itertools.count(10_000)
        self._loop_counter = itertools.count()

    # ------------------------------------------------------------------
    def compile(self):
        if self.entry not in self.defs:
            raise CompileError(f"no definition named {self.entry!r}")
        for definition in self.ast.defs:
            self._compile_def(definition)
        return self.pb.build()

    def _compile_def(self, definition):
        builder = self.pb.procedure(definition.name)
        scope = _Scope()
        for param in definition.params:
            ident = builder.emit(Opcode.IDENT, name=param)
            builder.param((ident, 0))
            scope.define(param, _Value([_NodeSource(builder, ident)]))
        first_param_ident = 0  # statement 0 is the first param's IDENT
        scope._trigger = _Value([_NodeSource(builder, first_param_ident)])
        result = self._expr(definition.body, builder, scope)
        ret = builder.emit(Opcode.RETURN)
        self.wire(builder, result, ret, 0)

    # ------------------------------------------------------------------
    def wire(self, builder, value, stmt, port):
        for source in value.sources:
            source.wire_to(builder, stmt, port)

    def _expr(self, node, builder, scope):
        if isinstance(node, Literal):
            return self._literal(node.value, builder, scope)
        if isinstance(node, Var):
            return scope.lookup(node.name, node.line)
        if isinstance(node, BinOp):
            return self._binop(node, builder, scope)
        if isinstance(node, UnOp):
            return self._unop(node, builder, scope)
        if isinstance(node, If):
            return self._if(node, builder, scope)
        if isinstance(node, Let):
            return self._let(node, builder, scope)
        if isinstance(node, Call):
            return self._call(node, builder, scope)
        if isinstance(node, ArrayAlloc):
            return self._alloc(node, builder, scope)
        if isinstance(node, Index):
            return self._index(node, builder, scope)
        if isinstance(node, Loop):
            return self._loop(node, builder, scope)
        raise CompileError(f"cannot compile node {node!r}", line=node.line)

    # ------------------------------------------------------------------
    def _literal(self, value, builder, scope):
        stmt = builder.emit(Opcode.CONSTANT, literal=value, name=repr(value))
        self.wire(builder, scope.trigger(), stmt, 0)
        return _Value([_NodeSource(builder, stmt)])

    def _binop(self, node, builder, scope):
        op = node.op
        left, right = node.left, node.right
        if isinstance(left, Literal) and isinstance(right, Literal):
            if op in _FOLDABLE:
                try:
                    folded = _FOLDABLE[op](left.value, right.value)
                except Exception as exc:  # constant fold must not crash
                    raise CompileError(str(exc), line=node.line) from exc
                return self._literal(folded, builder, scope)
        opcode = _BINOPS.get(op)
        if opcode is None:
            raise CompileError(f"unknown operator {op!r}", line=node.line)
        if isinstance(right, Literal):
            stmt = builder.emit(opcode, constant=right.value, constant_port=1)
            self.wire(builder, self._expr(left, builder, scope), stmt, 0)
        elif isinstance(left, Literal):
            stmt = builder.emit(opcode, constant=left.value, constant_port=0)
            self.wire(builder, self._expr(right, builder, scope), stmt, 1)
        else:
            left_value = self._expr(left, builder, scope)
            right_value = self._expr(right, builder, scope)
            stmt = builder.emit(opcode)
            self.wire(builder, left_value, stmt, 0)
            self.wire(builder, right_value, stmt, 1)
        return _Value([_NodeSource(builder, stmt)])

    def _unop(self, node, builder, scope):
        if isinstance(node.operand, Literal):
            value = node.operand.value
            folded = -value if node.op == "-" else (not value)
            return self._literal(folded, builder, scope)
        stmt = builder.emit(_UNOPS[node.op])
        self.wire(builder, self._expr(node.operand, builder, scope), stmt, 0)
        return _Value([_NodeSource(builder, stmt)])

    def _if(self, node, builder, scope):
        cond = self._expr(node.cond, builder, scope)
        group = _BranchGroup(self, builder, scope, cond)
        then_value = self._expr(node.then, builder, _ArmScope(group, "true"))
        else_value = self._expr(node.orelse, builder, _ArmScope(group, "false"))
        return _Value(then_value.sources + else_value.sources)

    def _let(self, node, builder, scope):
        inner = _Scope(parent=scope)
        for name, expr in node.bindings:
            inner.define(name, self._expr(expr, builder, inner))
        return self._expr(node.body, builder, inner)

    def _call(self, node, builder, scope):
        name = node.func
        if name in self.defs:
            definition = self.defs[name]
            if len(node.args) != len(definition.params):
                raise CompileError(
                    f"{name} takes {len(definition.params)} arguments, "
                    f"got {len(node.args)}",
                    line=node.line,
                )
            args = [self._expr(a, builder, scope) for a in node.args]
            stmt = builder.emit(
                Opcode.CALL, target_block=name, arg_count=len(args),
                site=next(self._sites), name=f"call {name}",
            )
            for port, arg in enumerate(args):
                self.wire(builder, arg, stmt, port)
            return _Value([_NodeSource(builder, stmt)])
        if name in BUILTIN_UNARY:
            if len(node.args) != 1:
                raise CompileError(f"{name} takes 1 argument", line=node.line)
            stmt = builder.emit(BUILTIN_UNARY[name])
            self.wire(builder, self._expr(node.args[0], builder, scope), stmt, 0)
            return _Value([_NodeSource(builder, stmt)])
        if name in BUILTIN_BINARY:
            if len(node.args) != 2:
                raise CompileError(f"{name} takes 2 arguments", line=node.line)
            stmt = builder.emit(BUILTIN_BINARY[name])
            self.wire(builder, self._expr(node.args[0], builder, scope), stmt, 0)
            self.wire(builder, self._expr(node.args[1], builder, scope), stmt, 1)
            return _Value([_NodeSource(builder, stmt)])
        raise CompileError(f"unknown function {name!r}", line=node.line)

    def _alloc(self, node, builder, scope):
        stmt = builder.emit(Opcode.I_ALLOC, name="array")
        self.wire(builder, self._expr(node.size, builder, scope), stmt, 0)
        return _Value([_NodeSource(builder, stmt)])

    def _index(self, node, builder, scope):
        array = self._expr(node.array, builder, scope)
        if isinstance(node.index, Literal):
            stmt = builder.emit(
                Opcode.I_FETCH, constant=node.index.value, constant_port=1
            )
            self.wire(builder, array, stmt, 0)
        else:
            index = self._expr(node.index, builder, scope)
            stmt = builder.emit(Opcode.I_FETCH)
            self.wire(builder, array, stmt, 0)
            self.wire(builder, index, stmt, 1)
        return _Value([_NodeSource(builder, stmt)])

    # ------------------------------------------------------------------
    def _loop(self, node, builder, scope):
        # Desugar the for-form into while-form with a hidden bound.
        bindings = list(node.initial)
        updates = dict(node.updates)
        if node.index is not None:
            bindings.insert(0, (node.index, node.lo))
            bindings.append(("$hi", node.hi))
            cond = BinOp(op="<=", left=Var(name=node.index, line=node.line),
                         right=Var(name="$hi", line=node.line), line=node.line)
            updates[node.index] = BinOp(
                op="+", left=Var(name=node.index, line=node.line),
                right=Literal(value=1, line=node.line), line=node.line,
            )
        else:
            cond = node.cond

        bound_names = [name for name, _ in bindings]
        # Only names the loop *interior* references need to circulate;
        # initial/lo/hi expressions evaluate once, in the parent block.
        inner_bound = frozenset(bound_names)
        interior_free = free_vars(cond, inner_bound)
        for update_expr in updates.values():
            interior_free |= free_vars(update_expr, inner_bound)
        for store in node.stores:
            interior_free |= free_vars(store, inner_bound)
        interior_free |= free_vars(node.result, inner_bound)
        invariants = sorted(interior_free - set(bound_names))
        all_vars = bound_names + invariants

        loop_name = f"{builder.name}$L{next(self._loop_counter)}"
        site = next(self._sites)
        lb = self.pb.loop(loop_name, parent_block=builder.name)

        # Landing IDENTs; their statement numbers are 0..len(all_vars)-1.
        idents = {}
        for var in all_vars:
            ident = lb.emit(Opcode.IDENT, name=f"{var}@entry")
            lb.param((ident, 0))
            idents[var] = ident

        entry_scope = _Scope(
            trigger=_Value([_NodeSource(lb, idents[all_vars[0]])])
        )
        for var in all_vars:
            entry_scope.define(var, _Value([_NodeSource(lb, idents[var])]))
        cond_value = self._expr(cond, lb, entry_scope)

        switches = {}
        for var in all_vars:
            sw = lb.emit(Opcode.SWITCH, name=f"route {var}")
            lb.wire(idents[var], sw, 0)
            self.wire(lb, cond_value, sw, 1)
            switches[var] = sw

        body_scope = _Scope(
            trigger=_Value([_NodeSource(lb, switches[all_vars[0]], "true")])
        )
        for var in all_vars:
            body_scope.define(
                var, _Value([_NodeSource(lb, switches[var], "true")])
            )

        # Element stores execute inside the iteration.
        for store in node.stores:
            array = self._expr(store.array, lb, body_scope)
            value = self._expr(store.value, lb, body_scope)
            if isinstance(store.index, Literal):
                stmt = lb.emit(Opcode.I_STORE, constant=store.index.value,
                               constant_port=1, name="a[i]<-")
            else:
                index = self._expr(store.index, lb, body_scope)
                stmt = lb.emit(Opcode.I_STORE, name="a[i]<-")
                self.wire(lb, index, stmt, 1)
            self.wire(lb, array, stmt, 0)
            self.wire(lb, value, stmt, 2)

        # Back edges: D per circulating variable.
        for var in all_vars:
            if var in updates:
                new_value = self._expr(updates[var], lb, body_scope)
            else:
                new_value = body_scope.lookup(var)
            d = lb.emit(Opcode.D, name=f"D {var}")
            self.wire(lb, new_value, d, 0)
            lb.wire(d, idents[var], 0)

        # Exit path: result computed from the false sides, then D⁻¹, L⁻¹.
        exit_scope = _Scope(
            trigger=_Value([_NodeSource(lb, switches[all_vars[0]], "false")])
        )
        for var in all_vars:
            exit_scope.define(
                var, _Value([_NodeSource(lb, switches[var], "false")])
            )
        result_value = self._expr(node.result, lb, exit_scope)
        d_inv = lb.emit(Opcode.D_INV, name="D⁻¹")
        self.wire(lb, result_value, d_inv, 0)
        l_inv = lb.emit(Opcode.L_INV, param_index=0, name="L⁻¹")
        lb.wire(d_inv, l_inv, 0)
        lb.exit()  # consumers are appended as the parent wires the value

        # Parent side: one L per variable, fed with its initial value.
        for param_index, var in enumerate(all_vars):
            if param_index < len(bindings):
                init_value = self._expr(bindings[param_index][1], builder, scope)
            else:
                init_value = scope.lookup(var, node.line)
            l_stmt = builder.emit(
                Opcode.L, target_block=loop_name, site=site,
                param_index=param_index, name=f"L {var}",
            )
            self.wire(builder, init_value, l_stmt, 0)

        return _Value([_ExitSource(lb.block)])


def compile_program(ast_program, entry=None):
    """Compile a parsed AST into a validated dataflow Program."""
    return _Compiler(ast_program, entry=entry).compile()


def compile_source(source, entry=None):
    """Parse and compile Id-like source text."""
    return compile_program(parse(source), entry=entry)
