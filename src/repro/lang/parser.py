"""Recursive-descent parser for the Id-like language.

Expression grammar (loosest to tightest binding)::

    expr     := 'if' expr 'then' expr 'else' expr
              | 'let' name '=' expr (';' name '=' expr)* 'in' expr
              | or_expr
    or_expr  := and_expr ('or' and_expr)*
    and_expr := not_expr ('and' not_expr)*
    not_expr := 'not' not_expr | cmp_expr
    cmp_expr := add_expr (('<'|'<='|'>'|'>='|'=='|'!=') add_expr)?
    add_expr := mul_expr (('+'|'-') mul_expr)*
    mul_expr := unary (('*'|'/'|'%') unary)*
    unary    := '-' unary | power
    power    := postfix ('**' unary)?
    postfix  := primary ('[' expr ']')*
    primary  := number | 'true' | 'false' | name | name '(' args ')'
              | 'array' '(' expr ')' | '(' expr ')' | loop

    loop     := '(' 'initial' bindings
                    ( 'for' name 'from' expr 'to' expr | 'while' expr )
                    'do' body 'return' expr ')'
    bindings := name '<-' expr (';' name '<-' expr)*
    body     := stmt (';' stmt)*
    stmt     := 'new' name '<-' expr | postfix '[' expr ']' '<-' expr
"""

from ..common.errors import CompileError
from .ast_nodes import (
    ArrayAlloc,
    BinOp,
    Call,
    Def,
    If,
    Index,
    Let,
    Literal,
    Loop,
    Program,
    StoreStmt,
    UnOp,
    Var,
)
from .lexer import tokenize

__all__ = ["parse", "parse_expression"]

_COMPARISONS = {"<", "<=", ">", ">=", "==", "!="}


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -------------------------------------------------
    @property
    def current(self):
        return self.tokens[self.pos]

    def advance(self):
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def check(self, kind, text=None):
        token = self.current
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind, text=None):
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind, text=None):
        token = self.accept(kind, text)
        if token is None:
            want = text if text is not None else kind
            raise CompileError(
                f"expected {want!r}, found {self.current.text!r}",
                line=self.current.line,
                column=self.current.column,
            )
        return token

    # -- grammar ----------------------------------------------------------
    def parse_program(self):
        defs = []
        while not self.check("eof"):
            defs.append(self.parse_def())
        if not defs:
            raise CompileError("empty program", line=1)
        return Program(defs=defs, line=defs[0].line)

    def parse_def(self):
        start = self.expect("keyword", "def")
        name = self.expect("name").text
        self.expect("op", "(")
        params = [self.expect("name").text]
        while self.accept("op", ","):
            params.append(self.expect("name").text)
        self.expect("op", ")")
        self.expect("op", "=")
        body = self.parse_expr()
        self.expect("op", ";")
        if len(set(params)) != len(params):
            raise CompileError(
                f"duplicate parameter in def {name!r}", line=start.line
            )
        return Def(name=name, params=params, body=body, line=start.line)

    def parse_expr(self):
        if self.check("keyword", "if"):
            return self.parse_if()
        if self.check("keyword", "let"):
            return self.parse_let()
        return self.parse_or()

    def parse_if(self):
        start = self.expect("keyword", "if")
        cond = self.parse_expr()
        self.expect("keyword", "then")
        then = self.parse_expr()
        self.expect("keyword", "else")
        orelse = self.parse_expr()
        return If(cond=cond, then=then, orelse=orelse, line=start.line)

    def parse_let(self):
        start = self.expect("keyword", "let")
        bindings = []
        while True:
            name = self.expect("name").text
            self.expect("op", "=")
            bindings.append((name, self.parse_expr()))
            if not self.accept("op", ";"):
                break
        self.expect("keyword", "in")
        body = self.parse_expr()
        return Let(bindings=bindings, body=body, line=start.line)

    def parse_or(self):
        node = self.parse_and()
        while self.check("keyword", "or"):
            token = self.advance()
            node = BinOp(op="or", left=node, right=self.parse_and(),
                         line=token.line)
        return node

    def parse_and(self):
        node = self.parse_not()
        while self.check("keyword", "and"):
            token = self.advance()
            node = BinOp(op="and", left=node, right=self.parse_not(),
                         line=token.line)
        return node

    def parse_not(self):
        if self.check("keyword", "not"):
            token = self.advance()
            return UnOp(op="not", operand=self.parse_not(), line=token.line)
        return self.parse_cmp()

    def parse_cmp(self):
        node = self.parse_add()
        if self.current.kind == "op" and self.current.text in _COMPARISONS:
            token = self.advance()
            node = BinOp(op=token.text, left=node, right=self.parse_add(),
                         line=token.line)
        return node

    def parse_add(self):
        node = self.parse_mul()
        while self.current.kind == "op" and self.current.text in ("+", "-"):
            token = self.advance()
            node = BinOp(op=token.text, left=node, right=self.parse_mul(),
                         line=token.line)
        return node

    def parse_mul(self):
        node = self.parse_unary()
        while self.current.kind == "op" and self.current.text in ("*", "/", "%"):
            token = self.advance()
            node = BinOp(op=token.text, left=node, right=self.parse_unary(),
                         line=token.line)
        return node

    def parse_unary(self):
        if self.check("op", "-"):
            token = self.advance()
            return UnOp(op="-", operand=self.parse_unary(), line=token.line)
        return self.parse_power()

    def parse_power(self):
        node = self.parse_postfix()
        if self.check("op", "**"):
            token = self.advance()
            node = BinOp(op="**", left=node, right=self.parse_unary(),
                         line=token.line)
        return node

    def parse_postfix(self):
        node = self.parse_primary()
        while self.check("op", "["):
            token = self.advance()
            index = self.parse_expr()
            self.expect("op", "]")
            node = Index(array=node, index=index, line=token.line)
        return node

    def parse_primary(self):
        token = self.current
        if token.kind == "number":
            self.advance()
            text = token.text
            value = float(text) if any(c in text for c in ".eE") else int(text)
            return Literal(value=value, line=token.line)
        if self.accept("keyword", "true"):
            return Literal(value=True, line=token.line)
        if self.accept("keyword", "false"):
            return Literal(value=False, line=token.line)
        if self.check("keyword", "array"):
            self.advance()
            self.expect("op", "(")
            size = self.parse_expr()
            self.expect("op", ")")
            return ArrayAlloc(size=size, line=token.line)
        if token.kind == "name":
            self.advance()
            if self.accept("op", "("):
                args = [self.parse_expr()]
                while self.accept("op", ","):
                    args.append(self.parse_expr())
                self.expect("op", ")")
                return Call(func=token.text, args=args, line=token.line)
            return Var(name=token.text, line=token.line)
        if self.check("op", "("):
            self.advance()
            if self.check("keyword", "initial"):
                return self.parse_loop(token)
            node = self.parse_expr()
            self.expect("op", ")")
            return node
        raise CompileError(
            f"unexpected token {token.text!r}",
            line=token.line, column=token.column,
        )

    def parse_loop(self, open_paren):
        self.expect("keyword", "initial")
        initial = [self.parse_binding()]
        while self.accept("op", ";"):
            initial.append(self.parse_binding())
        index = lo = hi = cond = None
        if self.accept("keyword", "for"):
            index = self.expect("name").text
            self.expect("keyword", "from")
            lo = self.parse_expr()
            self.expect("keyword", "to")
            hi = self.parse_expr()
        else:
            self.expect("keyword", "while")
            cond = self.parse_expr()
        self.expect("keyword", "do")
        updates, stores = self.parse_body()
        self.expect("keyword", "return")
        result = self.parse_expr()
        self.expect("op", ")")
        names = [name for name, _ in initial]
        if len(set(names)) != len(names):
            raise CompileError("duplicate initial binding", line=open_paren.line)
        if index is not None and index in names:
            raise CompileError(
                f"loop index {index!r} collides with an initial binding",
                line=open_paren.line,
            )
        updated = [name for name, _ in updates]
        if len(set(updated)) != len(updated):
            raise CompileError("duplicate 'new' binding", line=open_paren.line)
        for name in updated:
            if name not in names:
                raise CompileError(
                    f"'new {name}' has no matching initial binding",
                    line=open_paren.line,
                )
        return Loop(
            initial=initial, index=index, lo=lo, hi=hi, cond=cond,
            updates=updates, stores=stores, result=result,
            line=open_paren.line,
        )

    def parse_binding(self):
        name = self.expect("name").text
        self.expect("op", "<-")
        return (name, self.parse_expr())

    def parse_body(self):
        updates = []
        stores = []
        while True:
            if self.accept("keyword", "new"):
                updates.append(self.parse_binding())
            else:
                target = self.parse_postfix()
                if not isinstance(target, Index):
                    raise CompileError(
                        "loop statements are 'new v <- e' or 'a[i] <- e'",
                        line=self.current.line,
                    )
                self.expect("op", "<-")
                value = self.parse_expr()
                stores.append(
                    StoreStmt(array=target.array, index=target.index,
                              value=value, line=target.line)
                )
            if not self.accept("op", ";"):
                break
        return updates, stores


def parse(source):
    """Parse a whole program (a sequence of ``def``s)."""
    return _Parser(tokenize(source)).parse_program()


def parse_expression(source):
    """Parse a single expression (used by tests and the REPL-style API)."""
    parser = _Parser(tokenize(source))
    expr = parser.parse_expr()
    parser.expect("eof")
    return expr
