"""Abstract syntax of the Id-like language."""

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = [
    "Node", "Program", "Def", "Literal", "Var", "BinOp", "UnOp", "If",
    "Let", "Call", "ArrayAlloc", "Index", "StoreStmt", "Loop", "free_vars",
]


@dataclass
class Node:
    """Base class; ``line`` points back at the source for error messages."""

    line: int = field(default=0, kw_only=True)


@dataclass
class Literal(Node):
    value: object


@dataclass
class Var(Node):
    name: str


@dataclass
class BinOp(Node):
    op: str  # '+', '-', '*', '/', '%', '**', '<', '<=', ..., 'and', 'or'
    left: Node
    right: Node


@dataclass
class UnOp(Node):
    op: str  # '-', 'not'
    operand: Node


@dataclass
class If(Node):
    cond: Node
    then: Node
    orelse: Node


@dataclass
class Let(Node):
    bindings: List[Tuple[str, Node]]
    body: Node


@dataclass
class Call(Node):
    func: str
    args: List[Node]


@dataclass
class ArrayAlloc(Node):
    size: Node


@dataclass
class Index(Node):
    array: Node
    index: Node


@dataclass
class StoreStmt(Node):
    """``a[i] <- e`` inside a loop body."""

    array: Node
    index: Node
    value: Node


@dataclass
class Loop(Node):
    """The (initial ... for/while ... do ... return ...) expression.

    ``index`` is None for while-loops.  ``updates`` are the ``new v <- e``
    statements; ``stores`` the ``a[i] <- e`` statements, kept in source
    order relative to each other only for readability (they are all
    independent dataflow).
    """

    initial: List[Tuple[str, Node]]
    index: Optional[str]
    lo: Optional[Node]
    hi: Optional[Node]
    cond: Optional[Node]  # while-form condition
    updates: List[Tuple[str, Node]]
    stores: List[StoreStmt]
    result: Node


@dataclass
class Def(Node):
    name: str
    params: List[str]
    body: Node


@dataclass
class Program(Node):
    defs: List[Def]


def free_vars(node, bound=frozenset()):
    """The free variable names of an expression."""
    if isinstance(node, Literal):
        return set()
    if isinstance(node, Var):
        return set() if node.name in bound else {node.name}
    if isinstance(node, BinOp):
        return free_vars(node.left, bound) | free_vars(node.right, bound)
    if isinstance(node, UnOp):
        return free_vars(node.operand, bound)
    if isinstance(node, If):
        return (
            free_vars(node.cond, bound)
            | free_vars(node.then, bound)
            | free_vars(node.orelse, bound)
        )
    if isinstance(node, Let):
        out = set()
        inner = set(bound)
        for name, expr in node.bindings:
            out |= free_vars(expr, frozenset(inner))
            inner.add(name)
        return out | free_vars(node.body, frozenset(inner))
    if isinstance(node, Call):
        out = set()
        for arg in node.args:
            out |= free_vars(arg, bound)
        return out
    if isinstance(node, ArrayAlloc):
        return free_vars(node.size, bound)
    if isinstance(node, Index):
        return free_vars(node.array, bound) | free_vars(node.index, bound)
    if isinstance(node, StoreStmt):
        return (
            free_vars(node.array, bound)
            | free_vars(node.index, bound)
            | free_vars(node.value, bound)
        )
    if isinstance(node, Loop):
        out = set()
        for _, expr in node.initial:
            out |= free_vars(expr, bound)
        if node.lo is not None:
            out |= free_vars(node.lo, bound)
        if node.hi is not None:
            out |= free_vars(node.hi, bound)
        inner = set(bound) | {name for name, _ in node.initial}
        if node.index is not None:
            inner.add(node.index)
        inner = frozenset(inner)
        if node.cond is not None:
            out |= free_vars(node.cond, inner)
        for _, expr in node.updates:
            out |= free_vars(expr, inner)
        for store in node.stores:
            out |= free_vars(store, inner)
        out |= free_vars(node.result, inner)
        return out
    raise TypeError(f"not an expression node: {node!r}")
