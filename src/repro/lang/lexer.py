"""Tokenizer for the Id-like language ("Idl").

The surface syntax follows the paper's ID fragment (§2.2.1)::

    def trapezoid(a, b, n, h) =
      (initial s <- (f(a) + f(b)) / 2;
               x <- a + h
       for i from 1 to n - 1 do
         new x <- x + h;
         new s <- s + f(x)
       return s) * h;

plus ``if/then/else``, ``let ... in``, ``while`` loops, and I-structure
arrays (``array(n)``, ``a[i]``, ``a[i] <- e``).
"""

import re
from dataclasses import dataclass

from ..common.errors import CompileError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    {
        "def", "if", "then", "else", "let", "in", "initial", "for", "from",
        "to", "while", "do", "new", "return", "array", "and", "or", "not",
        "true", "false",
    }
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t]+)
  | (?P<comment>//[^\n]*|;;[^\n]*)
  | (?P<newline>\n)
  | (?P<number>\d+\.\d+(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+|\d+)
  | (?P<name>[A-Za-z_][A-Za-z0-9_']*)
  | (?P<op><-|<=|>=|==|!=|\*\*|[-+*/%<>=(),;\[\]])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str  # 'number' | 'name' | 'keyword' | 'op' | 'eof'
    text: str
    line: int
    column: int

    def __repr__(self):
        return f"{self.kind}:{self.text!r}@{self.line}:{self.column}"


def tokenize(source):
    """Turn source text into a list of tokens ending with an EOF token."""
    tokens = []
    line = 1
    line_start = 0
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            column = pos - line_start + 1
            raise CompileError(
                f"unexpected character {source[pos]!r}", line=line, column=column
            )
        pos = match.end()
        kind = match.lastgroup
        text = match.group()
        if kind == "newline":
            line += 1
            line_start = pos
            continue
        if kind in ("ws", "comment"):
            continue
        column = match.start() - line_start + 1
        if kind == "name" and text in KEYWORDS:
            kind = "keyword"
        tokens.append(Token(kind, text, line, column))
    tokens.append(Token("eof", "", line, pos - line_start + 1))
    return tokens
