"""Benchmark-suite orchestration: the engine behind ``repro bench`` and
``benchmarks/run_all.py``.

The suite definition (which modules, which table-producing functions)
lives in ``benchmarks/run_all.py`` as the ``EXPERIMENTS`` list.  A bench
module may additionally publish ``SWEEPS = {table_name: Experiment}``;
those tables are executed *grid-parallel* — one worker per grid point —
while the rest run as single-config experiments (the whole table in one
worker).  Either way every run flows through the same scheduler, cache,
timeout and telemetry machinery in :mod:`repro.exp.engine`.

Results land exactly where the serial runner put them: a ``.txt`` +
``.json`` pair per table under ``benchmarks/results/`` and the aggregate
``BENCH_results.json`` at the repository root.
"""

import importlib
import json
import os
import sys
import time

from .cache import ResultCache, invalidate_fingerprints, resolve_cache_dir
from .engine import run_experiment
from .experiment import Experiment
from .tables import payload_to_table, table_rows, table_to_payload

__all__ = ["build_experiment", "find_bench_dir", "run_suite"]

#: Seconds one benchmark run may take before it is terminated + retried.
DEFAULT_TIMEOUT = 300.0


def find_bench_dir(start=None):
    """Locate the benchmarks directory.

    Search order: ``$REPRO_BENCH_DIR``; ``start`` (or cwd) if it holds
    ``run_all.py``; a ``benchmarks/`` child of start/cwd; the checkout
    the :mod:`repro` package itself lives in.
    """
    env = os.environ.get("REPRO_BENCH_DIR")
    if env:
        return os.path.abspath(env)
    here = os.path.abspath(start or os.getcwd())
    for candidate in (here, os.path.join(here, "benchmarks")):
        if os.path.isfile(os.path.join(candidate, "run_all.py")):
            return candidate
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    candidate = os.path.join(os.path.dirname(os.path.dirname(package_root)),
                             "benchmarks")
    if os.path.isfile(os.path.join(candidate, "run_all.py")):
        return candidate
    raise FileNotFoundError(
        "cannot find the benchmarks directory (looked for run_all.py; "
        "set REPRO_BENCH_DIR or run from the repository root)"
    )


def _run_legacy_table(config):
    """Worker body for an un-ported benchmark: import the module, call
    its table function, ship the rendered table back as a payload."""
    bench_dir = os.environ.get("REPRO_BENCH_DIR")
    if bench_dir and bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    module = importlib.import_module(config["module"])
    table = getattr(module, config["fn"])()
    return table_to_payload(table)


def _select(experiments, only):
    """The (module_name, fn_name, out_name) triples matching ``only``."""
    selected = []
    for module_name, runners in experiments:
        for fn_name, out_name in runners:
            if (only is None or only in module_name or only in out_name):
                selected.append((module_name, fn_name, out_name))
    return selected


def build_experiment(module, fn_name, out_name):
    """The Experiment for one table of an imported bench ``module``: the
    module's declared sweep when it has one, a single-config legacy
    wrapper otherwise.  Returns ``(experiment, is_sweep)``.  Public so
    the sweep service (:mod:`repro.serve`) resolves requests through the
    exact machinery ``repro bench`` uses."""
    sweeps = getattr(module, "SWEEPS", None)
    module_file = getattr(module, "__file__", None)
    code_paths = [module_file] if module_file else []
    if sweeps and out_name in sweeps:
        experiment = sweeps[out_name]
        if not experiment.code_paths:
            experiment.code_paths = code_paths
        return experiment, True
    return Experiment(
        name=out_name,
        run=_run_legacy_table,
        grid=[{"module": module.__name__, "fn": fn_name}],
        title=out_name,
        assemble=lambda exp, values: payload_to_table(values[0]),
        code_paths=code_paths,
    ), False


def _build_experiment(bench_dir, module_name, fn_name, out_name):
    return build_experiment(importlib.import_module(module_name),
                            fn_name, out_name)


def run_suite(only=None, jobs=None, no_cache=False, timeout=None,
              bench_dir=None, cache_dir=None, bus=None, err=None,
              faults=None):
    """Run the benchmark suite; returns the aggregate telemetry dict.

    ``jobs``/``timeout``/``no_cache`` map 1:1 onto the ``repro bench``
    CLI flags.  Tables print to stdout (as the serial runner always did);
    per-experiment progress lines go to ``err``.

    ``faults`` (a plan dict or a JSON file path, the ``--faults`` flag)
    is validated and exported as ``REPRO_FAULT_PLAN`` before the bench
    modules are imported; fault-aware sweeps (e20) read it while
    building their grids, so each fault level appears as its own row.
    The payload may carry a ``levels`` list overriding a sweep's default
    fault-severity grid.
    """
    err = err if err is not None else sys.stderr
    # Fingerprint memoization is per process-lifetime; a long-lived
    # driver would stamp stale code versions after an on-disk edit.
    invalidate_fingerprints()
    if faults is not None:
        from ..faults import FaultPlan

        if isinstance(faults, str):
            with open(faults, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        elif isinstance(faults, dict):
            payload = faults
        else:
            payload = faults.as_dict()
        FaultPlan.from_dict(payload)  # validate eagerly (allows "levels")
        os.environ["REPRO_FAULT_PLAN"] = json.dumps(payload, sort_keys=True)
    else:
        os.environ.pop("REPRO_FAULT_PLAN", None)
    bench_dir = find_bench_dir(bench_dir)
    os.environ["REPRO_BENCH_DIR"] = bench_dir
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    run_all = importlib.import_module("run_all")
    harness = importlib.import_module("harness")

    cache = None
    if not no_cache:
        cache = ResultCache(resolve_cache_dir(cache_dir, bench_dir))
    timeout = DEFAULT_TIMEOUT if timeout is None else timeout

    telemetry = []
    failures = []
    suite_start = time.time()
    for module_name, fn_name, out_name in _select(run_all.EXPERIMENTS, only):
        experiment, is_sweep = _build_experiment(
            bench_dir, module_name, fn_name, out_name)
        start = time.time()
        records = run_experiment(experiment, jobs=jobs, cache=cache,
                                 timeout=timeout, bus=bus)
        wall = time.time() - start
        cached = sum(1 for record in records if record.cached)
        failed = [record for record in records if not record.ok]
        if failed:
            for record in failed:
                print(f"[FAILED] {out_name}[{record.index}] "
                      f"{record.status} after {record.attempts} attempt(s):"
                      f"\n{record.error}", file=err)
            failures.append({
                "experiment": out_name,
                "module": module_name,
                "rows": [record.payload() for record in failed],
            })
            continue
        table = experiment.table([record.value for record in records])
        harness.write_table(
            table, out_name,
            meta={"wall_seconds": round(wall, 3),
                  "cache_hits": cached,
                  "grid": len(records)},
        )
        print(f"[{wall:6.1f}s] {out_name} "
              f"({cached}/{len(records)} cached)\n", file=err)
        telemetry.append({
            "experiment": out_name,
            "module": module_name,
            "title": table.title,
            "rows": len(table.rows),
            "columns": list(table.columns),
            "wall_seconds": round(wall, 3),
            "cache_hits": cached,
            "grid": len(records),
            "data": table_rows(table),
        })

    from ..common.batch import resolve_exec_mode
    from ..common.simulator import resolve_shards

    aggregate = {
        "experiments": telemetry,
        "failures": failures,
        "meta": {
            "jobs": jobs if jobs is not None else (os.cpu_count() or 1),
            "cache": (None if cache is None else
                      {"root": cache.root, "hits": cache.hits,
                       "misses": cache.misses}),
            "wall_seconds": round(time.time() - suite_start, 3),
            # Provenance: where this sweep ran.  The tables themselves
            # are host-independent (the regression gate diffs them), the
            # telemetry is not — stamp enough to explain a slow run.
            "host_cpus": os.cpu_count() or 1,
            "kernel": os.environ.get("REPRO_SIM_KERNEL") or "calendar",
            "shards": resolve_shards(),
            "exec_mode": resolve_exec_mode(),
            "python": sys.version.split()[0],
        },
    }
    aggregate_path = os.path.join(os.path.dirname(bench_dir),
                                  "BENCH_results.json")
    with open(aggregate_path, "w", encoding="utf-8") as fh:
        json.dump(aggregate, fh, indent=2, sort_keys=True, default=repr)
        fh.write("\n")
    total = sum(entry["wall_seconds"] for entry in telemetry)
    print(f"[{total:6.1f}s] total -> {aggregate_path}"
          + (f"  [{len(failures)} FAILED]" if failures else ""), file=err)
    return aggregate
