"""The sweep executor: fan a grid out across worker processes.

One worker process per run (not a long-lived pool) so that a per-run
timeout can be *enforced* — the scheduler terminates the process, retries
once, and records a structured failure row instead of crashing or
hanging the sweep.  Up to ``jobs`` workers are live at once; finished
slots are refilled immediately, so the wall clock approaches
``serial_time / jobs`` for uniform grids.

Determinism contract: records are returned in grid order, and a run's
value depends only on its config (the :class:`Experiment` purity rule),
so ``--jobs 1`` and ``--jobs 4`` produce identical values —
:func:`records_payload` (without timing) is byte-identical JSON.

With a :class:`~repro.exp.cache.ResultCache` attached, each config is
looked up by content hash of (experiment, config, code-version) first;
hits never spawn a worker.  Progress streams through a
:class:`repro.obs.TraceBus` as ``sweep_begin`` / ``sweep_task`` /
``sweep_end`` events.

The timeout clock starts *before* the worker process is spawned and the
worker reports a ``begin`` handshake when it is about to enter the run
function, so interpreter startup and module import time count against
the budget too; a run that times out records which phase it died in
(``RunRecord.timeout_phase``: ``"startup"`` or ``"run"``).

The retry-aware work list lives in :class:`TaskQueue` so the long-lived
sweep service (:mod:`repro.serve.scheduler`) schedules from the same
structure the batch engine does.
"""

import collections
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass
from multiprocessing.connection import wait as _wait_connections
from typing import Any, Optional

from .cache import config_key, repro_fingerprint

__all__ = ["RunRecord", "TaskQueue", "experiment_code_version",
           "records_payload", "run_experiment"]

#: Statuses a run can end in.  ``ok`` is the only cached one.
#: ``fatal`` marks operator interrupts / resource exhaustion inside a
#: worker (KeyboardInterrupt, SystemExit, MemoryError): the traceback is
#: preserved in the failure row but the attempt is never retried.
STATUSES = ("ok", "error", "timeout", "fatal")

#: Exceptions that must not be swallowed into a retried ``error`` row.
FATAL_EXCEPTIONS = (KeyboardInterrupt, SystemExit, MemoryError)

#: Extra attempts a failed run gets before a failure row is recorded
#: (shared default between the batch engine and the sweep service).
DEFAULT_RETRIES = 1

#: The lifecycle phases a worker attempt moves through.  ``startup``
#: covers process spawn + interpreter/module import, ``run`` is the run
#: function itself; a timeout records the phase it struck.
PHASES = ("startup", "run")


@dataclass
class RunRecord:
    """The structured outcome of one grid point."""

    index: int
    config: dict
    status: str = "ok"
    value: Any = None
    error: Optional[str] = None
    attempts: int = 0
    wall_seconds: float = 0.0
    cached: bool = False
    cache_key: Optional[str] = None
    #: For ``status == "timeout"``: the phase the final attempt was in
    #: when the deadline struck (``"startup"`` or ``"run"``).
    timeout_phase: Optional[str] = None
    #: For failed cells run under the sweep service: the tail of the
    #: worker's flight recorder (a bounded list of breadcrumb dicts) so
    #: post-mortems need no re-run.  Omitted from :meth:`payload` when
    #: absent, keeping successful rows byte-identical to older runs.
    flight: Optional[list] = None
    #: The cell was answered by the analytic surrogate
    #: (:mod:`repro.predict`) instead of a simulation run.  Only present
    #: in :meth:`payload` when True — simulated rows stay byte-identical.
    predicted: bool = False

    @property
    def ok(self):
        return self.status == "ok"

    def payload(self, include_timing=True):
        """A JSON-able dict; drop wall-clock noise for byte-identical
        comparisons across job counts."""
        out = {
            "index": self.index,
            "config": self.config,
            "status": self.status,
            "value": self.value,
            "error": self.error,
            "attempts": self.attempts,
            "cached": self.cached,
        }
        if self.timeout_phase is not None:
            out["timeout_phase"] = self.timeout_phase
        if self.flight is not None:
            out["flight"] = self.flight
        if self.predicted:
            out["predicted"] = True
        if include_timing:
            out["wall_seconds"] = round(self.wall_seconds, 3)
        return out


def records_payload(records, include_timing=False):
    """The canonical JSON-able form of a sweep's records (grid order)."""
    ordered = sorted(records, key=lambda record: record.index)
    return [record.payload(include_timing=include_timing)
            for record in ordered]


class TaskQueue:
    """A retry-aware FIFO of work items with optional requeue delays.

    Items are opaque tuples; the queue only orders them.  ``push`` adds
    an item ready immediately (or at ``not_before``), ``pop`` returns
    the oldest ready item or ``None``, and ``next_ready`` tells a
    scheduler how long it may sleep before new work matures.  Both the
    batch engine below and the long-running sweep service
    (:mod:`repro.serve.scheduler`) drive their workers from this.
    """

    __slots__ = ("_ready", "_delayed")

    def __init__(self):
        self._ready = collections.deque()
        self._delayed = []  # [(not_before, item)] — small, scanned linearly

    def __len__(self):
        return len(self._ready) + len(self._delayed)

    def __bool__(self):
        return bool(self._ready) or bool(self._delayed)

    def push(self, item, front=False, not_before=None):
        """Add ``item``; ``front`` jumps the FIFO (inline retries),
        ``not_before`` (a monotonic timestamp) delays maturity."""
        if not_before is not None:
            self._delayed.append((not_before, item))
        elif front:
            self._ready.appendleft(item)
        else:
            self._ready.append(item)

    def _mature(self, now):
        if not self._delayed:
            return
        due = [pair for pair in self._delayed if pair[0] <= now]
        if due:
            self._delayed = [p for p in self._delayed if p[0] > now]
            for _, item in sorted(due, key=lambda pair: pair[0]):
                self._ready.append(item)

    def pop(self, now=None):
        """The oldest ready item, or ``None`` if none has matured."""
        self._mature(time.monotonic() if now is None else now)
        return self._ready.popleft() if self._ready else None

    def next_ready(self, now=None):
        """Seconds until a delayed item matures (0 if one is ready now,
        ``None`` when the queue is empty)."""
        now = time.monotonic() if now is None else now
        self._mature(now)
        if self._ready:
            return 0.0
        if not self._delayed:
            return None
        return max(0.0, min(t for t, _ in self._delayed) - now)


def experiment_code_version(experiment):
    """The code-version stamp cache keys carry for ``experiment``: the
    repro package fingerprint plus any ``code_paths`` the experiment
    names (its benchmark module, typically).  Shared by the batch engine
    and the sweep service so their cache keys agree."""
    version = repro_fingerprint()
    if experiment.code_paths:
        from .cache import code_fingerprint

        version += "+" + code_fingerprint(
            *[os.path.abspath(p) for p in experiment.code_paths])
    return version


def _worker_main(conn, run, config):
    """Child-process body: run one config, ship the outcome back.

    The ``begin`` handshake marks the startup→run phase transition so
    the parent can attribute a timeout to interpreter/import startup
    versus the run function itself.
    """
    import sys

    try:
        try:
            conn.send(("begin", None, None))
            value = run(config)
            conn.send(("ok", value, None))
            return
        except FATAL_EXCEPTIONS:
            # Operator interrupts and resource exhaustion are not
            # ordinary run failures: ship them as ``fatal`` so the
            # parent records the traceback without burning retries
            # re-raising the same condition.
            status, failure = "fatal", traceback.format_exc()
        except BaseException:  # noqa: BLE001 — parent turns this into a row
            status, failure = "error", traceback.format_exc()
        try:
            conn.send((status, None, failure))
        except (OSError, ValueError):
            # The pipe is gone (parent died / timed us out) or closed —
            # nothing structured can be shipped, but don't silently eat
            # the diagnostic: the parent records "worker exited without a
            # result", so leave the traceback on stderr to pair with it.
            print(failure, file=sys.stderr)
    finally:
        conn.close()


@dataclass
class _Task:
    """One live worker and the run it owns."""

    index: int
    attempt: int
    process: Any
    conn: Any
    started: float
    deadline: Optional[float] = None
    cache_key: Optional[str] = None
    phase: str = "startup"


def _spawn(context, experiment, index, attempt, timeout):
    parent_conn, child_conn = context.Pipe(duplex=False)
    process = context.Process(
        target=_worker_main,
        args=(child_conn, experiment.run, experiment.grid[index]),
        name=f"sweep-{experiment.name}-{index}",
        daemon=True,
    )
    # The clock starts before the fork/exec so spawn + import time is
    # charged against the same per-run budget as the run itself.
    now = time.monotonic()
    process.start()
    child_conn.close()
    return _Task(
        index=index, attempt=attempt, process=process, conn=parent_conn,
        started=now, deadline=(now + timeout) if timeout else None,
    )


def _recv(task):
    """One message off the worker pipe, or None on EOF/breakage."""
    try:
        return task.conn.recv()
    except (EOFError, OSError):
        return None


def _reap(task, message):
    """Close and join a finished worker; diagnose a silent death."""
    task.conn.close()
    task.process.join()
    if message is None:
        code = task.process.exitcode
        message = ("error", None,
                   f"worker exited without a result (exit code {code})")
    return message


def _emit(bus, clock_start, kind, detail="", **fields):
    if bus is not None:
        bus.emit(round(time.monotonic() - clock_start, 6), "sweep", kind,
                 detail, **fields)


def run_experiment(experiment, jobs=None, cache=None, timeout=None,
                   retries=DEFAULT_RETRIES, bus=None, progress=None):
    """Execute every config in ``experiment.grid``; returns RunRecords
    in grid order.

    ``jobs``: worker processes (default ``os.cpu_count()``); ``0`` runs
    the grid inline in this process (no isolation, no timeout — the
    debugging path).  ``timeout``: seconds per attempt (spawn + import
    + run); an expired worker is terminated and the run retried up to
    ``retries`` more times before a ``timeout`` record is written.
    ``cache``: any content-addressed store with the
    :class:`~repro.exp.cache.ResultCache` ``get``/``put`` interface;
    hits skip execution entirely.  ``bus``: a :class:`repro.obs.TraceBus`
    for progress telemetry.  ``progress``: callable invoked with each
    finished :class:`RunRecord`.
    """
    if jobs is None:
        jobs = os.cpu_count() or 1
    clock_start = time.monotonic()
    code_version = (experiment_code_version(experiment)
                    if cache is not None else None)

    records = {}
    pending = TaskQueue()
    _emit(bus, clock_start, "sweep_begin", experiment.name,
          configs=len(experiment.grid), jobs=jobs)

    def finish(record):
        records[record.index] = record
        fields = dict(index=record.index, status=record.status,
                      attempts=record.attempts, cached=record.cached,
                      wall=round(record.wall_seconds, 4))
        if record.error:
            # Surface the failure cause on the bus (last traceback line),
            # not just in the structured row — so a live `repro bench`
            # progress stream shows *why* a grid point failed.
            fields["error"] = record.error.strip().splitlines()[-1][:200]
        _emit(bus, clock_start, "sweep_task",
              f"{experiment.name}[{record.index}] {record.status}",
              **fields)
        if progress is not None:
            progress(record)

    # ------------------------------------------------------------------
    # cache pass
    for index, config in enumerate(experiment.grid):
        key = None
        if cache is not None:
            key = config_key(experiment.name, config, code_version)
            found, value = cache.get(experiment.name, key)
            if found:
                finish(RunRecord(index=index, config=config, status="ok",
                                 value=value, cached=True, cache_key=key))
                continue
        pending.push((index, 0, key))

    def record_outcome(index, attempt, key, message, wall, phase=None):
        status, value, error = message
        config = experiment.grid[index]
        if status == "ok":
            if cache is not None:
                cache.put(experiment.name, key, config, code_version, value)
            finish(RunRecord(index=index, config=config, status="ok",
                             value=value, attempts=attempt + 1,
                             wall_seconds=wall, cache_key=key))
            return None
        if status != "fatal" and attempt < retries:
            return (index, attempt + 1, key)  # reschedule
        finish(RunRecord(index=index, config=config, status=status,
                         error=error, attempts=attempt + 1,
                         wall_seconds=wall, cache_key=key,
                         timeout_phase=phase if status == "timeout" else None))
        return None

    # ------------------------------------------------------------------
    # inline path (jobs=0): no processes, no timeout enforcement
    if jobs == 0:
        while pending:
            index, attempt, key = pending.pop()
            started = time.monotonic()
            try:
                message = ("ok", experiment.run(experiment.grid[index]), None)
            except FATAL_EXCEPTIONS:
                # Operator interrupts and resource exhaustion must stop
                # the whole sweep, not become a retried failure row.
                raise
            except Exception:
                # Anything the run itself raises becomes a structured
                # failure row (and a bus event via finish) — the inline
                # path mirrors the worker-process path's contract.
                message = ("error", None, traceback.format_exc())
            retry = record_outcome(index, attempt, key, message,
                                   time.monotonic() - started)
            if retry is not None:
                pending.push(retry, front=True)
    else:
        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")
        running = []
        while pending or running:
            while pending and len(running) < jobs:
                index, attempt, key = pending.pop()
                task = _spawn(context, experiment, index, attempt, timeout)
                task.cache_key = key
                running.append(task)

            now = time.monotonic()
            deadlines = [t.deadline for t in running if t.deadline]
            wait_for = min(deadlines) - now if deadlines else None
            ready = _wait_connections(
                [t.conn for t in running],
                timeout=max(0.0, wait_for) if wait_for is not None else None,
            )

            now = time.monotonic()
            still_running = []
            for task in running:
                if task.conn in ready:
                    message = _recv(task)
                    if message is not None and message[0] == "begin":
                        # Startup handshake: the worker entered its run
                        # function — not a completion, keep waiting.
                        task.phase = "run"
                        still_running.append(task)
                        continue
                    message = _reap(task, message)
                    retry = record_outcome(task.index, task.attempt,
                                           task.cache_key, message,
                                           now - task.started)
                    if retry is not None:
                        pending.push(retry)
                elif task.deadline is not None and now >= task.deadline:
                    task.process.terminate()
                    task.process.join()
                    task.conn.close()
                    message = ("timeout", None,
                               f"run exceeded {timeout}s (in {task.phase} "
                               f"phase) and was terminated")
                    retry = record_outcome(task.index, task.attempt,
                                           task.cache_key, message,
                                           now - task.started,
                                           phase=task.phase)
                    if retry is not None:
                        pending.push(retry)
                else:
                    still_running.append(task)
            running = still_running

    ordered = [records[index] for index in sorted(records)]
    _emit(bus, clock_start, "sweep_end", experiment.name,
          ok=sum(1 for r in ordered if r.ok),
          failed=sum(1 for r in ordered if not r.ok),
          cached=sum(1 for r in ordered if r.cached),
          wall=round(time.monotonic() - clock_start, 4))
    return ordered
