"""What a sweep experiment *is*: a grid of configs and a pure run function.

An :class:`Experiment` declares the whole sweep up front so the engine
can schedule, cache and retry it mechanically:

* ``grid`` — a list of JSON-able config dicts, one per run;
* ``run`` — a pure, picklable ``run(config) -> value`` (value must be
  JSON-serializable: the engine caches it on disk and ships it across
  process boundaries);
* ``assemble`` — optional ``assemble(experiment, values) -> Table``
  turning the per-config values (grid order) back into the experiment's
  result table.

Purity matters: a run must depend only on its config (plus the code
version, which the cache hashes), never on sweep order or shared state —
that is what makes ``--jobs 1`` and ``--jobs 4`` byte-identical and the
cache sound.
"""

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = ["Experiment", "grid"]


def grid(**axes):
    """Cartesian product of named axes as a list of config dicts.

    ``grid(stages=[2, 3], combining=[False, True])`` -> 4 configs, last
    axis varying fastest (itertools.product order, deterministic).
    """
    names = list(axes)
    out = []
    for values in itertools.product(*(axes[name] for name in names)):
        out.append(dict(zip(names, values)))
    return out


@dataclass
class Experiment:
    """A declared parameter sweep."""

    name: str
    run: Callable[[Dict[str, Any]], Any]
    grid: List[Dict[str, Any]]
    title: Optional[str] = None
    #: (experiment, values in grid order) -> Table (or any report object).
    assemble: Optional[Callable] = None
    #: Extra files/directories hashed into the cache key alongside the
    #: repro package (e.g. the benchmark module declaring the sweep).
    code_paths: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def __post_init__(self):
        if not self.grid:
            raise ValueError(f"experiment {self.name!r} has an empty grid")

    def run_inline(self, configs=None):
        """Run the grid serially in-process; returns values in grid order.

        The engine-free path: used by the pytest-benchmark entry points
        and anywhere a sweep is small enough not to warrant workers.
        """
        return [self.run(config) for config in (configs or self.grid)]

    def table(self, values):
        """Assemble ``values`` (grid order) into the experiment's table."""
        if self.assemble is None:
            raise ValueError(f"experiment {self.name!r} has no assembler")
        return self.assemble(self, values)
