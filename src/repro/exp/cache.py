"""The sweep result cache: content-addressed, invalidated by code change.

Every completed run is stored as one JSON file::

    <root>/<experiment>/<key>.json

where ``key = sha256(experiment name, canonical config JSON, code
version)``.  The code version is a content fingerprint of the source
that produced the result — the :mod:`repro` package tree plus any
``code_paths`` the experiment names (its benchmark module, typically) —
so editing a model or a bench module invalidates exactly the runs whose
code changed, while re-running an untouched sweep is pure cache hits.

Only successful runs are cached; timeouts and errors are always retried
on the next invocation.

The cache location is configurable: ``repro bench --cache-dir``, the
``cache_dir=`` kwarg to :func:`repro.exp.bench.run_suite`, or the
``REPRO_EXP_CACHE`` environment variable (in that precedence order),
falling back to ``<benchmarks>/.expcache``.  The same ``get``/``put``
interface is implemented by the durable SQLite store behind ``repro
serve`` (:mod:`repro.serve.store`), which subsumes this directory layout
for service deployments.
"""

import functools
import hashlib
import json
import os
import time

__all__ = ["ResultCache", "code_fingerprint", "config_key",
           "invalidate_fingerprints", "resolve_cache_dir"]


def resolve_cache_dir(cache_dir=None, bench_dir=None):
    """The experiment-cache directory: explicit argument, then the
    ``REPRO_EXP_CACHE`` environment variable, then the historical
    ``<benchmarks>/.expcache`` default."""
    if cache_dir:
        return os.path.abspath(cache_dir)
    env = os.environ.get("REPRO_EXP_CACHE")
    if env:
        return os.path.abspath(env)
    if bench_dir:
        return os.path.join(os.path.abspath(bench_dir), ".expcache")
    raise ValueError("no cache_dir, $REPRO_EXP_CACHE, or bench_dir given")


def _iter_source_files(path):
    """Yield the .py files under ``path`` (or ``path`` itself), sorted."""
    if os.path.isfile(path):
        yield path
        return
    for dirpath, dirnames, filenames in os.walk(path):
        dirnames.sort()
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


@functools.lru_cache(maxsize=None)
def code_fingerprint(*paths):
    """A stable hash of the *contents* of the given source files/trees.

    Content-based (not mtime-based) so checkouts and CI machines agree;
    memoized per process because the engine asks once per run.
    """
    digest = hashlib.sha256()
    for path in paths:
        root = os.path.abspath(path)
        for filename in _iter_source_files(root):
            digest.update(os.path.relpath(filename, root).encode())
            with open(filename, "rb") as fh:
                digest.update(fh.read())
    return digest.hexdigest()[:16]


def invalidate_fingerprints():
    """Drop every memoized :func:`code_fingerprint` result.

    The memoization is per process-lifetime, which is wrong the moment
    source files change underneath a live process — a long-running
    driver (or a test that edits fixture code on disk) would keep
    serving cache entries stamped with a stale code version.  Call this
    after any on-disk source change; ``repro bench`` calls it once per
    suite invocation.
    """
    code_fingerprint.cache_clear()


def repro_fingerprint():
    """Fingerprint of the repro package source itself."""
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return code_fingerprint(package_root)


def config_key(experiment_name, config, code_version):
    """The cache key: content hash of (experiment, config, code-version)."""
    blob = json.dumps(
        {"experiment": experiment_name, "config": config,
         "code_version": code_version},
        sort_keys=True, separators=(",", ":"), default=repr,
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:32]


class ResultCache:
    """Directory-backed store of finished run values."""

    def __init__(self, root):
        self.root = os.path.abspath(root)
        self.hits = 0
        self.misses = 0

    def _path(self, experiment_name, key):
        return os.path.join(self.root, experiment_name, f"{key}.json")

    def get(self, experiment_name, key):
        """(found, value) — ``found`` False on miss or unreadable entry."""
        path = self._path(experiment_name, key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return False, None
        self.hits += 1
        return True, entry.get("value")

    def put(self, experiment_name, key, config, code_version, value):
        """Persist one successful run value (atomic rename)."""
        path = self._path(experiment_name, key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        entry = {
            "experiment": experiment_name,
            "config": config,
            "code_version": code_version,
            "value": value,
        }
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(entry, fh, sort_keys=True, default=repr)
            fh.write("\n")
        os.replace(tmp, path)

    # -- inspection / maintenance (the `repro cache` surface) ----------
    def entries(self):
        """Yield ``(experiment, key, path, mtime, bytes)`` per entry."""
        if not os.path.isdir(self.root):
            return
        for experiment in sorted(os.listdir(self.root)):
            exp_dir = os.path.join(self.root, experiment)
            if not os.path.isdir(exp_dir):
                continue
            for filename in sorted(os.listdir(exp_dir)):
                if not filename.endswith(".json"):
                    continue
                path = os.path.join(exp_dir, filename)
                try:
                    info = os.stat(path)
                except OSError:
                    continue
                yield (experiment, filename[:-5], path,
                       info.st_mtime, info.st_size)

    def stats(self):
        """Aggregate disk stats plus this process's hit/miss counters."""
        per_experiment = {}
        total_bytes = 0
        count = 0
        oldest = None
        for experiment, _key, _path, mtime, size in self.entries():
            bucket = per_experiment.setdefault(
                experiment, {"entries": 0, "bytes": 0})
            bucket["entries"] += 1
            bucket["bytes"] += size
            total_bytes += size
            count += 1
            oldest = mtime if oldest is None else min(oldest, mtime)
        return {
            "backend": "dir",
            "root": self.root,
            "entries": count,
            "bytes": total_bytes,
            "experiments": per_experiment,
            # Clamped at zero: a backwards clock step between write and
            # stat must not report a negative age.
            "oldest_age_seconds": (None if oldest is None
                                   else round(max(0.0, time.time() - oldest),
                                              1)),
            "session": {"hits": self.hits, "misses": self.misses},
        }

    def prune(self, older_than_seconds):
        """Delete entries older than the cutoff; returns entries removed.

        ``older_than_seconds`` must be non-negative — a negative window
        would place the cutoff in the future and delete entries written
        this instant.  The cutoff is additionally clamped to *now* so an
        entry stamped in the future (clock stepped backwards since the
        write) is treated as age zero, never as prunable.
        """
        if not older_than_seconds >= 0:
            raise ValueError(
                f"older_than_seconds must be >= 0, got {older_than_seconds!r}")
        now = time.time()
        cutoff = min(now - older_than_seconds, now)
        removed = 0
        for _experiment, _key, path, mtime, _size in list(self.entries()):
            if mtime < cutoff:
                try:
                    os.remove(path)
                    removed += 1
                except OSError:
                    pass
        return removed

    def clear(self):
        """Delete every entry; returns entries removed."""
        removed = 0
        for _experiment, _key, path, _mtime, _size in list(self.entries()):
            try:
                os.remove(path)
                removed += 1
            except OSError:
                pass
        return removed
