"""The parallel sweep engine (batch scheduler + result cache).

The paper's argument is carried by 19 parameter-sweep experiments; this
package is the machinery that runs such sweeps without the reproduction
of a parallelism paper being itself embarrassingly sequential:

* :class:`Experiment` — a parameter grid plus a pure
  ``run(config) -> value`` function (:mod:`repro.exp.experiment`);
* :func:`run_experiment` — fans the grid out across ``multiprocessing``
  workers with a per-run timeout, one retry, and structured failure rows
  instead of crashed sweeps (:mod:`repro.exp.engine`);
* :class:`ResultCache` — disk cache keyed by a content hash of
  (experiment, config, code-version) so re-runs are incremental
  (:mod:`repro.exp.cache`);
* :mod:`repro.exp.bench` — the benchmark-suite orchestration behind
  ``repro bench`` and ``benchmarks/run_all.py``.

Progress and telemetry stream through the existing :mod:`repro.obs` bus
(event kinds ``sweep_begin`` / ``sweep_task`` / ``sweep_end``).
See docs/EXPERIMENT_ENGINE.md.
"""

from .cache import (ResultCache, code_fingerprint, invalidate_fingerprints,
                    resolve_cache_dir)
from .engine import RunRecord, TaskQueue, records_payload, run_experiment
from .experiment import Experiment, grid
from .tables import parse_cell, payload_to_table, table_to_payload

__all__ = [
    "Experiment",
    "ResultCache",
    "RunRecord",
    "TaskQueue",
    "code_fingerprint",
    "grid",
    "invalidate_fingerprints",
    "parse_cell",
    "payload_to_table",
    "records_payload",
    "resolve_cache_dir",
    "run_experiment",
    "table_to_payload",
]
