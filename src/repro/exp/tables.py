"""Table <-> JSON payload conversion shared by the sweep engine and the
benchmark harness.

A :class:`~repro.analysis.report.Table` renders cells as formatted
strings; the telemetry JSON wants the numbers back.  :func:`parse_cell`
is the single inverse of ``Table._format`` — the benchmark harness's
``_parse_cell`` re-exports it — and it round-trips every numeric
rendering the formatter can produce:

* plain ints and floats, including scientific notation (``"1e+03"``);
* non-finite values: ``"inf"``, ``"-inf"``, ``"nan"``, and the ``"-"``
  the formatter prints for NaN, all become floats;
* speedup cells with an ``x`` suffix (``"3.2x"``, ``"1e3x"``, ``"infx"``);
* ``"yes"``/``"no"`` boolean renderings stay strings (they are labels).

Underscored digit groups (``"1_0"``) are *rejected* as numbers: Python's
``int()`` would silently read them as ``10``, mangling identifiers that
merely look numeric.
"""

import math

__all__ = ["parse_cell", "payload_to_table", "table_to_payload"]


def _cast_number(text):
    """int or float for a numeric rendering; None if it isn't one."""
    if "_" in text:  # "1_0" is a label, not the number 10
        return None
    for caster in (int, float):
        try:
            return caster(text)
        except ValueError:
            continue
    return None


def parse_cell(cell):
    """Invert ``Table._format``: formatted cell string -> value."""
    if not isinstance(cell, str):
        return cell
    text = cell.strip()
    if text == "-":  # the formatter's rendering of NaN
        return math.nan
    number = _cast_number(text)
    if number is not None:
        return number
    if text.endswith("x"):  # speedup columns like "3.2x", "1e3x", "infx"
        number = _cast_number(text[:-1])
        if number is not None:
            return float(number)
    return text


def table_rows(table):
    """A Table's rows as a list of {column: parsed cell} dicts."""
    rows = []
    for row in table.rows:
        entry = {}
        for column, cell in zip(table.columns, row):
            entry[column] = parse_cell(cell)
        rows.append(entry)
    return rows


def table_to_payload(table):
    """A JSON-able description of a rendered table.

    ``cells`` keeps the exact formatted strings (so the table can be
    rebuilt byte-identically); ``data`` carries the parsed values for
    plotting without re-parsing.
    """
    return {
        "title": table.title,
        "columns": list(table.columns),
        "notes": list(table.notes),
        "cells": [list(row) for row in table.rows],
        "data": table_rows(table),
    }


def payload_to_table(payload):
    """Rebuild a Table from :func:`table_to_payload` output."""
    from ..analysis.report import Table

    table = Table(payload["title"], payload["columns"],
                  notes=payload.get("notes"))
    for row in payload.get("cells", []):
        # The cells are already formatted; bypass add_row's re-formatting.
        if len(row) != len(table.columns):
            raise ValueError("payload row width does not match columns")
        table.rows.append([str(cell) for cell in row])
    return table
