"""The unified machine-model API every survey machine implements.

Before this module existed each machine exposed its own idiom —
``ultracomputer.run_hotspot`` was a free function, the Connection
Machine returned a bespoke ``CMResult``, the VLIW model handed back
ad-hoc tuples — so every caller (benchmarks, CLI, sweep engine) needed
per-machine glue.  Now there is one contract:

* :class:`MachineModel` — constructed with keyword *machine* parameters
  (``registry.create(name, **config)``), run with keyword *workload*
  parameters (``model.run(**workload)``);
* :class:`SimResult` — the shared result record: which machine, which
  config, which workload, and a flat ``metrics`` dict of measurements.

``SimResult`` is JSON-serializable (``as_dict``/``from_dict``) so the
sweep engine in :mod:`repro.exp` can cache and ship results across
process boundaries without machine-specific code.

Models may additionally implement the optional **topology hook**::

    def topology(self) -> Optional[MachineTopology]: ...

returning the machine's partition graph (:mod:`repro.common.topology`):
the units simulation state decomposes into, the directed links between
them, and each link's minimum message latency — the lookahead the
sharded parallel kernel (:mod:`repro.common.psim`) synchronizes on.
Machines without the hook (or returning None) simply run on one shard;
``registry.describe`` reports either form uniformly.

(The PR 2 ``DeprecationWarning`` shims that used to live here —
``deprecated_call`` / ``suppress_deprecation`` — are gone along with
the shimmed entry points; ``repro.machines.__getattr__`` now raises
with a migration hint instead.)
"""

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Protocol, runtime_checkable

__all__ = [
    "MachineModel",
    "SimResult",
]


@dataclass
class SimResult:
    """What one machine run measured, in machine-independent shape.

    ``metrics`` maps measurement name -> value (numbers for everything
    the paper plots; the odd string/bool for labels).  ``config`` echoes
    the constructor parameters and ``workload`` the ``run()`` arguments,
    so a ``SimResult`` is self-describing — the sweep engine stores it
    verbatim and any row of any experiment table can be rebuilt from it.
    """

    machine: str
    config: Dict[str, Any] = field(default_factory=dict)
    workload: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: Optional cycle-accounting payload (the ``as_dict`` form of a
    #: :class:`repro.obs.analysis.CycleAccounting`): every unit-cycle of
    #: the run decomposed into compute / memory_stall / sync_wait /
    #: network_queue / idle.  Populated by models that can attribute
    #: their cycles; read it through :meth:`profile`.
    accounting: Optional[Dict[str, Any]] = None
    #: Optional event-kernel counters (``Simulator.kernel_stats()``):
    #: which kernel ran, events fired, and — on the sharded parallel
    #: kernel — null updates, channel traffic, and per-shard balance.
    #: Telemetry about *this* run's engine, not part of the result:
    #: excluded from ``as_dict`` so payloads stay byte-identical across
    #: kernels (the byte-identity gate) and store-cached values never
    #: claim the kernel that happened to populate them.
    kernel_stats: Optional[Dict[str, Any]] = None

    def metric(self, name):
        """One measurement; raises KeyError naming the known metrics."""
        try:
            return self.metrics[name]
        except KeyError:
            known = ", ".join(sorted(self.metrics))
            raise KeyError(
                f"{self.machine!r} run has no metric {name!r} "
                f"(has: {known})"
            ) from None

    def profile(self):
        """The run's :class:`~repro.obs.analysis.CycleAccounting`.

        Raises ``ValueError`` when the model did not attach one (the
        error names the machine, so sweep code can give a useful
        message).
        """
        if self.accounting is None:
            raise ValueError(
                f"{self.machine!r} run carries no cycle accounting"
            )
        from ..obs.analysis import CycleAccounting

        return CycleAccounting.from_dict(self.accounting)

    def bucket_means(self):
        """Mean cycles per unit for each accounting bucket.

        The exact-sum invariant (every unit's buckets sum to the
        accounting window) means the five per-unit means sum to the
        window, i.e. to the run's time — which is what makes these the
        natural regression targets for the analytic surrogate in
        :mod:`repro.predict`: fit each bucket mean, sum the fits, and
        the prediction decomposes the predicted run time the same way
        the profiler decomposes the measured one.  Raises ``ValueError``
        when the model attached no accounting.
        """
        profile = self.profile()
        n_units = len(profile.units) or 1
        return {bucket: total / n_units
                for bucket, total in profile.totals().items()}

    def as_dict(self):
        """A plain-dict form, safe to JSON-serialize and cache."""
        payload = {
            "machine": self.machine,
            "config": dict(self.config),
            "workload": dict(self.workload),
            "metrics": dict(self.metrics),
        }
        if self.accounting is not None:
            payload["accounting"] = self.accounting
        return payload

    @classmethod
    def from_dict(cls, payload):
        return cls(
            machine=payload["machine"],
            config=dict(payload.get("config", {})),
            workload=dict(payload.get("workload", {})),
            metrics=dict(payload.get("metrics", {})),
            accounting=payload.get("accounting"),
        )


@runtime_checkable
class MachineModel(Protocol):
    """The contract a registered machine model satisfies.

    ``name`` is the registry key; ``config`` the constructor parameters
    actually in effect (defaults filled in); ``run(**workload)`` executes
    one workload and returns a :class:`SimResult`.
    """

    name: str
    config: Dict[str, Any]

    def run(self, **workload) -> SimResult:
        ...
