"""The Connection Machine and Illiac IV SIMD models (§1.2.5).

The Connection Machine proposal: "a million processors", each "12 32-bit
registers, some flag bits, and one 1-bit ALU", grouped 64 to a node on a
14-dimensional hypercube.  "The bit-serial communication through the
hypercube links is packet oriented ... In the absence of conflicts, a
message will reach its destination in at most 14 steps; but, because of
conflicts, some messages will take significantly more steps ... A global
flag is raised when all processors are done communicating, and only then
can the next instruction begin."

The model executes SIMD macro-steps: an ALU phase (bit-serial, so a
32-bit add costs 32 bit-cycles) and a communication phase whose duration
is set by the *most congested link* of the round — the global-flag
barrier.  It reproduces the paper's back-of-envelope: "a processor will
spend almost all (90%?, 99%?) of its time communicating" on
graph-exploration workloads.

Illiac IV's restriction is modelled separately: a single instruction
drives one uniform grid shift, so processors needing different directions
serialize, and everyone waits for the farthest transfer.

:class:`ConnectionMachine` is the registry entry point
(``registry.create("connection_machine", groups_log2=10)``); its
``illiac_shifts`` workload covers the Illiac IV restriction.
"""

import random
from dataclasses import dataclass

from .api import SimResult
from .registry import register

__all__ = [
    "CMConfig",
    "CMResult",
    "ConnectionMachine",
    "IlliacIV",
]


@dataclass
class CMConfig:
    """Machine parameters.  Defaults scale the proposal down to keep the
    simulation quick; ``groups_log2=14`` reproduces the full 2^14-node
    cube (one million processors at 64 per group)."""

    groups_log2: int = 10
    procs_per_group: int = 64
    word_bits: int = 32  # bit-serial ALU: cycles per 32-bit operation
    message_bits: int = 32  # bit-serial links: cycles per message-hop
    bit_time: float = 1.0

    @property
    def n_groups(self):
        return 2**self.groups_log2

    @property
    def n_processors(self):
        return self.n_groups * self.procs_per_group


@dataclass
class CMResult:
    """Outcome of a SIMD workload."""

    alu_time: float
    comm_time: float
    rounds: int
    messages: int
    max_link_load: int
    mean_hops: float

    @property
    def total_time(self):
        return self.alu_time + self.comm_time

    @property
    def comm_fraction(self):
        total = self.total_time
        return self.comm_time / total if total > 0 else 0.0


class IlliacIV:
    """The 8x8 end-around grid with one uniform shift per instruction."""

    def __init__(self, rows=8, cols=8, shift_time=1.0):
        self.rows = rows
        self.cols = cols
        self.shift_time = shift_time

    def shifts_needed(self, transfers):
        """Instructions to realize per-processor transfers.

        ``transfers`` is a list of (d_row, d_col) displacements, one per
        active processor.  A single instruction shifts *every* processor
        one step in *one* direction, so the instruction count is the sum
        over the four directions of the largest magnitude requested —
        processors wanting east and west cannot share an instruction
        ("two machine instructions had to be executed"), and everyone
        waits for the farthest transfer.
        """
        north = max((max(0, -dr) for dr, _ in transfers), default=0)
        south = max((max(0, dr) for dr, _ in transfers), default=0)
        west = max((max(0, -dc) for _, dc in transfers), default=0)
        east = max((max(0, dc) for _, dc in transfers), default=0)
        return north + south + west + east

    def transfer_time(self, transfers):
        return self.shifts_needed(transfers) * self.shift_time


@register("connection_machine")
class ConnectionMachine:
    """Registry model: SIMD rounds of (ALU phase, hypercube communication
    phase), plus the Illiac IV grid-shift restriction as a workload."""

    def __init__(self, groups_log2=10, procs_per_group=64, word_bits=32,
                 message_bits=32, bit_time=1.0, illiac_rows=8,
                 illiac_cols=8, illiac_shift_time=1.0, faults=None,
                 exec_mode=None):
        from ..common.batch import resolve_exec_mode
        from ..faults import coerce_plan

        self._fault_plan = coerce_plan(faults)
        self.cm_config = CMConfig(
            groups_log2=groups_log2, procs_per_group=procs_per_group,
            word_bits=word_bits, message_bits=message_bits,
            bit_time=bit_time,
        )
        self.illiac = IlliacIV(rows=illiac_rows, cols=illiac_cols,
                               shift_time=illiac_shift_time)
        self.config = {
            "groups_log2": groups_log2,
            "procs_per_group": procs_per_group,
            "word_bits": word_bits,
            "message_bits": message_bits,
            "bit_time": bit_time,
            "illiac_rows": illiac_rows,
            "illiac_cols": illiac_cols,
            "illiac_shift_time": illiac_shift_time,
        }
        # Only echoed when set, so default configs (and every existing
        # baseline row) stay byte-identical.
        if self._fault_plan is not None:
            self.config["faults"] = self._fault_plan.as_dict()
        # Closed-form model (no event kernel), so exec_mode only needs
        # validation and echo — sweep grids can set it uniformly.
        resolve_exec_mode(exec_mode)
        if exec_mode is not None:
            self.config["exec_mode"] = exec_mode

    # ------------------------------------------------------------------
    def route_round(self, messages):
        """Route one communication round; returns (time, max_load, hops).

        ``messages`` is a list of (src_group, dst_group).  Dimension-order
        routing; each directed link moves one message per message-time, so
        the round lasts until the hottest link drains, plus pipeline fill
        for the longest path.  The global completion flag makes this a
        barrier: the round's time is the max, not the mean.
        """
        config = self.cm_config
        link_load = {}
        total_hops = 0
        max_hops = 0
        for src, dst in messages:
            node = src
            hops = 0
            differing = node ^ dst
            for dim in range(config.groups_log2):
                bit = 1 << dim
                if differing & bit:
                    nxt = node ^ bit
                    link = (node, nxt)
                    link_load[link] = link_load.get(link, 0) + 1
                    node = nxt
                    hops += 1
            total_hops += hops
            max_hops = max(max_hops, hops)
        max_load = max(link_load.values()) if link_load else 0
        message_time = config.message_bits * config.bit_time
        round_time = (max_load + max(0, max_hops - 1)) * message_time
        mean_hops = total_hops / len(messages) if messages else 0.0
        return round_time, max_load, mean_hops

    def run_graph_workload(self, rounds=8, messages_per_group=1,
                           alu_ops_per_round=1, pattern="random", seed=7):
        """Alternate ALU phases with graph-edge communication phases.

        ``pattern="random"`` models pointer-chasing over an irregular
        graph (each group messages a uniformly random group);
        ``pattern="neighbor"`` is the friendly grid case (one-hop).
        """
        config = self.cm_config
        rng = random.Random(seed)
        n = config.n_groups
        plan = self._fault_plan
        fault_stream = None
        if plan is not None and plan.enabled and plan.net_delay_rate > 0.0:
            injector = plan.injector()
            fault_stream = injector.rng.stream("cm.links")
        alu_time = 0.0
        comm_time = 0.0
        total_messages = 0
        worst_link = 0
        hops_acc = 0.0
        for _ in range(rounds):
            alu_time += alu_ops_per_round * config.word_bits * config.bit_time
            messages = []
            for src in range(n):
                for _ in range(messages_per_group):
                    if pattern == "random":
                        dst = rng.randrange(n)
                    elif pattern == "neighbor":
                        dst = src ^ 1
                    else:
                        raise ValueError(f"unknown pattern {pattern!r}")
                    if dst != src:
                        messages.append((src, dst))
            round_time, max_load, mean_hops = self.route_round(messages)
            if fault_stream is not None:
                # Link-glitch faults under the global completion flag:
                # the round ends when the *slowest* message lands, so one
                # delayed message charges the whole array the full spike.
                delayed = sum(
                    1 for _ in messages
                    if fault_stream.random() < plan.net_delay_rate
                )
                if delayed:
                    round_time += plan.net_delay_cycles
            comm_time += round_time
            total_messages += len(messages)
            worst_link = max(worst_link, max_load)
            hops_acc += mean_hops
        return CMResult(
            alu_time=alu_time,
            comm_time=comm_time,
            rounds=rounds,
            messages=total_messages,
            max_link_load=worst_link,
            mean_hops=hops_acc / rounds if rounds else 0.0,
        )

    def run(self, workload="graph", rounds=8, messages_per_group=1,
            alu_ops_per_round=1, pattern="random", seed=7, transfers=None):
        """Run one SIMD workload; returns a :class:`SimResult`.

        ``workload="graph"`` is the Connection Machine communication
        experiment; ``workload="illiac_shifts"`` applies the Illiac IV
        uniform-shift restriction to a list of per-processor transfers.
        """
        from ..obs.analysis import CycleAccounting, unit_account

        if workload == "graph":
            result = self.run_graph_workload(
                rounds=rounds, messages_per_group=messages_per_group,
                alu_ops_per_round=alu_ops_per_round, pattern=pattern,
                seed=seed)
            spec = {"workload": workload, "rounds": rounds,
                    "messages_per_group": messages_per_group,
                    "alu_ops_per_round": alu_ops_per_round,
                    "pattern": pattern, "seed": seed}
            metrics = {
                "alu_time": result.alu_time,
                "comm_time": result.comm_time,
                "total_time": result.total_time,
                "comm_fraction": result.comm_fraction,
                "rounds": result.rounds,
                "messages": result.messages,
                "max_link_load": result.max_link_load,
                "mean_hops": result.mean_hops,
                "n_processors": self.cm_config.n_processors,
            }
            # SIMD lockstep: the whole array is one unit.  The global
            # completion flag means every processor sits through each
            # communication phase, so comm_time is synchronization-shaped
            # queueing charged to the network.
            accounting = CycleAccounting(self.name, result.total_time, [
                unit_account("simd_array", result.total_time,
                             compute=result.alu_time,
                             network_queue=result.comm_time),
            ])
        elif workload == "illiac_shifts":
            shifts = [tuple(t) for t in (transfers or [])]
            spec = {"workload": workload,
                    "transfers": [list(t) for t in shifts]}
            transfer_time = self.illiac.transfer_time(shifts)
            metrics = {
                "shifts": self.illiac.shifts_needed(shifts),
                "transfer_time": transfer_time,
            }
            # Uniform-shift serialization: the run is pure data movement;
            # everyone waits for the farthest transfer every instruction.
            accounting = CycleAccounting(self.name, transfer_time, [
                unit_account("simd_grid", transfer_time,
                             network_queue=transfer_time),
            ])
        else:
            raise ValueError(f"unknown connection_machine workload "
                             f"{workload!r} (graph, illiac_shifts)")
        return SimResult(machine=self.name, config=dict(self.config),
                         workload=spec, metrics=metrics,
                         accounting=accounting.as_dict())

