"""Cm* (§1.2.2): clusters of processor/memory modules under Kmaps.

The paper's claim: "any processor making a nonlocal memory reference would
idle until the reference was completed.  Because of the hierarchical
structure, this meant that greater interprocessor distances translated
into longer memory reference times and decreased processor utilization"
— and empirically, "the effect of processor idle time put an upper limit
on the number of processors that could cooperate on even highly parallel
programs".

:class:`CmstarModel` is the registry entry point; its ``run`` reproduces
the Deminet-style measurement — processor utilization at one
remote-reference fraction — and ``contexts > 1`` builds the machine the
paper only speculates about ("It would be interesting to speculate on the
behavior of Cm* if micro-tasking processors had been used", §1.2.2).
"""

from ..analysis.metrics import von_neumann_utilization
from ..common.topology import MachineTopology, TopologyLink, TopologyUnit
from ..network.hierarchy import HierarchicalNetwork
from ..vonneumann.machine import VNMachine
from .api import SimResult
from .registry import register

__all__ = ["CmstarModel", "locality_kernel"]

#: Local memory block per computer module (words).
LOCAL_BLOCK = 1024


def _build_cmstar(n_clusters=4, cluster_size=4, kmap_time=3.0,
                  intercluster_time=9.0, local_time=1.0, memory_time=2.0,
                  faults=None, shards=None, exec_mode=None):
    """A Cm*-shaped machine: one memory module co-located with each
    processor, clusters joined by Kmaps and an intercluster bus."""
    n = n_clusters * cluster_size
    # Ports 0..n-1 are processors, n..2n-1 their co-located memories.
    node_map = [(p // cluster_size, p % cluster_size) for p in range(n)] * 2

    def network_factory(sim, n_ports):
        assert n_ports == 2 * n
        return HierarchicalNetwork(
            sim, n_clusters, cluster_size, kmap_time=kmap_time,
            intercluster_time=intercluster_time, local_time=local_time,
            node_map=node_map, name="cmstar",
        )

    return VNMachine(
        n, memory="dancehall", n_modules=n, memory_time=memory_time,
        network_factory=network_factory, placement="blocked",
        block_size=LOCAL_BLOCK, faults=faults, sim_shards=shards,
        exec_mode=exec_mode,
    )


def locality_kernel(pid, n_procs, cluster_size, n_refs, remote_fraction,
                    remote_kind="intercluster", think_ops=2):
    """Unrolled load kernel: ``remote_fraction`` of ``n_refs`` references
    target another computer module; the rest are local.

    ``remote_kind`` picks the victim: a neighbour in the same cluster
    (one Kmap hop) or the corresponding module of the next cluster (full
    hierarchy traversal).
    """
    local_base = pid * LOCAL_BLOCK
    if remote_kind == "intracluster":
        cluster_start = (pid // cluster_size) * cluster_size
        victim = cluster_start + (pid + 1 - cluster_start) % cluster_size
    elif remote_kind == "intercluster":
        victim = (pid + cluster_size) % n_procs
    else:
        raise ValueError(f"unknown remote_kind {remote_kind!r}")
    remote_base = victim * LOCAL_BLOCK

    lines = ["    movi r7, 0"]
    acc = 0.0
    for i in range(n_refs):
        acc += remote_fraction
        if acc >= 1.0:
            acc -= 1.0
            base = remote_base
        else:
            base = local_base
        lines.append(f"    movi r2, {base + (i % 64)}")
        lines.append("    load r3, r2, 0")
        for _ in range(think_ops):
            lines.append("    addi r7, r7, 1")
    lines.append("    halt")
    return "\n".join(lines)


@register("cmstar")
class CmstarModel:
    """Registry model: the hierarchical-cluster machine."""

    def __init__(self, n_clusters=4, cluster_size=4, kmap_time=3.0,
                 intercluster_time=9.0, local_time=1.0, memory_time=2.0,
                 faults=None, shards=None, exec_mode=None):
        from ..common.batch import resolve_exec_mode
        from ..faults import coerce_plan

        plan = coerce_plan(faults)
        self.config = {
            "n_clusters": n_clusters,
            "cluster_size": cluster_size,
            "kmap_time": kmap_time,
            "intercluster_time": intercluster_time,
            "local_time": local_time,
            "memory_time": memory_time,
        }
        # Only echoed (and only passed down) when set, so default configs
        # and every existing baseline row stay byte-identical.
        if plan is not None:
            self.config["faults"] = plan.as_dict()
        if shards is not None:
            self.config["shards"] = shards
        resolve_exec_mode(exec_mode)
        if exec_mode is not None:
            self.config["exec_mode"] = exec_mode

    def topology(self):
        """Cm*'s partition graph — and the paper's point made concrete.

        Every computer module couples to its cluster's Kmap, and the
        Kmaps to the intercluster bus, through *inline* queue handoffs
        with no minimum latency: the lookahead on every link is 0, so
        :meth:`MachineTopology.partition` contracts the whole machine to
        one shard.  Shared-bus synchronization leaves no slack for
        parallel simulation, exactly as it leaves none for the machine
        itself.
        """
        config = self.config
        units = [
            TopologyUnit(name=f"cm{m}", kind="module")
            for m in range(config["n_clusters"] * config["cluster_size"])
        ]
        units += [
            TopologyUnit(name=f"kmap{c}", kind="kmap")
            for c in range(config["n_clusters"])
        ]
        units.append(TopologyUnit(name="bus", kind="bus"))
        links = []
        for m in range(config["n_clusters"] * config["cluster_size"]):
            kmap = f"kmap{m // config['cluster_size']}"
            links.append(TopologyLink(src=f"cm{m}", dst=kmap, lookahead=0.0))
            links.append(TopologyLink(src=kmap, dst=f"cm{m}", lookahead=0.0))
        for c in range(config["n_clusters"]):
            links.append(TopologyLink(src=f"kmap{c}", dst="bus", lookahead=0.0))
            links.append(TopologyLink(src="bus", dst=f"kmap{c}", lookahead=0.0))
        return MachineTopology(units, links)

    def build(self):
        """The underlying (empty) :class:`VNMachine`."""
        return _build_cmstar(**self.config)

    def _point(self, remote_fraction, n_refs, think_ops, remote_kind,
               contexts):
        """(measured utilization, closed-form prediction) at one mix."""
        config = self.config
        n = config["n_clusters"] * config["cluster_size"]
        local_rt = 2 * config["local_time"] + config["memory_time"]
        if remote_kind == "intracluster":
            remote_rt = 2 * config["kmap_time"] + config["memory_time"]
        else:
            remote_rt = (2 * (config["kmap_time"]
                              + config["intercluster_time"]
                              + config["kmap_time"])
                         + config["memory_time"])
        # cycles of useful work per reference: movi + load issue + think
        work = 2 + think_ops
        machine = self.build()
        for pid in range(n):
            source = locality_kernel(
                pid, n, config["cluster_size"], n_refs, remote_fraction,
                remote_kind=remote_kind, think_ops=think_ops,
            )
            if contexts <= 1:
                machine.add_processor(source, regs={1: pid})
            else:
                machine.add_multithreaded_processor(
                    [(source, {1: pid}) for _ in range(contexts)]
                )
        result = machine.run()
        mixed_latency = ((1 - remote_fraction) * local_rt
                         + remote_fraction * remote_rt)
        predicted = von_neumann_utilization(work, mixed_latency)
        return result.mean_utilization, predicted, machine, result

    def run(self, remote_fraction=0.0, n_refs=50, think_ops=2,
            remote_kind="intercluster", contexts=1):
        from ..obs.analysis import vn_accounting

        utilization, predicted, machine, result = self._point(
            remote_fraction, n_refs, think_ops, remote_kind, contexts)
        accounting = vn_accounting(machine, result, name=self.name)
        return SimResult(
            machine=self.name,
            config=dict(self.config),
            kernel_stats=machine.sim.kernel_stats(),
            workload={
                "remote_fraction": remote_fraction,
                "n_refs": n_refs,
                "think_ops": think_ops,
                "remote_kind": remote_kind,
                "contexts": contexts,
            },
            metrics={
                "utilization": utilization,
                "predicted_utilization": predicted,
                "n_procs": (self.config["n_clusters"]
                            * self.config["cluster_size"]),
            },
            accounting=accounting.as_dict(),
        )
