"""Cm* (§1.2.2): clusters of processor/memory modules under Kmaps.

The paper's claim: "any processor making a nonlocal memory reference would
idle until the reference was completed.  Because of the hierarchical
structure, this meant that greater interprocessor distances translated
into longer memory reference times and decreased processor utilization"
— and empirically, "the effect of processor idle time put an upper limit
on the number of processors that could cooperate on even highly parallel
programs".

:func:`locality_sweep` reproduces the Deminet-style measurement: processor
utilization as a function of the fraction of references that leave the
local memory, for intra-cluster and inter-cluster targets.
"""

from ..analysis.metrics import von_neumann_utilization
from ..network.hierarchy import HierarchicalNetwork
from ..vonneumann.machine import VNMachine

__all__ = ["build_cmstar", "locality_kernel", "locality_sweep"]

#: Local memory block per computer module (words).
LOCAL_BLOCK = 1024


def build_cmstar(n_clusters=4, cluster_size=4, kmap_time=3.0,
                 intercluster_time=9.0, local_time=1.0, memory_time=2.0):
    """A Cm*-shaped machine: one memory module co-located with each
    processor, clusters joined by Kmaps and an intercluster bus."""
    n = n_clusters * cluster_size
    # Ports 0..n-1 are processors, n..2n-1 their co-located memories.
    node_map = [(p // cluster_size, p % cluster_size) for p in range(n)] * 2

    def network_factory(sim, n_ports):
        assert n_ports == 2 * n
        return HierarchicalNetwork(
            sim, n_clusters, cluster_size, kmap_time=kmap_time,
            intercluster_time=intercluster_time, local_time=local_time,
            node_map=node_map, name="cmstar",
        )

    return VNMachine(
        n, memory="dancehall", n_modules=n, memory_time=memory_time,
        network_factory=network_factory, placement="blocked",
        block_size=LOCAL_BLOCK,
    )


def locality_kernel(pid, n_procs, cluster_size, n_refs, remote_fraction,
                    remote_kind="intercluster", think_ops=2):
    """Unrolled load kernel: ``remote_fraction`` of ``n_refs`` references
    target another computer module; the rest are local.

    ``remote_kind`` picks the victim: a neighbour in the same cluster
    (one Kmap hop) or the corresponding module of the next cluster (full
    hierarchy traversal).
    """
    local_base = pid * LOCAL_BLOCK
    if remote_kind == "intracluster":
        cluster_start = (pid // cluster_size) * cluster_size
        victim = cluster_start + (pid + 1 - cluster_start) % cluster_size
    elif remote_kind == "intercluster":
        victim = (pid + cluster_size) % n_procs
    else:
        raise ValueError(f"unknown remote_kind {remote_kind!r}")
    remote_base = victim * LOCAL_BLOCK

    lines = ["    movi r7, 0"]
    acc = 0.0
    for i in range(n_refs):
        acc += remote_fraction
        if acc >= 1.0:
            acc -= 1.0
            base = remote_base
        else:
            base = local_base
        lines.append(f"    movi r2, {base + (i % 64)}")
        lines.append("    load r3, r2, 0")
        for _ in range(think_ops):
            lines.append("    addi r7, r7, 1")
    lines.append("    halt")
    return "\n".join(lines)


def locality_sweep(remote_fractions, n_clusters=4, cluster_size=4,
                   n_refs=50, think_ops=2, remote_kind="intercluster",
                   kmap_time=3.0, intercluster_time=9.0, local_time=1.0,
                   memory_time=2.0, contexts=1):
    """Measured utilization vs. remote-reference fraction.

    Returns rows ``(fraction, utilization, predicted)`` where the
    prediction applies the Issue 1 closed form with the latency mix this
    fraction implies.

    ``contexts > 1`` builds the machine the paper only speculates about —
    "It would be interesting to speculate on the behavior of Cm* if
    micro-tasking processors had been used" (§1.2.2) — by giving every
    computer module a HEP-style multithreaded processor running
    ``contexts`` copies of the kernel.
    """
    n = n_clusters * cluster_size
    local_rt = 2 * local_time + memory_time
    if remote_kind == "intracluster":
        remote_rt = 2 * kmap_time + memory_time
    else:
        remote_rt = 2 * (kmap_time + intercluster_time + kmap_time) + memory_time
    # cycles of useful work per reference: movi + load issue + think
    work = 2 + think_ops
    rows = []
    for fraction in remote_fractions:
        machine = build_cmstar(
            n_clusters, cluster_size, kmap_time=kmap_time,
            intercluster_time=intercluster_time, local_time=local_time,
            memory_time=memory_time,
        )
        for pid in range(n):
            source = locality_kernel(
                pid, n, cluster_size, n_refs, fraction,
                remote_kind=remote_kind, think_ops=think_ops,
            )
            if contexts <= 1:
                machine.add_processor(source, regs={1: pid})
            else:
                machine.add_multithreaded_processor(
                    [(source, {1: pid}) for _ in range(contexts)]
                )
        result = machine.run()
        mixed_latency = (1 - fraction) * local_rt + fraction * remote_rt
        predicted = von_neumann_utilization(work, mixed_latency)
        rows.append((fraction, result.mean_utilization, predicted))
    return rows
