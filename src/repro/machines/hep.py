"""The Denelcor HEP (footnote 2, ref [18]): a pipelined, shared-resource
MIMD computer.

The paper's two observations about the HEP, both measurable here:

* it pioneered exactly the low-level context switching §1.1 discusses —
  a barrel pipeline multiplexing many register contexts, hiding memory
  latency while ready contexts remain (Smith, 1978);
* its full/empty-bit synchronization has "no such thing as a deferred
  read list.  Unsatisfiable requests result in a busy-waiting condition"
  — the memory-traffic cost I-structures were designed to remove.

``build_hep`` assembles the machine: one multithreaded barrel processor
(the HEP PEM) over an interleaved memory system with full/empty bits.
``saturation_table`` reproduces the machine's characteristic curve:
throughput rising with context count until the pipeline saturates.
"""

from ..analysis.report import Table
from ..vonneumann import VNMachine, programs

__all__ = ["build_hep", "saturation_table", "producer_consumer_traffic"]


def build_hep(contexts=8, latency=8.0, memory_time=1.0, retry_backoff=4.0,
              source=None, regs_of=None):
    """One barrel processor with ``contexts`` register sets.

    ``source`` (default: a load/compute kernel) is loaded into every
    context; ``regs_of(index)`` supplies per-context registers.
    """
    machine = VNMachine(1, memory="dancehall", latency=latency,
                        memory_time=memory_time,
                        retry_backoff=retry_backoff)
    if source is None:
        source = programs.compute_loop(16, loads_per_iter=1,
                                       alu_ops_per_iter=2)
    machine.add_multithreaded_processor(
        [
            (source, regs_of(index) if regs_of else {})
            for index in range(contexts)
        ]
    )
    return machine


def saturation_table(context_counts=(1, 2, 4, 8, 16, 32), latency=8.0):
    """Pipeline utilization vs context count — the HEP's defining curve."""
    table = Table(
        "HEP pipeline saturation (Smith 1978 / paper footnote 2)",
        ["contexts", "pipeline utilization", "instructions/cycle"],
        notes=[f"one-way memory latency {latency} cycles"],
    )
    for contexts in context_counts:
        machine = build_hep(contexts=contexts, latency=latency)
        result = machine.run()
        processor = machine.processors[0]
        utilization = processor.utilization()
        ipc = result.instructions / result.time if result.time else 0.0
        table.add_row(contexts, utilization, ipc)
    return table


def producer_consumer_traffic(n=16, producer_work=24, retry_backoff=4.0):
    """Busy-wait traffic of HEP-style full/empty synchronization.

    Two contexts on one barrel processor share an array: the producer
    WRITEFs each element after ``producer_work`` filler operations; the
    consumer READFs each element and busy-waits when it runs ahead.
    Returns (result, retries, memory_requests_per_element).
    """
    machine = VNMachine(1, memory="dancehall", latency=2, memory_time=1,
                        retry_backoff=retry_backoff)
    machine.add_multithreaded_processor(
        [
            (programs.producer_per_element(100, n,
                                           work_per_element=producer_work),
             {}),
            (programs.consumer_per_element(100, n, 99, work_per_element=0),
             {}),
        ]
    )
    result = machine.run()
    retries = result.counters.get("retries", 0)
    requests = machine.memory.counters["accesses"]
    assert machine.peek(99) == sum(k * k for k in range(n))
    return result, retries, requests / n
