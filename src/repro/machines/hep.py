"""The Denelcor HEP (footnote 2, ref [18]): a pipelined, shared-resource
MIMD computer.

The paper's two observations about the HEP, both measurable here:

* it pioneered exactly the low-level context switching §1.1 discusses —
  a barrel pipeline multiplexing many register contexts, hiding memory
  latency while ready contexts remain (Smith, 1978);
* its full/empty-bit synchronization has "no such thing as a deferred
  read list.  Unsatisfiable requests result in a busy-waiting condition"
  — the memory-traffic cost I-structures were designed to remove.

:class:`HepModel` is the registry entry point.  Its ``compute_loop``
workload reproduces the machine's characteristic curve (throughput rising
with context count until the pipeline saturates); ``producer_consumer``
measures the busy-wait traffic of full/empty synchronization.
"""

from ..analysis.report import Table
from ..vonneumann import VNMachine, programs
from .api import SimResult
from .registry import register

__all__ = ["HepModel"]


def _build_hep(contexts=8, latency=8.0, memory_time=1.0, retry_backoff=4.0,
               source=None, regs_of=None, faults=None, exec_mode=None):
    """One barrel processor with ``contexts`` register sets.

    ``source`` (default: a load/compute kernel) is loaded into every
    context; ``regs_of(index)`` supplies per-context registers.
    """
    machine = VNMachine(1, memory="dancehall", latency=latency,
                        memory_time=memory_time,
                        retry_backoff=retry_backoff, faults=faults,
                        exec_mode=exec_mode)
    if source is None:
        source = programs.compute_loop(16, loads_per_iter=1,
                                       alu_ops_per_iter=2)
    machine.add_multithreaded_processor(
        [
            (source, regs_of(index) if regs_of else {})
            for index in range(contexts)
        ]
    )
    return machine


def _producer_consumer(n, producer_work, retry_backoff, faults=None,
                       exec_mode=None):
    """Busy-wait traffic of HEP-style full/empty synchronization.

    Two contexts on one barrel processor share an array: the producer
    WRITEFs each element after ``producer_work`` filler operations; the
    consumer READFs each element and busy-waits when it runs ahead.
    Returns (result, retries, memory_requests_per_element).
    """
    machine = VNMachine(1, memory="dancehall", latency=2, memory_time=1,
                        retry_backoff=retry_backoff, faults=faults,
                        exec_mode=exec_mode)
    machine.add_multithreaded_processor(
        [
            (programs.producer_per_element(100, n,
                                           work_per_element=producer_work),
             {}),
            (programs.consumer_per_element(100, n, 99, work_per_element=0),
             {}),
        ]
    )
    result = machine.run()
    retries = result.counters.get("retries", 0)
    requests = machine.memory.counters["accesses"]
    assert machine.peek(99) == sum(k * k for k in range(n))
    return result, retries, requests / n, machine


@register("hep")
class HepModel:
    """Registry model: one HEP barrel processor over full/empty memory."""

    def __init__(self, contexts=8, latency=8.0, memory_time=1.0,
                 retry_backoff=4.0, faults=None, exec_mode=None):
        from ..common.batch import resolve_exec_mode
        from ..faults import coerce_plan

        plan = coerce_plan(faults)
        self.config = {
            "contexts": contexts,
            "latency": latency,
            "memory_time": memory_time,
            "retry_backoff": retry_backoff,
        }
        # Only echoed (and only passed down) when set, so default configs
        # and every existing baseline row stay byte-identical.
        if plan is not None:
            self.config["faults"] = plan.as_dict()
        resolve_exec_mode(exec_mode)
        if exec_mode is not None:
            self.config["exec_mode"] = exec_mode

    def build(self, source=None, regs_of=None):
        """The underlying :class:`VNMachine`, contexts loaded."""
        return _build_hep(source=source, regs_of=regs_of, **self.config)

    def run(self, workload="compute_loop", iterations=16, loads_per_iter=1,
            alu_ops_per_iter=2, n=16, producer_work=24):
        from ..obs.analysis import vn_accounting

        config = self.config
        if workload == "compute_loop":
            source = programs.compute_loop(iterations,
                                           loads_per_iter=loads_per_iter,
                                           alu_ops_per_iter=alu_ops_per_iter)
            machine = self.build(source=source)
            result = machine.run()
            processor = machine.processors[0]
            metrics = {
                "contexts": config["contexts"],
                "utilization": processor.utilization(),
                "instructions": result.instructions,
                "time": result.time,
                "ipc": (result.instructions / result.time
                        if result.time else 0.0),
            }
            spec = {"workload": workload, "iterations": iterations,
                    "loads_per_iter": loads_per_iter,
                    "alu_ops_per_iter": alu_ops_per_iter}
        elif workload == "producer_consumer":
            result, retries, per_element, machine = _producer_consumer(
                n, producer_work, config["retry_backoff"],
                faults=config.get("faults"),
                exec_mode=config.get("exec_mode"))
            metrics = {
                "time": result.time,
                "instructions": result.instructions,
                "retries": retries,
                "requests_per_element": per_element,
            }
            spec = {"workload": workload, "n": n,
                    "producer_work": producer_work}
        else:
            raise ValueError(f"unknown hep workload {workload!r} "
                             "(compute_loop, producer_consumer)")
        accounting = vn_accounting(machine, result, name=self.name)
        return SimResult(machine=self.name, config=dict(config),
                         workload=spec, metrics=metrics,
                         accounting=accounting.as_dict(),
                         kernel_stats=machine.sim.kernel_stats())

