"""The NYU Ultracomputer (§1.2.3): FETCH-AND-ADD over a combining network.

The model drives the :class:`CombiningOmegaNetwork` with the hot-spot
pattern FETCH-AND-ADD exists for — every processor updating one shared
cell — and measures what the combining switches buy: memory arrivals at
the hot port, round-trip latency, and the ≤ log2(n) adds per reference the
paper notes as the price in switch hardware.

The paper's two reservations are also surfaced: switch complexity (the
count of combine/split operations the switches performed) and the fact
that "the issue of processor latency has not been specifically addressed"
(round-trip latency still grows with log n even when combining works).

:class:`UltracomputerModel` is the registry entry point
(``registry.create("ultracomputer", stages=5)``).
"""

from dataclasses import dataclass
from typing import Any, Optional

from ..common.queueing import FifoServer
from ..common.simulator import Simulator
from ..common.topology import MachineTopology, TopologyLink, TopologyUnit
from ..network.omega import CombiningOmegaNetwork, FetchAddRequest
from .api import SimResult
from .registry import register

__all__ = ["UltraResult", "UltracomputerModel"]


@dataclass
class UltraResult:
    """Measurements of one hot-spot run."""

    n_procs: int
    combining: bool
    total_time: float
    final_value: int
    mean_round_trip: float
    max_round_trip: float
    memory_arrivals: int
    combines: int
    splits: int
    replies: int
    #: Cycle-accounting payload (``CycleAccounting.as_dict`` form):
    #: memory-port servers and switch rails decomposed over the run.
    accounting: Optional[Any] = None
    #: Event-kernel counters (``Simulator.kernel_stats()``) for the run.
    kernel_stats: Optional[Any] = None

    @property
    def serialization_factor(self):
        """Hot-port arrivals per processor (1.0 = fully combined tree)."""
        return self.memory_arrivals / self.n_procs


def _run_hotspot(stages, combining=True, requests_per_proc=1,
                 switch_time=1.0, memory_time=2.0, spacing=0.0,
                 faults=None, shards=None, exec_mode=None):
    """All 2**stages processors FETCH-AND-ADD address 0.

    ``spacing`` staggers injections (0 = the worst-case synchronous burst
    the Ultracomputer's synchronous network design assumes).
    """
    from ..common.batch import BatchPlane, FusedKind, resolve_exec_mode
    from ..common.batch import np as batch_np
    from ..common.simulator import CalendarSimulator
    from ..faults import coerce_plan

    plan = coerce_plan(faults)
    injector = plan.injector() if plan is not None and plan.enabled else None
    sim = Simulator(shards=shards)
    exec_mode = resolve_exec_mode(exec_mode)
    plane = None
    if (exec_mode == "batch" and batch_np is not None
            and isinstance(sim, CalendarSimulator)):
        plane = sim.attach_batch_plane(BatchPlane())
    net = CombiningOmegaNetwork(sim, stages, switch_time=switch_time,
                                combining=combining)
    net.faults = injector
    n = net.n_ports
    memory = {}
    servers = [
        FifoServer(sim, memory_time, name=f"ultra.mem{i}") for i in range(n)
    ]
    if plane is not None and injector is None:
        # The memory-port completions have no SoA compute to lift (the
        # combining network owns the interesting arithmetic), but they
        # still batch as fused dispatch runs.
        fused = FusedKind()
        for server in servers:
            plane.register(server._complete, fused)

    def make_memory_handler(port):
        def finish(rec, pay):
            old = memory.get(pay.address, 0)
            memory[pay.address] = old + pay.value
            net.reply(rec, old)

        def serve(work):
            rec, pay, retries = work
            if injector is not None:
                verdict = injector.memory_fault(sim, f"ultra.mem{port}",
                                                retries=retries)
                if verdict is not None:
                    kind, cycles = verdict
                    if kind == "fail":
                        # Not applied; re-queue at the port after backoff.
                        sim.post(cycles, servers[port].submit,
                                 (rec, pay, retries + 1), serve)
                        return
                    # Slow bank: the FETCH-AND-ADD lands late.
                    sim.post(cycles, finish, rec, pay)
                    return
            finish(rec, pay)

        def handler(record, payload):
            servers[port].submit((record, payload, 0), serve)

        return handler

    replies = []
    for port in range(n):
        net.attach_memory(port, make_memory_handler(port))
        net.attach_processor(port, lambda payload, value: replies.append(value))

    for round_index in range(requests_per_proc):
        for src in range(n):
            delay = spacing * (round_index * n + src)
            sim.post(delay, net.request, src,
                         FetchAddRequest(address=0, value=1))
    sim.run()

    from ..obs.analysis import ultra_accounting
    accounting = ultra_accounting(net, servers, sim.now).as_dict()

    return UltraResult(
        n_procs=n,
        combining=combining,
        total_time=sim.now,
        final_value=memory.get(0, 0),
        mean_round_trip=net.round_trip_latency.mean,
        max_round_trip=net.round_trip_latency.max,
        memory_arrivals=net.counters["memory_arrivals"],
        combines=net.counters["combines"],
        splits=net.counters["splits"],
        replies=net.counters["replies"],
        accounting=accounting,
        kernel_stats=sim.kernel_stats(),
    )


@register("ultracomputer")
class UltracomputerModel:
    """Registry model: a 2**stages-port combining omega hot-spot machine."""

    def __init__(self, stages=4, combining=True, switch_time=1.0,
                 memory_time=2.0, faults=None, shards=None,
                 exec_mode=None):
        from ..common.batch import resolve_exec_mode
        from ..faults import coerce_plan

        plan = coerce_plan(faults)
        self.config = {
            "stages": stages,
            "combining": combining,
            "switch_time": switch_time,
            "memory_time": memory_time,
        }
        # Only echoed (and only passed down) when set, so default configs
        # and every existing baseline row stay byte-identical.
        if plan is not None:
            self.config["faults"] = plan.as_dict()
        if shards is not None:
            self.config["shards"] = shards
        resolve_exec_mode(exec_mode)
        if exec_mode is not None:
            self.config["exec_mode"] = exec_mode

    def topology(self):
        """The combining network's partition graph.

        Processor ports, switch stages, and memory ports hand requests to
        each other through inline queue submissions — a request can reach
        the hot memory port within the same instant it enters the last
        switch rank — so every link's minimum latency (lookahead) is 0
        and the machine contracts to a single shard.  The synchronous
        omega network is one tightly-coupled unit; combining reduces hot
        traffic but adds no slack the simulator could exploit.
        """
        n = 2 ** self.config["stages"]
        units = [TopologyUnit(name=f"proc{i}", kind="proc")
                 for i in range(n)]
        units.append(TopologyUnit(name="omega", kind="network",
                                  weight=float(n)))
        units += [TopologyUnit(name=f"mem{i}", kind="memory")
                  for i in range(n)]
        links = []
        for i in range(n):
            links.append(TopologyLink(src=f"proc{i}", dst="omega",
                                      lookahead=0.0))
            links.append(TopologyLink(src="omega", dst=f"proc{i}",
                                      lookahead=0.0))
            links.append(TopologyLink(src="omega", dst=f"mem{i}",
                                      lookahead=0.0))
            links.append(TopologyLink(src=f"mem{i}", dst="omega",
                                      lookahead=0.0))
        return MachineTopology(units, links)

    def hotspot(self, requests_per_proc=1, spacing=0.0):
        """The raw :class:`UltraResult` of one hot-spot run."""
        return _run_hotspot(
            self.config["stages"],
            combining=self.config["combining"],
            requests_per_proc=requests_per_proc,
            switch_time=self.config["switch_time"],
            memory_time=self.config["memory_time"],
            spacing=spacing,
            faults=self.config.get("faults"),
            shards=self.config.get("shards"),
            exec_mode=self.config.get("exec_mode"),
        )

    def run(self, requests_per_proc=1, spacing=0.0):
        result = self.hotspot(requests_per_proc=requests_per_proc,
                              spacing=spacing)
        return SimResult(
            machine=self.name,
            config=dict(self.config),
            workload={"requests_per_proc": requests_per_proc,
                      "spacing": spacing},
            metrics={
                "n_procs": result.n_procs,
                "combining": result.combining,
                "total_time": result.total_time,
                "final_value": result.final_value,
                "mean_round_trip": result.mean_round_trip,
                "max_round_trip": result.max_round_trip,
                "memory_arrivals": result.memory_arrivals,
                "serialization_factor": result.serialization_factor,
                "combines": result.combines,
                "splits": result.splits,
                "replies": result.replies,
            },
            accounting=result.accounting,
            kernel_stats=result.kernel_stats,
        )
