"""Registry of the surveyed machine models, keyed by name.

``registry.create(name, **config)`` is the one way every caller — the
sweep engine, the CLI, the benchmarks — constructs a machine model.  The
seven survey machines register themselves at import time:

=================  =====================================================
``ttda``           the paper's tagged-token dataflow machine (§2)
``hep``            Denelcor HEP barrel processor (footnote 2)
``cmstar``         Cm* hierarchical clusters (§1.2.2)
``cmmp``           C.mmp crossbar multiprocessor (§1.2.1)
``ultracomputer``  NYU Ultracomputer, combining FETCH-AND-ADD (§1.2.3)
``connection_machine``  Connection Machine / Illiac IV SIMD (§1.2.5)
``vliw``           ELI-512-style VLIW with an oracle compiler (§1.2.4)
=================  =====================================================

A *model spec* — ``{"machine": name, "config": {...}, "workload":
{...}}`` — is the JSON-friendly form the sweep engine fans out to worker
processes; :func:`run_spec` turns one into a finished ``SimResult``.
"""

from .api import SimResult

__all__ = ["register", "create", "describe", "get", "names", "run_spec"]

_MODELS = {}


def register(name):
    """Class decorator: file the model class under ``name``."""

    def apply(cls):
        if name in _MODELS:
            raise ValueError(f"machine model {name!r} already registered")
        cls.name = name
        _MODELS[name] = cls
        return cls

    return apply


def get(name):
    """The model class registered under ``name``."""
    try:
        return _MODELS[name]
    except KeyError:
        known = ", ".join(sorted(_MODELS))
        raise KeyError(
            f"no machine model named {name!r} (registered: {known})"
        ) from None


def create(name, **config):
    """Construct the model registered under ``name`` with ``config``."""
    return get(name)(**config)


def names():
    """Registered model names, sorted."""
    return sorted(_MODELS)


def describe(name, **config):
    """A JSON-friendly description of ``name``'s partition surface.

    Returns ``{"machine", "config", "topology", "max_shards"}``:
    ``topology`` is the machine's partition graph
    (:meth:`~repro.common.topology.MachineTopology.as_dict`) when the
    model implements the optional ``topology()`` hook, else None; and
    ``max_shards`` is how far the sharded parallel kernel may legally
    split it (1 for machines without a topology — they run whole, not
    raise).
    """
    model = create(name, **config)
    topology = None
    hook = getattr(model, "topology", None)
    if callable(hook):
        topology = hook()
    payload = {
        "machine": name,
        "config": dict(model.config),
        "topology": topology.as_dict() if topology is not None else None,
        "max_shards": topology.max_shards if topology is not None else 1,
    }
    return payload


def run_spec(spec):
    """Run one JSON-friendly model spec; returns a :class:`SimResult`.

    ``spec`` is ``{"machine": name, "config": {...}, "workload": {...}}``
    — the shape the sweep engine stores in its grids and caches.
    """
    model = create(spec["machine"], **spec.get("config", {}))
    return model.run(**spec.get("workload", {}))


def _ensure_registered():
    """Import every machine module so its ``@register`` runs.

    Called lazily from ``repro.machines.__init__``; harmless if the
    modules are already imported.
    """
    from . import (  # noqa: F401
        cmmp,
        cmstar,
        connection_machine,
        hep,
        ttda,
        ultracomputer,
        vliw,
    )
