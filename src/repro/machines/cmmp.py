"""C.mmp (§1.2.1): PDP-11s into one global memory through a crossbar.

Two of the paper's observations about C.mmp are made measurable here:

* the crossbar's cost "grows at least quadratically" while its latency is
  held flat — the ``array_sum`` workload of :class:`CmmpModel`;
* Hydra's semaphore synchronization costs far more than an ALU operation
  — the ``semaphore`` workload, which measures cycles per critical
  section against the one-cycle ALU baseline.

The machine itself is a :class:`~repro.vonneumann.machine.VNMachine` in
the dancehall organization with a :class:`CrossbarNetwork`, uncached (as
C.mmp effectively was: "only one processor in the machine was ever fitted
with [a cache] ... the reason is, quite simply, the cache coherence
problem").

:class:`CmmpModel` is the registry entry point.
"""

from ..network.crossbar import CrossbarNetwork
from ..vonneumann.machine import VNMachine
from ..vonneumann import programs
from .api import SimResult
from .registry import register

__all__ = ["CmmpModel"]


def _build_cmmp(n_procs=16, memory_time=3.0, switch_latency=1.0,
                port_service_time=1.0, faults=None, exec_mode=None):
    """A C.mmp-shaped machine: n processors x n memory ports, crossbar."""

    def network_factory(sim, n_ports):
        return CrossbarNetwork(
            sim, n_ports, switch_latency=switch_latency,
            port_service_time=port_service_time, name="cmmp.xbar",
        )

    return VNMachine(
        n_procs, memory="dancehall", n_modules=n_procs,
        memory_time=memory_time, network_factory=network_factory,
        faults=faults, exec_mode=exec_mode,
    )


@register("cmmp")
class CmmpModel:
    """Registry model: the crossbar machine plus its two workloads."""

    def __init__(self, n_procs=16, memory_time=3.0, switch_latency=1.0,
                 port_service_time=1.0, faults=None, exec_mode=None):
        from ..common.batch import resolve_exec_mode
        from ..faults import coerce_plan

        plan = coerce_plan(faults)
        self.config = {
            "n_procs": n_procs,
            "memory_time": memory_time,
            "switch_latency": switch_latency,
            "port_service_time": port_service_time,
        }
        # Only echoed (and only passed down) when set, so default configs
        # and every existing baseline row stay byte-identical.
        if plan is not None:
            self.config["faults"] = plan.as_dict()
        resolve_exec_mode(exec_mode)
        if exec_mode is not None:
            self.config["exec_mode"] = exec_mode

    def build(self):
        """The underlying (empty) :class:`VNMachine`."""
        return _build_cmmp(**self.config)

    # ------------------------------------------------------------------
    def _run_array_sum(self, iterations):
        """Conflict-light disjoint sums: latency and utilization under a
        uniform load, plus the quadratic crosspoint cost."""
        n = self.config["n_procs"]
        machine = self.build()
        for pid in range(n):
            base = 1000 + pid  # interleaved: stride-n addresses per proc
            source = programs.array_sum(base, iterations)
            machine.add_processor(source, regs={1: pid})
        result = machine.run()
        network = machine.memory.network
        metrics = {
            "n_procs": n,
            "crosspoints": CrossbarNetwork.crosspoint_count(n),
            "mean_latency": network.mean_latency(),
            "mean_utilization": result.mean_utilization,
            "time": result.time,
        }
        return metrics, machine, result

    def _run_semaphore(self, increments):
        """Cycles per lock-protected critical section vs the ALU op."""
        n = self.config["n_procs"]
        machine = self.build()
        machine.load_spmd(programs.shared_counter_spinlock(0, 1, increments))
        result = machine.run()
        sections = n * increments
        cycles_per_section = result.time / sections
        alu_cycles = machine.cpu_time
        metrics = {
            "n_procs": n,
            "cycles_per_section": cycles_per_section,
            "alu_cycles": alu_cycles,
            "ratio": cycles_per_section / alu_cycles,
        }
        return metrics, machine, result

    def run(self, workload="array_sum", iterations=40, increments=16):
        from ..obs.analysis import vn_accounting

        if workload == "array_sum":
            metrics, machine, result = self._run_array_sum(iterations)
            spec = {"workload": workload, "iterations": iterations}
        elif workload == "semaphore":
            metrics, machine, result = self._run_semaphore(increments)
            spec = {"workload": workload, "increments": increments}
        else:
            raise ValueError(f"unknown cmmp workload {workload!r} "
                             "(array_sum, semaphore)")
        accounting = vn_accounting(machine, result, name=self.name)
        return SimResult(machine=self.name, config=dict(self.config),
                         workload=spec, metrics=metrics,
                         accounting=accounting.as_dict(),
                         kernel_stats=machine.sim.kernel_stats())

