"""C.mmp (§1.2.1): PDP-11s into one global memory through a crossbar.

Two of the paper's observations about C.mmp are made measurable here:

* the crossbar's cost "grows at least quadratically" while its latency is
  held flat — :func:`crossbar_scaling_table`;
* Hydra's semaphore synchronization costs far more than an ALU operation
  — :func:`semaphore_cost`, which measures cycles per critical section
  against the one-cycle ALU baseline.

The machine itself is a :class:`~repro.vonneumann.machine.VNMachine` in
the dancehall organization with a :class:`CrossbarNetwork`, uncached (as
C.mmp effectively was: "only one processor in the machine was ever fitted
with [a cache] ... the reason is, quite simply, the cache coherence
problem").
"""

from ..network.crossbar import CrossbarNetwork
from ..vonneumann.machine import VNMachine
from ..vonneumann import programs

__all__ = ["build_cmmp", "crossbar_scaling_table", "semaphore_cost"]


def build_cmmp(n_procs=16, memory_time=3.0, switch_latency=1.0,
               port_service_time=1.0):
    """A C.mmp-shaped machine: n processors x n memory ports, crossbar."""

    def network_factory(sim, n_ports):
        return CrossbarNetwork(
            sim, n_ports, switch_latency=switch_latency,
            port_service_time=port_service_time, name="cmmp.xbar",
        )

    return VNMachine(
        n_procs, memory="dancehall", n_modules=n_procs,
        memory_time=memory_time, network_factory=network_factory,
    )


def crossbar_scaling_table(port_counts, workload_iterations=40):
    """For each size: crosspoint cost, and measured reference latency.

    The point of the table is the *divergence*: cost is O(n^2) while the
    uncontended latency stays flat — C.mmp "circumvents" rather than
    solves the latency problem, and only up to the size you can afford.
    Returns [(n, crosspoints, mean_latency, utilization)].
    """
    rows = []
    for n in port_counts:
        machine = build_cmmp(n_procs=n)
        # Every processor sums a disjoint slice: uniform, conflict-light.
        for pid in range(n):
            base = 1000 + pid  # interleaved: stride-n addresses per proc
            source = programs.array_sum(base, workload_iterations)
            machine.add_processor(source, regs={1: pid})
        result = machine.run()
        network = machine.memory.network
        rows.append(
            (
                n,
                CrossbarNetwork.crosspoint_count(n),
                network.mean_latency(),
                result.mean_utilization,
            )
        )
    return rows


def semaphore_cost(n_procs=4, increments=16, memory_time=3.0):
    """Cycles per lock-protected critical section vs. the 1-cycle ALU op.

    Returns (cycles_per_section, alu_op_cycles, ratio).  The ratio is the
    paper's "performance cost of this relative to, say, an ALU operation
    is rather high".
    """
    machine = build_cmmp(n_procs=n_procs, memory_time=memory_time)
    machine.load_spmd(programs.shared_counter_spinlock(0, 1, increments))
    result = machine.run()
    sections = n_procs * increments
    cycles_per_section = result.time / sections
    alu_cycles = machine.cpu_time
    return cycles_per_section, alu_cycles, cycles_per_section / alu_cycles
