"""The paper's own machine as a registry model: the tagged-token dataflow
multiprocessor of §2 (TTDA), wrapped in the :class:`MachineModel` API.

The real machine lives in :mod:`repro.dataflow`; this adapter gives the
sweep engine and CLI the same uniform construction/run surface the
critiqued von Neumann machines have, so an experiment grid can put
``ttda`` next to ``cmmp`` or ``hep`` and compare like with like.
"""

from .api import SimResult
from .registry import register

__all__ = ["TtdaModel"]


@register("ttda")
class TtdaModel:
    """Registry model: an N-PE tagged-token machine running a named
    workload from :mod:`repro.workloads` (or an interpreter run when
    ``n_pes`` is 0 — the unbounded-parallelism idealization)."""

    def __init__(self, n_pes=4, network_latency=4.0, mapping="hash",
                 wm_capacity=None, faults=None, shards=None,
                 exec_mode=None):
        from ..common.batch import resolve_exec_mode
        from ..faults import coerce_plan

        self._fault_plan = coerce_plan(faults)
        self._shards = shards
        self.config = {
            "n_pes": n_pes,
            "network_latency": network_latency,
            "mapping": mapping,
            "wm_capacity": wm_capacity,
        }
        # Only echo the plan when one was given, so default configs (and
        # hence every existing baseline row) stay byte-identical.
        if self._fault_plan is not None:
            self.config["faults"] = self._fault_plan.as_dict()
        if shards is not None:
            self.config["shards"] = shards
        # Validate eagerly (unknown modes fail at construction, not mid
        # sweep); echoed only when set, same baseline-stability rule.
        resolve_exec_mode(exec_mode)
        if exec_mode is not None:
            self.config["exec_mode"] = exec_mode

    def topology(self):
        """The PE partition graph (:func:`repro.dataflow.ttda_topology`):
        one unit per PE, fully connected with the network latency as
        every link's lookahead.  None for the interpreter idealization
        (``n_pes == 0``)."""
        from ..dataflow.machine import ttda_topology

        return ttda_topology(self.config["n_pes"],
                             self.config["network_latency"])

    def _machine_config(self):
        from ..dataflow import ByContextMapping, MachineConfig

        config = MachineConfig(
            n_pes=self.config["n_pes"],
            network_latency=self.config["network_latency"],
            wm_capacity=self.config["wm_capacity"],
            fault_plan=self._fault_plan,
            sim_shards=self._shards,
            exec_mode=self.config.get("exec_mode"),
        )
        if self.config["mapping"] == "context":
            config.mapping_factory = lambda n: ByContextMapping(n)
        elif self.config["mapping"] != "hash":
            raise ValueError(
                f"unknown mapping {self.config['mapping']!r} (hash, context)"
            )
        return config

    def run(self, workload="trapezoid", args=None, check=True):
        """Compile and execute ``workload``; verify against its reference.

        With ``n_pes == 0`` the workload runs on the *reference
        interpreter* (unbounded PEs, unit-time instructions) and the
        metrics are the idealized ones: critical path and average
        parallelism instead of cycles and utilization.
        """
        from ..dataflow import Interpreter, TaggedTokenMachine
        from ..workloads import compile_workload

        program, reference, default_args = compile_workload(workload)
        run_args = tuple(args) if args is not None else tuple(default_args)
        spec = {"workload": workload, "args": list(run_args)}

        accounting = None
        kernel_stats = None
        if self.config["n_pes"] == 0:
            interp = Interpreter(program)
            value = interp.run(*run_args)
            if check and reference is not None:
                assert value == reference(*run_args), (
                    f"{workload} interpreter disagrees with reference")
            metrics = {
                "value": value,
                "instructions": interp.instructions_executed,
                "critical_path": interp.critical_path,
                "average_parallelism": interp.average_parallelism(),
            }
        else:
            from ..obs.analysis import ttda_accounting

            machine = TaggedTokenMachine(program, self._machine_config())
            result = machine.run(*run_args)
            if check and reference is not None:
                assert result.value == reference(*run_args), (
                    f"{workload} machine disagrees with reference")
            metrics = {
                "value": result.value,
                "time": result.time,
                "instructions": result.instructions,
                "mean_alu_utilization": result.mean_alu_utilization,
                "tokens_network": result.counters.get("tokens_network", 0),
                "tokens_local": result.counters.get("tokens_local", 0),
            }
            if self._fault_plan is not None:
                metrics["faults_injected"] = sum(
                    value for key, value in result.counters.items()
                    if key.startswith("faults_")
                )
            accounting = ttda_accounting(machine).as_dict()
            kernel_stats = machine.sim.kernel_stats()
        return SimResult(machine=self.name, config=dict(self.config),
                         workload=spec, metrics=metrics,
                         accounting=accounting, kernel_stats=kernel_stats)
