"""Models of the surveyed machines (S10 in DESIGN.md, §1.2 of the paper).

Each module builds a machine in the image of one survey subject and
exposes the measurement the paper's critique of it rests on:

* :mod:`cmmp` — crossbar cost scaling and semaphore overhead;
* :mod:`cmstar` — utilization vs. remote-reference fraction;
* :mod:`ultracomputer` — FETCH-AND-ADD hot spots, with/without combining;
* :mod:`vliw` — oracle static schedules, width sweeps, latency surprises;
* :mod:`connection_machine` — SIMD communication dominance; Illiac IV
  shift serialization;
* :mod:`hep` — barrel-pipeline saturation and full/empty busy-waiting
  (footnote 2).
"""

from .cmmp import build_cmmp, crossbar_scaling_table, semaphore_cost
from .cmstar import build_cmstar, locality_kernel, locality_sweep
from .hep import build_hep, producer_consumer_traffic, saturation_table
from .connection_machine import (
    CMConfig,
    CMResult,
    ConnectionMachineModel,
    IlliacIVModel,
)
from .ultracomputer import UltraResult, hotspot_sweep, run_hotspot
from .vliw import StaticSchedule, VLIWModel, schedule_length

__all__ = [
    "CMConfig",
    "CMResult",
    "ConnectionMachineModel",
    "IlliacIVModel",
    "StaticSchedule",
    "UltraResult",
    "VLIWModel",
    "build_cmmp",
    "build_cmstar",
    "build_hep",
    "crossbar_scaling_table",
    "producer_consumer_traffic",
    "saturation_table",
    "hotspot_sweep",
    "locality_kernel",
    "locality_sweep",
    "run_hotspot",
    "schedule_length",
    "semaphore_cost",
]
