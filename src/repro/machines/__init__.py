"""Models of the surveyed machines (S10 in DESIGN.md, §1.2 of the paper).

Every machine is constructible through one door::

    from repro.machines import registry
    model = registry.create("ultracomputer", stages=5)
    result = model.run()            # -> repro.machines.api.SimResult

Registered names: ``ttda``, ``hep``, ``cmstar``, ``cmmp``,
``ultracomputer``, ``connection_machine``, ``vliw`` — the paper's own
machine plus the six survey subjects.  Each module still documents the
measurement the paper's critique of its machine rests on:

* :mod:`cmmp` — crossbar cost scaling and semaphore overhead;
* :mod:`cmstar` — utilization vs. remote-reference fraction;
* :mod:`ultracomputer` — FETCH-AND-ADD hot spots, with/without combining;
* :mod:`vliw` — oracle static schedules, width sweeps, latency surprises;
* :mod:`connection_machine` — SIMD communication dominance; Illiac IV
  shift serialization;
* :mod:`hep` — barrel-pipeline saturation and full/empty busy-waiting
  (footnote 2);
* :mod:`ttda` — the tagged-token dataflow machine of §2, adapted to the
  same API.

The pre-registry entry points (``build_cmmp``, ``run_hotspot``,
``locality_sweep``, ``VLIWModel(...)``, ...) still work but emit
``DeprecationWarning``; new code should go through the registry.
"""

from . import registry
from .api import MachineModel, SimResult
from .cmmp import CmmpModel, build_cmmp, crossbar_scaling_table, semaphore_cost
from .cmstar import (
    CmstarModel,
    build_cmstar,
    locality_kernel,
    locality_sweep,
)
from .hep import (
    HepModel,
    build_hep,
    producer_consumer_traffic,
    saturation_table,
)
from .connection_machine import (
    CMConfig,
    CMResult,
    ConnectionMachine,
    ConnectionMachineModel,
    IlliacIV,
    IlliacIVModel,
)
from .ttda import TtdaModel
from .ultracomputer import (
    UltracomputerModel,
    UltraResult,
    hotspot_sweep,
    run_hotspot,
)
from .vliw import StaticSchedule, VliwModel, VLIWModel, schedule_length

__all__ = [
    "CMConfig",
    "CMResult",
    "CmmpModel",
    "CmstarModel",
    "ConnectionMachine",
    "ConnectionMachineModel",
    "HepModel",
    "IlliacIV",
    "IlliacIVModel",
    "MachineModel",
    "SimResult",
    "StaticSchedule",
    "TtdaModel",
    "UltraResult",
    "UltracomputerModel",
    "VLIWModel",
    "VliwModel",
    "build_cmmp",
    "build_cmstar",
    "build_hep",
    "crossbar_scaling_table",
    "producer_consumer_traffic",
    "registry",
    "saturation_table",
    "hotspot_sweep",
    "locality_kernel",
    "locality_sweep",
    "run_hotspot",
    "schedule_length",
    "semaphore_cost",
]
