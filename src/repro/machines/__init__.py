"""Models of the surveyed machines (S10 in DESIGN.md, §1.2 of the paper).

Every machine is constructible through one door::

    from repro.machines import registry
    model = registry.create("ultracomputer", stages=5)
    result = model.run()            # -> repro.machines.api.SimResult

Registered names: ``ttda``, ``hep``, ``cmstar``, ``cmmp``,
``ultracomputer``, ``connection_machine``, ``vliw`` — the paper's own
machine plus the six survey subjects.  Each module still documents the
measurement the paper's critique of its machine rests on:

* :mod:`cmmp` — crossbar cost scaling and semaphore overhead;
* :mod:`cmstar` — utilization vs. remote-reference fraction;
* :mod:`ultracomputer` — FETCH-AND-ADD hot spots, with/without combining;
* :mod:`vliw` — oracle static schedules, width sweeps, latency surprises;
* :mod:`connection_machine` — SIMD communication dominance; Illiac IV
  shift serialization;
* :mod:`hep` — barrel-pipeline saturation and full/empty busy-waiting
  (footnote 2);
* :mod:`ttda` — the tagged-token dataflow machine of §2, adapted to the
  same API.

Models that can run on the sharded parallel kernel expose ``topology()``
(the partition graph; see :mod:`repro.common.topology`), and
``registry.describe(name)`` reports it — along with the honest
``max_shards: 1`` for the machines whose zero-slack couplings forbid
partitioning.

The pre-registry free functions (``build_cmmp``, ``run_hotspot``,
``locality_sweep``, ...) went through one release of
``DeprecationWarning`` shims and are now gone; importing one raises
``AttributeError`` with the registry replacement spelled out.
"""

from . import registry
from .api import MachineModel, SimResult
from .cmmp import CmmpModel
from .cmstar import CmstarModel, locality_kernel
from .hep import HepModel
from .connection_machine import (
    CMConfig,
    CMResult,
    ConnectionMachine,
    IlliacIV,
)
from .ttda import TtdaModel
from .ultracomputer import UltracomputerModel, UltraResult
from .vliw import StaticSchedule, VliwModel, schedule_length

__all__ = [
    "CMConfig",
    "CMResult",
    "CmmpModel",
    "CmstarModel",
    "ConnectionMachine",
    "HepModel",
    "IlliacIV",
    "MachineModel",
    "SimResult",
    "StaticSchedule",
    "TtdaModel",
    "UltraResult",
    "UltracomputerModel",
    "VliwModel",
    "locality_kernel",
    "registry",
    "schedule_length",
]

#: Removed PR 2 deprecation shims -> the registry idiom that replaces
#: them.  One release of ``__getattr__`` guidance before the names
#: disappear entirely.
_REMOVED = {
    "build_cmmp": 'registry.create("cmmp", ...).build()',
    "crossbar_scaling_table":
        'registry.create("cmmp", n_procs=n).run("array_sum")',
    "semaphore_cost": 'registry.create("cmmp", ...).run("semaphore")',
    "build_cmstar": 'registry.create("cmstar", ...).build()',
    "locality_sweep":
        'registry.create("cmstar", ...).run(remote_fraction=f)',
    "build_hep": 'registry.create("hep", ...).build()',
    "saturation_table": 'registry.create("hep", contexts=c).run()',
    "producer_consumer_traffic":
        'registry.create("hep").run("producer_consumer")',
    "run_hotspot": 'registry.create("ultracomputer", ...).hotspot(...)',
    "hotspot_sweep": "repro.exp sweeps over registry models",
    "ConnectionMachineModel":
        'registry.create("connection_machine", ...)',
    "IlliacIVModel":
        'registry.create("connection_machine", ...)'
        '.run(workload="illiac_shifts", ...)',
    "VLIWModel": 'registry.create("vliw", ...)',
}


def __getattr__(name):
    hint = _REMOVED.get(name)
    if hint is not None:
        raise AttributeError(
            f"repro.machines.{name} was removed after its deprecation "
            f"cycle; migrate to {hint}"
        )
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
