"""VLIW machines — ELI-512 and the polycyclic processor (§1.2.4).

A VLIW "moves run-time sharing conflicts to compile time": the compiler
packs independent operations into wide instructions using complete static
knowledge of the dataflow graph.  The paper grants that this works for
"special purpose computation with small scale (4 to 8) parallelism" but
argues "the technique is not sufficiently general as to allow significant
scaling up" — in particular it cannot cover *dynamic* latency, because the
whole lockstep machine stalls when a memory reference takes longer than
the schedule assumed.

The model here gives the VLIW its best case: a perfect list schedule of
the program's ideal parallelism profile (obtained from the dataflow
reference interpreter — the compiler is granted an oracle).  Latency
surprises then charge the full excess to the machine, lockstep-style.

:class:`VliwModel` is the registry entry point.
"""

import math
from dataclasses import dataclass

from .api import SimResult
from .registry import register

__all__ = ["VliwModel", "schedule_length", "StaticSchedule"]


def schedule_length(parallelism_profile, issue_width):
    """Cycles for a perfect list schedule of the profile at given width.

    ``parallelism_profile`` maps logical step -> operations ready at that
    step (the interpreter's output).  Operations at one depth level are
    packed ``issue_width`` at a time; depth levels cannot overlap (they
    are data-dependent by construction).
    """
    return sum(
        math.ceil(count / issue_width)
        for count in parallelism_profile.values()
    )


@dataclass
class StaticSchedule:
    """A compiled VLIW schedule with its static latency assumption."""

    length_cycles: int
    issue_width: int
    n_memory_ops: int
    assumed_latency: float

    def execution_time(self, actual_latency):
        """Run time when the world deviates from the schedule.

        If memory answers no later than assumed, the schedule's length
        stands (the slots were reserved).  Every cycle beyond the
        assumption stalls the *entire* machine — all functional units idle
        in lockstep, which is the paper's scaling objection.
        """
        excess = max(0.0, actual_latency - self.assumed_latency)
        return self.length_cycles + self.n_memory_ops * excess

    def utilization(self, actual_latency, total_ops):
        time = self.execution_time(actual_latency)
        slots = time * self.issue_width
        return total_ops / slots if slots > 0 else 0.0


@register("vliw")
class VliwModel:
    """Registry model: statically schedule a dataflow program for a VLIW.

    The constructor takes machine parameters (issue width, the latency
    the compiler assumes).  ``compile``/``width_sweep`` operate on a
    *finished* reference-interpreter run; ``run`` does the whole thing —
    interpret a named workload, schedule it, and optionally spring a
    latency surprise.
    """

    def __init__(self, issue_width=8, assumed_latency=1.0, faults=None,
                 exec_mode=None):
        from ..common.batch import resolve_exec_mode
        from ..faults import coerce_plan

        self._fault_plan = coerce_plan(faults)
        self.config = {
            "issue_width": issue_width,
            "assumed_latency": assumed_latency,
        }
        # Only echoed when set, so default configs (and every existing
        # baseline row) stay byte-identical.
        if self._fault_plan is not None:
            self.config["faults"] = self._fault_plan.as_dict()
        # Static schedule (no event kernel), so exec_mode only needs
        # validation and echo — sweep grids can set it uniformly.
        resolve_exec_mode(exec_mode)
        if exec_mode is not None:
            self.config["exec_mode"] = exec_mode

    @property
    def issue_width(self):
        return self.config["issue_width"]

    @property
    def assumed_latency(self):
        return self.config["assumed_latency"]

    def compile(self, interpreter):
        """Build the oracle schedule from a *finished* reference
        interpreter run (its parallelism profile and op-class counts)."""
        profile = interpreter.parallelism_profile
        n_memory_ops = interpreter.counters["class_structure"]
        return StaticSchedule(
            length_cycles=schedule_length(profile, self.issue_width),
            issue_width=self.issue_width,
            n_memory_ops=n_memory_ops,
            assumed_latency=self.assumed_latency,
        )

    def width_sweep(self, interpreter, widths):
        """Schedule length vs. issue width: the small-scale sweet spot.

        Returns rows (width, cycles, speedup_vs_width_1).  The returns
        flatten once width exceeds the profile's typical level of
        parallelism — the paper's "4 to 8" observation.
        """
        base = schedule_length(interpreter.parallelism_profile, 1)
        rows = []
        for width in widths:
            cycles = schedule_length(interpreter.parallelism_profile, width)
            rows.append((width, cycles, base / cycles if cycles else 0.0))
        return rows

    def run(self, workload="trapezoid", args=None, actual_latency=None):
        """Interpret ``workload``, compile it, report the schedule.

        ``actual_latency`` (default: the assumed latency) models the
        latency surprise: the lockstep stall charges every excess cycle
        to the whole machine.
        """
        from ..dataflow import Interpreter
        from ..obs.analysis import CycleAccounting, unit_account
        from ..workloads import compile_workload

        program, _, default_args = compile_workload(workload)
        run_args = tuple(args) if args is not None else tuple(default_args)
        interpreter = Interpreter(program)
        interpreter.run(*run_args)
        schedule = self.compile(interpreter)
        latency = (actual_latency if actual_latency is not None
                   else self.assumed_latency)
        plan = self._fault_plan
        if plan is not None and plan.enabled:
            # The analytic lockstep machine pays the *expected* extra
            # latency on every memory op in full — the schedule reserved
            # exact slots, so any variance stalls all issue slots (the
            # paper's dynamic-latency objection, now with faults).
            latency += (plan.mem_slow_rate * plan.mem_slow_cycles
                        + plan.mem_fail_rate * plan.retry_backoff
                        + plan.net_delay_rate * plan.net_delay_cycles)
        total_ops = interpreter.instructions_executed
        execution_time = schedule.execution_time(latency)
        # Units are the issue slots.  Ops spread evenly over the slots
        # (one slot-cycle each); a latency surprise stalls the whole
        # lockstep machine, so every slot eats the full excess
        # (execution_time - schedule_cycles); unfilled schedule slots
        # are idle — the "4 to 8" parallelism ceiling made visible.
        width = self.issue_width
        stall = execution_time - schedule.length_cycles
        accounting = CycleAccounting(self.name, execution_time, [
            unit_account(f"slot{i}", execution_time,
                         compute=total_ops / width, memory_stall=stall)
            for i in range(width)
        ])
        return SimResult(
            machine=self.name,
            config=dict(self.config),
            workload={"workload": workload, "args": list(run_args),
                      "actual_latency": latency},
            metrics={
                "schedule_cycles": schedule.length_cycles,
                "n_memory_ops": schedule.n_memory_ops,
                "execution_time": execution_time,
                "utilization": schedule.utilization(latency, total_ops),
                "total_ops": total_ops,
                "speedup_vs_scalar": (
                    schedule_length(interpreter.parallelism_profile, 1)
                    / schedule.length_cycles
                    if schedule.length_cycles else 0.0
                ),
            },
            accounting=accounting.as_dict(),
        )

