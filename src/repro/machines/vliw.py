"""VLIW machines — ELI-512 and the polycyclic processor (§1.2.4).

A VLIW "moves run-time sharing conflicts to compile time": the compiler
packs independent operations into wide instructions using complete static
knowledge of the dataflow graph.  The paper grants that this works for
"special purpose computation with small scale (4 to 8) parallelism" but
argues "the technique is not sufficiently general as to allow significant
scaling up" — in particular it cannot cover *dynamic* latency, because the
whole lockstep machine stalls when a memory reference takes longer than
the schedule assumed.

The model here gives the VLIW its best case: a perfect list schedule of
the program's ideal parallelism profile (obtained from the dataflow
reference interpreter — the compiler is granted an oracle).  Latency
surprises then charge the full excess to the machine, lockstep-style.
"""

import math
from dataclasses import dataclass

__all__ = ["VLIWModel", "schedule_length", "StaticSchedule"]


def schedule_length(parallelism_profile, issue_width):
    """Cycles for a perfect list schedule of the profile at given width.

    ``parallelism_profile`` maps logical step -> operations ready at that
    step (the interpreter's output).  Operations at one depth level are
    packed ``issue_width`` at a time; depth levels cannot overlap (they
    are data-dependent by construction).
    """
    return sum(
        math.ceil(count / issue_width)
        for count in parallelism_profile.values()
    )


@dataclass
class StaticSchedule:
    """A compiled VLIW schedule with its static latency assumption."""

    length_cycles: int
    issue_width: int
    n_memory_ops: int
    assumed_latency: float

    def execution_time(self, actual_latency):
        """Run time when the world deviates from the schedule.

        If memory answers no later than assumed, the schedule's length
        stands (the slots were reserved).  Every cycle beyond the
        assumption stalls the *entire* machine — all functional units idle
        in lockstep, which is the paper's scaling objection.
        """
        excess = max(0.0, actual_latency - self.assumed_latency)
        return self.length_cycles + self.n_memory_ops * excess

    def utilization(self, actual_latency, total_ops):
        time = self.execution_time(actual_latency)
        slots = time * self.issue_width
        return total_ops / slots if slots > 0 else 0.0


class VLIWModel:
    """Compile (statically schedule) a dataflow program for a VLIW."""

    def __init__(self, issue_width=8, assumed_latency=1.0):
        self.issue_width = issue_width
        self.assumed_latency = assumed_latency

    def compile(self, interpreter):
        """Build the oracle schedule from a *finished* reference
        interpreter run (its parallelism profile and op-class counts)."""
        profile = interpreter.parallelism_profile
        n_memory_ops = interpreter.counters["class_structure"]
        return StaticSchedule(
            length_cycles=schedule_length(profile, self.issue_width),
            issue_width=self.issue_width,
            n_memory_ops=n_memory_ops,
            assumed_latency=self.assumed_latency,
        )

    def width_sweep(self, interpreter, widths):
        """Schedule length vs. issue width: the small-scale sweet spot.

        Returns rows (width, cycles, speedup_vs_width_1).  The returns
        flatten once width exceeds the profile's typical level of
        parallelism — the paper's "4 to 8" observation.
        """
        base = schedule_length(interpreter.parallelism_profile, 1)
        rows = []
        for width in widths:
            cycles = schedule_length(interpreter.parallelism_profile, width)
            rows.append((width, cycles, base / cycles if cycles else 0.0))
        return rows
