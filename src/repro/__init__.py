"""repro — a working reproduction of Arvind & Iannucci's *A Critique of
Multiprocessing von Neumann Style* (MIT CSG Memo 226 / ISCA 1983).

The package contains the machine the paper proposes — a tagged-token
dataflow multiprocessor with I-structure storage — together with the
von Neumann multiprocessors the paper critiques (C.mmp, Cm*, the NYU
Ultracomputer, VLIW machines, the Connection Machine, and the HEP-style
multithreaded processor), all as discrete-event simulations sharing one
kernel, plus an Id-like language front end, workloads, and the experiment
harness that turns each of the paper's qualitative claims into a
measurable result.  See DESIGN.md for the system inventory and
EXPERIMENTS.md for the claim-by-claim reproduction record.
"""

__version__ = "1.0.0"
