"""Deterministic fault injection for the machine models.

The paper's two Issues are claims about *degradation*: what happens to a
machine when memory latency grows (Issue 1, §1.1) and when
synchronization events are delayed (Issue 2).  This module provides the
controlled adversity those claims need: a :class:`FaultPlan` describes a
stochastic-but-reproducible fault environment, and a per-run
:class:`FaultInjector` threads it through the simulators —

* **network latency spikes** — a packet already at its destination is
  re-queued for ``net_delay_cycles`` extra cycles (which also reorders it
  against later traffic), on every :class:`~repro.network.base.Network`
  topology and on the Ultracomputer's combining omega switches;
* **slow memory banks** — a von Neumann memory module or I-structure
  controller serves a request ``mem_slow_cycles`` late;
* **transiently failing memory banks** — the operation is *not* applied;
  the requester retries with backoff (the von Neumann machines reuse the
  full/empty ``RETRY`` path, the I-structure controller re-queues the
  request itself) until the fault clears — after ``max_retries`` draws
  the injector stops failing that request, so progress is guaranteed;
* **PE stalls/crashes** — a TTDA processing element's enabled
  instruction either occupies the ALU ``pe_stall_cycles`` longer (stall)
  or is dropped and re-fired after a growing backoff (crash), again
  bounded by ``max_retries``.

Determinism: every draw comes from a :func:`repro.common.rng.substream`
named after the injection *site* (``mem0``, ``pe3.isc``, ``net`` ...), so
adding a component or reordering unrelated events never perturbs another
site's sequence, and the same ``(seed, plan)`` yields byte-identical
traces and tables — including across ``--jobs`` counts, because a sweep
run's faults are a pure function of its config.

Accounting attribution: no new cycle bucket is introduced (the
``compute/memory_stall/sync_wait/network_queue/idle`` sum-to-window
invariant stands).  Injected delays surface where their victims already
account them — memory-shaped faults inflate ``memory_stall``, network
spikes inflate ``network_queue``/``sync_wait`` — while the injector
publishes ``fault_*`` events on the obs bus with provenance parents, so
``repro profile`` shows exactly which injected fault sits on the
critical path.  See ``docs/FAULTS.md``.
"""

import json
from dataclasses import asdict, dataclass, fields

from .common.rng import DeterministicRng
from .common.stats import Counter

__all__ = ["FaultPlan", "FaultInjector", "SCHEDULING_FIELDS", "coerce_plan"]

#: Rate fields, all probabilities in [0, 1].
_RATE_FIELDS = ("net_delay_rate", "mem_slow_rate", "mem_fail_rate",
                "pe_stall_rate", "pe_crash_rate", "worker_crash_rate")

#: Plan fields that act on the *experiment infrastructure* (the
#: `repro serve` worker pool) rather than on a simulated machine.  They
#: can never change a run's value — only its scheduling — so the sweep
#: service strips them from cache keys and from the plan it exports to
#: machine construction.
SCHEDULING_FIELDS = ("worker_crash_rate",)


@dataclass
class FaultPlan:
    """A reproducible fault environment.  JSON-able; all rates in [0, 1].

    A plan is inert data — pass it (or its dict form) to
    ``registry.create(name, faults=...)`` and the machine builds a
    :class:`FaultInjector` seeded from ``seed``.
    """

    seed: int = 0
    #: Per-packet probability of a delivery-latency spike, and its size.
    net_delay_rate: float = 0.0
    net_delay_cycles: float = 0.0
    #: Per-request probability of a slow memory bank, and the extra
    #: cycles the response is delayed (VN modules + I-structure ctrls).
    mem_slow_rate: float = 0.0
    mem_slow_cycles: float = 0.0
    #: Per-request probability of a transient bank failure (the op is
    #: not applied; the requester retries with backoff).
    mem_fail_rate: float = 0.0
    #: Per-instruction probability of a PE stall, and its length.
    pe_stall_rate: float = 0.0
    pe_stall_cycles: float = 0.0
    #: Per-instruction probability of a PE crash (drop + re-fire).
    pe_crash_rate: float = 0.0
    #: Per-attempt probability that a `repro serve` *worker process*
    #: crashes before running its assigned cell (scheduling-level chaos
    #: for liveness tests; never touches a simulated machine).  Attempts
    #: past ``max_retries`` never crash, so progress is guaranteed.
    worker_crash_rate: float = 0.0
    #: Recovery policy: base backoff (cycles) before a failed operation
    #: is retried, and the draw budget after which a given request's
    #: transient fault clears (liveness guarantee).
    retry_backoff: float = 4.0
    max_retries: int = 8

    def __post_init__(self):
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")

    @property
    def enabled(self):
        """True when any fault has nonzero probability."""
        return any(getattr(self, name) > 0.0 for name in _RATE_FIELDS)

    def as_dict(self):
        return asdict(self)

    @classmethod
    def from_dict(cls, payload):
        """Build a plan from a dict; unknown keys are rejected except
        ``levels`` (the sweep-file extension ``repro bench --faults``
        reads)."""
        known = {f.name for f in fields(cls)}
        extra = set(payload) - known - {"levels"}
        if extra:
            raise ValueError(f"unknown FaultPlan field(s): {sorted(extra)}")
        return cls(**{k: v for k, v in payload.items() if k in known})

    def injector(self, bus=None, source="faults"):
        """A fresh per-run :class:`FaultInjector` for this plan."""
        return FaultInjector(self, bus=bus, source=source)


def coerce_plan(faults):
    """Normalize a ``faults=`` argument: None, a :class:`FaultPlan`, a
    dict, or a path to a JSON plan file."""
    if faults is None or isinstance(faults, FaultPlan):
        return faults
    if isinstance(faults, dict):
        return FaultPlan.from_dict(faults)
    if isinstance(faults, str):
        with open(faults, "r", encoding="utf-8") as fh:
            return FaultPlan.from_dict(json.load(fh))
    raise TypeError(f"faults must be None, FaultPlan, dict or path, "
                    f"got {type(faults).__name__}")


class FaultInjector:
    """Per-run fault state: named substreams, counters, bus telemetry.

    One injector is shared by every component of one machine instance;
    each injection site draws from its own named stream.  All methods
    are hot-path-guarded by the caller (``if faults is not None``), so a
    machine built with ``faults=None`` carries no injector at all.
    """

    def __init__(self, plan, bus=None, source="faults"):
        self.plan = plan
        self.rng = DeterministicRng(plan.seed)
        self.counters = Counter()
        self.bus = bus
        self.source = source

    def attach_bus(self, bus, source=None):
        self.bus = bus
        if source is not None:
            self.source = source
        return bus

    # ------------------------------------------------------------------
    def _emit(self, sim, kind, detail, parent=None, **fields):
        """Publish one fault event; returns its eid (provenance mode)
        so the victim's recovery chain can hang off the fault."""
        bus = self.bus
        if bus is not None and bus.enabled:
            return bus.emit_id(sim.now, self.source, kind, detail,
                               parent=parent, **fields)
        return None

    # ------------------------------------------------------------------
    def net_delay(self, sim, site, packet):
        """Extra delivery delay (cycles) for ``packet`` at ``site``;
        0.0 almost always."""
        plan = self.plan
        if self.rng.stream(f"net.{site}").random() >= plan.net_delay_rate:
            return 0.0
        self.counters.add("faults_net_delay")
        eid = self._emit(sim, "fault_net_delay",
                         f"{site} +{plan.net_delay_cycles:g}",
                         parent=getattr(packet, "cause", None),
                         dur=plan.net_delay_cycles)
        if eid is not None:
            try:
                packet.cause = eid  # the delivery chain runs through us
            except AttributeError:
                pass  # slotted flight records without provenance
        return plan.net_delay_cycles

    def memory_fault(self, sim, site, retries=0, cause=None):
        """One draw for a memory request at bank/controller ``site``.

        Returns None (healthy), ``("slow", extra_cycles)`` or
        ``("fail", backoff_cycles)``.  A request that has already been
        failed ``max_retries`` times is never failed again.
        """
        plan = self.plan
        roll = self.rng.stream(f"mem.{site}").random()
        if roll < plan.mem_fail_rate and retries < plan.max_retries:
            self.counters.add("faults_mem_fail")
            backoff = plan.retry_backoff * (retries + 1)
            self._emit(sim, "fault_mem_fail",
                       f"{site} retry {retries + 1}", parent=cause,
                       backoff=backoff)
            return ("fail", backoff)
        if roll < plan.mem_fail_rate + plan.mem_slow_rate:
            self.counters.add("faults_mem_slow")
            self._emit(sim, "fault_mem_slow",
                       f"{site} +{plan.mem_slow_cycles:g}", parent=cause,
                       dur=plan.mem_slow_cycles)
            return ("slow", plan.mem_slow_cycles)
        return None

    def pe_fault(self, sim, site, attempt=0, cause=None):
        """One draw per enabled instruction at PE ``site``.

        Returns None, ``("stall", cycles)`` or ``("crash", backoff)``.
        Crashed instructions beyond ``max_retries`` attempts degrade to
        stalls so the machine always drains.
        """
        plan = self.plan
        roll = self.rng.stream(f"pe.{site}").random()
        if roll < plan.pe_crash_rate:
            if attempt < plan.max_retries:
                self.counters.add("faults_pe_crash")
                backoff = plan.retry_backoff * (attempt + 1)
                self._emit(sim, "fault_pe_crash",
                           f"{site} attempt {attempt + 1}", parent=cause,
                           backoff=backoff)
                return ("crash", backoff)
            roll = 0.0  # exhausted the budget: degrade to a stall below
        if roll < plan.pe_crash_rate + plan.pe_stall_rate:
            self.counters.add("faults_pe_stall")
            self._emit(sim, "fault_pe_stall",
                       f"{site} +{plan.pe_stall_cycles:g}", parent=cause,
                       dur=plan.pe_stall_cycles)
            return ("stall", plan.pe_stall_cycles)
        return None

    def __repr__(self):
        return (f"<FaultInjector seed={self.plan.seed} "
                f"injected={sum(self.counters.as_dict().values())}>")
